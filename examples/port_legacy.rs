//! Porting legacy C to CHERI C — the paper's central motivation ("existing C
//! programmers should be able to port existing C codebases to CHERI C with
//! little effort", §3 objective 1).
//!
//! This example takes a small "legacy" C library — an intrusive linked list
//! with a string buffer, written in pre-CHERI style — and walks through the
//! classic porting story:
//!
//! 1. most of the code recompiles and just works;
//! 2. code that stashes pointers in `long` breaks (tag lost) and is fixed by
//!    switching to `uintptr_t` (§3.3);
//! 3. a latent off-by-one that conventional hardware silently tolerated
//!    fail-stops, i.e. CHERI found a real bug.
//!
//! ```sh
//! cargo run --example port_legacy
//! ```

use cheri_c::core::{run, Profile};

/// The bulk of the legacy library: ports with zero changes.
const LIB: &str = r#"
struct node {
  int value;
  struct node *next;
};

struct list {
  struct node *head;
  int len;
};

void list_push(struct list *l, struct node *n, int v) {
  n->value = v;
  n->next = l->head;
  l->head = n;
  l->len++;
}

int list_sum(const struct list *l) {
  int s = 0;
  for (struct node *p = l->head; p != NULL; p = p->next)
    s += p->value;
  return s;
}

int buf_append(char *buf, int cap, int at, const char *s) {
  int i = 0;
  while (s[i]) {
    if (at + i >= cap - 1) break;
    buf[at + i] = s[i];
    i++;
  }
  buf[at + i] = 0;
  return at + i;
}
"#;

fn main() {
    let profile = Profile::cerberus();

    // Step 1: the untouched library works as-is under CHERI C.
    let step1 = format!(
        "{LIB}
        int main(void) {{
          struct node n1, n2, n3;
          struct list l;
          l.head = NULL; l.len = 0;
          list_push(&l, &n1, 10);
          list_push(&l, &n2, 20);
          list_push(&l, &n3, 12);
          char buf[32];
          int at = buf_append(buf, 32, 0, \"total=\");
          at = buf_append(buf, 32, at, \"ok\");
          printf(\"%s %d\\n\", buf, list_sum(&l));
          return l.len;
        }}"
    );
    let r = run(&step1, &profile);
    println!("step 1 — recompile unchanged:   {} ({})", r.outcome, r.stdout.trim());
    assert!(matches!(r.outcome, cheri_c::core::Outcome::Exit(3)));

    // Step 2: the one exotic idiom — stashing a pointer in `long` — loses
    // the capability...
    let step2_broken = format!(
        "{LIB}
        long stash;
        void remember(struct list *l) {{ stash = (long)(uintptr_t)l; }}
        struct list *recall(void) {{ return (struct list *)(uintptr_t)stash; }}
        #include <stdint.h>
        int main(void) {{
          struct list l; l.head = NULL; l.len = 7;
          remember(&l);
          return recall()->len;
        }}"
    );
    let r = run(&step2_broken, &profile);
    println!("step 2 — pointer in `long`:     {r}", r = r.outcome);
    assert!(r.outcome.is_safety_stop());

    // ...and the one-line fix is to use uintptr_t for the stash (§3.3).
    let step2_fixed = format!(
        "{LIB}
        #include <stdint.h>
        uintptr_t stash;
        void remember(struct list *l) {{ stash = (uintptr_t)l; }}
        struct list *recall(void) {{ return (struct list *)stash; }}
        int main(void) {{
          struct list l; l.head = NULL; l.len = 7;
          remember(&l);
          return recall()->len;
        }}"
    );
    let r = run(&step2_fixed, &profile);
    println!("         fixed with uintptr_t:  {r}", r = r.outcome);
    assert!(matches!(r.outcome, cheri_c::core::Outcome::Exit(7)));

    // Step 3: CHERI finds a real latent bug. The legacy buffer code below
    // writes the terminator one byte past a maximally-filled buffer —
    // conventional builds silently corrupt the neighbouring stack slot.
    let step3 = format!(
        "{LIB}
        int main(void) {{
          char buf[8];
          /* legacy bug: cap passed as sizeof+1 \"because it always worked\" */
          int at = buf_append(buf, 9, 0, \"12345678\");
          return at;
        }}"
    );
    let r = run(&step3, &profile);
    println!("step 3 — latent off-by-one:     {r}", r = r.outcome);
    assert!(r.outcome.is_safety_stop());
    println!("\nporting outcome: 2 small diffs, 1 real bug found — the paper's 0.026–0.18% LoC story in miniature.");
}
