//! `(u)intptr_t` semantics tour (§3.3, §3.4, §3.7): round trips, transient
//! non-representability with ghost state, type punning through a union, and
//! capability derivation in binary arithmetic — each shown by running the
//! paper's own example programs.
//!
//! ```sh
//! cargo run --example uintptr_roundtrip
//! ```

use cheri_c::core::{run, Profile};

fn show(title: &str, src: &str) {
    println!("── {title}");
    for p in [
        Profile::cerberus(),
        Profile::clang_morello(false),
        Profile::gcc_morello(false),
    ] {
        let r = run(src, &p);
        println!("   {:<18} {}", p.name, r.outcome);
        if !r.stdout.is_empty() {
            for l in r.stdout.lines() {
                println!("     {l}");
            }
        }
    }
    println!();
}

fn main() {
    show(
        "round trip: pointer → uintptr_t → pointer is the identity",
        r#"
        #include <stdint.h>
        int main(void) {
          int x = 42;
          uintptr_t u = (uintptr_t)&x;
          int *q = (int*)u;
          print_cap(q);
          return *q == 42 ? 0 : 1;
        }"#,
    );

    show(
        "§3.3: transient non-representability poisons the value (ghost state)",
        r#"
        #include <stdint.h>
        void f(int a, int b) {
          int x[2];
          uintptr_t i = (uintptr_t)&x[0];
          uintptr_t j = i + a;       /* ~400KB out of bounds */
          uintptr_t k = j - b;       /* back in range, but too late */
          int *q = (int*)k;
          *q = 1;
        }
        int main(void) { f(100001*sizeof(int), 100000*sizeof(int)); }"#,
    );

    show(
        "§3.4: type punning between int* and uintptr_t through a union",
        r#"
        #include <stdint.h>
        union ptr { int *ptr; uintptr_t iptr; };
        int main(void) {
          int arr[] = {42, 43};
          union ptr x;
          x.ptr = arr;
          x.iptr += sizeof(int);
          assert(*x.ptr == 43);
          return 0;
        }"#,
    );

    show(
        "§3.7: capability derivation picks the non-converted operand",
        r#"
        #include <stdint.h>
        int* array_shift(int *x, int n) {
          intptr_t ip = (intptr_t)x;
          intptr_t ip1 = sizeof(int)*n + ip;   /* derives from ip */
          return (int*)ip1;
        }
        int main(void) {
          int a[3] = {10, 20, 30};
          print_cap(array_shift(a, 2));
          return *array_shift(a, 2) == 30 ? 0 : 1;
        }"#,
    );
}
