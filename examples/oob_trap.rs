//! The paper's §3.1 motivating example, executed under every implementation
//! profile: the same buggy program is *undefined behaviour* to the abstract
//! machine, a *hardware trap* to the emulated implementations, and merely a
//! provenance violation to the ISO baseline.
//!
//! ```sh
//! cargo run --example oob_trap
//! ```

use cheri_c::core::{run, Profile};

const S31: &str = r#"
void f(int *p, int i) {
  int *q = p + i;   /* one-past construction: ISO-legal */
  *q = 42;          /* ...but the access is not */
}
int main(void) {
  int x = 0, y = 0;
  f(&x, 1);
  return y;
}
"#;

fn main() {
    println!("§3.1: out-of-bounds write through a one-past pointer\n");
    let mut profiles = vec![Profile::iso_baseline()];
    profiles.extend(Profile::all_compared());
    for p in profiles {
        let r = run(S31, &p);
        println!("  {:<22} {}", p.name, r.outcome);
    }
    println!(
        "\nEvery CHERI configuration fail-stops; a conventional machine-word\n\
         implementation would have silently written over whatever follows x."
    );
}
