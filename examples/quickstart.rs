//! Quickstart: run a CHERI C program under the reference semantics and
//! inspect the outcome.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cheri_c::core::{run, Profile};

fn main() {
    let source = r#"
        #include <stdint.h>
        int main(void) {
          int a[4] = {1, 2, 3, 4};
          int s = 0;
          for (int i = 0; i < 4; i++) s += a[i];
          printf("sum = %d\n", s);

          /* Every pointer is a capability: inspect it. */
          int *p = &a[1];
          printf("a[1] is at %p, bounds length %d, tagged: %d\n",
                 p, (int)cheri_length_get(p), (int)cheri_tag_get(p));
          return 0;
        }
    "#;

    let result = run(source, &Profile::cerberus());
    print!("{}", result.stdout);
    println!("→ {}", result.outcome);
    assert!(result.outcome.is_success());

    // The same program, one byte out of bounds, fail-stops instead of
    // corrupting memory:
    let buggy = r#"
        int main(void) {
          int a[4] = {1, 2, 3, 4};
          int s = 0;
          for (int i = 0; i <= 4; i++) s += a[i];   /* off-by-one */
          return s;
        }
    "#;
    let result = run(buggy, &Profile::cerberus());
    println!("off-by-one loop → {}", result.outcome);
    assert!(result.outcome.is_safety_stop());
}
