//! PNVI-ae-udi provenance explorer (§2.3, §3.11): drive the memory object
//! model directly to watch provenance being tracked, exposed and recovered —
//! and see why capability checks and provenance checks are complementary.
//!
//! ```sh
//! cargo run --example provenance_explorer
//! ```

use cheri_c::cap::{Capability, MorelloCap};
use cheri_c::mem::{CheriMemory, IntVal, MemConfig, Provenance};

fn main() {
    let mut mem = CheriMemory::<MorelloCap>::new(MemConfig::cheri_reference());

    // Two allocations; a pointer to each.
    let x = mem.allocate_object("x", 4, 4, false, Some(&[7, 0, 0, 0])).unwrap();
    let y = mem.allocate_object("y", 4, 4, false, Some(&[9, 0, 0, 0])).unwrap();
    println!("x = {x}");
    println!("y = {y}");

    // Casting a pointer to an integer *exposes* its allocation (PNVI-ae).
    let addr_x = mem.cast_ptr_to_int(&x, false, false, 8);
    println!("\n(uintptr-less) integer value of &x: {}", addr_x.value());
    let x_id = x.prov.alloc_id().unwrap();
    println!("x exposed after the cast: {}", mem.allocation(x_id).expect("allocation exists").exposed);
    let y_id = y.prov.alloc_id().unwrap();
    println!("y not exposed (never cast): {}", !mem.allocation(y_id).expect("allocation exists").exposed);

    // Casting the integer back attaches the provenance of the exposed
    // allocation it points into...
    let px = mem.cast_int_to_ptr(&addr_x);
    println!("\nrecovered from integer: {px}");
    assert_eq!(px.prov, x.prov);
    // ...but the capability is NULL-derived, so the CHERI check stops any
    // use even though the provenance is fine:
    let denied = mem.load_int(&px, 4, true, false);
    println!("loading through it: {}", denied.unwrap_err());

    // Guessing y's address does NOT attach provenance (y is unexposed):
    let guess = IntVal::Num(i128::from(y.addr()));
    let py = mem.cast_int_to_ptr(&guess);
    assert_eq!(py.prov, Provenance::Empty);
    println!("\nguessed pointer to unexposed y: provenance {}", py.prov);

    // §3.11: the checks are complementary — a tagged, in-bounds capability
    // can still be a *temporal* provenance violation:
    let h = mem.allocate_region(16, 16).unwrap();
    mem.store_int(&h, 4, &IntVal::Num(1)).unwrap();
    mem.kill(&h, true).unwrap();
    println!(
        "\nafter free: capability still tagged = {}, but the abstract machine says:",
        h.cap.tag()
    );
    println!("  {}", mem.load_int(&h, 4, true, false).unwrap_err());
}
