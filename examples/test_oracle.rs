//! The executable semantics as a **test oracle** (§7 of the paper):
//! generate random programs, compute their intended result during
//! generation, and differentially check every implementation configuration
//! — plus memory-event traces for diagnosing a divergence.
//!
//! ```sh
//! cargo run --release --example test_oracle
//! ```

use cheri_bench::progen::generate;
use cheri_c::core::{compile, run, Interp, MorelloCap, Outcome, Profile};

fn main() {
    // 1. A quick differential sweep: 50 random well-defined programs, all
    //    configurations must agree with the oracle.
    let profiles = Profile::all_compared();
    let mut checked = 0;
    for seed in 0..50 {
        let g = generate(seed, false);
        let want = Outcome::Exit(g.expected_exit.expect("well-defined"));
        for p in &profiles {
            let r = run(&g.source, p);
            assert_eq!(r.outcome, want, "seed {seed} under {}", p.name);
            checked += 1;
        }
    }
    println!("{checked} oracle comparisons, 0 divergences");

    // 2. Bug-injected programs must fail-stop under every CHERI profile.
    let mut stopped = 0;
    for seed in 0..50 {
        let g = generate(seed, true);
        let r = run(&g.source, &Profile::cerberus());
        if r.outcome.is_safety_stop() {
            stopped += 1;
        }
    }
    println!("{stopped}/50 injected bugs caught by the reference semantics");

    // 3. When configurations disagree, traces show where executions part
    //    ways. Here: the same program traced under the reference.
    let g = generate(7, false);
    let profile = Profile::cerberus();
    let prog = compile(&g.source, &profile).expect("compile");
    let mut it = Interp::<MorelloCap>::new(&prog, &profile);
    it.mem.enable_trace();
    let (r, trace) = it.run_with_trace();
    println!(
        "\nseed-7 program: {} with {} memory events; first five:",
        r.outcome,
        trace.len()
    );
    for line in trace.iter().take(5) {
        println!("  {line}");
    }
}
