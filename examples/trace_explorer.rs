//! Trace explorer: run one program under two implementation profiles,
//! capture both typed memory-event streams, and pretty-print where (and
//! whether) they diverge.
//!
//! The paper's §5 comparison reduces each implementation to its final
//! *outcome*; the event streams show the path there. Two profiles place
//! allocations at different addresses, so a raw diff disagrees at the
//! first event — the explorer therefore diffs in *normalized* coordinates
//! (allocation ordinal, offset), where layout differences vanish and only
//! semantic divergences remain.
//!
//! ```sh
//! cargo run --example trace_explorer
//! ```

use cheri_c::core::{run_traced, Profile};
use cheri_c::lint::{lint, LintMode};
use cheri_c::obs::{diff, render, render_diff, DiffMode};

/// The §3.1 one-past write: UB to the reference semantics, a capability
/// bounds trap on emulated hardware — the streams agree event-for-event
/// right up to that verdict.
const S31: &str = r#"
void f(int *p, int i) {
  int *q = p + i;
  *q = 42;
}
int main(void) {
  int x = 0, y = 0;
  f(&x, 1);
  return y;
}
"#;

/// A well-defined program: same normalized stream everywhere, no
/// divergence to report.
const CLEAN: &str = r#"
int main(void) {
  int a[4];
  for (int i = 0; i < 4; i++) a[i] = i * i;
  return a[3] - 9;
}
"#;

/// One-line static verdict for a profile, e.g. `must-ub (out-of-bounds)`.
fn static_verdict(src: &str, profile: &Profile) -> String {
    match lint(src, profile) {
        Err(e) => format!("front-end error: {e}"),
        Ok(report) => {
            let mut s = report.overall().label().to_string();
            if let Some(class) = report.must_class() {
                s.push_str(&format!(" ({class})"));
            }
            if let LintMode::Widened(reason) = &report.mode {
                s.push_str(&format!(" [widened: {reason}]"));
            }
            s
        }
    }
}

fn explore(title: &str, src: &str, left: &Profile, right: &Profile) {
    println!("── {title}: {} vs {} ──", left.name, right.name);
    let (lr, levs) = run_traced(src, left);
    let (rr, revs) = run_traced(src, right);
    println!(
        "  {:<20} {} ({} events)   [static: {}]",
        left.name,
        lr.outcome,
        levs.len(),
        static_verdict(src, left)
    );
    println!(
        "  {:<20} {} ({} events)   [static: {}]",
        right.name,
        rr.outcome,
        revs.len(),
        static_verdict(src, right)
    );
    match diff(&levs, &revs, DiffMode::Normalized, 3) {
        None => println!("  no divergence: the normalized event streams are identical\n"),
        Some(d) => {
            // The diff reports raw (un-normalized) events; render them with
            // the full renderer so non-legacy events (rep-checks, tag
            // clears, the terminal verdict) are visible too.
            for line in render_diff(&d).lines() {
                println!("  {line}");
            }
            println!();
        }
    }
}

fn main() {
    println!("trace explorer: where do two implementations part ways?\n");

    let cerberus = Profile::cerberus();
    let morello = Profile::clang_morello(false);
    let riscv = Profile::clang_riscv(true);

    explore("§3.1 one-past write", S31, &cerberus, &morello);
    explore("well-defined array sums", CLEAN, &morello, &riscv);

    // The full renderer shows everything the legacy `--trace` text hides:
    // representability checks, tag clears, and the terminal verdict.
    let (_, events) = run_traced(S31, &morello);
    println!("── full event stream, §3.1 under clang-morello-O0 ──");
    for (i, ev) in events.iter().enumerate() {
        println!("  [{i:>2}] {}", render::full_line(ev));
    }
}
