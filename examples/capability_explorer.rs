//! Capability model explorer: bounds compression, representability and
//! sealing on the Morello-style and CHERIoT-style formats, using the
//! `cheri-cap` crate directly (no C involved).
//!
//! ```sh
//! cargo run --example capability_explorer
//! ```

use cheri_c::cap::{CapDisplay, Capability, CheriotCap, MorelloCap, Perms};

fn main() {
    // Derive a data capability the way a CHERI allocator would (§3.2).
    let root = MorelloCap::root();
    let obj = root
        .with_bounds(0x4000_1000, 256)
        .with_perms_and(Perms::data())
        .with_address(0x4000_1000);
    println!("fresh allocation: {}", CapDisplay(&obj));

    // In-bounds movement keeps the tag; §3.2's representable slack allows
    // some out-of-bounds addresses too.
    println!("\naddress movement vs representability:");
    for delta in [0i64, 255, 256, 1024, 4096, 1 << 20] {
        let addr = 0x4000_1000u64.wrapping_add(delta as u64);
        let moved = obj.with_address(addr);
        println!(
            "  base+{delta:<8} tag={} representable={}",
            u8::from(moved.tag()),
            u8::from(obj.is_representable(addr)),
        );
    }

    // Compression precision: small = byte-granular, large = rounded.
    println!("\nbounds compression (Morello vs CHERIoT):");
    for len in [100u64, 4095, 1 << 16, (1 << 20) + 3] {
        let m = MorelloCap::root().with_bounds(0x10000, len);
        let c = CheriotCap::root().with_bounds(0x10000, len & 0xF_FFFF);
        println!(
            "  requested {len:>8}: morello {}  cheriot {}",
            m.bounds().length(),
            c.bounds().length(),
        );
    }

    // Monotonicity: narrowing is allowed, widening clears the tag.
    let narrow = obj.with_bounds(0x4000_1010, 16);
    let widened = narrow.with_bounds(0x4000_1000, 4096);
    println!("\nnarrowed: {}", CapDisplay(&narrow));
    println!("widened (forgery attempt): {}", CapDisplay(&widened));
    assert!(!widened.tag());

    // Sealing for secure encapsulation (§2.1).
    let sealer = MorelloCap::root().with_address(42);
    let sealed = obj.seal(&sealer).expect("root can seal");
    println!("\nsealed with otype 42: sealed={}", sealed.is_sealed());
    let resealed = sealed.with_address(0x4000_1004);
    println!("mutating a sealed capability clears the tag: tag={}", resealed.tag());
    let unsealed = sealed.unseal(&sealer).expect("matching otype");
    assert_eq!(unsealed.bounds(), obj.bounds());
    println!("unsealed again: {}", CapDisplay(&unsealed));
}
