//! Unit tests: cache keying/sharing, manifest parsing, service ordering
//! and determinism on small batches. (The corpus-scale determinism and
//! cache-soundness gates live in `tests/batch_determinism.rs` and
//! `tests/program_cache_qc.rs` at the workspace root.)

use std::sync::Arc;

use cheri_core::{CheriotCap, MorelloCap, Profile};

use crate::cache::{CompileKey, ProgramCache};
use crate::job::{parse_job_line, profiles_from_spec, JobSpec, Mode};
use crate::service::{run_batch, Service};

fn job(id: &str, src: &str, profiles: Vec<Profile>, mode: Mode) -> JobSpec {
    JobSpec {
        id: id.into(),
        source: Arc::new(src.into()),
        profiles,
        mode,
    }
}

const OK_PROGRAM: &str = "int main(void) { int x = 40; return x + 2; }";
const UB_PROGRAM: &str = "int main(void) { int a[2]; a[2] = 1; return 0; }";

#[test]
fn cache_shares_across_equal_keys_and_profiles() {
    let cache = ProgramCache::new();
    // cerberus and clang-morello-O0 differ only in runtime axes: one key.
    let a = cache
        .get_or_compile::<MorelloCap>(OK_PROGRAM, &Profile::cerberus())
        .unwrap();
    let b = cache
        .get_or_compile::<MorelloCap>(OK_PROGRAM, &Profile::clang_morello(false))
        .unwrap();
    assert!(Arc::ptr_eq(&a, &b), "O0 profiles share one compilation");
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 1);
    // -O3 changes the optimisation fingerprint: a second entry.
    let c = cache
        .get_or_compile::<MorelloCap>(OK_PROGRAM, &Profile::clang_morello(true))
        .unwrap();
    assert!(!Arc::ptr_eq(&a, &c));
    assert_eq!(cache.len(), 2);
    // The ISO baseline changes the pointer size: a third entry.
    cache
        .get_or_compile::<MorelloCap>(OK_PROGRAM, &Profile::iso_baseline())
        .unwrap();
    assert_eq!(cache.len(), 3);
}

#[test]
fn compile_key_distinguishes_capability_models() {
    let p = Profile::cerberus();
    let morello = CompileKey::for_profile::<MorelloCap>(OK_PROGRAM, &p);
    let cheriot = CompileKey::for_profile::<CheriotCap>(OK_PROGRAM, &p);
    assert_ne!(morello, cheriot, "capability size is part of the key");
}

#[test]
fn cache_caches_front_end_errors() {
    let cache = ProgramCache::new();
    let e1 = cache
        .get_or_compile::<MorelloCap>("int main(void) {", &Profile::cerberus())
        .unwrap_err();
    let e2 = cache
        .get_or_compile::<MorelloCap>("int main(void) {", &Profile::cerberus())
        .unwrap_err();
    assert_eq!(e1, e2);
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.hits(), 1);
}

#[test]
fn batch_outputs_preserve_submission_order() {
    // Jobs with observably different results, submitted in a known order;
    // 4 workers over 1 core guarantees out-of-order completion is at
    // least possible — outputs must still come back in submission order.
    let sources = [
        "int main(void) { return 3; }",
        "int main(void) { return 1; }",
        UB_PROGRAM,
        "int main(void) { return 2; }",
    ];
    let jobs: Vec<JobSpec> = sources
        .iter()
        .enumerate()
        .map(|(i, s)| job(&format!("j{i}"), s, vec![Profile::cerberus()], Mode::Run))
        .collect();
    let out = run_batch::<MorelloCap>(jobs, 4);
    assert_eq!(out.len(), 4);
    assert_eq!(out[0].id, "j0");
    assert_eq!(out[0].profiles[0].outcome, "exit(3)");
    assert_eq!(out[1].profiles[0].outcome, "exit(1)");
    assert!(out[2].profiles[0].outcome.starts_with("UB:"));
    assert_eq!(out[3].profiles[0].outcome, "exit(2)");
}

#[test]
fn worker_counts_agree_byte_for_byte() {
    let mk = || {
        (0..12)
            .map(|i| {
                let src = format!("int main(void) {{ int x = {i}; return x * 2; }}");
                job(
                    &format!("job-{i}"),
                    &src,
                    Profile::all_compared(),
                    if i % 3 == 0 { Mode::TraceDiff } else { Mode::Run },
                )
            })
            .collect::<Vec<_>>()
    };
    let render = |outs: Vec<crate::job::JobOutput>| {
        outs.iter().map(crate::job::JobOutput::render).collect::<Vec<_>>()
    };
    let one = render(run_batch::<MorelloCap>(mk(), 1));
    let four = render(run_batch::<MorelloCap>(mk(), 4));
    assert_eq!(one, four, "worker count must not change any output byte");
}

#[test]
fn lint_mode_reports_verdicts() {
    let out = run_batch::<MorelloCap>(
        vec![job("l", UB_PROGRAM, vec![Profile::cerberus()], Mode::Lint)],
        2,
    );
    assert_eq!(out[0].profiles[0].outcome, "must-ub");
    let lint = out[0].profiles[0].lint.as_deref().unwrap();
    assert!(lint.contains("out-of-bounds"), "{lint}");
}

#[test]
fn trace_diff_mode_reports_divergence() {
    // §3.1-style one-past write: UB under cerberus, trap on hardware —
    // the event streams diverge at the terminal event.
    let src = r#"
        void f(int *p, int i) { int *q = p + i; *q = 42; }
        int main(void) { int x=0, y=0; f(&x, 1); return y; }
    "#;
    let profiles = vec![Profile::cerberus(), Profile::clang_morello(false)];
    let out = run_batch::<MorelloCap>(vec![job("d", src, profiles, Mode::TraceDiff)], 2);
    let diff = out[0].trace_diff.as_deref().unwrap();
    assert!(diff.contains("diverges from cerberus"), "{diff}");
    assert!(out[0].profiles.iter().all(|p| p.events.is_some()));
}

#[test]
fn streaming_interface_emits_in_order() {
    let mut svc = Service::<MorelloCap>::new(3);
    for i in 0..6 {
        let src = format!("int main(void) {{ return {i}; }}");
        svc.submit(job(&format!("s{i}"), &src, vec![Profile::cerberus()], Mode::Run));
    }
    let mut seen = Vec::new();
    while let Some(o) = svc.next_output() {
        seen.push(o.profiles[0].outcome.clone());
    }
    assert_eq!(seen, ["exit(0)", "exit(1)", "exit(2)", "exit(3)", "exit(4)", "exit(5)"]);
    assert_eq!(svc.pending(), 0);
    // The service stays alive for more submissions.
    svc.submit(job("again", OK_PROGRAM, vec![Profile::cerberus()], Mode::Run));
    assert_eq!(svc.next_output().unwrap().profiles[0].outcome, "exit(42)");
}

#[test]
fn manifest_lines_parse_and_reject() {
    assert!(parse_job_line("", "1", None).unwrap().is_none());
    assert!(parse_job_line("# comment", "1", None).unwrap().is_none());
    assert!(parse_job_line("run cerberus", "1", None).is_err());
    assert!(parse_job_line("fly cerberus x.c", "1", None)
        .unwrap_err()
        .contains("unknown mode"));
    assert!(parse_job_line("run warp9 x.c", "1", None)
        .unwrap_err()
        .contains("unknown profile"));
    assert_eq!(profiles_from_spec("all").unwrap().len(), 8);
    assert_eq!(profiles_from_spec("compared").unwrap().len(), 7);
    assert_eq!(
        profiles_from_spec("cerberus,cheriot").unwrap()[1].name,
        "cheriot"
    );

    // Round-trip through a real manifest file.
    let dir = std::env::temp_dir().join("cheri-serve-manifest-test");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("p.c"), OK_PROGRAM).unwrap();
    std::fs::write(
        dir.join("jobs.txt"),
        "# demo\nrun cerberus p.c\nlint compared p.c\n",
    )
    .unwrap();
    let jobs = crate::job::load_manifest(dir.join("jobs.txt").to_str().unwrap()).unwrap();
    assert_eq!(jobs.len(), 2);
    assert_eq!(jobs[0].id, "2:p.c");
    assert_eq!(jobs[0].mode, Mode::Run);
    assert_eq!(jobs[1].mode, Mode::Lint);
    assert_eq!(jobs[1].profiles.len(), 7);
}

#[test]
fn arena_reuse_is_observably_identical() {
    // One worker, many jobs with different profiles (different memory
    // configurations): every job through the recycled arena must match a
    // fresh single-shot run exactly.
    let sources = [OK_PROGRAM, UB_PROGRAM, OK_PROGRAM];
    let mut jobs = Vec::new();
    for (i, s) in sources.iter().enumerate() {
        let mut profs = Profile::all_compared();
        profs.push(Profile::iso_baseline());
        jobs.push(job(&format!("a{i}"), s, profs, Mode::Run));
    }
    let out = run_batch::<MorelloCap>(jobs, 1);
    for (o, src) in out.iter().zip(sources.iter()) {
        for po in &o.profiles {
            let p = crate::job::profile_by_name(&po.profile).unwrap();
            let fresh = cheri_core::run_with::<MorelloCap>(src, &p);
            assert_eq!(po.outcome, fresh.outcome.label(), "{}/{}", o.id, po.profile);
            assert_eq!(po.stdout, fresh.stdout);
            assert_eq!(
                po.stats,
                crate::job::stats_line(&fresh.mem_stats, fresh.unspecified_reads)
            );
        }
    }
}
