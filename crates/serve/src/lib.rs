//! `cheri-serve` — a long-lived, batched, multi-threaded
//! differential-execution service over the CHERI C semantics.
//!
//! Every other entry point in this workspace builds a fresh world per
//! invocation: parse, type-check, lower, allocate, run, throw everything
//! away. That is the right shape for a single differential check and the
//! wrong shape for sustained traffic — the ROADMAP's "heavy traffic, as
//! fast as the hardware allows" target means amortizing the front end and
//! the allocator across jobs. This crate provides that engine:
//!
//! * **Jobs**, not invocations ([`job`]): a [`JobSpec`] names a program
//!   source, a profile set, and a mode — [`Mode::Run`] (execute),
//!   [`Mode::Lint`] (static analysis), or [`Mode::TraceDiff`] (execute
//!   under every profile and diff the event streams against the first).
//! * **A content-hash program cache** ([`cache`]): programs are parsed,
//!   type-checked and lowered **once** per [`CompileKey`] (source hash ×
//!   pointer size × optimisation fingerprint) and shared immutably via
//!   [`std::sync::Arc`] across profiles, jobs and worker threads.
//! * **A worker pool with arena reuse** ([`service`]): jobs fan out over
//!   `std::thread` workers pulling from a shared queue; each worker keeps
//!   one [`cheri_mem::CheriMemory`] arena and *resets* it between jobs
//!   (capacity-preserving, observably identical to a fresh instance)
//!   instead of reallocating a world per program.
//! * **Deterministic ordered collection**: results flow back over an
//!   `mpsc` channel tagged with submission indices and are re-ordered
//!   before emission, so the output of a batch is byte-identical whatever
//!   the worker count — pinned by `tests/batch_determinism.rs` over the
//!   oracle corpus and by the `bench_pr9` gate.
//!
//! The CLI fronts this with `cheri-c --batch <manifest>` (one job per
//! manifest line) and `cheri-c --serve` (jobs streamed on stdin, results
//! streamed in submission order); `--jobs N` sets the worker count.
//!
//! Everything is hermetic: `std::thread` + `std::sync::mpsc`, no external
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod service;

pub use cache::{CachedProgram, CompileKey, ProgramCache};
pub use job::{
    fast_variant, load_manifest, parse_job_line, profile_by_name, profiles_from_spec, JobOutput,
    JobSpec, Mode, ProfileOutcome, PROFILE_NAMES,
};
pub use service::{execute_job, run_batch, Service};

#[cfg(test)]
mod tests;
