//! The content-hash program cache: parse + type-check + lower **once**,
//! share the result immutably across profiles, jobs and worker threads.
//!
//! The front end (`cheri_core::compile_for`) depends on exactly three
//! inputs: the source text, the target pointer size (capability size, or
//! machine-word size for the ISO baseline), and the profile's emulated
//! optimisation effects (`OptFlags` — the §3 transformations are applied
//! as AST/IR passes at compile time). [`CompileKey`] hashes precisely
//! those, so two profiles that agree on them — e.g. every `-O0` CHERI
//! hardware profile — share one compiled program, and re-submitting a
//! program the service has already seen costs a hash lookup.
//!
//! Concurrency: the map lock is held only for lookup and insert, never
//! during compilation, so independent programs compile in parallel on
//! different workers. If two workers race to compile the same key, the
//! first insert wins and both end up holding the same [`Arc`] — duplicate
//! work, never divergent results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cheri_cap::Capability;
use cheri_core::ir::IrProgram;
use cheri_core::tast::TProgram;
use cheri_core::{OptFlags, Profile};

/// FNV-1a 64-bit content hash. Hermetic and stable; the cache only needs
/// within-process stability, and collision resistance far beyond the size
/// of any realistic batch.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Pack the observable compile-time optimisation effects into a key
/// fragment. Must cover every `OptFlags` field the front end reads.
fn opt_fingerprint(o: &OptFlags) -> u64 {
    u64::from(o.level)
        | (u64::from(o.elide_identity_writes) << 8)
        | (u64::from(o.fold_transient_arith) << 9)
        | (u64::from(o.loops_to_memcpy) << 10)
        | (u64::from(o.register_promote) << 11)
}

/// What makes two (source, profile, capability-model) compilations share
/// a cache slot: same source bytes, same pointer size, same optimisation
/// fingerprint. Everything else about a profile (layout, UB mode,
/// revocation, …) is a *runtime* axis and deliberately not part of the
/// key — that is what makes the cached program reusable across the whole
/// differential profile set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CompileKey {
    /// FNV-1a hash of the source text.
    pub src_hash: u64,
    /// Stored-pointer size in bytes under this profile and capability
    /// model (the front end sizes pointer types with it).
    pub ptr_size: u64,
    /// Packed [`OptFlags`] fingerprint.
    pub opt: u64,
}

impl CompileKey {
    /// The key `compile_for::<C>(src, profile)` compiles under.
    #[must_use]
    pub fn for_profile<C: Capability>(src: &str, profile: &Profile) -> Self {
        let ptr_size = if profile.mem.capabilities {
            C::CAP_BYTES as u64
        } else {
            u64::from(C::ADDR_BITS / 8)
        };
        CompileKey {
            src_hash: fnv1a64(src.as_bytes()),
            ptr_size,
            opt: opt_fingerprint(&profile.opt),
        }
    }
}

/// Everything the front end produces for one [`CompileKey`]: the typed
/// AST (consumed by the interpreter's world setup, the tree engine and
/// the lint executor) and the peephole-optimised bytecode the VM runs.
/// Shared immutably; execution never mutates a compiled program.
#[derive(Debug)]
pub struct CachedProgram {
    /// The typed, profile-optimised AST.
    pub tast: TProgram,
    /// The lowered + peephole-optimised IR (`cheri_core::ir::lower_for`,
    /// register-promoted first when the profile carries the fast bit),
    /// pre-wrapped in an [`Arc`] for `Interp::with_ir`.
    pub ir: Arc<IrProgram>,
}

/// Front-end errors are cached too: a batch with 7 profiles over a
/// syntactically broken program should diagnose it once, not 7 times.
type CacheEntry = Result<Arc<CachedProgram>, String>;

/// The shared program cache. Cheap to share (`Arc<ProgramCache>`); one
/// instance typically lives as long as the service.
#[derive(Default)]
pub struct ProgramCache {
    map: Mutex<HashMap<CompileKey, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Look up `(src, profile)` under capability model `C`, compiling and
    /// inserting on miss. Compilation runs *outside* the map lock.
    ///
    /// # Errors
    ///
    /// Returns the front end's human-readable message on parse or type
    /// errors (cached like successes).
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned (a worker panicked while
    /// inserting — unreachable in normal operation).
    pub fn get_or_compile<C: Capability>(
        &self,
        src: &str,
        profile: &Profile,
    ) -> Result<Arc<CachedProgram>, String> {
        let key = CompileKey::for_profile::<C>(src, profile);
        if let Some(entry) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled: CacheEntry = cheri_core::compile_for::<C>(src, profile).map(|tast| {
            let ir = Arc::new(cheri_core::ir::lower_for(&tast, &profile.opt));
            Arc::new(CachedProgram { tast, ir })
        });
        // First insert wins; a racing compile of the same key discards its
        // result and adopts the winner, so all holders share one Arc.
        self.map
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(compiled)
            .clone()
    }

    /// Number of distinct compiled entries currently cached.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Is the cache empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far. Counters are advisory (racy under concurrent
    /// misses of the same key) — use them for reporting, not gating.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far (advisory, see [`ProgramCache::hits`]).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
