//! The long-lived engine: a `std::thread` worker pool executing
//! [`JobSpec`]s against the shared [`ProgramCache`], with per-worker
//! arena-reset memory and deterministic, submission-ordered collection.
//!
//! Data flow:
//!
//! ```text
//!  submit ──► job queue (mpsc, shared by workers) ──► worker 0..N-1
//!                                                      │ compile? → cache
//!                                                      │ run: arena-reset CheriMemory
//!                                                      ▼
//!  next_output ◄── reorder buffer ◄── result channel (idx, JobOutput)
//! ```
//!
//! Workers pull from one queue (work stealing by contention: an idle
//! worker takes the next job, so a long job never blocks the queue behind
//! it), and each keeps a single [`CheriMemory`] arena that is *reset* —
//! not reallocated — between runs. Results carry their submission index;
//! the collector re-orders them in a `BTreeMap` buffer, so consumers see
//! exactly the order jobs were submitted in, whatever the worker count or
//! scheduling. Per-job outputs are pure functions of their spec, which
//! makes whole-batch output byte-identical across worker counts — the
//! determinism gate of `tests/batch_determinism.rs`.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

use cheri_cap::Capability;
use cheri_core::{Engine, Interp, Outcome, RunResult};
use cheri_lint::{class_of_trap, class_of_ub, lint_program_with, LintMode, LintReport, Verdict};
use cheri_mem::{CheriMemory, MemEvent};
use cheri_obs::DiffMode;

use crate::cache::ProgramCache;
use crate::job::{stats_line, JobOutput, JobSpec, Mode, ProfileOutcome};

/// Outcome rendering that keeps the detail of internal errors (the plain
/// label collapses every `Error` to `"error"`).
fn outcome_string(o: &Outcome) -> String {
    match o {
        Outcome::Error(m) => format!("error: {m}"),
        other => other.label(),
    }
}

fn is_step_limit(label: &str) -> bool {
    label.contains("step limit exceeded")
}

/// The engine-equivalence predicate of `tests/engine_differential.rs`,
/// condensed to a one-line summary for the `engine-diff` job mode.
/// `None` means the engines agree.
fn engine_disagreement(
    tr: &RunResult,
    tree_events: &[MemEvent],
    br: &RunResult,
    byte_events: &[MemEvent],
) -> Option<String> {
    let (tl, bl) = (tr.outcome.label(), br.outcome.label());
    if is_step_limit(&tl) && is_step_limit(&bl) {
        // Step budgets are counted per-node vs per-instruction; both
        // hitting the limit is agreement.
        return None;
    }
    if tl != bl {
        return Some(format!("outcome tree={tl} bytecode={bl}"));
    }
    if tr.stdout != br.stdout || tr.stderr != br.stderr {
        return Some("output differs between engines".to_string());
    }
    if tr.mem_stats != br.mem_stats {
        return Some("memory statistics differ between engines".to_string());
    }
    if cheri_obs::diff(tree_events, byte_events, DiffMode::Normalized, 1).is_some()
        || tree_events != byte_events
    {
        let at = tree_events
            .iter()
            .zip(byte_events)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| tree_events.len().min(byte_events.len()));
        return Some(format!(
            "event stream differs at #{at} (tree {} vs bytecode {} events)",
            tree_events.len(),
            byte_events.len(),
        ));
    }
    None
}

/// The lint-soundness predicate of `tests/lint_soundness.rs`, condensed
/// to a one-line summary for the `lint-check` job mode. `None` means the
/// gate holds.
fn lint_violation(report: &LintReport, outcome: &Outcome) -> Option<String> {
    let dynamic_class = match outcome {
        Outcome::Ub { ub, .. } => Some(class_of_ub(*ub)),
        Outcome::Trap { kind, .. } => Some(class_of_trap(*kind)),
        _ => None,
    };
    match report.overall() {
        Verdict::MustUb => {
            let predicted = report.must_class().expect("MustUb without class");
            if dynamic_class != Some(predicted) {
                return Some(format!(
                    "MustUb({predicted}) but dynamic outcome is {}",
                    outcome.label()
                ));
            }
        }
        Verdict::Clean => {
            if outcome.is_safety_stop() {
                return Some(format!(
                    "Clean but dynamic outcome is a safety stop: {}",
                    outcome.label()
                ));
            }
        }
        Verdict::MayUb => {}
    }
    if let (LintMode::Definite, Some(pred)) = (&report.mode, &report.predicted) {
        if *pred != outcome.label() {
            return Some(format!(
                "definite analysis predicted {pred} but dynamic outcome is {}",
                outcome.label()
            ));
        }
    }
    None
}

/// Execute one job against `cache`, reusing (and updating) the worker's
/// memory `arena`. Pure with respect to the spec: identical specs produce
/// identical outputs whichever worker runs them, whatever state the arena
/// carries.
pub fn execute_job<C: Capability>(
    cache: &ProgramCache,
    spec: &JobSpec,
    arena: &mut Option<CheriMemory<C>>,
) -> JobOutput {
    let start = Instant::now();
    let mut profiles = Vec::with_capacity(spec.profiles.len());
    let mut traced: Vec<(String, Vec<MemEvent>)> = Vec::new();
    for p in &spec.profiles {
        let unit = match cache.get_or_compile::<C>(&spec.source, p) {
            Ok(unit) => unit,
            Err(e) => {
                profiles.push(ProfileOutcome {
                    profile: p.name.clone(),
                    outcome: format!("error: {e}"),
                    stdout: String::new(),
                    stderr: String::new(),
                    stats: String::new(),
                    lint: None,
                    events: None,
                });
                continue;
            }
        };
        match spec.mode {
            Mode::Run => {
                let mut interp =
                    Interp::<C>::new(&unit.tast, p).with_ir(Arc::clone(&unit.ir));
                if let Some(mem) = arena.take() {
                    interp = interp.with_recycled_memory(mem);
                }
                let (r, mem) = interp.run_recycling();
                *arena = Some(mem);
                profiles.push(ProfileOutcome {
                    profile: p.name.clone(),
                    outcome: outcome_string(&r.outcome),
                    stats: stats_line(&r.mem_stats, r.unspecified_reads),
                    stdout: r.stdout,
                    stderr: r.stderr,
                    lint: None,
                    events: None,
                });
            }
            Mode::TraceDiff => {
                let mut interp =
                    Interp::<C>::new(&unit.tast, p).with_ir(Arc::clone(&unit.ir));
                if let Some(mem) = arena.take() {
                    interp = interp.with_recycled_memory(mem);
                }
                let (r, events, mem) = interp.run_with_events_recycling();
                *arena = Some(mem);
                profiles.push(ProfileOutcome {
                    profile: p.name.clone(),
                    outcome: outcome_string(&r.outcome),
                    stats: stats_line(&r.mem_stats, r.unspecified_reads),
                    stdout: r.stdout,
                    stderr: r.stderr,
                    lint: None,
                    events: Some(events.len()),
                });
                traced.push((p.name.clone(), events));
            }
            Mode::Lint => {
                let report = lint_program_with::<C>(&unit.tast, p);
                profiles.push(ProfileOutcome {
                    profile: p.name.clone(),
                    outcome: report.overall().label().to_string(),
                    stdout: String::new(),
                    stderr: String::new(),
                    stats: String::new(),
                    lint: Some(report.render_text()),
                    events: None,
                });
            }
            Mode::EngineDiff => {
                let mut tree = Interp::<C>::new(&unit.tast, p).with_engine(Engine::Tree);
                if let Some(mem) = arena.take() {
                    tree = tree.with_recycled_memory(mem);
                }
                let (tr, tree_events, mem) = tree.run_with_events_recycling();
                let byte = Interp::<C>::new(&unit.tast, p)
                    .with_ir(Arc::clone(&unit.ir))
                    .with_recycled_memory(mem);
                let (br, byte_events, mem) = byte.run_with_events_recycling();
                *arena = Some(mem);
                let outcome = match engine_disagreement(&tr, &tree_events, &br, &byte_events)
                {
                    Some(d) => format!("engine-divergence: {d}"),
                    None => outcome_string(&br.outcome),
                };
                profiles.push(ProfileOutcome {
                    profile: p.name.clone(),
                    outcome,
                    stats: stats_line(&br.mem_stats, br.unspecified_reads),
                    stdout: br.stdout,
                    stderr: br.stderr,
                    lint: None,
                    events: Some(byte_events.len()),
                });
            }
            Mode::LintCheck => {
                let mut interp =
                    Interp::<C>::new(&unit.tast, p).with_ir(Arc::clone(&unit.ir));
                if let Some(mem) = arena.take() {
                    interp = interp.with_recycled_memory(mem);
                }
                let (r, mem) = interp.run_recycling();
                *arena = Some(mem);
                let report = lint_program_with::<C>(&unit.tast, p);
                let outcome = match lint_violation(&report, &r.outcome) {
                    Some(m) => format!("lint-unsound: {m}"),
                    None => outcome_string(&r.outcome),
                };
                profiles.push(ProfileOutcome {
                    profile: p.name.clone(),
                    outcome,
                    stats: stats_line(&r.mem_stats, r.unspecified_reads),
                    stdout: r.stdout,
                    stderr: r.stderr,
                    lint: Some(report.render_text()),
                    events: None,
                });
            }
        }
    }
    let trace_diff = (spec.mode == Mode::TraceDiff)
        .then(|| cheri_obs::render_profile_diffs(&traced));
    JobOutput {
        id: spec.id.clone(),
        mode: spec.mode,
        profiles,
        trace_diff,
        exec_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

/// The worker loop: claim the next job, execute it, send the indexed
/// result. Ends when the job queue closes (service drop) or the result
/// channel closes (collector dropped early).
fn worker_loop<C: Capability>(
    cache: &ProgramCache,
    jobs: &Mutex<mpsc::Receiver<(u64, JobSpec)>>,
    results: &mpsc::Sender<(u64, JobOutput)>,
) {
    let mut arena: Option<CheriMemory<C>> = None;
    loop {
        // Hold the queue lock only for the blocking receive, not the job.
        let claimed = jobs.lock().unwrap().recv();
        let Ok((idx, spec)) = claimed else { break };
        let out = execute_job::<C>(cache, &spec, &mut arena);
        if results.send((idx, out)).is_err() {
            break;
        }
    }
}

/// The long-lived batched execution service: submit [`JobSpec`]s, receive
/// [`JobOutput`]s in submission order.
///
/// ```
/// use std::sync::Arc;
/// use cheri_core::{MorelloCap, Profile};
/// use cheri_serve::{JobSpec, Mode, Service};
///
/// let mut svc = Service::<MorelloCap>::new(2);
/// let job = JobSpec {
///     id: "demo".into(),
///     source: Arc::new("int main(void) { return 7; }".into()),
///     profiles: vec![Profile::cerberus()],
///     mode: Mode::Run,
/// };
/// let outputs = svc.run_batch(vec![job]);
/// assert_eq!(outputs[0].profiles[0].outcome, "exit(7)");
/// ```
pub struct Service<C: Capability + Send + 'static> {
    /// `Some` while the service accepts jobs; dropped on shutdown so the
    /// queue closes and workers exit.
    job_tx: Option<mpsc::Sender<(u64, JobSpec)>>,
    res_rx: mpsc::Receiver<(u64, JobOutput)>,
    workers: Vec<thread::JoinHandle<()>>,
    cache: Arc<ProgramCache>,
    submitted: u64,
    emitted: u64,
    reorder: BTreeMap<u64, JobOutput>,
    _cap: PhantomData<C>,
}

impl<C: Capability + Send + 'static> Service<C> {
    /// Start a service with `workers` threads (clamped to ≥ 1) and a
    /// fresh program cache.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Service::with_cache(workers, Arc::new(ProgramCache::new()))
    }

    /// Start a service over an existing (possibly pre-warmed) cache.
    #[must_use]
    pub fn with_cache(workers: usize, cache: Arc<ProgramCache>) -> Self {
        let workers = workers.max(1);
        let (job_tx, job_rx) = mpsc::channel::<(u64, JobSpec)>();
        let (res_tx, res_rx) = mpsc::channel::<(u64, JobOutput)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let job_rx = Arc::clone(&job_rx);
                let res_tx = res_tx.clone();
                thread::spawn(move || worker_loop::<C>(&cache, &job_rx, &res_tx))
            })
            .collect();
        Service {
            job_tx: Some(job_tx),
            res_rx,
            workers: handles,
            cache,
            submitted: 0,
            emitted: 0,
            reorder: BTreeMap::new(),
            _cap: PhantomData,
        }
    }

    /// The shared program cache (e.g. for hit/miss reporting).
    #[must_use]
    pub fn cache(&self) -> &Arc<ProgramCache> {
        &self.cache
    }

    /// Number of submitted jobs whose outputs have not been emitted yet.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.submitted - self.emitted
    }

    /// Submit a job; returns its submission index. Never blocks.
    ///
    /// # Panics
    ///
    /// Panics if the worker pool has died (a worker panicked).
    pub fn submit(&mut self, spec: JobSpec) -> u64 {
        let idx = self.submitted;
        self.job_tx
            .as_ref()
            .expect("service accepts jobs until dropped")
            .send((idx, spec))
            .expect("worker pool alive");
        self.submitted += 1;
        idx
    }

    /// Block until the next output *in submission order* is available;
    /// `None` when every submitted job has been emitted.
    ///
    /// # Panics
    ///
    /// Panics if the worker pool died with results still pending.
    pub fn next_output(&mut self) -> Option<JobOutput> {
        if self.emitted == self.submitted {
            return None;
        }
        while !self.reorder.contains_key(&self.emitted) {
            let (idx, out) = self
                .res_rx
                .recv()
                .expect("worker pool alive while jobs pending");
            self.reorder.insert(idx, out);
        }
        let out = self.reorder.remove(&self.emitted);
        self.emitted += 1;
        out
    }

    /// Non-blocking variant of [`Service::next_output`]: drain whatever
    /// results have arrived and return the next in-order output if it is
    /// among them. `None` means "not ready yet" (or nothing pending).
    pub fn try_next_output(&mut self) -> Option<JobOutput> {
        if self.emitted == self.submitted {
            return None;
        }
        while let Ok((idx, out)) = self.res_rx.try_recv() {
            self.reorder.insert(idx, out);
        }
        let out = self.reorder.remove(&self.emitted)?;
        self.emitted += 1;
        Some(out)
    }

    /// Submit a whole batch and collect every output, in order.
    pub fn run_batch(&mut self, jobs: Vec<JobSpec>) -> Vec<JobOutput> {
        let mut expect = 0usize;
        for job in jobs {
            self.submit(job);
            expect += 1;
        }
        let mut out = Vec::with_capacity(expect);
        while let Some(o) = self.next_output() {
            out.push(o);
        }
        out
    }
}

impl<C: Capability + Send + 'static> Drop for Service<C> {
    fn drop(&mut self) {
        // Close the queue; workers drain remaining jobs and exit.
        drop(self.job_tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One-shot convenience: run `jobs` over a fresh `workers`-thread service
/// and return the ordered outputs.
#[must_use]
pub fn run_batch<C: Capability + Send + 'static>(
    jobs: Vec<JobSpec>,
    workers: usize,
) -> Vec<JobOutput> {
    Service::<C>::new(workers).run_batch(jobs)
}
