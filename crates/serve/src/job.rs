//! Job and result types, plus the line-based batch manifest format.
//!
//! A manifest is plain text, one job per line (blank lines and `#`
//! comments ignored):
//!
//! ```text
//! <mode> <profiles> <file.c>
//! ```
//!
//! * `<mode>` — `run`, `lint`, `trace-diff`, `engine-diff` (run both
//!   engines and flag any divergence), or `lint-check` (run the dynamic
//!   semantics and flag any lint-soundness violation);
//! * `<profiles>` — `all` (the compared set plus the ISO baseline, like
//!   the CLI's `--all`), `compared` (the 7-profile differential set), or
//!   a comma-separated list of profile names; any spec or name may carry
//!   an `@fast` suffix selecting the register-promoting fast mode (a
//!   distinct compile-cache key);
//! * `<file.c>` — the program, resolved relative to the manifest (or to
//!   the working directory for jobs streamed over `--serve` stdin).
//!
//! Example:
//!
//! ```text
//! # cross-profile differential over the §3.1 example
//! trace-diff compared examples/one_past.c
//! run cerberus,cheriot examples/intro.c
//! lint all examples/intro.c
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use cheri_core::Profile;
use cheri_mem::MemStats;

/// What a job does with its program × profile-set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Execute under each profile (default engine, no tracing).
    Run,
    /// Statically analyze under each profile (`cheri-lint`).
    Lint,
    /// Execute under each profile with event tracing and report the first
    /// divergence of every profile's stream against the first profile's,
    /// in normalized coordinates.
    TraceDiff,
    /// Execute under each profile on *both* engines (tree and bytecode)
    /// and compare outcome, output, memory statistics and event streams;
    /// any mismatch becomes an `engine-divergence: …` outcome (an error,
    /// so a sharded CI sweep fails the batch).
    EngineDiff,
    /// Execute under each profile and check the static analyzer's verdict
    /// against the dynamic outcome (the lint soundness gate); any
    /// violation becomes a `lint-unsound: …` outcome.
    LintCheck,
}

impl Mode {
    /// Stable lower-case label (also the manifest keyword).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mode::Run => "run",
            Mode::Lint => "lint",
            Mode::TraceDiff => "trace-diff",
            Mode::EngineDiff => "engine-diff",
            Mode::LintCheck => "lint-check",
        }
    }

    /// Parse a manifest keyword.
    #[must_use]
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "run" => Some(Mode::Run),
            "lint" => Some(Mode::Lint),
            "trace-diff" | "tracediff" => Some(Mode::TraceDiff),
            "engine-diff" | "enginediff" => Some(Mode::EngineDiff),
            "lint-check" | "lintcheck" => Some(Mode::LintCheck),
            _ => None,
        }
    }
}

/// One unit of service work: a program, the profiles to run it under, and
/// a mode. Sources are `Arc`-shared so a corpus-sized batch over one
/// program set does not copy text per job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Caller-chosen identifier, echoed in the output (manifest jobs use
    /// `<line>:<file>`).
    pub id: String,
    /// The C source text.
    pub source: Arc<String>,
    /// Profiles to execute/analyze under, in output order.
    pub profiles: Vec<Profile>,
    /// What to do.
    pub mode: Mode,
}

/// The per-profile slice of a job's result. All fields are deterministic
/// functions of (source, profile, mode) — the batch determinism gate
/// compares them byte-for-byte across worker counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileOutcome {
    /// Profile name.
    pub profile: String,
    /// Outcome label (`exit(0)`, `UB:…`, `trap:…`, `error: …`). For lint
    /// jobs, the overall verdict label.
    pub outcome: String,
    /// Captured stdout (empty for lint).
    pub stdout: String,
    /// Captured stderr (empty for lint).
    pub stderr: String,
    /// Deterministic one-line memory-statistics summary (run/trace-diff).
    pub stats: String,
    /// Rendered lint report (lint mode only).
    pub lint: Option<String>,
    /// Event count of the traced run (trace-diff mode only).
    pub events: Option<usize>,
}

/// A completed job. [`JobOutput::render`] is the deterministic text the
/// CLI prints; `exec_ns` is wall-clock and deliberately *not* rendered.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The job's identifier.
    pub id: String,
    /// The job's mode.
    pub mode: Mode,
    /// Per-profile results, in the order of [`JobSpec::profiles`].
    pub profiles: Vec<ProfileOutcome>,
    /// Trace-diff report (trace-diff mode only).
    pub trace_diff: Option<String>,
    /// Wall-clock execution time of this job on its worker, in
    /// nanoseconds. Scheduling-dependent: excluded from [`render`] and
    /// from every determinism comparison. (`bench_pr9` reads it for the
    /// p50/p99 latency columns.)
    ///
    /// [`render`]: JobOutput::render
    pub exec_ns: u64,
}

/// The compact deterministic statistics line of a [`ProfileOutcome`].
#[must_use]
pub fn stats_line(s: &MemStats, unspecified_reads: u32) -> String {
    format!(
        "loads={} stores={} allocations={} frees={} memcpy_bytes={} tag_clears={} revoked_caps={} unspecified_reads={}",
        s.loads,
        s.stores,
        s.allocations,
        s.frees,
        s.memcpy_bytes,
        s.tag_clears,
        s.revoked_caps,
        unspecified_reads,
    )
}

impl JobOutput {
    /// Did any profile end in a front-end or internal error — or fail one
    /// of the checking modes' gates (`engine-diff`, `lint-check`)? Gate
    /// failures are errors so a sharded CI sweep fails the whole batch.
    #[must_use]
    pub fn has_error(&self) -> bool {
        self.profiles.iter().any(|p| {
            p.outcome.starts_with("error")
                || p.outcome.starts_with("engine-divergence")
                || p.outcome.starts_with("lint-unsound")
        })
    }

    /// The deterministic rendering the batch/serve front ends print: a
    /// job header, then one block per profile, then (trace-diff mode) the
    /// cross-profile divergence report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== job {} [{}] ===", self.id, self.mode.label());
        for p in &self.profiles {
            let _ = writeln!(out, "── {} ──", p.profile);
            out.push_str(&p.stdout);
            if !p.stdout.is_empty() && !p.stdout.ends_with('\n') {
                out.push('\n');
            }
            out.push_str(&p.stderr);
            if !p.stderr.is_empty() && !p.stderr.ends_with('\n') {
                out.push('\n');
            }
            if let Some(lint) = &p.lint {
                out.push_str(lint);
            }
            let _ = writeln!(out, "→ {}", p.outcome);
            if !p.stats.is_empty() {
                let _ = writeln!(out, "  {}", p.stats);
            }
            if let Some(n) = p.events {
                let _ = writeln!(out, "  events={n}");
            }
        }
        if let Some(diff) = &self.trace_diff {
            out.push_str(diff);
        }
        out
    }
}

/// The profile names the manifest (and the CLI) resolves.
pub const PROFILE_NAMES: &[&str] = &[
    "cerberus",
    "iso-baseline",
    "cheriot",
    "clang-morello-O0",
    "clang-morello-O3",
    "clang-riscv-O0",
    "clang-riscv-O3",
    "gcc-morello-O0",
    "gcc-morello-O3",
    "clang-morello-O0-subobject-safe",
];

/// Resolve a profile by its [`PROFILE_NAMES`] name.
#[must_use]
pub fn profile_by_name(name: &str) -> Option<Profile> {
    Some(match name {
        "cerberus" => Profile::cerberus(),
        "iso-baseline" => Profile::iso_baseline(),
        "cheriot" => Profile::cheriot(),
        "clang-morello-O0" => Profile::clang_morello(false),
        "clang-morello-O3" => Profile::clang_morello(true),
        "clang-riscv-O0" => Profile::clang_riscv(false),
        "clang-riscv-O3" => Profile::clang_riscv(true),
        "gcc-morello-O0" => Profile::gcc_morello(false),
        "gcc-morello-O3" => Profile::gcc_morello(true),
        "clang-morello-O0-subobject-safe" => Profile::clang_morello_subobject_safe(),
        _ => return None,
    })
}

/// Switch a profile into the register-promoting fast mode. The name gains
/// an `@fast` suffix so outputs (and humans) can tell the two apart; the
/// opt-flag bit makes it a distinct compile-cache key.
#[must_use]
pub fn fast_variant(mut p: Profile) -> Profile {
    p.opt = p.opt.fast();
    p.name.push_str("@fast");
    p
}

/// Resolve a manifest profile spec: `all`, `compared`, or a
/// comma-separated name list. The spec — or any individual name — may
/// carry an `@fast` suffix selecting the fast mode (see [`fast_variant`]).
///
/// # Errors
///
/// Returns a message naming the first unknown profile.
pub fn profiles_from_spec(spec: &str) -> Result<Vec<Profile>, String> {
    let (spec, all_fast) = match spec.strip_suffix("@fast") {
        Some(base) if base == "all" || base == "compared" => (base, true),
        _ => (spec, false),
    };
    let mut v = match spec {
        "all" => {
            let mut v = Profile::all_compared();
            v.push(Profile::iso_baseline());
            v
        }
        "compared" => Profile::all_compared(),
        list => list
            .split(',')
            .map(|name| {
                let (base, fast) = match name.strip_suffix("@fast") {
                    Some(base) => (base, true),
                    None => (name, false),
                };
                profile_by_name(base)
                    .map(|p| if fast { fast_variant(p) } else { p })
                    .ok_or_else(|| format!("unknown profile {name} (see --list-profiles)"))
            })
            .collect::<Result<Vec<Profile>, String>>()?,
    };
    if all_fast {
        v = v.into_iter().map(fast_variant).collect();
    }
    Ok(v)
}

/// Parse one manifest/stdin line into a job, reading the named file
/// relative to `base_dir` (`None` = as given). Returns `Ok(None)` for
/// blank lines and comments.
///
/// # Errors
///
/// Returns a message on malformed lines, unknown modes/profiles, and
/// unreadable files.
pub fn parse_job_line(
    line: &str,
    id: &str,
    base_dir: Option<&std::path::Path>,
) -> Result<Option<JobSpec>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.splitn(3, char::is_whitespace);
    let (Some(mode), Some(profiles), Some(file)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(format!(
            "malformed job line {line:?} \
             (expected: <run|lint|trace-diff|engine-diff|lint-check> <profiles> <file.c>)"
        ));
    };
    let mode = Mode::parse(mode).ok_or_else(|| {
        format!("unknown mode {mode} (expected run, lint, trace-diff, engine-diff or lint-check)")
    })?;
    let profiles = profiles_from_spec(profiles)?;
    let file = file.trim();
    let path = match base_dir {
        Some(dir) => dir.join(file),
        None => std::path::PathBuf::from(file),
    };
    let source = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(Some(JobSpec {
        id: format!("{id}:{file}"),
        source: Arc::new(source),
        profiles,
        mode,
    }))
}

/// Load a batch manifest: one job per line, files resolved relative to
/// the manifest's directory. Job ids are `<line-number>:<file>`.
///
/// # Errors
///
/// Returns a message on an unreadable manifest or any malformed line.
pub fn load_manifest(path: &str) -> Result<Vec<JobSpec>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let base = std::path::Path::new(path).parent().map(std::path::Path::to_path_buf);
    let mut jobs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let id = (i + 1).to_string();
        if let Some(job) = parse_job_line(line, &id, base.as_deref())
            .map_err(|e| format!("{path}:{}: {e}", i + 1))?
        {
            jobs.push(job);
        }
    }
    Ok(jobs)
}
