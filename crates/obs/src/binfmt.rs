//! The `CHOB` compact binary trace format.
//!
//! Layout: a 5-byte header (`b"CHOB"` magic + one version byte), then a
//! sequence of events until end of stream — there is deliberately *no*
//! event-count field, so a streaming writer never needs to seek back and a
//! truncated trace (a run that stopped mid-way) is still readable up to the
//! truncation point.
//!
//! Each event is one tag byte ([`EventKind::code`]) followed by its fields:
//! `u64`s as LEB128 varints, `i64`s zigzag-then-varint, `bool`s as one byte
//! (0/1), enums as their stable one-byte codes, and names as a varint byte
//! length followed by UTF-8 bytes. The format is self-describing in the
//! sense that version 1 readers reject anything they cannot decode loudly
//! rather than misparse it.

use std::io::{self, Read, Write};

use crate::event::{AllocClass, EventKind, MemEvent, Name, TagClearReason};
use crate::kinds::{TrapKind, Ub};

/// File magic: the first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"CHOB";

/// Current format version (one byte after the magic).
pub const VERSION: u8 = 1;

// ── varint primitives ────────────────────────────────────────────────────

/// Append `v` as an LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `v` zigzag-encoded as an LEB128 varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Decode an LEB128 varint from the reader.
///
/// # Errors
/// `UnexpectedEof` on a truncated varint; `InvalidData` on one longer than
/// 10 bytes (not representable in a `u64`).
pub fn read_uvarint(r: &mut impl Read) -> io::Result<u64> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = read_u8(r)?;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            if shift == 63 && byte > 1 {
                return Err(bad("varint overflows u64"));
            }
            return Ok(v);
        }
    }
    Err(bad("varint longer than 10 bytes"))
}

/// Decode a zigzag varint.
///
/// # Errors
/// As [`read_uvarint`].
pub fn read_ivarint(r: &mut impl Read) -> io::Result<i64> {
    let z = read_uvarint(r)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("CHOB: {msg}"))
}

// ── event encode / decode ────────────────────────────────────────────────

/// Append one encoded event (tag byte + fields) to `out`.
pub fn encode_event(ev: &MemEvent, out: &mut Vec<u8>) {
    out.push(ev.kind().code());
    match ev {
        MemEvent::Alloc {
            id,
            base,
            size,
            kind,
            name,
        } => {
            put_uvarint(out, *id);
            put_uvarint(out, *base);
            put_uvarint(out, *size);
            out.push(kind.code());
            let s = name.as_str();
            put_uvarint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        MemEvent::Free {
            id,
            base,
            end,
            dynamic,
        } => {
            put_uvarint(out, *id);
            put_uvarint(out, *base);
            put_uvarint(out, *end);
            out.push(u8::from(*dynamic));
        }
        MemEvent::Load { addr, size, intptr } => {
            put_uvarint(out, *addr);
            put_uvarint(out, *size);
            out.push(u8::from(*intptr));
        }
        MemEvent::Store { addr, size } => {
            put_uvarint(out, *addr);
            put_uvarint(out, *size);
        }
        MemEvent::Memcpy { dst, src, n } => {
            put_uvarint(out, *dst);
            put_uvarint(out, *src);
            put_uvarint(out, *n);
        }
        MemEvent::CapDerive {
            from,
            to,
            tag_cleared,
        } => {
            put_uvarint(out, *from);
            put_uvarint(out, *to);
            out.push(u8::from(*tag_cleared));
        }
        MemEvent::CapTagClear {
            addr,
            count,
            reason,
        } => {
            put_uvarint(out, *addr);
            put_uvarint(out, *count);
            out.push(reason.code());
        }
        MemEvent::RepCheck {
            size,
            reserved,
            padded,
        } => {
            put_uvarint(out, *size);
            put_uvarint(out, *reserved);
            out.push(u8::from(*padded));
        }
        MemEvent::Revoke { base, end, cleared } => {
            put_uvarint(out, *base);
            put_uvarint(out, *end);
            put_uvarint(out, *cleared);
        }
        MemEvent::Ub(ub) => out.push(ub.code()),
        MemEvent::Trap(t) => out.push(t.code()),
        MemEvent::Exit(status) => put_ivarint(out, *status),
    }
}

fn read_bool(r: &mut impl Read) -> io::Result<bool> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(bad(&format!("bad bool byte {b:#x}"))),
    }
}

fn read_name(r: &mut impl Read) -> io::Result<Name> {
    let len = read_uvarint(r)?;
    if len > 1 << 20 {
        return Err(bad("name longer than 1 MiB"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    let s = String::from_utf8(buf).map_err(|_| bad("name is not UTF-8"))?;
    Ok(Name::new(&s))
}

/// Decode one event from the reader; `Ok(None)` at a clean end of stream.
///
/// # Errors
/// `InvalidData` on unknown tag/enum codes or malformed fields;
/// `UnexpectedEof` on truncation inside an event.
pub fn decode_event(r: &mut impl Read) -> io::Result<Option<MemEvent>> {
    let mut tag = [0u8; 1];
    match r.read(&mut tag)? {
        0 => return Ok(None),
        1 => {}
        _ => unreachable!("read of 1-byte buffer"),
    }
    let kind = EventKind::from_code(tag[0])
        .ok_or_else(|| bad(&format!("unknown event tag {:#x}", tag[0])))?;
    let ev = match kind {
        EventKind::Alloc => {
            let id = read_uvarint(r)?;
            let base = read_uvarint(r)?;
            let size = read_uvarint(r)?;
            let kc = read_u8(r)?;
            let kind = AllocClass::from_code(kc)
                .ok_or_else(|| bad(&format!("unknown alloc class {kc:#x}")))?;
            let name = read_name(r)?;
            MemEvent::Alloc {
                id,
                base,
                size,
                kind,
                name,
            }
        }
        EventKind::Free => MemEvent::Free {
            id: read_uvarint(r)?,
            base: read_uvarint(r)?,
            end: read_uvarint(r)?,
            dynamic: read_bool(r)?,
        },
        EventKind::Load => MemEvent::Load {
            addr: read_uvarint(r)?,
            size: read_uvarint(r)?,
            intptr: read_bool(r)?,
        },
        EventKind::Store => MemEvent::Store {
            addr: read_uvarint(r)?,
            size: read_uvarint(r)?,
        },
        EventKind::Memcpy => MemEvent::Memcpy {
            dst: read_uvarint(r)?,
            src: read_uvarint(r)?,
            n: read_uvarint(r)?,
        },
        EventKind::CapDerive => MemEvent::CapDerive {
            from: read_uvarint(r)?,
            to: read_uvarint(r)?,
            tag_cleared: read_bool(r)?,
        },
        EventKind::CapTagClear => {
            let addr = read_uvarint(r)?;
            let count = read_uvarint(r)?;
            let rc = read_u8(r)?;
            let reason = TagClearReason::from_code(rc)
                .ok_or_else(|| bad(&format!("unknown tag-clear reason {rc:#x}")))?;
            MemEvent::CapTagClear {
                addr,
                count,
                reason,
            }
        }
        EventKind::RepCheck => MemEvent::RepCheck {
            size: read_uvarint(r)?,
            reserved: read_uvarint(r)?,
            padded: read_bool(r)?,
        },
        EventKind::Revoke => MemEvent::Revoke {
            base: read_uvarint(r)?,
            end: read_uvarint(r)?,
            cleared: read_uvarint(r)?,
        },
        EventKind::Ub => {
            let c = read_u8(r)?;
            MemEvent::Ub(Ub::from_code(c).ok_or_else(|| bad(&format!("unknown UB code {c:#x}")))?)
        }
        EventKind::Trap => {
            let c = read_u8(r)?;
            MemEvent::Trap(
                TrapKind::from_code(c).ok_or_else(|| bad(&format!("unknown trap code {c:#x}")))?,
            )
        }
        EventKind::Exit => MemEvent::Exit(read_ivarint(r)?),
    };
    Ok(Some(ev))
}

// ── whole-trace helpers ──────────────────────────────────────────────────

/// Incremental trace writer: header on construction, one event at a time.
pub struct TraceWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Wrap `w` and write the `CHOB` header.
    ///
    /// # Errors
    /// Propagates header-write failures.
    pub fn new(mut w: W) -> io::Result<TraceWriter<W>> {
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION])?;
        Ok(TraceWriter {
            w,
            buf: Vec::with_capacity(64),
        })
    }

    /// Encode and write one event.
    ///
    /// # Errors
    /// Propagates writer failures.
    pub fn write_event(&mut self, ev: &MemEvent) -> io::Result<()> {
        self.buf.clear();
        encode_event(ev, &mut self.buf);
        self.w.write_all(&self.buf)
    }

    /// Flush the underlying writer.
    ///
    /// # Errors
    /// Propagates writer failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Unwrap the inner writer.
    #[must_use]
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Encode a whole event stream to an in-memory buffer (header included).
#[must_use]
pub fn encode_trace(events: &[MemEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + events.len() * 8);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    for ev in events {
        encode_event(ev, &mut out);
    }
    out
}

/// Decode a whole trace (header + events until end of stream).
///
/// # Errors
/// `InvalidData` on a bad magic, unsupported version, or malformed event.
pub fn decode_trace(r: &mut impl Read) -> io::Result<Vec<MemEvent>> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)
        .map_err(|_| bad("truncated header"))?;
    if header[..4] != MAGIC {
        return Err(bad("bad magic (not a CHOB trace)"));
    }
    if header[4] != VERSION {
        return Err(bad(&format!(
            "unsupported version {} (reader supports {VERSION})",
            header[4]
        )));
    }
    let mut out = Vec::new();
    while let Some(ev) = decode_event(r)? {
        out.push(ev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Name;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(read_uvarint(&mut buf.as_slice()).unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -4096] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(read_ivarint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn trace_roundtrip_all_variants() {
        let events = vec![
            MemEvent::Alloc {
                id: 1,
                base: 0x10000,
                size: 64,
                kind: AllocClass::Heap,
                name: Name::new("p"),
            },
            MemEvent::RepCheck {
                size: 64,
                reserved: 64,
                padded: false,
            },
            MemEvent::Load {
                addr: 0x10000,
                size: 8,
                intptr: true,
            },
            MemEvent::Store {
                addr: 0x10008,
                size: 4,
            },
            MemEvent::Memcpy {
                dst: 0x10010,
                src: 0x10000,
                n: 16,
            },
            MemEvent::CapDerive {
                from: 0x10000,
                to: 0x10040,
                tag_cleared: true,
            },
            MemEvent::CapTagClear {
                addr: 0x10000,
                count: 2,
                reason: TagClearReason::NonCapWrite,
            },
            MemEvent::Revoke {
                base: 0x10000,
                end: 0x10040,
                cleared: 1,
            },
            MemEvent::Free {
                id: 1,
                base: 0x10000,
                end: 0x10040,
                dynamic: true,
            },
            MemEvent::Ub(Ub::CheriBoundsViolation),
            MemEvent::Trap(TrapKind::TagViolation),
            MemEvent::Exit(-3),
        ];
        let bytes = encode_trace(&events);
        let back = decode_trace(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode_trace(&mut &b"NOPE\x01"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn future_version_is_rejected() {
        let err = decode_trace(&mut &b"CHOB\x02"[..]).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn truncated_event_is_loud() {
        let mut bytes = encode_trace(&[MemEvent::Store {
            addr: 0x10000,
            size: 4,
        }]);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_trace(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn writer_streams_equivalently() {
        let events = vec![
            MemEvent::Load {
                addr: 1,
                size: 2,
                intptr: false,
            },
            MemEvent::Exit(0),
        ];
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for ev in &events {
            w.write_event(ev).unwrap();
        }
        assert_eq!(w.into_inner(), encode_trace(&events));
    }
}
