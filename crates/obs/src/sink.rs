//! Event sinks: where emitted [`MemEvent`]s go.
//!
//! The memory model holds a [`SinkHandle`] — an `Option<Box<dyn EventSink>>`
//! behind a tiny facade. With no sink installed, emitting is a single branch
//! on that `Option` and the event-constructing closure is never run, so the
//! instrumented build costs nothing measurable (pinned by `bench_pr4`).
//! With a sink installed, construction is zero-allocation for typical events
//! (names inline up to 22 bytes) and the sink decides what to retain:
//! everything ([`VecSink`]), the last *N* ([`RingSink`]), per-kind counters
//! ([`CountingSink`]), or a streamed binary trace ([`StreamSink`]).

use std::any::Any;
use std::io::{self, Write};

use crate::event::{EventKind, MemEvent, TagClearReason, EVENT_KINDS, TAG_CLEAR_REASONS};

/// A consumer of memory events.
///
/// Implementations must not assume they see a complete run: the memory
/// model emits events as they happen and a run can stop at any point (UB,
/// trap, test harness bailout).
pub trait EventSink: Any {
    /// Consume one event. The event is borrowed: sinks that retain events
    /// clone them (cheap — at most one small-string heap clone).
    fn emit(&mut self, ev: &MemEvent);

    /// Flush any buffered output (meaningful for streaming sinks).
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Downcasting support so callers can recover a concrete sink from a
    /// `Box<dyn EventSink>` (e.g. to take the collected events back out).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The memory model's slot for an optional sink.
///
/// `Clone` yields an *empty* handle: a cloned memory state is a fresh
/// hypothetical execution, not a continuation of the observed one, so it
/// starts unobserved. This keeps `Clone` derivable on structs holding a
/// handle even though `Box<dyn EventSink>` itself is not cloneable.
#[derive(Default)]
pub struct SinkHandle(Option<Box<dyn EventSink>>);

impl SinkHandle {
    /// An empty handle (no sink installed; emitting is free).
    #[must_use]
    pub fn none() -> SinkHandle {
        SinkHandle(None)
    }

    /// Install a sink, returning the previous one if any.
    pub fn install(&mut self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        self.0.replace(sink)
    }

    /// Remove and return the installed sink.
    pub fn take(&mut self) -> Option<Box<dyn EventSink>> {
        self.0.take()
    }

    /// Is a sink installed?
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Emit an event, constructing it only if a sink is installed.
    ///
    /// This is *the* hot-path entry point: with no sink it compiles to a
    /// branch on the `Option` discriminant and `f` is never evaluated.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> MemEvent) {
        if let Some(sink) = self.0.as_mut() {
            sink.emit(&f());
        }
    }

    /// Mutable access to the concrete sink, if it is a `T`.
    pub fn downcast_mut<T: EventSink>(&mut self) -> Option<&mut T> {
        self.0.as_mut()?.as_any_mut().downcast_mut::<T>()
    }
}

impl Clone for SinkHandle {
    fn clone(&self) -> SinkHandle {
        SinkHandle(None)
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_active() {
            "SinkHandle(active)"
        } else {
            "SinkHandle(none)"
        })
    }
}

/// Retains every event, in order. The default sink behind `enable_trace`.
#[derive(Default, Debug)]
pub struct VecSink {
    /// The collected events.
    pub events: Vec<MemEvent>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, ev: &MemEvent) {
        self.events.push(ev.clone());
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A fixed-capacity ring buffer keeping the *most recent* events — the
/// flight-recorder sink for long runs where only the tail matters.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<MemEvent>,
    cap: usize,
    head: usize,
    /// Number of events that fell off the front.
    pub dropped: u64,
}

impl RingSink {
    /// A ring holding at most `cap` events (`cap` ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            buf: Vec::with_capacity(cap.max(1)),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<MemEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, ev: &MemEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev.clone());
        } else {
            self.buf[self.head] = ev.clone();
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The metrics registry: per-kind event counts plus the aggregates that
/// `MemStats` does not track, without retaining any events.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Events seen per [`EventKind`], indexed by `EventKind::code()`.
    pub by_kind: [u64; EVENT_KINDS],
    /// Capability-slot tag clears per [`TagClearReason`], indexed by
    /// `TagClearReason::code()`. Counts *slots*, not events.
    pub tag_clears_by_reason: [u64; TAG_CLEAR_REASONS],
    /// Total bytes moved by `memcpy` events.
    pub memcpy_bytes: u64,
    /// Total events seen.
    pub total: u64,
}

impl CountingSink {
    /// A zeroed registry.
    #[must_use]
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Count for one event kind.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.by_kind[kind.code() as usize]
    }

    /// Tag-clear slot count for one reason.
    #[must_use]
    pub fn tag_clears(&self, reason: TagClearReason) -> u64 {
        self.tag_clears_by_reason[reason.code() as usize]
    }
}

impl EventSink for CountingSink {
    fn emit(&mut self, ev: &MemEvent) {
        self.total += 1;
        self.by_kind[ev.kind().code() as usize] += 1;
        match ev {
            MemEvent::CapTagClear { count, reason, .. } => {
                self.tag_clears_by_reason[reason.code() as usize] += count;
            }
            MemEvent::Memcpy { n, .. } => self.memcpy_bytes += n,
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sink that eagerly formats each legacy-visible event into a `String` —
/// this is precisely the allocation behaviour of the pre-`cheri-obs` trace
/// (`Vec<String>` built with `format!` at every emit site). It exists as
/// the baseline the `bench_pr4` events/sec comparison beats.
#[derive(Default, Debug)]
pub struct StringSink {
    /// The rendered legacy trace lines.
    pub lines: Vec<String>,
}

impl StringSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> StringSink {
        StringSink::default()
    }
}

impl EventSink for StringSink {
    fn emit(&mut self, ev: &MemEvent) {
        if let Some(line) = crate::render::legacy_line(ev) {
            self.lines.push(line);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Streams events in the binary trace format to any writer as they happen;
/// nothing is retained in memory beyond the writer's own buffer.
pub struct StreamSink<W: Write + 'static> {
    writer: crate::binfmt::TraceWriter<W>,
    /// First I/O error encountered, if any (emitting cannot fail, so errors
    /// are latched here and surfaced by [`EventSink::flush`]).
    pub error: Option<io::Error>,
}

impl<W: Write + 'static> StreamSink<W> {
    /// Wrap a writer; the format header is written immediately.
    ///
    /// # Errors
    /// Fails if writing the header fails.
    pub fn new(w: W) -> io::Result<StreamSink<W>> {
        Ok(StreamSink {
            writer: crate::binfmt::TraceWriter::new(w)?,
            error: None,
        })
    }

    /// Unwrap the inner writer (flushing first is the caller's business).
    #[must_use]
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

impl<W: Write + 'static> EventSink for StreamSink<W> {
    fn emit(&mut self, ev: &MemEvent) {
        if self.error.is_none() {
            if let Err(e) = self.writer.write_event(ev) {
                self.error = Some(e);
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AllocClass, Name};

    fn ev_load(addr: u64) -> MemEvent {
        MemEvent::Load {
            addr,
            size: 4,
            intptr: false,
        }
    }

    #[test]
    fn handle_emit_is_lazy_when_empty() {
        let mut h = SinkHandle::none();
        assert!(!h.is_active());
        let mut ran = false;
        h.emit_with(|| {
            ran = true;
            ev_load(0)
        });
        assert!(!ran, "closure must not run with no sink installed");
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut h = SinkHandle::none();
        h.install(Box::new(VecSink::new()));
        for a in 0..5 {
            h.emit_with(|| ev_load(a));
        }
        let sink = h.downcast_mut::<VecSink>().expect("is VecSink");
        assert_eq!(sink.events.len(), 5);
        assert_eq!(sink.events[3], ev_load(3));
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut r = RingSink::new(3);
        for a in 0..7 {
            r.emit(&ev_load(a));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped, 4);
        assert_eq!(r.to_vec(), vec![ev_load(4), ev_load(5), ev_load(6)]);
    }

    #[test]
    fn counting_sink_counts_by_kind_and_reason() {
        let mut c = CountingSink::new();
        c.emit(&ev_load(0));
        c.emit(&ev_load(4));
        c.emit(&MemEvent::Memcpy {
            dst: 0,
            src: 16,
            n: 12,
        });
        c.emit(&MemEvent::CapTagClear {
            addr: 0,
            count: 3,
            reason: TagClearReason::Memcpy,
        });
        assert_eq!(c.count(EventKind::Load), 2);
        assert_eq!(c.count(EventKind::Memcpy), 1);
        assert_eq!(c.memcpy_bytes, 12);
        assert_eq!(c.tag_clears(TagClearReason::Memcpy), 3);
        assert_eq!(c.tag_clears(TagClearReason::Revoked), 0);
        assert_eq!(c.total, 4);
    }

    #[test]
    fn string_sink_skips_non_legacy_events() {
        let mut s = StringSink::new();
        s.emit(&MemEvent::Alloc {
            id: 1,
            base: 0x1000,
            size: 4,
            kind: AllocClass::Auto,
            name: Name::new("x"),
        });
        s.emit(&MemEvent::Exit(0));
        assert_eq!(s.lines, vec!["create @1 'x' [0x1000,+4) Auto".to_string()]);
    }

    #[test]
    fn clone_of_handle_is_empty() {
        let mut h = SinkHandle::none();
        h.install(Box::new(VecSink::new()));
        let h2 = h.clone();
        assert!(h.is_active());
        assert!(!h2.is_active());
        assert_eq!(format!("{h:?}"), "SinkHandle(active)");
    }
}
