//! The typed memory-event vocabulary.
//!
//! One [`MemEvent`] per observable action of the memory object model (§4.3's
//! `memM` operations). The variants deliberately store *raw machine words*
//! (`u64` addresses, allocation ids as plain integers) rather than model
//! types, so the crate stays a leaf dependency and events are trivially
//! serialisable. `docs/SEMANTICS.md` maps each variant to the paper section
//! whose semantics it observes.

use std::fmt;

/// Maximum identifier length stored inline in a [`Name`] without a heap
/// allocation. 22 bytes + length + discriminant keeps `Name` at 24 bytes,
/// and covers every identifier the front end produces in practice.
pub const NAME_INLINE_LEN: usize = 22;

/// A small-string-optimised owned name (allocation prefix, symbol).
///
/// Emitting an event must not allocate on the hot path: names up to
/// [`NAME_INLINE_LEN`] bytes are stored inline; longer ones fall back to a
/// boxed string (rare — C identifiers are short).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Name {
    /// Inline storage: `buf[..len]` is valid UTF-8.
    Inline {
        /// Number of meaningful bytes in `buf`.
        len: u8,
        /// Inline byte storage.
        buf: [u8; NAME_INLINE_LEN],
    },
    /// Heap fallback for names longer than [`NAME_INLINE_LEN`] bytes.
    Heap(Box<str>),
}

impl Name {
    /// Build a name, inlining when it fits.
    #[must_use]
    pub fn new(s: &str) -> Name {
        if s.len() <= NAME_INLINE_LEN {
            let mut buf = [0u8; NAME_INLINE_LEN];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            Name::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            Name::Heap(s.into())
        }
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        match self {
            Name::Inline { len, buf } => {
                std::str::from_utf8(&buf[..*len as usize]).expect("Name holds UTF-8")
            }
            Name::Heap(s) => s,
        }
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// The storage class of an allocation, mirroring `cheri-mem`'s `AllocKind`.
///
/// The `Debug` names must stay exactly `Auto`/`Static`/`Heap`/`Function`/
/// `StringLiteral`: the legacy text renderer prints them with `{:?}` and the
/// golden trace tests pin those bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AllocClass {
    /// Block-scope (stack) object.
    Auto,
    /// Static-storage-duration object.
    Static,
    /// `malloc`-family object.
    Heap,
    /// Function "allocation" backing a function pointer.
    Function,
    /// String literal object.
    StringLiteral,
}

/// Every [`AllocClass`], in code order.
pub const ALL_ALLOC_CLASSES: &[AllocClass] = &[
    AllocClass::Auto,
    AllocClass::Static,
    AllocClass::Heap,
    AllocClass::Function,
    AllocClass::StringLiteral,
];

impl AllocClass {
    /// Stable binary-format code.
    #[must_use]
    pub fn code(self) -> u8 {
        ALL_ALLOC_CLASSES.iter().position(|k| *k == self).expect("in list") as u8
    }

    /// Inverse of [`AllocClass::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<AllocClass> {
        ALL_ALLOC_CLASSES.get(code as usize).copied()
    }
}

/// Why a stored capability's tag was cleared (or marked unspecified).
///
/// The paper's §3.5/§4.3 treat every representation-touching write the same
/// way; the *reason* histogram exists because allocator and revocation
/// studies (e.g. "Picking a CHERI Allocator") need to know which mechanism
/// is responsible for tag loss.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TagClearReason {
    /// A non-capability data write overlapped the capability's footprint
    /// (§4.3: tags for the range become unspecified/cleared).
    NonCapWrite,
    /// A byte-wise `memcpy` overwrote the slot (tags do not transfer through
    /// partial or misaligned copies).
    Memcpy,
    /// A capability store at a non-capability-aligned address.
    MisalignedStore,
    /// A revocation sweep cleared the tag (§3.8 temporal safety).
    Revoked,
}

/// Every [`TagClearReason`], in code order. The array length is also the
/// size of the per-reason histogram in the metrics registry.
pub const ALL_TAG_CLEAR_REASONS: &[TagClearReason] = &[
    TagClearReason::NonCapWrite,
    TagClearReason::Memcpy,
    TagClearReason::MisalignedStore,
    TagClearReason::Revoked,
];

/// Number of [`TagClearReason`] variants (histogram width).
pub const TAG_CLEAR_REASONS: usize = ALL_TAG_CLEAR_REASONS.len();

impl TagClearReason {
    /// Stable binary-format code (and histogram index).
    #[must_use]
    pub fn code(self) -> u8 {
        ALL_TAG_CLEAR_REASONS.iter().position(|r| *r == self).expect("in list") as u8
    }

    /// Inverse of [`TagClearReason::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<TagClearReason> {
        ALL_TAG_CLEAR_REASONS.get(code as usize).copied()
    }

    /// Short lower-case label used by renderers and `--stats`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TagClearReason::NonCapWrite => "noncap-write",
            TagClearReason::Memcpy => "memcpy",
            TagClearReason::MisalignedStore => "misaligned-store",
            TagClearReason::Revoked => "revoked",
        }
    }
}

/// One observable action of the memory object model.
///
/// The first five variants are exactly the actions the legacy `--trace`
/// string log recorded; the rest extend coverage to capability metadata and
/// run termination. Field meanings follow `cheri-mem`'s operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemEvent {
    /// An allocation was created (`allocate_object`/`allocate_region`).
    Alloc {
        /// Allocation id (the `@n` ordinal).
        id: u64,
        /// Base address chosen by the layout policy.
        base: u64,
        /// Requested (unpadded) size in bytes.
        size: u64,
        /// Storage class.
        kind: AllocClass,
        /// Declared name / prefix of the allocation.
        name: Name,
    },
    /// An allocation's lifetime ended (`kill`).
    Free {
        /// Allocation id.
        id: u64,
        /// Base address.
        base: u64,
        /// One past the end of the *reserved* (possibly padded) footprint.
        end: u64,
        /// Was this a dynamic (`free()`) deallocation, as opposed to a
        /// scope exit?
        dynamic: bool,
    },
    /// A scalar integer load (`load_int`).
    Load {
        /// Address read.
        addr: u64,
        /// Access size in bytes.
        size: u64,
        /// Was the destination type `(u)intptr_t` (capability-carrying)?
        intptr: bool,
    },
    /// A scalar store (`store_int`).
    Store {
        /// Address written.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
    /// A `memcpy` (`dst <- src`, `n` bytes).
    Memcpy {
        /// Destination address.
        dst: u64,
        /// Source address.
        src: u64,
        /// Byte count.
        n: u64,
    },
    /// A new capability value was derived from an existing one by pointer
    /// arithmetic (§3.3 `array_shift`): the representability check may clear
    /// the tag on a non-representable result.
    CapDerive {
        /// Address of the source capability value.
        from: u64,
        /// Address of the derived capability value.
        to: u64,
        /// Did the derivation clear the tag (non-representable result)?
        tag_cleared: bool,
    },
    /// Stored capability tags were cleared or marked unspecified.
    CapTagClear {
        /// Lowest address of the affected range.
        addr: u64,
        /// Number of capability slots affected.
        count: u64,
        /// Which mechanism cleared them.
        reason: TagClearReason,
    },
    /// A representability (bounds-compression) check at allocation time
    /// (§2.1 / §3.7): `reserved >= size` when padding was applied.
    RepCheck {
        /// Requested size.
        size: u64,
        /// Reserved (possibly padded) size.
        reserved: u64,
        /// Did the check pad the allocation?
        padded: bool,
    },
    /// A revocation sweep over a freed region (§3.8).
    Revoke {
        /// Base of the swept region.
        base: u64,
        /// One past the end of the swept region.
        end: u64,
        /// Number of capabilities revoked by the sweep.
        cleared: u64,
    },
    /// The abstract machine detected undefined behaviour and stopped.
    Ub(crate::Ub),
    /// The emulated hardware raised a capability exception and stopped.
    Trap(crate::TrapKind),
    /// The program exited normally with this status.
    Exit(i64),
}

/// The discriminant of a [`MemEvent`], used as the binary-format tag byte
/// and as the index into per-kind counters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// [`MemEvent::Alloc`]
    Alloc,
    /// [`MemEvent::Free`]
    Free,
    /// [`MemEvent::Load`]
    Load,
    /// [`MemEvent::Store`]
    Store,
    /// [`MemEvent::Memcpy`]
    Memcpy,
    /// [`MemEvent::CapDerive`]
    CapDerive,
    /// [`MemEvent::CapTagClear`]
    CapTagClear,
    /// [`MemEvent::RepCheck`]
    RepCheck,
    /// [`MemEvent::Revoke`]
    Revoke,
    /// [`MemEvent::Ub`]
    Ub,
    /// [`MemEvent::Trap`]
    Trap,
    /// [`MemEvent::Exit`]
    Exit,
}

/// Every [`EventKind`], in tag-byte order.
pub const ALL_EVENT_KINDS: &[EventKind] = &[
    EventKind::Alloc,
    EventKind::Free,
    EventKind::Load,
    EventKind::Store,
    EventKind::Memcpy,
    EventKind::CapDerive,
    EventKind::CapTagClear,
    EventKind::RepCheck,
    EventKind::Revoke,
    EventKind::Ub,
    EventKind::Trap,
    EventKind::Exit,
];

/// Number of event kinds (width of per-kind counter arrays).
pub const EVENT_KINDS: usize = ALL_EVENT_KINDS.len();

impl EventKind {
    /// Stable binary-format tag byte (and counter index).
    #[must_use]
    pub fn code(self) -> u8 {
        ALL_EVENT_KINDS.iter().position(|k| *k == self).expect("in list") as u8
    }

    /// Inverse of [`EventKind::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<EventKind> {
        ALL_EVENT_KINDS.get(code as usize).copied()
    }

    /// Short lower-case label used by renderers and `--stats`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Alloc => "alloc",
            EventKind::Free => "free",
            EventKind::Load => "load",
            EventKind::Store => "store",
            EventKind::Memcpy => "memcpy",
            EventKind::CapDerive => "cap-derive",
            EventKind::CapTagClear => "cap-tag-clear",
            EventKind::RepCheck => "rep-check",
            EventKind::Revoke => "revoke",
            EventKind::Ub => "ub",
            EventKind::Trap => "trap",
            EventKind::Exit => "exit",
        }
    }
}

impl MemEvent {
    /// This event's discriminant.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            MemEvent::Alloc { .. } => EventKind::Alloc,
            MemEvent::Free { .. } => EventKind::Free,
            MemEvent::Load { .. } => EventKind::Load,
            MemEvent::Store { .. } => EventKind::Store,
            MemEvent::Memcpy { .. } => EventKind::Memcpy,
            MemEvent::CapDerive { .. } => EventKind::CapDerive,
            MemEvent::CapTagClear { .. } => EventKind::CapTagClear,
            MemEvent::RepCheck { .. } => EventKind::RepCheck,
            MemEvent::Revoke { .. } => EventKind::Revoke,
            MemEvent::Ub(_) => EventKind::Ub,
            MemEvent::Trap(_) => EventKind::Trap,
            MemEvent::Exit(_) => EventKind::Exit,
        }
    }

    /// Is this one of the five actions the legacy string trace recorded?
    #[must_use]
    pub fn is_legacy(&self) -> bool {
        matches!(
            self.kind(),
            EventKind::Alloc
                | EventKind::Free
                | EventKind::Load
                | EventKind::Store
                | EventKind::Memcpy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_inlines_short_strings() {
        let n = Name::new("main");
        assert!(matches!(n, Name::Inline { .. }));
        assert_eq!(n.as_str(), "main");
        assert_eq!(n.to_string(), "main");
        let exactly = "a".repeat(NAME_INLINE_LEN);
        assert!(matches!(Name::new(&exactly), Name::Inline { .. }));
        let long = "a".repeat(NAME_INLINE_LEN + 1);
        let n = Name::new(&long);
        assert!(matches!(n, Name::Heap(_)));
        assert_eq!(n.as_str(), long);
    }

    #[test]
    fn name_is_small() {
        assert!(std::mem::size_of::<Name>() <= 24);
    }

    #[test]
    fn alloc_class_debug_matches_legacy_alloc_kind() {
        // Pinned: the legacy trace prints AllocKind with `{:?}`.
        let names: Vec<String> = ALL_ALLOC_CLASSES.iter().map(|k| format!("{k:?}")).collect();
        assert_eq!(names, ["Auto", "Static", "Heap", "Function", "StringLiteral"]);
    }

    #[test]
    fn codes_roundtrip() {
        for k in ALL_EVENT_KINDS {
            assert_eq!(EventKind::from_code(k.code()), Some(*k));
        }
        for k in ALL_ALLOC_CLASSES {
            assert_eq!(AllocClass::from_code(k.code()), Some(*k));
        }
        for r in ALL_TAG_CLEAR_REASONS {
            assert_eq!(TagClearReason::from_code(r.code()), Some(*r));
        }
        assert_eq!(EventKind::from_code(EVENT_KINDS as u8), None);
    }

    #[test]
    fn kind_covers_every_variant() {
        let evs = [
            MemEvent::Alloc {
                id: 1,
                base: 0x1000,
                size: 4,
                kind: AllocClass::Auto,
                name: Name::new("x"),
            },
            MemEvent::Exit(0),
        ];
        assert_eq!(evs[0].kind(), EventKind::Alloc);
        assert!(evs[0].is_legacy());
        assert!(!evs[1].is_legacy());
    }
}
