//! Undefined behaviours and hardware traps.
//!
//! §4.2 of the paper: CHERI C adds four new undefined behaviours to ISO C's
//! catalogue, and the executable semantics flags the ISO ones too. The enums
//! below cover the CHERI UBs verbatim plus every ISO UB the memory object
//! model and the test suite exercise. They live in `cheri-obs` (rather than
//! `cheri-mem`) so that [`MemEvent`](crate::MemEvent) can carry them without
//! a dependency cycle; `cheri-mem` re-exports them under its old paths.
//!
//! Every variant has a stable single-byte *code* used by the binary trace
//! format ([`crate::binfmt`]); codes are append-only — new variants take the
//! next free code and existing codes never change, so old traces stay
//! readable.

use std::fmt;

/// An undefined behaviour detected by the abstract machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum Ub {
    // ── CHERI-specific UBs (§4.2) ────────────────────────────────────────
    /// Dereference of a pointer whose capability tag is cleared.
    CheriInvalidCap,
    /// Dereference of a pointer whose capability tag is *unspecified* in the
    /// ghost state (after a representation write or a non-representable
    /// `(u)intptr_t` excursion).
    CheriUndefinedTag,
    /// Memory access via a capability lacking the permission for the
    /// operation.
    CheriInsufficientPermissions,
    /// Dereference of an out-of-bounds pointer.
    CheriBoundsViolation,
    /// ISO C UB012: reading an lvalue whose stored representation is a trap
    /// representation — flagged when decoding a stored capability fails.
    LvalueReadTrapRepresentation,

    // ── ISO C memory-object UBs ──────────────────────────────────────────
    /// Access outside the footprint of the allocation identified by the
    /// pointer's provenance.
    AccessOutOfBounds,
    /// Access to an allocation whose lifetime has ended (temporal error).
    AccessDeadAllocation,
    /// Pointer arithmetic producing a value below, or more than one past,
    /// the allocation (ISO 6.5.6p8; §3.2 option (a) keeps this rule for
    /// CHERI C).
    OutOfBoundPtrArithmetic,
    /// `free`/`realloc` of a pointer that is not the start of a live
    /// heap allocation.
    FreeInvalidPointer,
    /// `free` of an allocation already freed.
    DoubleFree,
    /// Subtraction of pointers with different provenance.
    PtrDiffDifferentProvenance,
    /// Relational comparison (`<`, `<=`, `>`, `>=`) of pointers with
    /// different provenance.
    RelationalCompareDifferentProvenance,
    /// Read of an uninitialised object.
    UninitialisedRead,
    /// Read through a pointer with empty provenance (no live allocation
    /// matches).
    EmptyProvenanceAccess,
    /// Write to an object declared with a `const`-qualified type, or through
    /// a capability for read-only data (§3.9).
    WriteToReadOnly,
    /// Dereference of a null pointer.
    NullDereference,
    /// Signed integer overflow.
    SignedOverflow,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Shift amount negative or at least the width of the type.
    ShiftOutOfRange,
    /// Misaligned scalar access.
    MisalignedAccess,
    /// Use of an indeterminate (`iota`) provenance pointer in a way that
    /// cannot be disambiguated (PNVI-ae-udi).
    AmbiguousProvenance,
}

/// Every [`Ub`] variant, in code order. Kept in one place so the code
/// round-trip (and exhaustiveness tests) cannot drift from the enum.
pub const ALL_UBS: &[Ub] = &[
    Ub::CheriInvalidCap,
    Ub::CheriUndefinedTag,
    Ub::CheriInsufficientPermissions,
    Ub::CheriBoundsViolation,
    Ub::LvalueReadTrapRepresentation,
    Ub::AccessOutOfBounds,
    Ub::AccessDeadAllocation,
    Ub::OutOfBoundPtrArithmetic,
    Ub::FreeInvalidPointer,
    Ub::DoubleFree,
    Ub::PtrDiffDifferentProvenance,
    Ub::RelationalCompareDifferentProvenance,
    Ub::UninitialisedRead,
    Ub::EmptyProvenanceAccess,
    Ub::WriteToReadOnly,
    Ub::NullDereference,
    Ub::SignedOverflow,
    Ub::DivisionByZero,
    Ub::ShiftOutOfRange,
    Ub::MisalignedAccess,
    Ub::AmbiguousProvenance,
];

impl Ub {
    /// Is this one of the UBs CHERI C adds over ISO C (§4.2)?
    #[must_use]
    pub fn is_cheri(self) -> bool {
        matches!(
            self,
            Ub::CheriInvalidCap
                | Ub::CheriUndefinedTag
                | Ub::CheriInsufficientPermissions
                | Ub::CheriBoundsViolation
        )
    }

    /// The identifier used in the paper / Cerberus output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Ub::CheriInvalidCap => "UB_CHERI_InvalidCap",
            Ub::CheriUndefinedTag => "UB_CHERI_UndefinedTag",
            Ub::CheriInsufficientPermissions => "UB_CHERI_InsufficientPermissions",
            Ub::CheriBoundsViolation => "UB_CHERI_BoundsViolation",
            Ub::LvalueReadTrapRepresentation => "UB012_lvalue_read_trap_representation",
            Ub::AccessOutOfBounds => "UB_access_out_of_bounds",
            Ub::AccessDeadAllocation => "UB_access_dead_allocation",
            Ub::OutOfBoundPtrArithmetic => "UB046_out_of_bounds_pointer_arithmetic",
            Ub::FreeInvalidPointer => "UB_free_invalid_pointer",
            Ub::DoubleFree => "UB_double_free",
            Ub::PtrDiffDifferentProvenance => "UB048_ptrdiff_different_provenance",
            Ub::RelationalCompareDifferentProvenance => "UB053_relational_different_provenance",
            Ub::UninitialisedRead => "UB_uninitialised_read",
            Ub::EmptyProvenanceAccess => "UB_empty_provenance_access",
            Ub::WriteToReadOnly => "UB033_write_to_read_only",
            Ub::NullDereference => "UB_null_dereference",
            Ub::SignedOverflow => "UB036_signed_overflow",
            Ub::DivisionByZero => "UB045_division_by_zero",
            Ub::ShiftOutOfRange => "UB051_shift_out_of_range",
            Ub::MisalignedAccess => "UB_misaligned_access",
            Ub::AmbiguousProvenance => "UB_ambiguous_provenance",
        }
    }

    /// Stable binary-format code (index into [`ALL_UBS`]).
    #[must_use]
    pub fn code(self) -> u8 {
        ALL_UBS.iter().position(|u| *u == self).expect("in ALL_UBS") as u8
    }

    /// Inverse of [`Ub::code`]; `None` for codes from a newer format.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Ub> {
        ALL_UBS.get(code as usize).copied()
    }
}

impl fmt::Display for Ub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A hardware trap, as raised by a CHERI machine when a capability check
/// fails at access time (§2.1: "such an access triggers a synchronous data
/// abort exception"). The implementation-emulation profiles report these
/// instead of abstract-machine UB.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrapKind {
    /// Capability tag clear (or sealed) at access.
    TagViolation,
    /// Access outside the capability bounds.
    BoundsViolation,
    /// Missing permission for the access.
    PermissionViolation,
}

/// Every [`TrapKind`] variant, in code order.
pub const ALL_TRAPS: &[TrapKind] = &[
    TrapKind::TagViolation,
    TrapKind::BoundsViolation,
    TrapKind::PermissionViolation,
];

impl TrapKind {
    /// Stable binary-format code (index into [`ALL_TRAPS`]).
    #[must_use]
    pub fn code(self) -> u8 {
        ALL_TRAPS.iter().position(|t| *t == self).expect("in ALL_TRAPS") as u8
    }

    /// Inverse of [`TrapKind::code`]; `None` for codes from a newer format.
    #[must_use]
    pub fn from_code(code: u8) -> Option<TrapKind> {
        ALL_TRAPS.get(code as usize).copied()
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            TrapKind::TagViolation => "capability tag fault",
            TrapKind::BoundsViolation => "capability bounds fault",
            TrapKind::PermissionViolation => "capability permission fault",
        };
        f.write_str(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ub_codes_roundtrip() {
        for (i, ub) in ALL_UBS.iter().enumerate() {
            assert_eq!(ub.code() as usize, i);
            assert_eq!(Ub::from_code(ub.code()), Some(*ub));
        }
        assert_eq!(Ub::from_code(ALL_UBS.len() as u8), None);
    }

    #[test]
    fn trap_codes_roundtrip() {
        for t in ALL_TRAPS {
            assert_eq!(TrapKind::from_code(t.code()), Some(*t));
        }
        assert_eq!(TrapKind::from_code(3), None);
    }
}
