//! Event-stream renderers: legacy text, full text, and JSON lines.
//!
//! [`legacy_line`] is contractually byte-identical to the strings the
//! pre-`cheri-obs` `Vec<String>` trace produced (pinned by the repo's
//! `tests/trace_golden.rs` golden files): it renders exactly the five
//! event kinds the old trace recorded and nothing else. [`full_line`]
//! renders every kind; [`json_line`] emits one JSON object per event for
//! machine consumption.

use std::fmt::Write as _;

use crate::event::MemEvent;

/// Render one event the way the legacy string trace did; `None` for event
/// kinds the legacy trace did not record.
#[must_use]
pub fn legacy_line(ev: &MemEvent) -> Option<String> {
    Some(match ev {
        MemEvent::Alloc {
            id,
            base,
            size,
            kind,
            name,
        } => format!("create @{id} '{name}' [{base:#x},+{size}) {kind:?}"),
        MemEvent::Free {
            id,
            base,
            end,
            dynamic,
        } => format!("kill @{id} [{base:#x},{end:#x}) dynamic={dynamic}"),
        MemEvent::Load { addr, size, intptr } => {
            format!("load {addr:#x} size={size} intptr={intptr}")
        }
        MemEvent::Store { addr, size } => format!("store {addr:#x} size={size}"),
        MemEvent::Memcpy { dst, src, n } => format!("memcpy {dst:#x} <- {src:#x} n={n}"),
        _ => return None,
    })
}

/// Render an event stream as the legacy trace lines (non-legacy events are
/// skipped, preserving the old trace's exact line sequence).
#[must_use]
pub fn legacy_lines(events: &[MemEvent]) -> Vec<String> {
    events.iter().filter_map(legacy_line).collect()
}

/// Render one event in the full text format: legacy kinds keep their legacy
/// rendering; the new kinds get one line each in the same terse style.
#[must_use]
pub fn full_line(ev: &MemEvent) -> String {
    if let Some(line) = legacy_line(ev) {
        return line;
    }
    match ev {
        MemEvent::CapDerive {
            from,
            to,
            tag_cleared,
        } => format!("cap-derive {from:#x} -> {to:#x} tag_cleared={tag_cleared}"),
        MemEvent::CapTagClear {
            addr,
            count,
            reason,
        } => format!("cap-tag-clear {addr:#x} slots={count} reason={}", reason.label()),
        MemEvent::RepCheck {
            size,
            reserved,
            padded,
        } => format!("rep-check size={size} reserved={reserved} padded={padded}"),
        MemEvent::Revoke { base, end, cleared } => {
            format!("revoke [{base:#x},{end:#x}) cleared={cleared}")
        }
        MemEvent::Ub(ub) => format!("ub {ub}"),
        MemEvent::Trap(t) => format!("trap {t}"),
        MemEvent::Exit(status) => format!("exit {status}"),
        _ => unreachable!("legacy kinds handled above"),
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render one event as a single-line JSON object with a `"kind"` field.
#[must_use]
pub fn json_line(ev: &MemEvent) -> String {
    let mut s = String::with_capacity(64);
    let _ = write!(s, "{{\"kind\":\"{}\"", ev.kind().label());
    match ev {
        MemEvent::Alloc {
            id,
            base,
            size,
            kind,
            name,
        } => {
            let _ = write!(s, ",\"id\":{id},\"base\":{base},\"size\":{size},\"class\":\"{kind:?}\",\"name\":\"");
            json_escape(name.as_str(), &mut s);
            s.push('"');
        }
        MemEvent::Free {
            id,
            base,
            end,
            dynamic,
        } => {
            let _ = write!(s, ",\"id\":{id},\"base\":{base},\"end\":{end},\"dynamic\":{dynamic}");
        }
        MemEvent::Load { addr, size, intptr } => {
            let _ = write!(s, ",\"addr\":{addr},\"size\":{size},\"intptr\":{intptr}");
        }
        MemEvent::Store { addr, size } => {
            let _ = write!(s, ",\"addr\":{addr},\"size\":{size}");
        }
        MemEvent::Memcpy { dst, src, n } => {
            let _ = write!(s, ",\"dst\":{dst},\"src\":{src},\"n\":{n}");
        }
        MemEvent::CapDerive {
            from,
            to,
            tag_cleared,
        } => {
            let _ = write!(s, ",\"from\":{from},\"to\":{to},\"tag_cleared\":{tag_cleared}");
        }
        MemEvent::CapTagClear {
            addr,
            count,
            reason,
        } => {
            let _ = write!(
                s,
                ",\"addr\":{addr},\"count\":{count},\"reason\":\"{}\"",
                reason.label()
            );
        }
        MemEvent::RepCheck {
            size,
            reserved,
            padded,
        } => {
            let _ = write!(s, ",\"size\":{size},\"reserved\":{reserved},\"padded\":{padded}");
        }
        MemEvent::Revoke { base, end, cleared } => {
            let _ = write!(s, ",\"base\":{base},\"end\":{end},\"cleared\":{cleared}");
        }
        MemEvent::Ub(ub) => {
            let _ = write!(s, ",\"ub\":\"{}\"", ub.name());
        }
        MemEvent::Trap(t) => {
            let _ = write!(s, ",\"trap\":\"{t:?}\"");
        }
        MemEvent::Exit(status) => {
            let _ = write!(s, ",\"status\":{status}");
        }
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AllocClass, Name, TagClearReason};
    use crate::kinds::{TrapKind, Ub};

    #[test]
    fn legacy_lines_match_the_old_format_strings() {
        // These strings are the old `format!` calls from `CheriMemory`,
        // byte for byte (also pinned end-to-end by tests/trace_golden.rs).
        let alloc = MemEvent::Alloc {
            id: 1,
            base: 0x10000,
            size: 1,
            kind: AllocClass::Function,
            name: Name::new("main"),
        };
        assert_eq!(
            legacy_line(&alloc).unwrap(),
            "create @1 'main' [0x10000,+1) Function"
        );
        let free = MemEvent::Free {
            id: 3,
            base: 0xffffeff8,
            end: 0xfffff000,
            dynamic: false,
        };
        assert_eq!(
            legacy_line(&free).unwrap(),
            "kill @3 [0xffffeff8,0xfffff000) dynamic=false"
        );
        let load = MemEvent::Load {
            addr: 0xffffeff8,
            size: 4,
            intptr: false,
        };
        assert_eq!(
            legacy_line(&load).unwrap(),
            "load 0xffffeff8 size=4 intptr=false"
        );
        let store = MemEvent::Store {
            addr: 0xffffeffc,
            size: 4,
        };
        assert_eq!(legacy_line(&store).unwrap(), "store 0xffffeffc size=4");
        let memcpy = MemEvent::Memcpy {
            dst: 0x20000,
            src: 0x10000,
            n: 32,
        };
        assert_eq!(
            legacy_line(&memcpy).unwrap(),
            "memcpy 0x20000 <- 0x10000 n=32"
        );
        assert_eq!(legacy_line(&MemEvent::Exit(0)), None);
    }

    #[test]
    fn full_line_covers_every_kind() {
        let evs = [
            MemEvent::CapDerive {
                from: 0x10,
                to: 0x20,
                tag_cleared: true,
            },
            MemEvent::CapTagClear {
                addr: 0x10,
                count: 2,
                reason: TagClearReason::Revoked,
            },
            MemEvent::RepCheck {
                size: 3,
                reserved: 8,
                padded: true,
            },
            MemEvent::Revoke {
                base: 0x10,
                end: 0x20,
                cleared: 1,
            },
            MemEvent::Ub(Ub::DoubleFree),
            MemEvent::Trap(TrapKind::BoundsViolation),
            MemEvent::Exit(7),
        ];
        let lines: Vec<String> = evs.iter().map(full_line).collect();
        assert_eq!(lines[0], "cap-derive 0x10 -> 0x20 tag_cleared=true");
        assert_eq!(lines[1], "cap-tag-clear 0x10 slots=2 reason=revoked");
        assert_eq!(lines[2], "rep-check size=3 reserved=8 padded=true");
        assert_eq!(lines[3], "revoke [0x10,0x20) cleared=1");
        assert_eq!(lines[4], "ub UB_double_free");
        assert_eq!(lines[5], "trap capability bounds fault");
        assert_eq!(lines[6], "exit 7");
    }

    #[test]
    fn json_lines_are_well_formed() {
        let ev = MemEvent::Alloc {
            id: 2,
            base: 4096,
            size: 16,
            kind: AllocClass::Heap,
            name: Name::new("p\"q"),
        };
        assert_eq!(
            json_line(&ev),
            "{\"kind\":\"alloc\",\"id\":2,\"base\":4096,\"size\":16,\"class\":\"Heap\",\"name\":\"p\\\"q\"}"
        );
        assert_eq!(
            json_line(&MemEvent::Exit(-1)),
            "{\"kind\":\"exit\",\"status\":-1}"
        );
    }
}
