//! `cheri-obs` — structured event tracing and metrics for the CHERI C
//! executable semantics.
//!
//! The paper's semantics is valuable because it is *observable*: §5
//! validates implementations by comparing behaviours, and the interesting
//! artifact of a comparison is *where* two runs diverge. This crate is the
//! observability layer the memory model (`cheri-mem`) and interpreter
//! (`cheri-core`) emit into:
//!
//! * [`event`] — the typed [`MemEvent`] vocabulary (one variant per
//!   observable action of the §4.3 memory object model);
//! * [`sink`] — the zero-cost-when-off [`EventSink`] plumbing: with no
//!   sink installed, emitting is a branch on an `Option` and the event is
//!   never even constructed;
//! * [`binfmt`] — the `CHOB` compact binary trace format (varint-encoded,
//!   versioned header, streamable);
//! * [`render`] — text and JSON renderers; [`render::legacy_line`] is
//!   byte-identical to the pre-`cheri-obs` `--trace` output;
//! * [`diag`] — structured [`Diagnostic`] records (severity, verdict class,
//!   position, paper anchor) with text and JSON renderers, used by the
//!   `cheri-lint` static analyzer;
//! * [`mod@diff`] — the [`TraceDiff`] engine aligning two event streams
//!   (optionally normalizing addresses to allocation-relative coordinates)
//!   and reporting the first divergence with context;
//! * [`kinds`] — the [`Ub`] and [`TrapKind`] taxonomies (moved here from
//!   `cheri-mem` so events can carry them; `cheri-mem` re-exports them).
//!
//! The crate is a leaf: `std` only, no workspace dependencies, so every
//! layer of the stack can emit events without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod diag;
pub mod diff;
pub mod event;
pub mod kinds;
pub mod render;
pub mod sink;

pub use diag::{render_diagnostics_json, render_diagnostics_text, DiagSeverity, Diagnostic};
pub use diff::{diff, render_diff, render_profile_diffs, DiffMode, Normalizer, TraceDiff};
pub use event::{
    AllocClass, EventKind, MemEvent, Name, TagClearReason, EVENT_KINDS, TAG_CLEAR_REASONS,
};
pub use kinds::{TrapKind, Ub, ALL_TRAPS, ALL_UBS};
pub use sink::{CountingSink, EventSink, RingSink, SinkHandle, StreamSink, StringSink, VecSink};
