//! Trace diffing: align two event streams and report the first divergence.
//!
//! The interesting artifact of a multi-profile comparison (paper Appendix A)
//! is *where* behaviours part ways, not just the final outcomes. Two
//! profiles rarely produce byte-identical traces though — their layout
//! policies place allocations at different addresses — so the diff engine
//! supports a [`DiffMode::Normalized`] comparison that rewrites every
//! address into *(allocation ordinal, offset)* coordinates before
//! comparing, making streams from different layouts alignable. The first
//! event whose normalized form differs is reported with a window of
//! preceding context from each side.

use crate::event::MemEvent;

/// How to compare two events.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DiffMode {
    /// Compare events verbatim (same profile / same layout).
    Exact,
    /// Rewrite addresses into allocation-relative coordinates first, so
    /// traces from different layout policies align (cross-profile diffing).
    #[default]
    Normalized,
}

/// The first point where two event streams disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDiff {
    /// Index (into both streams) of the first divergent event.
    pub index: usize,
    /// The left stream's event at `index` (`None`: stream ended early).
    pub left: Option<MemEvent>,
    /// The right stream's event at `index` (`None`: stream ended early).
    pub right: Option<MemEvent>,
    /// Up to `context` events preceding the divergence, from the left
    /// stream (the streams agree on this prefix under the chosen mode).
    pub context: Vec<MemEvent>,
}

/// Rewrites raw addresses into *(allocation ordinal, offset)* coordinates.
///
/// Allocations are numbered in stream order; an address inside the *n*-th
/// live allocation's reserved footprint becomes `n * ALLOC_STRIDE + offset`.
/// Addresses outside any live allocation are left as-is (they only arise in
/// wild-pointer events, where the raw value is itself the evidence).
#[derive(Default, Debug)]
pub struct Normalizer {
    /// Live allocations: `(base, end, ordinal)`.
    live: Vec<(u64, u64, u64)>,
    next_ordinal: u64,
}

/// Synthetic address stride between allocation ordinals: larger than any
/// single allocation the corpus produces, so normalized ranges never
/// collide.
pub const ALLOC_STRIDE: u64 = 1 << 32;

impl Normalizer {
    /// A normalizer with no allocations seen yet.
    #[must_use]
    pub fn new() -> Normalizer {
        Normalizer::default()
    }

    fn norm_addr(&self, addr: u64) -> u64 {
        for (base, end, ordinal) in &self.live {
            if addr >= *base && addr < *end {
                return ordinal * ALLOC_STRIDE + (addr - base);
            }
        }
        // One-past-the-end addresses (ISO-legal pointer arithmetic) belong
        // to their allocation too; checked second so an adjacent
        // allocation's base wins over a predecessor's one-past.
        for (base, end, ordinal) in &self.live {
            if addr == *end {
                return ordinal * ALLOC_STRIDE + (addr - base);
            }
        }
        addr
    }

    /// Normalize one event, updating the allocation table as a side effect.
    ///
    /// Must be fed the stream *in order* — allocation ordinals and
    /// liveness depend on every preceding `Alloc`/`Free`.
    pub fn norm_event(&mut self, ev: &MemEvent) -> MemEvent {
        match ev {
            MemEvent::Alloc {
                id: _,
                base,
                size,
                kind,
                name,
            } => {
                let ordinal = self.next_ordinal;
                self.next_ordinal += 1;
                self.live.push((*base, base + size, ordinal));
                MemEvent::Alloc {
                    id: ordinal,
                    base: ordinal * ALLOC_STRIDE,
                    size: *size,
                    kind: *kind,
                    name: name.clone(),
                }
            }
            MemEvent::Free {
                id: _,
                base,
                end,
                dynamic,
            } => {
                let entry = self
                    .live
                    .iter()
                    .position(|(b, _, _)| *b == *base);
                let ordinal = match entry {
                    Some(i) => {
                        let (_, _, ordinal) = self.live.remove(i);
                        ordinal
                    }
                    None => u64::MAX,
                };
                MemEvent::Free {
                    id: ordinal,
                    base: ordinal.wrapping_mul(ALLOC_STRIDE),
                    end: ordinal.wrapping_mul(ALLOC_STRIDE) + (end - base),
                    dynamic: *dynamic,
                }
            }
            MemEvent::Load { addr, size, intptr } => MemEvent::Load {
                addr: self.norm_addr(*addr),
                size: *size,
                intptr: *intptr,
            },
            MemEvent::Store { addr, size } => MemEvent::Store {
                addr: self.norm_addr(*addr),
                size: *size,
            },
            MemEvent::Memcpy { dst, src, n } => MemEvent::Memcpy {
                dst: self.norm_addr(*dst),
                src: self.norm_addr(*src),
                n: *n,
            },
            MemEvent::CapDerive {
                from,
                to,
                tag_cleared,
            } => MemEvent::CapDerive {
                from: self.norm_addr(*from),
                to: self.norm_addr(*to),
                tag_cleared: *tag_cleared,
            },
            MemEvent::CapTagClear {
                addr,
                count,
                reason,
            } => MemEvent::CapTagClear {
                addr: self.norm_addr(*addr),
                count: *count,
                reason: *reason,
            },
            MemEvent::Revoke { base, end, cleared } => MemEvent::Revoke {
                base: self.norm_addr(*base),
                end: self.norm_addr(*base) + (end - base),
                cleared: *cleared,
            },
            // No addresses to rewrite.
            MemEvent::RepCheck { .. } | MemEvent::Ub(_) | MemEvent::Trap(_) | MemEvent::Exit(_) => {
                ev.clone()
            }
        }
    }

    /// Normalize a whole stream.
    #[must_use]
    pub fn norm_stream(events: &[MemEvent]) -> Vec<MemEvent> {
        let mut n = Normalizer::new();
        events.iter().map(|ev| n.norm_event(ev)).collect()
    }
}

/// Find the first divergence between two event streams; `None` if they
/// agree (under `mode`) for their full common shape.
#[must_use]
pub fn diff(
    left: &[MemEvent],
    right: &[MemEvent],
    mode: DiffMode,
    context: usize,
) -> Option<TraceDiff> {
    let (l, r): (Vec<MemEvent>, Vec<MemEvent>) = match mode {
        DiffMode::Exact => (left.to_vec(), right.to_vec()),
        DiffMode::Normalized => (Normalizer::norm_stream(left), Normalizer::norm_stream(right)),
    };
    let common = l.len().min(r.len());
    let mismatch = (0..common).find(|&i| l[i] != r[i]);
    let idx = match mismatch {
        Some(i) => i,
        None if l.len() != r.len() => common,
        None => return None,
    };
    let start = idx.saturating_sub(context);
    Some(TraceDiff {
        index: idx,
        left: left.get(idx).cloned(),
        right: right.get(idx).cloned(),
        context: left[start..idx].to_vec(),
    })
}

/// Render a [`TraceDiff`] for humans: context lines, then the two divergent
/// events marked `<`/`>` (a missing side renders as `(stream ends)`).
#[must_use]
pub fn render_diff(d: &TraceDiff) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "first divergence at event {}", d.index);
    let base = d.index - d.context.len();
    for (i, ev) in d.context.iter().enumerate() {
        let _ = writeln!(out, "  = [{}] {}", base + i, crate::render::full_line(ev));
    }
    match &d.left {
        Some(ev) => {
            let _ = writeln!(out, "  < [{}] {}", d.index, crate::render::full_line(ev));
        }
        None => {
            let _ = writeln!(out, "  < [{}] (stream ends)", d.index);
        }
    }
    match &d.right {
        Some(ev) => {
            let _ = writeln!(out, "  > [{}] {}", d.index, crate::render::full_line(ev));
        }
        None => {
            let _ = writeln!(out, "  > [{}] (stream ends)", d.index);
        }
    }
    out
}

/// Render the first divergence of each named event stream against the
/// first (reference) stream, in normalized (allocation-relative)
/// coordinates — the report printed by `cheri-c --all --trace-diff` and by
/// the batch service's trace-diff mode. Empty when `runs` is empty.
#[must_use]
pub fn render_profile_diffs(runs: &[(String, Vec<MemEvent>)]) -> String {
    use std::fmt::Write as _;
    let Some((ref_name, ref_events)) = runs.first() else {
        return String::new();
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "── trace diff (reference: {ref_name}, normalized addresses) ──"
    );
    for (name, events) in &runs[1..] {
        match diff(ref_events, events, DiffMode::Normalized, 3) {
            None => {
                let _ = writeln!(out, "{name}: no divergence ({} events)", events.len());
            }
            Some(d) => {
                let _ = writeln!(out, "{name}: diverges from {ref_name}:");
                out.push_str(&render_diff(&d));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AllocClass, Name};

    fn alloc(id: u64, base: u64, size: u64) -> MemEvent {
        MemEvent::Alloc {
            id,
            base,
            size,
            kind: AllocClass::Auto,
            name: Name::new("x"),
        }
    }

    fn store(addr: u64) -> MemEvent {
        MemEvent::Store { addr, size: 4 }
    }

    #[test]
    fn identical_streams_have_no_diff() {
        let a = vec![alloc(1, 0x1000, 8), store(0x1004), MemEvent::Exit(0)];
        assert_eq!(diff(&a, &a, DiffMode::Exact, 2), None);
        assert_eq!(diff(&a, &a, DiffMode::Normalized, 2), None);
    }

    #[test]
    fn exact_mode_sees_layout_differences() {
        let a = vec![alloc(1, 0x1000, 8), store(0x1004)];
        let b = vec![alloc(1, 0x2000, 8), store(0x2004)];
        let d = diff(&a, &b, DiffMode::Exact, 4).expect("differs");
        assert_eq!(d.index, 0);
        // Normalized mode aligns them: same ordinal, same offset.
        assert_eq!(diff(&a, &b, DiffMode::Normalized, 4), None);
    }

    #[test]
    fn normalized_mode_reports_semantic_divergence() {
        // Same layout shift, but the second store lands at a different
        // offset — a genuine semantic divergence.
        let a = vec![alloc(1, 0x1000, 8), store(0x1004)];
        let b = vec![alloc(1, 0x2000, 8), store(0x2000)];
        let d = diff(&a, &b, DiffMode::Normalized, 4).expect("differs");
        assert_eq!(d.index, 1);
        assert_eq!(d.left, Some(store(0x1004)));
        assert_eq!(d.right, Some(store(0x2000)));
        assert_eq!(d.context.len(), 1);
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let a = vec![store(0x1000), MemEvent::Exit(0)];
        let b = vec![store(0x1000)];
        let d = diff(&a, &b, DiffMode::Exact, 1).expect("differs");
        assert_eq!(d.index, 1);
        assert_eq!(d.left, Some(MemEvent::Exit(0)));
        assert_eq!(d.right, None);
        let rendered = render_diff(&d);
        assert!(rendered.contains("(stream ends)"), "{rendered}");
        assert!(rendered.contains("< [1] exit 0"), "{rendered}");
    }

    #[test]
    fn free_rejoins_its_allocation() {
        // Free carries the *reserved* end; normalization keys on base.
        let a = vec![
            alloc(1, 0x1000, 6),
            MemEvent::Free {
                id: 1,
                base: 0x1000,
                end: 0x1008,
                dynamic: true,
            },
        ];
        let b = vec![
            alloc(1, 0x9000, 6),
            MemEvent::Free {
                id: 1,
                base: 0x9000,
                end: 0x9008,
                dynamic: true,
            },
        ];
        assert_eq!(diff(&a, &b, DiffMode::Normalized, 2), None);
    }

    #[test]
    fn context_window_is_bounded() {
        let a: Vec<MemEvent> = (0..10).map(|i| store(0x1000 + i * 4)).collect();
        let mut b = a.clone();
        b[9] = store(0x9999);
        let d = diff(&a, &b, DiffMode::Exact, 3).expect("differs");
        assert_eq!(d.index, 9);
        assert_eq!(d.context.len(), 3);
        assert_eq!(d.context[0], store(0x1000 + 6 * 4));
    }
}
