//! Structured diagnostics and their renderers.
//!
//! The static analyzer (`cheri-lint`) predicts the dynamic semantics'
//! verdicts; this module is the *presentation* half: a renderer-agnostic
//! [`Diagnostic`] record (severity, verdict class, source position,
//! paper-section anchor, cause notes) plus text and JSON renderers. It
//! lives in `cheri-obs` next to the event renderers so every layer shares
//! one output vocabulary and the JSON escaping rules stay in one place.
//!
//! The types here are deliberately plain (strings and integers, no
//! workspace dependencies): `cheri-obs` stays a leaf crate, and the
//! analyzer converts its richer internal findings into this form.

use std::fmt::Write as _;

use crate::render::json_escape;

/// How certain (and how severe) a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DiagSeverity {
    /// Supporting observation (e.g. a tag-clearing mechanism that did not
    /// itself stop the program).
    Note,
    /// The behaviour *may* occur (over-approximation, widened analysis).
    May,
    /// The behaviour *must* occur on this profile's execution.
    Must,
}

impl DiagSeverity {
    /// Stable lower-case label used by both renderers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DiagSeverity::Note => "note",
            DiagSeverity::May => "may",
            DiagSeverity::Must => "must",
        }
    }
}

/// One diagnostic: a verdict-class finding anchored to a source position
/// and a paper section.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity / certainty.
    pub severity: DiagSeverity,
    /// Short kebab-case class name (e.g. `out-of-bounds`).
    pub class: String,
    /// Paper-section anchor (e.g. `§3.1`), empty if none.
    pub anchor: String,
    /// 1-based source line (0 = no position).
    pub line: u32,
    /// 1-based source column (0 = no position).
    pub col: u32,
    /// Human-readable message.
    pub message: String,
    /// How many times this diagnostic was observed (deduplicated count).
    pub count: u64,
}

impl Diagnostic {
    /// Render as one text line:
    /// `must out-of-bounds @3:12 — message [§3.1]` (`×N` when deduplicated).
    #[must_use]
    pub fn text_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{:<4} {}", self.severity.label(), self.class);
        if self.line != 0 {
            let _ = write!(s, " @{}:{}", self.line, self.col);
        }
        let _ = write!(s, " — {}", self.message);
        if self.count > 1 {
            let _ = write!(s, " (×{})", self.count);
        }
        if !self.anchor.is_empty() {
            let _ = write!(s, " [{}]", self.anchor);
        }
        s
    }

    /// Render as a single JSON object (one line, stable key order).
    #[must_use]
    pub fn json_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"severity\":\"{}\",\"class\":\"", self.severity.label());
        json_escape(&self.class, &mut s);
        s.push_str("\",\"anchor\":\"");
        json_escape(&self.anchor, &mut s);
        let _ = write!(
            s,
            "\",\"line\":{},\"col\":{},\"count\":{},\"message\":\"",
            self.line, self.col, self.count
        );
        json_escape(&self.message, &mut s);
        s.push_str("\"}");
        s
    }
}

/// Render a batch of diagnostics as text lines (one per diagnostic).
#[must_use]
pub fn render_diagnostics_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.text_line());
        out.push('\n');
    }
    out
}

/// Render a batch of diagnostics as a JSON array (one object per line).
#[must_use]
pub fn render_diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str("  ");
        out.push_str(&d.json_line());
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            severity: DiagSeverity::Must,
            class: "out-of-bounds".into(),
            anchor: "§3.1".into(),
            line: 3,
            col: 12,
            message: "one-past write".into(),
            count: 1,
        }
    }

    #[test]
    fn text_line_shape() {
        assert_eq!(
            sample().text_line(),
            "must out-of-bounds @3:12 — one-past write [§3.1]"
        );
        let mut d = sample();
        d.count = 4;
        d.line = 0;
        d.anchor.clear();
        assert_eq!(d.text_line(), "must out-of-bounds — one-past write (×4)");
    }

    #[test]
    fn json_line_escapes() {
        let mut d = sample();
        d.message = "a \"quoted\" msg".into();
        let j = d.json_line();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn batch_renderers() {
        let ds = vec![sample(), sample()];
        let t = render_diagnostics_text(&ds);
        assert_eq!(t.lines().count(), 2);
        let j = render_diagnostics_json(&ds);
        assert!(j.starts_with("[\n") && j.ends_with("]\n"));
        assert_eq!(render_diagnostics_json(&[]), "[]\n");
    }

    #[test]
    fn severity_order() {
        assert!(DiagSeverity::Must > DiagSeverity::May);
        assert!(DiagSeverity::May > DiagSeverity::Note);
    }
}
