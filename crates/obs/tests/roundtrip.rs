//! Property: binary encode → decode of a random event stream is lossless.
//!
//! Generates arbitrary `MemEvent` streams (every variant, adversarial
//! field values: huge addresses, empty and over-inline-length names,
//! negative exit statuses) and checks `decode(encode(s)) == s` through both
//! the one-shot buffer path and the streaming `TraceWriter` path.

use cheri_obs::binfmt::{decode_trace, encode_trace, TraceWriter};
use cheri_obs::{
    AllocClass, MemEvent, Name, TagClearReason, TrapKind, Ub,
};
use cheri_qc::{check, no_shrink, Config, Rng};

/// Newtype so the qc harness can shrink the *stream* (by dropping events)
/// without needing structural shrinking inside one event.
#[derive(Clone, Debug, PartialEq)]
struct Ev(MemEvent);

no_shrink!(Ev);

fn arb_u64(rng: &mut Rng) -> u64 {
    // Mix small values (common) with full-width ones (varint edge cases).
    match rng.gen_range(0..4u32) {
        0 => rng.gen_range(0..256u64),
        1 => rng.gen_range(0..0x1_0000u64),
        2 => rng.gen::<u64>() & 0xFFFF_FFFF,
        _ => rng.gen::<u64>(),
    }
}

fn arb_name(rng: &mut Rng) -> Name {
    let len = match rng.gen_range(0..4u32) {
        0 => 0,
        1 => rng.gen_range(1..8usize),
        2 => 22, // exactly the inline capacity
        _ => rng.gen_range(23..80usize),
    };
    let s: String = (0..len)
        .map(|_| char::from(b'a' + (rng.gen_range(0..26u32) as u8)))
        .collect();
    Name::new(&s)
}

fn arb_event(rng: &mut Rng) -> Ev {
    let ev = match rng.gen_range(0..12u32) {
        0 => MemEvent::Alloc {
            id: arb_u64(rng),
            base: arb_u64(rng),
            size: arb_u64(rng),
            kind: *rng
                .choose(cheri_obs::event::ALL_ALLOC_CLASSES)
                .expect("non-empty"),
            name: arb_name(rng),
        },
        1 => MemEvent::Free {
            id: arb_u64(rng),
            base: arb_u64(rng),
            end: arb_u64(rng),
            dynamic: rng.gen_bool(0.5),
        },
        2 => MemEvent::Load {
            addr: arb_u64(rng),
            size: arb_u64(rng),
            intptr: rng.gen_bool(0.5),
        },
        3 => MemEvent::Store {
            addr: arb_u64(rng),
            size: arb_u64(rng),
        },
        4 => MemEvent::Memcpy {
            dst: arb_u64(rng),
            src: arb_u64(rng),
            n: arb_u64(rng),
        },
        5 => MemEvent::CapDerive {
            from: arb_u64(rng),
            to: arb_u64(rng),
            tag_cleared: rng.gen_bool(0.5),
        },
        6 => MemEvent::CapTagClear {
            addr: arb_u64(rng),
            count: arb_u64(rng),
            reason: *rng
                .choose(cheri_obs::event::ALL_TAG_CLEAR_REASONS)
                .expect("non-empty"),
        },
        7 => MemEvent::RepCheck {
            size: arb_u64(rng),
            reserved: arb_u64(rng),
            padded: rng.gen_bool(0.5),
        },
        8 => MemEvent::Revoke {
            base: arb_u64(rng),
            end: arb_u64(rng),
            cleared: arb_u64(rng),
        },
        9 => MemEvent::Ub(*rng.choose(cheri_obs::ALL_UBS).expect("non-empty")),
        10 => MemEvent::Trap(*rng.choose(cheri_obs::ALL_TRAPS).expect("non-empty")),
        _ => MemEvent::Exit(rng.gen::<u64>() as i64),
    };
    Ev(ev)
}

#[test]
fn binary_roundtrip_is_lossless() {
    check(
        "obs_binary_roundtrip",
        Config::cases(256),
        |rng| {
            let n = rng.gen_range(0..64usize);
            (0..n).map(|_| arb_event(rng)).collect::<Vec<Ev>>()
        },
        |stream| {
            let events: Vec<MemEvent> = stream.iter().map(|e| e.0.clone()).collect();
            let bytes = encode_trace(&events);
            let back = decode_trace(&mut bytes.as_slice()).expect("well-formed trace decodes");
            assert_eq!(back, events, "decode(encode(s)) != s");

            // The streaming writer must produce the identical byte stream.
            let mut w = TraceWriter::new(Vec::new()).expect("header");
            for ev in &events {
                w.write_event(ev).expect("write");
            }
            assert_eq!(w.into_inner(), bytes, "streamed bytes != one-shot bytes");
        },
    );
}

#[test]
fn roundtrip_hits_every_variant_shape() {
    // Deterministic spot-check that the generator above actually covers
    // every tag byte (guards against a dead arm after refactors).
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let mut seen = [false; cheri_obs::EVENT_KINDS];
    for _ in 0..4096 {
        seen[arb_event(&mut rng).0.kind().code() as usize] = true;
    }
    assert!(seen.iter().all(|s| *s), "generator missed a variant: {seen:?}");
    // Exhaustive kinds list for reference so adding a variant trips this
    // test until the generator learns it.
    let _ = [
        AllocClass::Auto,
        AllocClass::StringLiteral,
    ];
    let _ = (TagClearReason::Revoked, TrapKind::TagViolation, Ub::DoubleFree);
}
