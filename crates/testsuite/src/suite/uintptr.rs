//! `(u)intptr_t`, pointer/integer conversion, `ptraddr_t` and signedness
//! tests (Table 1 rows 13–15, 25, 27, 32).

use super::tc;
use crate::Category::*;
use crate::Expected::*;
use crate::TestCase;
use cheri_mem::Ub;

pub fn tests() -> Vec<TestCase> {
    vec![
        tc(
            "uintptr/sizeof-is-capability-size",
            &[UIntPtrProperties, MorelloEncoding, Alignment],
            "(u)intptr_t is capability-sized (16 bytes on Morello), unlike ptraddr_t",
            r#"
            #include <stdint.h>
            int main(void) {
              assert(sizeof(uintptr_t) == sizeof(void*));
              assert(sizeof(intptr_t) == sizeof(void*));
              assert(sizeof(ptraddr_t) < sizeof(uintptr_t));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "uintptr/roundtrip-identity",
            &[UIntPtrProperties, PtrIntConversion],
            "ISO guarantee: pointer → uintptr_t → pointer is the identity",
            r#"
            #include <stdint.h>
            int main(void) {
              int x = 9;
              uintptr_t u = (uintptr_t)&x;
              int *q = (int*)u;
              assert(q == &x);
              return *q;
            }"#,
            Exit(9),
            Exit(9),
            &[],
        ),
        tc(
            "uintptr/roundtrip-signed-intptr",
            &[UIntPtrProperties, PtrIntConversion, Signedness],
            "the signed intptr_t round trip also preserves the capability",
            r#"
            #include <stdint.h>
            int main(void) {
              int x = 4;
              intptr_t i = (intptr_t)&x;
              int *q = (int*)i;
              assert(cheri_tag_get(q));
              return *q;
            }"#,
            Exit(4),
            Exit(4),
            &[],
        ),
        tc(
            "uintptr/null-is-zero",
            &[UIntPtrProperties, NullCapabilities, Equality],
            "(uintptr_t)NULL is 0, and (void*)0 is the null capability",
            r#"
            #include <stdint.h>
            int main(void) {
              assert((uintptr_t)NULL == 0);
              void *p = (void*)0;
              assert(p == NULL);
              assert(!cheri_tag_get(p));
              assert(cheri_address_get(p) == 0);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "uintptr/stored-in-memory-keeps-tag",
            &[UIntPtrProperties, CapAssignment],
            "assigning and storing (u)intptr_t values preserves the capability",
            r#"
            #include <stdint.h>
            uintptr_t g;
            int main(void) {
              int x = 3;
              g = (uintptr_t)&x;
              uintptr_t l = g;
              int *q = (int*)l;
              return *q;
            }"#,
            Exit(3),
            Exit(3),
            &[],
        ),
        tc(
            "uintptr/from-plain-integer-untagged",
            &[UIntPtrProperties, Unforgeability],
            "a uintptr_t created from an integer constant is NULL-derived and untagged",
            r#"
            #include <stdint.h>
            int main(void) {
              uintptr_t u = 0x1234;
              assert(!cheri_tag_get(u));
              assert(cheri_address_get(u) == 0x1234);
              assert(u == 0x1234);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "uintptr/array-shift-s37",
            &[UIntPtrArithmetic, UIntPtrProperties],
            "§3.7: size_t*n + intptr_t derives the result from the intptr_t operand",
            r#"
            #include <stdint.h>
            int* array_shift(int *x, int n) {
              intptr_t ip = (intptr_t)x;
              intptr_t ip1 = sizeof(int)*n + ip;
              int *p = (int*)ip1;
              return p;
            }
            int main(void) {
              int a[3] = {5, 6, 7};
              assert(*array_shift(a, 2) == 7);
              assert(cheri_tag_get(array_shift(a, 1)));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "uintptr/transient-nonrepresentable-s33",
            &[UIntPtrArithmetic, UIntPtrProperties, OptimisationEffects],
            "§3.3: a transient non-representable excursion poisons the value (ghost state)",
            r#"
            #include <stdint.h>
            void f(int a, int b) {
              int x[2];
              int *p = &x[0];
              uintptr_t i = (uintptr_t)p;
              uintptr_t j = i + a;
              uintptr_t k = j - b;
              int *q = (int*)k;
              *q = 1;
            }
            int main(void) {
              f(100001*sizeof(int), 100000*sizeof(int));
            }"#,
            Ub(Ub::CheriUndefinedTag),
            Trap,
            &[],
        ),
        tc(
            "uintptr/derivation-left-biased",
            &[UIntPtrArithmetic, UIntPtrProperties],
            "§3.7: for two capability operands the result derives from the left one",
            r#"
            #include <stdint.h>
            int main(void) {
              int x=0, y=0;
              intptr_t a = (intptr_t)&x;
              intptr_t b = (intptr_t)&y;
              intptr_t c0 = a + b;
              /* derived from a: untagged (far out of a's bounds) but its
                 base is a's base, not b's */
              assert(cheri_base_get(c0) == cheri_base_get(a)
                     || !cheri_tag_get(c0));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "uintptr/converted-operand-loses-derivation",
            &[UIntPtrArithmetic, UIntPtrProperties, Casts],
            "§3.7/§4.4: the operand converted from a non-capability type never supplies the capability",
            r#"
            #include <stdint.h>
            int main(void) {
              int a[2] = {8, 9};
              uintptr_t u = (uintptr_t)a;
              /* int + uintptr: left is converted, so derive from the right */
              uintptr_t v = (int)sizeof(int) + u;
              int *p = (int*)v;
              assert(cheri_tag_get(p));
              return *p;
            }"#,
            Exit(9),
            Exit(9),
            &[],
        ),
        tc(
            "uintptr/bitwise-align-down",
            &[UIntPtrBitwise, UIntPtrArithmetic, UIntPtrProperties],
            "masking low bits for alignment keeps the capability usable",
            r#"
            #include <stdint.h>
            int main(void) {
              long a[4];
              uintptr_t u = (uintptr_t)&a[1];
              u &= ~(uintptr_t)(sizeof(long) - 1); /* already aligned: no-op */
              long *p = (long*)u;
              assert(p == &a[1]);
              assert(cheri_tag_get(p));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "uintptr/bitwise-tag-bits-roundtrip",
            &[UIntPtrBitwise, UIntPtrProperties],
            "stuffing metadata in low pointer bits and clearing it again (tagged-pointer idiom)",
            r#"
            #include <stdint.h>
            int main(void) {
              long x = 77;
              uintptr_t u = (uintptr_t)&x;
              u |= 1;            /* set a low tag bit (stays in bounds) */
              assert(u & 1);
              u &= ~(uintptr_t)1;
              long *p = (long*)u;
              assert(cheri_tag_get(p));
              return (int)*p;
            }"#,
            Exit(77),
            Exit(77),
            &[],
        ),
        tc(
            "uintptr/bitwise-mask-int-appendix-a",
            &[UIntPtrBitwise, Representability, UIntPtrProperties],
            "Appendix A: cap & INT_MAX moves the address far below the bounds on most layouts",
            r#"
            #include <stdint.h>
            int main(void) {
              int x[2] = {42, 43};
              intptr_t ip = (intptr_t)&x;
              intptr_t ip3 = ip & INT_MAX;
              int *q = (int*)ip3;
              *q = 1;  /* ghost-unspecified / tag-cleared on clang layouts */
              return 0;
            }"#,
            Ub(Ub::CheriUndefinedTag),
            Trap,
            // GCC's bare-metal allocator keeps the stack below 2^31, so the
            // mask is the identity and the program simply works (Appendix A,
            // gcc-morello rows).
            &[("gcc-morello", Exit(0))],
        ),
        tc(
            "ptrint/cast-to-long-loses-capability",
            &[PtrIntConversion, Unforgeability],
            "casting to a plain integer keeps only the address; rebuilding gives an untagged pointer",
            r#"
            #include <stdint.h>
            int main(void) {
              int x = 5;
              long n = (long)(uintptr_t)&x;    /* value only */
              int *p = (int*)(uintptr_t)n;     /* NULL-derived */
              assert(p == &x);                 /* address matches */
              assert(!cheri_tag_get(p));
              return *p;                        /* cannot be used */
            }"#,
            Ub(Ub::CheriInvalidCap),
            Trap,
            &[],
        ),
        tc(
            "ptrint/ptraddr-basics",
            &[PtrAddr, PtrIntConversion, Signedness],
            "ptraddr_t holds the address as a plain integer (§3.10)",
            r#"
            #include <stdint.h>
            int main(void) {
              int x;
              ptraddr_t a = (ptraddr_t)(uintptr_t)&x;
              assert(a == cheri_address_get(&x));
              assert(sizeof(ptraddr_t) == 8);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "ptrint/ptraddr-hash-index",
            &[PtrAddr, UIntPtrArithmetic],
            "the hash-table-index idiom should use ptraddr_t (§3.3 option 2 discussion)",
            r#"
            #include <stdint.h>
            int main(void) {
              int x;
              ptraddr_t a = (ptraddr_t)(uintptr_t)&x;
              unsigned long idx = (a >> 4) % 128;
              assert(idx < 128);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "ptrint/truncating-casts",
            &[PtrIntConversion, Signedness],
            "casting a pointer to narrower integers truncates the address",
            r#"
            #include <stdint.h>
            int main(void) {
              int x;
              uintptr_t u = (uintptr_t)&x;
              unsigned char lo = (unsigned char)u;
              unsigned short lo16 = (unsigned short)u;
              assert(lo == (u & 0xFF));
              assert(lo16 == (u & 0xFFFF));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "ptrint/expose-then-recover-provenance",
            &[PtrIntConversion, Provenance],
            "PNVI-ae: casting to an integer exposes; casting back recovers provenance but not the tag",
            r#"
            #include <stdint.h>
            int main(void) {
              int x = 1;
              unsigned long n = (unsigned long)(uintptr_t)&x; /* exposes */
              int *p = (int*)(uintptr_t)n;
              /* abstract machine: provenance recovered, but the capability
                 is NULL-derived — the CHERI check fires first */
              return *p;
            }"#,
            Ub(Ub::CheriInvalidCap),
            Trap,
            &[],
        ),
        tc(
            "ptrint/int-to-pointer-no-expose-empty-provenance",
            &[PtrIntConversion, Provenance],
            "an address guessed without any exposed allocation has empty provenance",
            r#"
            #include <stdint.h>
            int main(void) {
              int x = 1;
              /* no cast of &x to integer happens: x is never exposed */
              uintptr_t guess = 0x12340;
              int *p = (int*)guess;
              return *p;
            }"#,
            Ub(Ub::CheriInvalidCap),
            Trap,
            &[],
        ),
        tc(
            "sign/uintptr-wraps-intptr-may-go-negative",
            &[Signedness, UIntPtrArithmetic],
            "uintptr_t arithmetic wraps; the same bits reinterpreted as intptr_t are negative",
            r#"
            #include <stdint.h>
            int main(void) {
              uintptr_t z = 0;
              uintptr_t m = z - 1;           /* wraps to 2^64-1 */
              intptr_t s = (intptr_t)m;
              assert(m > 0);
              assert(s == -1);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
    ]
}
