//! The 94 test programs, grouped by theme.

mod align_alloc;
mod funcptr;
mod intrinsics;
mod misc;
mod pointers;
mod uintptr;
mod unforge;

use crate::{Category, Expected, TestCase};

/// Shared constructor used by the submodules.
pub fn tc(
    id: &'static str,
    cats: &'static [Category],
    desc: &'static str,
    src: &'static str,
    expect_ref: Expected,
    expect_hw: Expected,
    overrides: &'static [(&'static str, Expected)],
) -> TestCase {
    TestCase {
        id,
        cats,
        desc,
        source: src,
        expect_ref,
        expect_hw,
        overrides,
    }
}

/// All tests, in stable order.
pub fn all() -> Vec<TestCase> {
    let mut v = Vec::new();
    v.extend(align_alloc::tests());
    v.extend(pointers::tests());
    v.extend(uintptr::tests());
    v.extend(intrinsics::tests());
    v.extend(unforge::tests());
    v.extend(funcptr::tests());
    v.extend(misc::tests());
    v
}
