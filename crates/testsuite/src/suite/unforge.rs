//! Unforgeability, representation access and optimisation-effect tests
//! (Table 1 rows 17, 22, 30).

use super::tc;
use crate::Category::*;
use crate::Expected::*;
use crate::TestCase;
use cheri_mem::Ub;

pub fn tests() -> Vec<TestCase> {
    vec![
        tc(
            "repr/identity-byte-write-s35",
            &[RepresentationAccess, Unforgeability, OptimisationEffects],
            "§3.5: a byte write to a stored capability poisons it — unless the optimiser removes the identity write",
            r#"
            int main(void) {
              int x = 0;
              int *px = &x;
              unsigned char *p = (unsigned char *)&px;
              p[0] = p[0];
              *px = 1;
              return x;
            }"#,
            Ub(Ub::CheriUndefinedTag),
            Trap,
            &[
                ("clang-morello-O3", Exit(1)),
                ("clang-riscv-O3", Exit(1)),
                ("gcc-morello-O3", Exit(1)),
            ],
        ),
        tc(
            "repr/byte-copy-loop-s35",
            &[RepresentationAccess, Unforgeability, OptimisationEffects],
            "§3.5: a manual byte-copy loop loses the tag; converted to memcpy at O3 it preserves it",
            r#"
            int main(void) {
              int x = 0;
              int *px0 = &x;
              int *px1;
              unsigned char *p0 = (unsigned char *)&px0;
              unsigned char *p1 = (unsigned char *)&px1;
              for (int i = 0; i < sizeof(int*); i++)
                p1[i] = p0[i];
              *px1 = 1;
              return x;
            }"#,
            AnyUb,
            Trap,
            &[
                ("clang-morello-O3", Exit(1)),
                ("clang-riscv-O3", Exit(1)),
                ("gcc-morello-O3", Exit(1)),
            ],
        ),
        tc(
            "repr/memcpy-preserves-capability",
            &[RepresentationAccess, StdlibFunctions, Alignment, OptimisationEffects],
            "§3.5: memcpy uses capability-sized accesses and preserves tags",
            r#"
            int main(void) {
              int x = 0;
              int *px0 = &x;
              int *px1;
              memcpy(&px1, &px0, sizeof(int*));
              *px1 = 1;
              return x;
            }"#,
            Exit(1),
            Exit(1),
            &[],
        ),
        tc(
            "repr/partial-memcpy-poisons",
            &[RepresentationAccess, StdlibFunctions, Unforgeability, OptimisationEffects],
            "§3.5: copying part of a capability is a representation access; the result is unusable (at every optimisation level)",
            r#"
            int main(void) {
              int x = 0;
              int *px0 = &x;
              int *px1 = &x;
              /* overwrite half of px1's representation from px0's */
              memcpy(&px1, &px0, sizeof(int*) / 2);
              *px1 = 1;
              return x;
            }"#,
            AnyUb,
            Trap,
            &[],
        ),
        tc(
            "repr/reading-bytes-is-allowed",
            &[RepresentationAccess, Provenance],
            "reading a capability's representation bytes is defined (and exposes, PNVI-ae)",
            r#"
            int main(void) {
              int x = 0;
              int *px = &x;
              unsigned char *p = (unsigned char *)&px;
              int sum = 0;
              for (int i = 0; i < sizeof(int*); i++) sum += p[i];
              assert(sum != 0);   /* the address bytes are not all zero */
              *px = 7;            /* px itself is untouched and usable */
              return x;
            }"#,
            Exit(7),
            Exit(7),
            &[],
        ),
        tc(
            "repr/no-tag-resurrection",
            &[RepresentationAccess, Unforgeability, OptimisationEffects],
            "restoring the original bytes after a representation write does not restore the tag",
            r#"
            int main(void) {
              int x = 0;
              int *px = &x;
              unsigned char *p = (unsigned char *)&px;
              unsigned char saved = p[0];
              p[0] = saved ^ 0xFF;
              p[0] = saved;       /* bytes identical to the original now */
              *px = 1;            /* ...but the capability stays poisoned */
              return x;
            }"#,
            Ub(Ub::CheriUndefinedTag),
            Trap,
            &[],
        ),
        tc(
            "opt/constant-folding-is-semantics-preserving",
            &[OptimisationEffects, UIntPtrArithmetic],
            "folding (u)intptr_t constant chains never changes defined results",
            r#"
            #include <stdint.h>
            int main(void) {
              int a[4] = {1,2,3,4};
              uintptr_t u = (uintptr_t)a;
              uintptr_t v = (u + 2*sizeof(int)) - sizeof(int);
              int *p = (int*)v;
              return *p;
            }"#,
            Exit(2),
            Exit(2),
            &[],
        ),
        tc(
            "opt/uintptr-excursion-visible-at-o0-only",
            &[OptimisationEffects, UIntPtrArithmetic],
            "a constant transient excursion traps at O0 and is folded away at O3",
            r#"
            #include <stdint.h>
            int main(void) {
              int a[2] = {31, 32};
              int *p = a;
              int *q = p + 1000000;
              q = q - 1000000;
              return *q;
            }"#,
            Ub(Ub::OutOfBoundPtrArithmetic),
            Trap,
            &[
                ("clang-morello-O3", Exit(31)),
                ("clang-riscv-O3", Exit(31)),
                ("gcc-morello-O3", Exit(31)),
            ],
        ),
    ]
}
