//! Function-pointer tests (Table 1 row 10).

use super::tc;
use crate::Category::*;
use crate::Expected::*;
use crate::TestCase;
use cheri_mem::Ub;

pub fn tests() -> Vec<TestCase> {
    vec![
        tc(
            "fp/basic-indirect-call",
            &[FunctionPointers],
            "calling through a function pointer, with and without explicit deref",
            r#"
            int add(int a, int b) { return a + b; }
            int main(void) {
              int (*f)(int, int) = add;
              assert(f(2, 3) == 5);
              assert((*f)(4, 5) == 9);
              assert((&add)(1, 1) == 2);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "fp/passing-and-returning",
            &[FunctionPointers],
            "function pointers pass through calls like any capability argument",
            r#"
            int twice(int x) { return 2 * x; }
            int thrice(int x) { return 3 * x; }
            int apply(int (*f)(int), int x) { return f(x); }
            int (*pick(int which))(int) { return which ? twice : thrice; }
            int main(void) {
              assert(apply(pick(1), 10) == 20);
              assert(apply(pick(0), 10) == 30);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "fp/table-dispatch",
            &[FunctionPointers],
            "arrays of function pointers initialise and dispatch",
            r#"
            int zero(void) { return 0; }
            int one(void) { return 1; }
            int two(void) { return 2; }
            int main(void) {
              int (*table[3])(void) = { zero, one, two };
              int s = 0;
              for (int i = 0; i < 3; i++) s += table[i]();
              return s;
            }"#,
            Exit(3),
            Exit(3),
            &[],
        ),
        tc(
            "fp/equality-and-null",
            &[FunctionPointers, Equality, NullCapabilities],
            "function pointers compare by address; a null function pointer is false",
            r#"
            int f(void) { return 1; }
            int g(void) { return 2; }
            int main(void) {
              int (*pf)(void) = f;
              int (*pg)(void) = g;
              int (*pn)(void) = 0;
              assert(pf == f);
              assert(pf != pg);
              assert(!pn);
              assert(pn == NULL);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "fp/sentry-sealed",
            &[FunctionPointers, Unforgeability, Intrinsics],
            "function pointers are sealed entry (sentry) capabilities",
            r#"
            int f(void) { return 1; }
            int main(void) {
              int (*pf)(void) = f;
              assert(cheri_tag_get(pf));
              assert(cheri_is_sealed(pf));
              assert(cheri_type_get(pf) == 1);   /* sentry otype */
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "fp/untagged-call-faults",
            &[FunctionPointers, Unforgeability],
            "calling through a tag-cleared function pointer faults",
            r#"
            int f(void) { return 1; }
            int main(void) {
              int (*pf)(void) = cheri_tag_clear(f);
              return pf();
            }"#,
            Ub(Ub::CheriInvalidCap),
            Ub(Ub::CheriInvalidCap),
            &[],
        ),
        tc(
            "fp/code-capability-not-writable",
            &[FunctionPointers, Permissions],
            "function capabilities lack store permission — code is immutable",
            r#"
            int f(void) { return 1; }
            int main(void) {
              unsigned char *p = (unsigned char *)f;
              p[0] = 0x90;
              return 0;
            }"#,
            AnyUb,
            Trap,
            &[],
        ),
        tc(
            "fp/uintptr-roundtrip",
            &[FunctionPointers, PtrIntConversion, UIntPtrProperties],
            "function pointers survive a (u)intptr_t round trip (callbacks in integers)",
            r#"
            #include <stdint.h>
            int f(int x) { return x + 1; }
            int main(void) {
              uintptr_t u = (uintptr_t)f;
              int (*pf)(int) = (int (*)(int))u;
              return pf(41);
            }"#,
            Exit(42),
            Exit(42),
            &[],
        ),
        tc(
            "fp/stored-in-struct",
            &[FunctionPointers, Initialization],
            "function pointers in struct fields keep their (sealed) capability",
            r#"
            struct ops { int (*op)(int, int); int bias; };
            int mul(int a, int b) { return a * b; }
            int main(void) {
              struct ops o = { mul, 5 };
              assert(cheri_is_sealed(o.op));
              return o.op(6, 7) + o.bias;
            }"#,
            Exit(47),
            Exit(47),
            &[],
        ),
    ]
}
