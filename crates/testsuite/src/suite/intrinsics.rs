//! CHERI intrinsics tests (Table 1 rows 16, 23): field accessors, bounds
//! and permission manipulation, sealing.

use super::tc;
use crate::Category::*;
use crate::Expected::*;
use crate::TestCase;
use cheri_mem::Ub;

pub fn tests() -> Vec<TestCase> {
    vec![
        tc(
            "intr/tag-get-clear-is-valid",
            &[Intrinsics, Unforgeability],
            "cheri_tag_get / cheri_tag_clear / cheri_is_valid basics",
            r#"
            int main(void) {
              int x;
              int *p = &x;
              assert(cheri_tag_get(p));
              assert(cheri_is_valid(p));
              int *q = cheri_tag_clear(p);
              assert(!cheri_tag_get(q));
              assert(cheri_tag_get(p));   /* p itself unchanged */
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "intr/address-set-nonrepresentable",
            &[Intrinsics, Representability, Unforgeability],
            "cheri_address_set far outside clears the tag but keeps the requested address (§3.2)",
            r#"
            int main(void) {
              int x;
              int *p = &x;
              size_t far = cheri_address_get(p) + (1 << 24);
              int *q = cheri_address_set(p, far);
              assert(!cheri_tag_get(q));
              assert(cheri_address_get(q) == far);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "intr/bounds-set-narrowing-enforced",
            &[Intrinsics, SubobjectBounds],
            "cheri_bounds_set narrows; access past the narrowed top is caught",
            r#"
            int main(void) {
              char buf[16];
              char *p = cheri_bounds_set(buf, 8);
              assert(cheri_length_get(p) == 8);
              p[7] = 1;    /* fine */
              p[8] = 1;    /* narrowed bound exceeded */
              return 0;
            }"#,
            Ub(Ub::CheriBoundsViolation),
            Trap,
            &[],
        ),
        tc(
            "intr/bounds-set-exact-untags-imprecise",
            &[Intrinsics, Representability],
            "cheri_bounds_set_exact clears the tag when the length is not exactly representable",
            r#"
            int main(void) {
              char *big = malloc((1 << 20) + 64);
              size_t odd = (1 << 20) + 3;   /* not representable exactly */
              char *q = cheri_bounds_set_exact(big, odd);
              assert(!cheri_tag_get(q));
              char *r = cheri_bounds_set(big, odd); /* rounds outward */
              assert(cheri_tag_get(r));
              assert(cheri_length_get(r) >= odd);
              free(big);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "intr/perms-and-enforced",
            &[Intrinsics, Permissions],
            "dropping the store permission makes writes fault (§3.9 mechanism)",
            r#"
            int main(void) {
              int x = 1;
              int *p = &x;
              /* keep LOAD (bit 17) only */
              int *ro = cheri_perms_and(p, (size_t)1 << 17);
              assert(*ro == 1);
              *ro = 2;
              return 0;
            }"#,
            Ub(Ub::CheriInsufficientPermissions),
            Trap,
            &[],
        ),
        tc(
            "intr/perms-cannot-be-regained",
            &[Intrinsics, Permissions, Unforgeability],
            "permission clearing is monotone: and-ing with all ones restores nothing",
            r#"
            int main(void) {
              int x;
              int *p = &x;
              size_t all = ~(size_t)0;
              int *less = cheri_perms_and(p, (size_t)1 << 17);
              int *back = cheri_perms_and(less, all);
              assert(cheri_perms_get(back) == cheri_perms_get(less));
              assert(cheri_perms_get(back) != cheri_perms_get(p));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "intr/seal-unseal-roundtrip",
            &[Intrinsics, Unforgeability],
            "sealing makes a capability immutable and unusable until unsealed",
            r#"
            int main(void) {
              int x = 5;
              int *p = &x;
              void *sealer = cheri_address_set(cheri_ddc_get(), 42);
              int *s = cheri_seal(p, sealer);
              assert(cheri_is_sealed(s));
              assert(cheri_type_get(s) == 42);
              int *u = cheri_unseal(s, sealer);
              assert(!cheri_is_sealed(u));
              return *u;
            }"#,
            Exit(5),
            Exit(5),
            &[],
        ),
        tc(
            "intr/sealed-capability-unusable",
            &[Intrinsics, Unforgeability],
            "dereferencing a sealed capability faults",
            r#"
            int main(void) {
              int x = 5;
              void *sealer = cheri_address_set(cheri_ddc_get(), 7);
              int *s = cheri_seal(&x, sealer);
              return *s;
            }"#,
            Ub(Ub::CheriInvalidCap),
            Trap,
            &[],
        ),
        tc(
            "intr/representable-length-and-mask",
            &[Intrinsics, Representability, MorelloEncoding],
            "cheri_representable_length / _alignment_mask compose to exact bounds",
            r#"
            int main(void) {
              size_t len = (1 << 16) + 7;
              size_t rlen = cheri_representable_length(len);
              size_t mask = cheri_representable_alignment_mask(len);
              assert(rlen >= len);
              assert((rlen & ~mask) == 0);
              /* small lengths are exactly representable */
              assert(cheri_representable_length(100) == 100);
              assert(cheri_representable_alignment_mask(100) == ~(size_t)0);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
    ]
}
