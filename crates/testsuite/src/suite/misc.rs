//! Const, initialisation, temporal-safety, null, provenance and
//! miscellaneous tests (Table 1 rows 5–8, 12, 19, 24, 31, 33).

use super::tc;
use crate::Category::*;
use crate::Expected::*;
use crate::TestCase;
use cheri_mem::Ub;

pub fn tests() -> Vec<TestCase> {
    vec![
        tc(
            "const/object-write-rejected",
            &[Const, Permissions],
            "§3.9: writing a const-qualified object through a cast is stopped by the capability",
            r#"
            int main(void) {
              const int c = 1;
              int *p = (int*)&c;
              *p = 2;
              return c;
            }"#,
            AnyUb,
            Trap,
            &[],
        ),
        tc(
            "const/cast-roundtrip-is-noop",
            &[Const, Casts],
            "§3.9: non-const → const → non-const casts are no-ops on the capability",
            r#"
            int main(void) {
              int x = 1;
              const int *cp = &x;
              assert(*cp == 1);
              int *p = (int*)cp;
              *p = 5;           /* legal: the object is not const */
              return x;
            }"#,
            Exit(5),
            Exit(5),
            &[],
        ),
        tc(
            "const/readonly-capability-perms",
            &[Const, Permissions, Intrinsics],
            "a pointer to a const object lacks store permissions (§3.9)",
            r#"
            int main(void) {
              const int c = 3;
              const int *p = &c;
              size_t store_bit = (size_t)1 << 16;
              assert(!(cheri_perms_get(p) & store_bit));
              int x = 0;
              assert(cheri_perms_get(&x) & store_bit);
              return *p;
            }"#,
            Exit(3),
            Exit(3),
            &[],
        ),
        tc(
            "const/string-literal-immutable",
            &[Const, StdlibFunctions],
            "string literals are read-only objects",
            r#"
            int main(void) {
              char *s = (char*)"hello";
              s[0] = 'H';
              return 0;
            }"#,
            AnyUb,
            Trap,
            &[],
        ),
        tc(
            "const/global-const-table",
            &[Const, GlobalVsLocal, Initialization],
            "const globals are initialised then frozen read-only",
            r#"
            const int table[3] = {10, 20, 30};
            int main(void) {
              int s = table[0] + table[1] + table[2];
              assert(s == 60);
              int *p = (int*)&table[1];
              *p = 99;
              return 0;
            }"#,
            AnyUb,
            Trap,
            &[],
        ),
        tc(
            "init/uninitialised-read",
            &[Initialization],
            "reading an uninitialised local is undefined",
            r#"
            int main(void) {
              int x;
              return x;
            }"#,
            Ub(Ub::UninitialisedRead),
            Ub(Ub::UninitialisedRead),
            &[],
        ),
        tc(
            "init/globals-zero-initialised",
            &[Initialization, NullCapabilities, GlobalVsLocal, Allocator, FunctionPointers],
            "objects with static storage are zero-initialised; a zeroed pointer is null",
            r#"
            int *gp;
            int gi;
            int (*gf)(void);
            int main(void) {
              assert(gi == 0);
              assert(gp == NULL);
              assert(gf == NULL);      /* zeroed function pointer is null */
              assert(!cheri_tag_get(gp));
              assert(!cheri_tag_get(gf));
              return *gp;     /* null dereference */
            }"#,
            Ub(Ub::NullDereference),
            Ub(Ub::NullDereference),
            &[],
        ),
        tc(
            "null/dereference-faults",
            &[NullCapabilities],
            "dereferencing NULL is caught",
            r#"
            int main(void) {
              int *p = NULL;
              return *p;
            }"#,
            Ub(Ub::NullDereference),
            Ub(Ub::NullDereference),
            &[],
        ),
        tc(
            "null/capability-fields",
            &[NullCapabilities, Intrinsics, MorelloEncoding],
            "the NULL capability: untagged, address 0, no permissions",
            r#"
            int main(void) {
              void *n = NULL;
              assert(!cheri_tag_get(n));
              assert(cheri_address_get(n) == 0);
              assert(cheri_perms_get(n) == 0);
              assert(!cheri_is_sealed(n));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "uaf/heap-read-after-free",
            &[UseAfterFree, Allocator, StdlibFunctions],
            "loading through a freed heap pointer is temporal UB",
            r#"
            int main(void) {
              int *p = malloc(sizeof(int));
              *p = 5;
              free(p);
              return *p;
            }"#,
            Ub(Ub::AccessDeadAllocation),
            Exit(5),
            &[],
        ),
        tc(
            "uaf/double-free",
            &[UseAfterFree, StdlibFunctions, Allocator],
            "freeing twice is UB (detected by the abstract machine only)",
            r#"
            int main(void) {
              int *p = malloc(4);
              free(p);
              free(p);
              return 0;
            }"#,
            Ub(Ub::DoubleFree),
            Ub(Ub::DoubleFree),
            &[],
        ),
        tc(
            "uaf/escaped-stack-pointer",
            &[UseAfterFree, GlobalVsLocal],
            "using a pointer to a dead stack frame is temporal UB",
            r#"
            int *gp;
            int f(void) { int local = 9; gp = &local; return local; }
            int main(void) {
              f();
              return *gp;
            }"#,
            Ub(Ub::AccessDeadAllocation),
            Exit(9),
            &[],
        ),
        tc(
            "uaf/realloc-invalidates-old",
            &[UseAfterFree, StdlibFunctions, Allocator],
            "after realloc the old pointer's allocation is dead",
            r#"
            int main(void) {
              int *p = malloc(sizeof(int));
              *p = 1;
              int *q = realloc(p, 64 * sizeof(int));
              assert(q[0] == 1);
              int r = *p;       /* old allocation is gone */
              free(q);
              return r;
            }"#,
            Ub(Ub::AccessDeadAllocation),
            Exit(1),
            &[],
        ),
        tc(
            "uaf/hardware-gap-s311",
            &[UseAfterFree, Provenance],
            "§3.11: without revocation, hardware cannot catch use-after-free — only the abstract machine does",
            r#"
            int main(void) {
              int *p = malloc(sizeof(int));
              *p = 123;
              free(p);
              /* The capability is still tagged and in bounds: hardware has
                 no objection, the temporal error is invisible to it. */
              assert(cheri_tag_get(p));
              *p = 7;
              return 0;
            }"#,
            Ub(Ub::AccessDeadAllocation),
            Exit(0),
            &[],
        ),
        tc(
            "prov/union-pun-s34",
            &[Provenance, UIntPtrProperties, RepresentationAccess],
            "§3.4: pointer/uintptr_t type punning through a union preserves provenance and tag",
            r#"
            #include <stdint.h>
            union ptr {
              int *ptr;
              uintptr_t iptr;
            };
            int main(void) {
              int arr[] = {42, 43};
              union ptr x;
              x.ptr = arr;
              x.iptr += sizeof(int);
              assert(*x.ptr == 43);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "cc/capability-arguments",
            &[CallingConvention, CapAssignment, Casts, FunctionPointers],
            "capabilities pass through many-argument calls and mixed types unscathed",
            r#"
            #include <stdint.h>
            int bump(int v) { return v + 1; }
            long f(int a, long b, int *p, uintptr_t u, char c, int *q,
                   short s, uintptr_t v, int (*g)(int)) {
              return a + b + *p + (int)(u == v) + c + *q + s + g(0);
            }
            int main(void) {
              int x = 10, y = 20;
              uintptr_t u = (uintptr_t)&x;
              long r = f(1, 2, &x, u, 3, &y, 4, u, bump);
              return (int)r;   /* 1+2+10+1+3+20+4+1 = 42 */
            }"#,
            Exit(42),
            Exit(42),
            &[],
        ),
        tc(
            "subobject/container-of-idiom",
            &[SubobjectBounds, Casts, Offsetting],
            "§3.8: no subobject narrowing by default, so container-of works",
            r#"
            struct outer { int header; int payload; };
            int main(void) {
              struct outer o = { 7, 42 };
              int *p = &o.payload;
              /* move back to the containing struct */
              struct outer *c = (struct outer *)(p - 1);
              assert(c->header == 7);
              return c->payload;
            }"#,
            Exit(42),
            Exit(42),
            &[],
        ),
        tc(
            "global/address-of-global-vs-local",
            &[GlobalVsLocal, Equality, Allocator],
            "pointers to globals and locals are distinct and live in distinct regions",
            r#"
            #include <stdint.h>
            int g;
            int main(void) {
              int l;
              assert(&g != &l);
              assert(cheri_tag_get(&g) && cheri_tag_get(&l));
              assert(cheri_base_get(&g) != cheri_base_get(&l));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "casts/char-aliasing-read",
            &[Casts, RepresentationAccess, Signedness],
            "unsigned char* may inspect any object representation",
            r#"
            int main(void) {
              unsigned int x = 0x01020304;
              unsigned char *p = (unsigned char *)&x;
              /* little-endian representation */
              assert(p[0] == 4 && p[3] == 1);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "morello/capability-is-128-bits",
            &[MorelloEncoding, UIntPtrProperties, Alignment],
            "Morello capabilities occupy 16 bytes with 16-byte alignment",
            r#"
            int main(void) {
              assert(sizeof(void*) == 16);
              assert(_Alignof(void*) == 16);
              assert(sizeof(int*) == sizeof(void (*)(void)));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "morello/compression-rounds-large-bounds",
            &[MorelloEncoding, Representability, Alignment],
            "bounds compression: large odd lengths round up, small ones stay exact",
            r#"
            int main(void) {
              assert(cheri_representable_length(4095) == 4095);
              size_t big = (1 << 22) + 1;
              size_t r = cheri_representable_length(big);
              assert(r > big);
              assert(cheri_representable_length(r) == r);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
    ]
}
