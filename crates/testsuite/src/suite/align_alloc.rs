//! Alignment and allocator-interface tests (Table 1 rows 1–2).

use super::tc;
use crate::Category::*;
use crate::Expected::*;
use crate::TestCase;

pub fn tests() -> Vec<TestCase> {
    vec![
        tc(
            "align/local-pointer-object",
            &[Alignment, UIntPtrProperties],
            "capability-typed locals are capability-aligned in memory",
            r#"
            #include <stdint.h>
            int main(void) {
              int x = 0;
              int *px = &x;
              int **ppx = &px;
              return (uintptr_t)ppx % sizeof(void*) == 0 ? 0 : 1;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "align/struct-capability-field",
            &[Alignment],
            "capability fields inside structs are 16-aligned (padding inserted)",
            r#"
            #include <stdint.h>
            struct s { char c; int *p; };
            int main(void) {
              struct s v;
              assert(sizeof(struct s) == 2 * sizeof(void*));
              assert((uintptr_t)&v.p % sizeof(void*) == 0);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "align/malloc-result",
            &[Alignment, Allocator],
            "malloc returns capability-aligned memory",
            r#"
            #include <stdint.h>
            int main(void) {
              void *p = malloc(1);
              void *q = malloc(3);
              assert((uintptr_t)p % 16 == 0);
              assert((uintptr_t)q % 16 == 0);
              free(p); free(q);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "align/global-pointer-array",
            &[Alignment, GlobalVsLocal],
            "global arrays of pointers are capability-aligned",
            r#"
            #include <stdint.h>
            int *g[3];
            int main(void) {
              return (uintptr_t)&g[0] % sizeof(void*) == 0
                  && (uintptr_t)&g[1] - (uintptr_t)&g[0] == sizeof(void*) ? 0 : 1;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "align/alignof-capability-types",
            &[Alignment, UIntPtrProperties],
            "_Alignof of capability-carrying types equals their size",
            r#"
            #include <stdint.h>
            int main(void) {
              assert(_Alignof(int*) == sizeof(int*));
              assert(_Alignof(uintptr_t) == sizeof(uintptr_t));
              assert(_Alignof(intptr_t) == _Alignof(uintptr_t));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "align/misaligned-capability-store",
            &[Alignment, RepresentationAccess, Unforgeability],
            "a capability stored at a misaligned address cannot keep its tag",
            r#"
            int main(void) {
              int x = 0;
              char buf[64];
              int *px = &x;
              /* Copy the capability bytes to an odd offset and back. */
              memcpy(buf + 1, &px, sizeof(int*));
              int *q;
              memcpy(&q, buf + 1, sizeof(int*));
              *q = 1; /* q lost its tag on the misaligned trip */
              return 0;
            }"#,
            AnyUb,
            Trap,
            &[],
        ),
        tc(
            "alloc/local-bounds-match-object",
            &[Allocator, Intrinsics],
            "a fresh local's capability bounds exactly cover the object",
            r#"
            int main(void) {
              int x = 0;
              int a[10];
              assert(cheri_length_get(&x) == sizeof(int));
              assert(cheri_length_get(a) == sizeof(a));
              assert(cheri_base_get(&x) == cheri_address_get(&x));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "alloc/malloc-bounds-match-request",
            &[Allocator, Intrinsics],
            "small heap allocations have exact bounds",
            r#"
            int main(void) {
              char *p = malloc(100);
              assert(cheri_tag_get(p));
              assert(cheri_length_get(p) == 100);
              free(p);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "alloc/large-malloc-padded-for-representability",
            &[Allocator, Representability, MorelloEncoding],
            "large allocations are padded so their capability is exactly representable (§3.2)",
            r#"
            int main(void) {
              size_t want = (1 << 20) + 3;
              char *p = malloc(want);
              assert(cheri_tag_get(p));
              assert(cheri_length_get(p) >= want);
              assert(cheri_length_get(p) == cheri_representable_length(want));
              free(p);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "alloc/stack-direction-and-regions",
            &[Allocator, GlobalVsLocal, RelationalOperators],
            "stack objects live above the heap and globals in all profiles",
            r#"
            #include <stdint.h>
            int g;
            int main(void) {
              int l;
              int *h = malloc(4);
              assert((uintptr_t)&g < (uintptr_t)&l);
              assert((uintptr_t)h < (uintptr_t)&l);
              free(h);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
    ]
}
