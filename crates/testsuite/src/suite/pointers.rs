//! Pointer construction, arithmetic, comparison, one-past and
//! out-of-bounds tests (Table 1 rows 3–4, 9, 20–21, 26, 28).

use super::tc;
use crate::Category::*;
use crate::Expected::*;
use crate::TestCase;
use cheri_mem::Ub;

pub fn tests() -> Vec<TestCase> {
    vec![
        tc(
            "array/address-of-array-covers-whole",
            &[ArrayAddresses, Intrinsics],
            "&array and &array[0] have the same address and full bounds",
            r#"
            #include <stdint.h>
            int main(void) {
              int x[2] = {1, 2};
              int *p = &x[0];
              assert((uintptr_t)p == (uintptr_t)x);
              assert(cheri_length_get(p) == sizeof(x));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "array/element-pointer-keeps-allocation-bounds",
            &[ArrayAddresses, SubobjectBounds],
            "&x[1] keeps the whole array's bounds by default (§3.8, no subobject narrowing)",
            r#"
            int main(void) {
              int x[4] = {1, 2, 3, 4};
              int *p = &x[2];
              assert(cheri_base_get(p) == cheri_address_get(&x[0]));
              assert(cheri_length_get(p) == sizeof(x));
              /* container-of style backwards movement is fine */
              int *q = p - 2;
              return *q;
            }"#,
            Exit(1),
            Exit(1),
            &[],
        ),
        tc(
            "offset/index-equals-shift",
            &[Offsetting, PtrArithImpl, Equality],
            "&a[i] equals a + i, and the capability address moves by i*elem",
            r#"
            #include <stdint.h>
            int main(void) {
              int a[8];
              for (int i = 0; i < 8; i++) {
                assert(&a[i] == a + i);
                assert(cheri_address_get(&a[i]) == cheri_address_get(a) + i * sizeof(int));
              }
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "offset/pointer-difference",
            &[Offsetting, PtrArithImpl],
            "pointer subtraction yields element counts",
            r#"
            int main(void) {
              long a[10];
              long *p = &a[2];
              long *q = &a[9];
              assert(q - p == 7);
              assert(p - q == -7);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "onepast/construct-compare-but-not-access",
            &[OnePast, OutOfBoundsAccess, Equality],
            "one-past pointers are constructible and comparable; dereferencing is UB (§3.2)",
            r#"
            int main(void) {
              int a[4] = {0,1,2,3};
              int *end = a + 4;          /* ISO-legal construction */
              int s = 0;
              for (int *p = a; p != end; p++) s += *p;
              assert(s == 6);
              assert(cheri_tag_get(end)); /* still tagged: representable */
              return *end;                /* UB / trap */
            }"#,
            Ub(Ub::CheriBoundsViolation),
            Trap,
            &[],
        ),
        tc(
            "oob/write-one-past-s31",
            &[OutOfBoundsAccess, OptimisationEffects],
            "the §3.1 example: out-of-bounds write through a one-past pointer",
            r#"
            void f(int *p, int i) {
              int *q = p + i;
              *q = 42;
            }
            int main(void) {
              int x=0, y=0;
              f(&x, 1);
              return y;
            }"#,
            Ub(Ub::CheriBoundsViolation),
            Trap,
            &[],
        ),
        tc(
            "oob/read-below-object",
            &[OutOfBoundsAccess],
            "constructing a pointer below the object is UB in CHERI C (§3.2 option (a))",
            r#"
            int main(void) {
              int a[2] = {1, 2};
              int *p = a - 1;   /* UB already here in the semantics */
              return *p;        /* and a bounds trap on hardware */
            }"#,
            Ub(Ub::OutOfBoundPtrArithmetic),
            Trap,
            &[],
        ),
        tc(
            "oob/far-construction-s32",
            &[OutOfBoundsAccess, OptimisationEffects],
            "§3.2: transient far-out-of-bounds pointer; UB in the semantics, tag-clear on hardware, folded away at O3",
            r#"
            int main(void) {
              int x[2];
              int *p = &x[0];
              int *q = p + 100001;
              q = q - 100000;
              *q = 1;
            }"#,
            Ub(Ub::OutOfBoundPtrArithmetic),
            Trap,
            &[
                ("clang-morello-O3", Exit(0)),
                ("clang-riscv-O3", Exit(0)),
                ("gcc-morello-O3", Exit(0)),
            ],
        ),
        tc(
            "oob/array-index-beyond",
            &[OutOfBoundsAccess],
            "reading a[i] beyond the array bounds is caught",
            r#"
            int get(int *a, int i) { return a[i]; }
            int main(void) {
              int a[3] = {1,2,3};
              return get(a, 5);
            }"#,
            Ub(Ub::OutOfBoundPtrArithmetic),
            Trap,
            &[],
        ),
        tc(
            "rel/ordering-within-object",
            &[RelationalOperators],
            "relational operators order pointers within one object",
            r#"
            int main(void) {
              int a[4];
              assert(&a[0] < &a[1]);
              assert(&a[3] > &a[1]);
              assert(&a[2] <= &a[2]);
              assert(&a[2] >= &a[2]);
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "rel/different-objects-is-iso-ub",
            &[RelationalOperators, Provenance],
            "ordering pointers to different objects is ISO UB; hardware just compares addresses",
            r#"
            int main(void) {
              int x, y;
              int r = &x < &y;
              return 0;
            }"#,
            Ub(Ub::RelationalCompareDifferentProvenance),
            Exit(0),
            &[],
        ),
        tc(
            "rel/subtraction-different-provenance",
            &[RelationalOperators, Provenance],
            "pointer subtraction requires common provenance (§3.11 check 2)",
            r#"
            int main(void) {
              int x, y;
              long d = &x - &y;
              return 0;
            }"#,
            Ub(Ub::PtrDiffDifferentProvenance),
            Exit(0),
            &[],
        ),
        tc(
            "eq/address-only-untagged",
            &[Equality, Unforgeability],
            "§3.6: == compares addresses only; a tag-cleared capability still compares equal",
            r#"
            int main(void) {
              int x = 0;
              int *p = &x;
              int *q = cheri_tag_clear(p);
              assert(p == q);
              assert(!cheri_tag_get(q));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "eq/address-only-narrowed-bounds",
            &[Equality, Intrinsics],
            "§3.6: == ignores bounds; cheri_is_equal_exact does not",
            r#"
            int main(void) {
              char buf[16];
              char *p = buf;
              char *q = cheri_bounds_set(buf, 8);
              assert(p == q);                     /* same address */
              assert(!cheri_is_equal_exact(p, q)); /* different bounds */
              assert(cheri_is_equal_exact(p, p));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "eq/pointer-vs-roundtripped",
            &[Equality, PtrIntConversion],
            "a pointer equals itself after an (u)intptr_t round trip",
            r#"
            #include <stdint.h>
            int main(void) {
              int x;
              int *p = &x;
              int *q = (int*)(uintptr_t)p;
              assert(p == q);
              assert(cheri_is_equal_exact(p, q));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "eq/null-comparisons",
            &[Equality, NullCapabilities],
            "NULL equals NULL and no live object's address",
            r#"
            int main(void) {
              int x;
              int *p = &x;
              int *n = NULL;
              assert(n == NULL);
              assert(p != NULL);
              assert(!(p == 0));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
        tc(
            "eq/intptr-equality-is-value-equality",
            &[Equality, UIntPtrProperties],
            "(u)intptr_t == compares the address value, ignoring capability metadata",
            r#"
            #include <stdint.h>
            int main(void) {
              int x;
              intptr_t a = (intptr_t)&x;
              intptr_t b = (intptr_t)cheri_tag_clear(&x);
              assert(a == b);             /* same address */
              assert(!cheri_is_equal_exact(a, b));
              return 0;
            }"#,
            Exit(0),
            Exit(0),
            &[],
        ),
    ]
}
