//! Suite runner: executes every test under every implementation profile and
//! aggregates the results into the paper's Table 1 and §5 summary.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cheri_core::{run, Profile};

use crate::{all_tests, Category, TestCase};

/// Result of one test under one profile.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The profile name.
    pub profile: String,
    /// Outcome label observed.
    pub observed: String,
    /// Did it match the expectation for that profile?
    pub matched: bool,
}

/// Result of one test across all profiles.
#[derive(Clone, Debug)]
pub struct TestReport {
    /// Test identifier.
    pub id: &'static str,
    /// Per-profile results.
    pub cells: Vec<CellResult>,
}

impl TestReport {
    /// Did every profile behave as expected?
    #[must_use]
    pub fn all_matched(&self) -> bool {
        self.cells.iter().all(|c| c.matched)
    }
}

/// Results of the full suite.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Per-test reports in suite order.
    pub tests: Vec<TestReport>,
    /// The profile names, in run order.
    pub profiles: Vec<String>,
}

/// Run the whole suite under the given profiles.
#[must_use]
pub fn run_suite(profiles: &[Profile]) -> SuiteReport {
    let tests = all_tests();
    let mut reports = Vec::with_capacity(tests.len());
    for t in &tests {
        let mut cells = Vec::new();
        for p in profiles {
            let r = run(t.source, p);
            let expected = t.expected_for(&p.name);
            cells.push(CellResult {
                profile: p.name.clone(),
                observed: r.outcome.label(),
                matched: expected.matches(&r),
            });
        }
        reports.push(TestReport { id: t.id, cells });
    }
    SuiteReport {
        tests: reports,
        profiles: profiles.iter().map(|p| p.name.clone()).collect(),
    }
}

/// Per-category test counts of the suite (the right column of Table 1).
#[must_use]
pub fn category_counts() -> BTreeMap<&'static str, (usize, usize)> {
    let tests = all_tests();
    let mut out = BTreeMap::new();
    for (cat, desc, expected) in Category::TABLE1 {
        let n = tests.iter().filter(|t| t.cats.contains(cat)).count();
        out.insert(*desc, (n, *expected));
    }
    out
}

/// Render Table 1: the category descriptions with the number of covering
/// tests, in the paper's row order.
#[must_use]
pub fn render_table1() -> String {
    let tests = all_tests();
    let mut s = String::new();
    let _ = writeln!(s, "Tests  Description");
    for (cat, desc, _) in Category::TABLE1 {
        let n = tests.iter().filter(|t| t.cats.contains(cat)).count();
        let _ = writeln!(s, "{n:>5}  {desc}");
    }
    let _ = writeln!(s, "total distinct tests: {}", tests.len());
    s
}

/// Render the §5-style compliance summary for a report.
#[must_use]
pub fn render_summary(report: &SuiteReport) -> String {
    let mut s = String::new();
    let total = report.tests.len();
    let _ = writeln!(
        s,
        "{total} tests under {} implementation configurations",
        report.profiles.len()
    );
    for (i, pname) in report.profiles.iter().enumerate() {
        let ok = report
            .tests
            .iter()
            .filter(|t| t.cells[i].matched)
            .count();
        let _ = writeln!(s, "  {pname:<22} {ok:>3}/{total} as expected");
    }
    let agree = report.tests.iter().filter(|t| t.all_matched()).count();
    let _ = writeln!(s, "  all-configuration agreement: {agree}/{total}");
    s
}

/// Render the complete results as a Markdown table — the analogue of the
/// paper's published test-results page ("The complete results of our
/// testing are available at ...").
#[must_use]
pub fn render_markdown(report: &SuiteReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# CHERI C test-suite results\n");
    let _ = writeln!(
        s,
        "{} tests under {} implementation configurations. Each cell shows \
         the observed outcome; ✓ marks agreement with the per-configuration \
         expectation (intended divergences between configurations are part \
         of the expectations).\n",
        report.tests.len(),
        report.profiles.len()
    );
    let _ = write!(s, "| test |");
    for p in &report.profiles {
        let _ = write!(s, " {p} |");
    }
    let _ = writeln!(s);
    let _ = write!(s, "|---|");
    for _ in &report.profiles {
        let _ = write!(s, "---|");
    }
    let _ = writeln!(s);
    for t in &report.tests {
        let _ = write!(s, "| `{}` |", t.id);
        for c in &t.cells {
            let mark = if c.matched { "✓" } else { "✗" };
            let _ = write!(s, " {} {mark} |", c.observed.replace('|', "\\|"));
        }
        let _ = writeln!(s);
    }
    s
}

/// Convenience: the tests a given profile diverges on.
#[must_use]
pub fn divergences(report: &SuiteReport, profile: &str) -> Vec<(&'static str, String)> {
    let idx = match report.profiles.iter().position(|p| p == profile) {
        Some(i) => i,
        None => return Vec::new(),
    };
    report
        .tests
        .iter()
        .filter(|t| !t.cells[idx].matched)
        .map(|t| (t.id, t.cells[idx].observed.clone()))
        .collect()
}

/// Look up a test case by id.
#[must_use]
pub fn find_test(id: &str) -> Option<TestCase> {
    all_tests().into_iter().find(|t| t.id == id)
}
