//! The CHERI C validation test suite.
//!
//! §5 of the paper: "We developed a test suite of 94 tests exercising and
//! demonstrating various aspects of CHERI C semantics, especially where they
//! may be unclear or differ from ISO C. Table 1 summarizes the semantic
//! categories along with the number of tests that cover each category."
//!
//! This crate contains 94 C test programs, each tagged with the semantic
//! categories it covers (tests cover several categories, which is why the
//! Table 1 counts sum to more than 94), together with expected outcomes
//! under the reference semantics and under the emulated hardware
//! implementations, and a harness that runs the whole suite under every
//! implementation profile and reports agreement — regenerating Table 1 and
//! the §5 compliance summary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod regressions;
mod suite;

use cheri_mem::Ub;

/// The semantic categories of Table 1, in the paper's row order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[allow(missing_docs)]
pub enum Category {
    Alignment,
    Allocator,
    ArrayAddresses,
    Offsetting,
    CapAssignment,
    CallingConvention,
    Casts,
    Const,
    Equality,
    FunctionPointers,
    GlobalVsLocal,
    Initialization,
    UIntPtrProperties,
    UIntPtrArithmetic,
    UIntPtrBitwise,
    Intrinsics,
    Unforgeability,
    MorelloEncoding,
    NullCapabilities,
    OnePast,
    OutOfBoundsAccess,
    OptimisationEffects,
    Permissions,
    Provenance,
    PtrAddr,
    PtrArithImpl,
    PtrIntConversion,
    RelationalOperators,
    Representability,
    RepresentationAccess,
    UseAfterFree,
    Signedness,
    StdlibFunctions,
    SubobjectBounds,
}

impl Category {
    /// Every category in Table 1 row order, with the paper's description
    /// and the number of tests that cover it.
    pub const TABLE1: &'static [(Category, &'static str, usize)] = &[
        (Category::Alignment, "Checking capability alignment in the memory.", 10),
        (Category::Allocator, "Memory allocator interface (locals, globals, and heap).", 10),
        (Category::ArrayAddresses, "Capabilities produced by taking addresses of arrays and their elements.", 2),
        (Category::Offsetting, "Operations offseting pointers as in taking an address of array element at an index.", 3),
        (Category::CapAssignment, "Assigning constants and values of capability-carrying types to capability-typed variables.", 2),
        (Category::CallingConvention, "Issues related to calling convention: passing arguments, variable argument functions, etc.", 1),
        (Category::Casts, "Implicit/explicit casts between capability-carrying types.", 5),
        (Category::Const, "C const modifier and its effects on capabilities.", 5),
        (Category::Equality, "Equality between capability-carrying types.", 10),
        (Category::FunctionPointers, "Pointers to functions.", 11),
        (Category::GlobalVsLocal, "Pointers to global vs. local variables.", 6),
        (Category::Initialization, "Initialization of variables carrying capabilities.", 4),
        (Category::UIntPtrProperties, "Properties and definition of (u)intptr_t types.", 19),
        (Category::UIntPtrArithmetic, "Arithmetic operations on (u)intptr_t values.", 9),
        (Category::UIntPtrBitwise, "Bitwise operations on (u)intptr_t values.", 3),
        (Category::Intrinsics, "Semantics of CHERI C intrinsic functions (e.g, permission manipulation).", 16),
        (Category::Unforgeability, "Unforgeability enforcement for capabilities.", 15),
        (Category::MorelloEncoding, "Capabilities encoding for Arm Morello architecture.", 6),
        (Category::NullCapabilities, "null pointers and NULL constant as capabilities.", 6),
        (Category::OnePast, "ISO-legal pointers one-past an object's footprint and their bounds.", 1),
        (Category::OutOfBoundsAccess, "Out-of-bounds memory-access handling.", 5),
        (Category::OptimisationEffects, "Effects of compiler optimisations.", 10),
        (Category::Permissions, "Capability permissions: setting and enforcement.", 5),
        (Category::Provenance, "pointer provenance tracking per [18].", 7),
        (Category::PtrAddr, "New ptraddr_t type definition and usage.", 2),
        (Category::PtrArithImpl, "Implementation of pointer arithmetic on capabilities.", 2),
        (Category::PtrIntConversion, "Conversion between pointer and integer types.", 9),
        (Category::RelationalOperators, "Relational comparison operators (e.g. <,>,<= and >=) for capabilities.", 4),
        (Category::Representability, "Issues related to potential non-representability of some combinations of capability fields.", 6),
        (Category::RepresentationAccess, "Tests related to accessing capabilities in-memory representation.", 9),
        (Category::UseAfterFree, "Accessing memory via capabilities after the region has been deallocated.", 5),
        (Category::Signedness, "Handling of (un)signed integer types in casts, accessing capability fields, and intrinsics.", 5),
        (Category::StdlibFunctions, "Standard C library functions handling of capabilities.", 6),
        (Category::SubobjectBounds, "Sub-objects bound enforcement via capabilities.", 3),
    ];
}

/// What outcome a test expects under a given semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expected {
    /// Normal exit with this code.
    Exit(i64),
    /// A specific undefined behaviour.
    Ub(Ub),
    /// Any detected undefined behaviour.
    AnyUb,
    /// A hardware capability trap.
    Trap,
    /// Either UB detection or a trap (a "safety stop").
    SafetyStop,
    /// Normal exit 0 *and* stdout/stderr contains this substring.
    OutputContains(&'static str),
}

impl Expected {
    /// Does an actual run result satisfy this expectation?
    #[must_use]
    pub fn matches(&self, r: &cheri_core::RunResult) -> bool {
        use cheri_core::Outcome;
        match self {
            Expected::Exit(c) => r.outcome == Outcome::Exit(*c),
            Expected::Ub(ub) => matches!(&r.outcome, Outcome::Ub { ub: got, .. } if got == ub),
            Expected::AnyUb => matches!(r.outcome, Outcome::Ub { .. }),
            Expected::Trap => matches!(r.outcome, Outcome::Trap { .. }),
            Expected::SafetyStop => r.outcome.is_safety_stop(),
            Expected::OutputContains(s) => {
                r.outcome == Outcome::Exit(0) && (r.stdout.contains(s) || r.stderr.contains(s))
            }
        }
    }
}

/// One test of the suite.
#[derive(Clone, Debug)]
pub struct TestCase {
    /// Unique identifier, e.g. `"uintptr/roundtrip"`.
    pub id: &'static str,
    /// The categories this test covers (Table 1 tags).
    pub cats: &'static [Category],
    /// One-line description.
    pub desc: &'static str,
    /// The C source.
    pub source: &'static str,
    /// Expected outcome under the reference (Cerberus) semantics.
    pub expect_ref: Expected,
    /// Expected outcome under the emulated hardware implementations at O0
    /// (all of clang-morello / clang-riscv / gcc-morello unless overridden).
    pub expect_hw: Expected,
    /// Per-profile overrides, matched by profile-name prefix; first match
    /// wins. Models genuine implementation divergence (e.g. GCC's allocator
    /// layout keeping `cap & INT_MAX` representable, or O3 folding).
    pub overrides: &'static [(&'static str, Expected)],
}

impl TestCase {
    /// The expectation applying to a profile by name.
    #[must_use]
    pub fn expected_for(&self, profile_name: &str) -> Expected {
        for (prefix, e) in self.overrides {
            if profile_name.starts_with(prefix) {
                return *e;
            }
        }
        if profile_name == "cerberus" {
            self.expect_ref
        } else {
            self.expect_hw
        }
    }
}

/// All 94 tests of the suite.
#[must_use]
pub fn all_tests() -> Vec<TestCase> {
    suite::all()
}

#[cfg(test)]
mod tests;
