//! Suite self-checks: Table 1 counts, uniqueness, and behavioural
//! verification of every test under every profile.

use std::collections::{BTreeMap, BTreeSet};

use cheri_core::Profile;

use crate::harness::{divergences, run_suite};
use crate::{all_tests, Category};


#[test]
fn table1_counts_match_the_paper() {
    let tests = all_tests();
    let mut mismatch = String::new();
    let mut total_tags = 0;
    for (cat, desc, expected) in Category::TABLE1 {
        let n = tests.iter().filter(|t| t.cats.contains(cat)).count();
        total_tags += n;
        if n != *expected {
            mismatch.push_str(&format!("  {cat:?}: have {n}, paper says {expected} ({desc})\n"));
        }
    }
    assert!(
        mismatch.is_empty(),
        "category coverage differs from Table 1 (total tags {total_tags}):\n{mismatch}"
    );
    assert_eq!(tests.len(), 94, "the paper's suite has 94 tests");
}

/// §5 shape invariants, independent of the exact Table 1 row values:
/// exactly 94 tests, exactly 34 distinct categories, and — because tests
/// cover several categories — per-category counts summing to strictly
/// more than 94.
#[test]
fn suite_shape_matches_section_5() {
    let tests = all_tests();
    assert_eq!(tests.len(), 94, "the paper's suite has 94 tests");

    let mut per_cat: BTreeMap<Category, usize> = BTreeMap::new();
    for t in &tests {
        for c in t.cats {
            *per_cat.entry(*c).or_default() += 1;
        }
    }
    assert_eq!(
        per_cat.len(),
        34,
        "Table 1 has 34 semantic categories; suite tags {} distinct ones",
        per_cat.len()
    );
    assert_eq!(Category::TABLE1.len(), 34, "Table 1 itself has 34 rows");
    for (cat, n) in &per_cat {
        assert!(*n > 0, "{cat:?} has no tests");
    }
    let total: usize = per_cat.values().sum();
    assert!(
        total > 94,
        "tests cover several categories, so tags ({total}) must exceed 94"
    );
}

#[test]
fn test_ids_unique_and_tagged() {
    let tests = all_tests();
    let mut seen = BTreeSet::new();
    for t in &tests {
        assert!(!t.cats.is_empty(), "{} has no categories", t.id);
        assert!(
            seen.insert(t.id),
            "duplicate test id {}",
            t.id
        );
        assert!(!t.desc.is_empty());
    }
}

#[test]
fn reference_semantics_behaves_as_expected() {
    let report = run_suite(&[Profile::cerberus()]);
    let bad = divergences(&report, "cerberus");
    assert!(
        bad.is_empty(),
        "tests diverging under the reference semantics: {bad:#?}"
    );
}

#[test]
fn clang_morello_o0_behaves_as_expected() {
    let report = run_suite(&[Profile::clang_morello(false)]);
    let bad = divergences(&report, "clang-morello-O0");
    assert!(bad.is_empty(), "diverging: {bad:#?}");
}

#[test]
fn clang_riscv_o0_behaves_as_expected() {
    let report = run_suite(&[Profile::clang_riscv(false)]);
    let bad = divergences(&report, "clang-riscv-O0");
    assert!(bad.is_empty(), "diverging: {bad:#?}");
}

#[test]
fn gcc_morello_o0_behaves_as_expected() {
    let report = run_suite(&[Profile::gcc_morello(false)]);
    let bad = divergences(&report, "gcc-morello-O0");
    assert!(bad.is_empty(), "diverging: {bad:#?}");
}

#[test]
fn o3_profiles_behave_as_expected() {
    for p in [
        Profile::clang_morello(true),
        Profile::clang_riscv(true),
        Profile::gcc_morello(true),
    ] {
        let name = p.name.clone();
        let report = run_suite(&[p]);
        let bad = divergences(&report, &name);
        assert!(bad.is_empty(), "{name} diverging: {bad:#?}");
    }
}
