//! Suite self-checks: Table 1 counts, uniqueness, and behavioural
//! verification of every test under every profile.

use std::collections::BTreeMap;

use cheri_core::Profile;

use crate::harness::{divergences, run_suite};
use crate::{all_tests, Category};


#[test]
fn table1_counts_match_the_paper() {
    let tests = all_tests();
    let mut mismatch = String::new();
    let mut total_tags = 0;
    for (cat, desc, expected) in Category::TABLE1 {
        let n = tests.iter().filter(|t| t.cats.contains(cat)).count();
        total_tags += n;
        if n != *expected {
            mismatch.push_str(&format!("  {cat:?}: have {n}, paper says {expected} ({desc})\n"));
        }
    }
    assert!(
        mismatch.is_empty(),
        "category coverage differs from Table 1 (total tags {total_tags}):\n{mismatch}"
    );
    assert_eq!(tests.len(), 94, "the paper's suite has 94 tests");
}

#[test]
fn test_ids_unique_and_tagged() {
    let tests = all_tests();
    let mut seen = BTreeMap::new();
    for t in &tests {
        assert!(!t.cats.is_empty(), "{} has no categories", t.id);
        assert!(
            seen.insert(t.id, ()).is_none(),
            "duplicate test id {}",
            t.id
        );
        assert!(!t.desc.is_empty());
    }
}

#[test]
fn reference_semantics_behaves_as_expected() {
    let report = run_suite(&[Profile::cerberus()]);
    let bad = divergences(&report, "cerberus");
    assert!(
        bad.is_empty(),
        "tests diverging under the reference semantics: {bad:#?}"
    );
}

#[test]
fn clang_morello_o0_behaves_as_expected() {
    let report = run_suite(&[Profile::clang_morello(false)]);
    let bad = divergences(&report, "clang-morello-O0");
    assert!(bad.is_empty(), "diverging: {bad:#?}");
}

#[test]
fn clang_riscv_o0_behaves_as_expected() {
    let report = run_suite(&[Profile::clang_riscv(false)]);
    let bad = divergences(&report, "clang-riscv-O0");
    assert!(bad.is_empty(), "diverging: {bad:#?}");
}

#[test]
fn gcc_morello_o0_behaves_as_expected() {
    let report = run_suite(&[Profile::gcc_morello(false)]);
    let bad = divergences(&report, "gcc-morello-O0");
    assert!(bad.is_empty(), "diverging: {bad:#?}");
}

#[test]
fn o3_profiles_behave_as_expected() {
    for p in [
        Profile::clang_morello(true),
        Profile::clang_riscv(true),
        Profile::gcc_morello(true),
    ] {
        let name = p.name.clone();
        let report = run_suite(&[p]);
        let bad = divergences(&report, &name);
        assert!(bad.is_empty(), "{name} diverging: {bad:#?}");
    }
}
