//! Seed-pinned regressions from oracle-fuzz divergences.
//!
//! When the differential corpus (`tests/oracle_corpus.rs` /
//! `cargo run -p cheri-bench --bin oracle_fuzz`) finds a divergence, it
//! shrinks the program to a minimal reproducer and prints a ready-to-paste
//! [`Regression`] entry. Pasting it into [`REGRESSIONS`] here makes the
//! divergence a permanent, named test that runs under **every** compared
//! profile on every `cargo test` — independent of the generator, so the
//! reproducer survives any future change to `progen`.
//!
//! The module ships empty (the PR that introduced the corpus found no
//! divergence across seeds 0..1024) but stays wired into the suite: the
//! replay machinery itself is exercised by a self-test with a synthetic
//! entry.

use cheri_core::{run, Outcome, Profile};

/// A pinned minimal program from a (former) oracle-fuzz divergence.
#[derive(Clone, Copy, Debug)]
pub struct Regression {
    /// Stable name, conventionally `oracle-fuzz/seed-<seed>-<profile>`.
    pub id: &'static str,
    /// The generator seed the program was shrunk from (for archaeology;
    /// replay does not depend on the generator still producing it).
    pub seed: u64,
    /// The minimal C reproducer.
    pub source: &'static str,
    /// `Some(code)`: every compared profile must exit with `code`.
    /// `None`: the program is from the bug-injected family — every profile
    /// must safety-stop or mask, and none may report an internal error.
    pub expected_exit: Option<i64>,
}

/// All pinned regressions. Append entries exactly as printed by the
/// divergence report.
pub const REGRESSIONS: &[Regression] = &[
    // (none yet — seeds 0..1024 were divergence-free when the corpus landed)
];

/// Replay one regression under every compared profile; returns the failures
/// as `(profile, outcome)` descriptions.
#[must_use]
pub fn replay(r: &Regression) -> Vec<(String, String)> {
    let mut bad = Vec::new();
    for p in Profile::all_compared() {
        let outcome = run(r.source, &p).outcome;
        let ok = match r.expected_exit {
            Some(code) => outcome == Outcome::Exit(code),
            None => !matches!(outcome, Outcome::Error(_)),
        };
        if !ok {
            bad.push((p.name.clone(), outcome.to_string()));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every pinned regression stays fixed under every compared profile.
    #[test]
    fn pinned_regressions_hold() {
        for r in REGRESSIONS {
            let bad = replay(r);
            assert!(bad.is_empty(), "{} regressed: {bad:?}", r.id);
        }
    }

    /// The replay machinery itself works: a synthetic entry in the same
    /// shape as a shrunk divergence report passes, and a deliberately wrong
    /// expectation is caught.
    #[test]
    fn replay_machinery_detects_mismatches() {
        let entry = Regression {
            id: "oracle-fuzz/self-test",
            seed: 0,
            source: "int main(void) {\n  int a0[2];\n  for (int i = 0; i < 2; i++) a0[i] = 0;\n  long s = 0;\n  s += a0[0];\n  return (int)(s < 0 ? (-s) % 97 : s % 97);\n}\n",
            expected_exit: Some(0),
        };
        assert!(replay(&entry).is_empty(), "well-formed entry must replay clean");

        let wrong = Regression { expected_exit: Some(41), ..entry };
        assert_eq!(
            replay(&wrong).len(),
            Profile::all_compared().len(),
            "a wrong expectation must fail under every profile"
        );
    }
}
