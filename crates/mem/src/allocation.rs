//! Allocations (the `A` component of `mem_state`).
//!
//! Each allocation records its footprint, liveness, kind, whether it is
//! read-only (for `const`-qualified objects, §3.9) and whether it has been
//! *exposed* by having a pointer to it cast to an integer or its
//! representation examined (PNVI-*ae*, §2.3).

use crate::AllocId;

/// How an allocation was created.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocKind {
    /// A local (automatic storage duration) object.
    Auto,
    /// A global (static storage duration) object.
    Static,
    /// A dynamic region from `malloc`/`calloc`/`realloc`.
    Heap,
    /// A function's "object" — functions get allocations so function
    /// pointers have provenance and (degenerate) bounds.
    Function,
    /// A string literal.
    StringLiteral,
}

impl AllocKind {
    /// Is this allocation writable at all?
    #[must_use]
    pub fn inherently_readonly(self) -> bool {
        matches!(self, AllocKind::Function | AllocKind::StringLiteral)
    }
}

/// One allocation in the abstract machine.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Unique ID (the provenance `@i`).
    pub id: AllocId,
    /// Base virtual address.
    pub base: u64,
    /// Size in bytes as requested by the program.
    pub size: u64,
    /// Size in bytes actually reserved (>= `size` when padding was needed
    /// for capability representability, §3.2).
    pub reserved_size: u64,
    /// Alignment of `base`.
    pub align: u64,
    /// Storage kind.
    pub kind: AllocKind,
    /// Still live?
    pub alive: bool,
    /// Marked exposed by a pointer-to-integer cast or representation access
    /// (PNVI-ae).
    pub exposed: bool,
    /// Read-only (`const`-qualified object or inherently read-only kind).
    pub readonly: bool,
    /// Diagnostic name (variable name or `"malloc"`).
    pub prefix: String,
}

impl Allocation {
    /// One-past-the-end address of the *requested* footprint.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base.wrapping_add(self.size)
    }

    /// Does the allocation footprint contain `[addr, addr+size)`?
    #[must_use]
    pub fn contains_range(&self, addr: u64, size: u64) -> bool {
        addr >= self.base && addr as u128 + size as u128 <= self.base as u128 + self.size as u128
    }

    /// Is `addr` within the footprint or one past it (the region in which
    /// ISO pointer arithmetic may roam, 6.5.6p8)?
    #[must_use]
    pub fn contains_or_one_past(&self, addr: u64) -> bool {
        addr >= self.base && addr as u128 <= self.base as u128 + self.size as u128
    }

    /// Is the allocation writable?
    #[must_use]
    pub fn writable(&self) -> bool {
        !self.readonly && !self.kind.inherently_readonly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(base: u64, size: u64) -> Allocation {
        Allocation {
            id: AllocId(1),
            base,
            size,
            reserved_size: size,
            align: 4,
            kind: AllocKind::Auto,
            alive: true,
            exposed: false,
            readonly: false,
            prefix: "x".into(),
        }
    }

    #[test]
    fn contains_range_edges() {
        let a = alloc(0x1000, 8);
        assert!(a.contains_range(0x1000, 8));
        assert!(a.contains_range(0x1004, 4));
        assert!(!a.contains_range(0x1004, 5));
        assert!(!a.contains_range(0xFFF, 1));
        assert!(a.contains_range(0x1008, 0)); // empty range at one-past
    }

    #[test]
    fn one_past_is_in_arith_range() {
        let a = alloc(0x1000, 8);
        assert!(a.contains_or_one_past(0x1008));
        assert!(!a.contains_or_one_past(0x1009));
        assert!(!a.contains_or_one_past(0xFFF));
    }

    #[test]
    fn function_allocations_readonly() {
        let mut a = alloc(0x4000, 1);
        a.kind = AllocKind::Function;
        assert!(!a.writable());
    }
}
