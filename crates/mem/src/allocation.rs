//! Allocations (the `A` component of `mem_state`).
//!
//! Each allocation records its footprint, liveness, kind, whether it is
//! read-only (for `const`-qualified objects, §3.9) and whether it has been
//! *exposed* by having a pointer to it cast to an integer or its
//! representation examined (PNVI-*ae*, §2.3).

use crate::absbyte::AbsByte;
use crate::capmeta::CapSlotBits;
use crate::AllocId;

/// How an allocation was created.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocKind {
    /// A local (automatic storage duration) object.
    Auto,
    /// A global (static storage duration) object.
    Static,
    /// A dynamic region from `malloc`/`calloc`/`realloc`.
    Heap,
    /// A function's "object" — functions get allocations so function
    /// pointers have provenance and (degenerate) bounds.
    Function,
    /// A string literal.
    StringLiteral,
}

impl AllocKind {
    /// Is this allocation writable at all?
    #[must_use]
    pub fn inherently_readonly(self) -> bool {
        matches!(self, AllocKind::Function | AllocKind::StringLiteral)
    }
}

/// One allocation in the abstract machine.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Unique ID (the provenance `@i`).
    pub id: AllocId,
    /// Base virtual address.
    pub base: u64,
    /// Size in bytes as requested by the program.
    pub size: u64,
    /// Size in bytes actually reserved (>= `size` when padding was needed
    /// for capability representability, §3.2).
    pub reserved_size: u64,
    /// Alignment of `base`.
    pub align: u64,
    /// Storage kind.
    pub kind: AllocKind,
    /// Still live?
    pub alive: bool,
    /// Marked exposed by a pointer-to-integer cast or representation access
    /// (PNVI-ae).
    pub exposed: bool,
    /// Read-only (`const`-qualified object or inherently read-only kind).
    pub readonly: bool,
    /// Diagnostic name (variable name or `"malloc"`).
    pub prefix: String,
    /// Flat-store byte contents: one [`AbsByte`] per *reserved* byte, so the
    /// hardware-emulation profiles can read stale/padding bytes the same way
    /// the legacy global byte dictionary allowed. Empty when the instance
    /// runs with [`MemConfig::legacy_store`](crate::MemConfig).
    pub(crate) buf: Vec<AbsByte>,
    /// Flat-store capability-slot metadata: one packed entry per
    /// capability-aligned slot whose footprint lies inside the reserved
    /// footprint (slot `k` is at address `first_slot + k * cap_bytes`).
    pub(crate) slots: CapSlotBits,
    /// Address of slot 0 of `slots`: the first capability-aligned address at
    /// or above `base`.
    pub(crate) first_slot: u64,
}

impl Allocation {
    /// One-past-the-end address of the *requested* footprint.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base.wrapping_add(self.size)
    }

    /// Does the allocation footprint contain `[addr, addr+size)`?
    #[must_use]
    pub fn contains_range(&self, addr: u64, size: u64) -> bool {
        addr >= self.base && addr as u128 + size as u128 <= self.base as u128 + self.size as u128
    }

    /// Is `addr` within the footprint or one past it (the region in which
    /// ISO pointer arithmetic may roam, 6.5.6p8)?
    #[must_use]
    pub fn contains_or_one_past(&self, addr: u64) -> bool {
        addr >= self.base && addr as u128 <= self.base as u128 + self.size as u128
    }

    /// Is the allocation writable?
    #[must_use]
    pub fn writable(&self) -> bool {
        !self.readonly && !self.kind.inherently_readonly()
    }

    /// One-past-the-end address of the *reserved* footprint (requested size
    /// plus representability padding).
    #[must_use]
    pub fn reserved_end(&self) -> u64 {
        self.base.wrapping_add(self.reserved_size)
    }

    /// Flat store: slot index of the capability-aligned address `addr`, if
    /// the `cap_bytes`-sized footprint at `addr` lies inside the reserved
    /// footprint.
    pub(crate) fn slot_index(&self, addr: u64, cap_bytes: u64) -> Option<usize> {
        if addr < self.first_slot || !addr.is_multiple_of(cap_bytes) {
            return None;
        }
        let k = ((addr - self.first_slot) / cap_bytes) as usize;
        (k < self.slots.len()).then_some(k)
    }

    /// Flat store: number of capability-aligned slots fully contained in
    /// `[first_slot, base + reserved)`, given `first_slot` is the first
    /// aligned address `>= base`.
    pub(crate) fn slot_count(base: u64, reserved: u64, first_slot: u64, cap_bytes: u64) -> usize {
        let end = base.wrapping_add(reserved);
        if end < first_slot.wrapping_add(cap_bytes) {
            0
        } else {
            ((end - first_slot) / cap_bytes) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(base: u64, size: u64) -> Allocation {
        Allocation {
            id: AllocId(1),
            base,
            size,
            reserved_size: size,
            align: 4,
            kind: AllocKind::Auto,
            alive: true,
            exposed: false,
            readonly: false,
            prefix: "x".into(),
            buf: Vec::new(),
            slots: CapSlotBits::default(),
            first_slot: base,
        }
    }

    #[test]
    fn contains_range_edges() {
        let a = alloc(0x1000, 8);
        assert!(a.contains_range(0x1000, 8));
        assert!(a.contains_range(0x1004, 4));
        assert!(!a.contains_range(0x1004, 5));
        assert!(!a.contains_range(0xFFF, 1));
        assert!(a.contains_range(0x1008, 0)); // empty range at one-past
    }

    #[test]
    fn one_past_is_in_arith_range() {
        let a = alloc(0x1000, 8);
        assert!(a.contains_or_one_past(0x1008));
        assert!(!a.contains_or_one_past(0x1009));
        assert!(!a.contains_or_one_past(0xFFF));
    }

    #[test]
    fn function_allocations_readonly() {
        let mut a = alloc(0x4000, 1);
        a.kind = AllocKind::Function;
        assert!(!a.writable());
    }

    #[test]
    fn flat_store_slot_indexing() {
        // base 0x1004, reserved 0x40: first 16-aligned slot is 0x1010 and
        // only slots whose full footprint fits in [0x1004, 0x1044) count.
        assert_eq!(Allocation::slot_count(0x1004, 0x40, 0x1010, 16), 3);
        let mut a = alloc(0x1004, 0x40);
        a.first_slot = 0x1010;
        a.slots = CapSlotBits::new(3);
        assert_eq!(a.slot_index(0x1010, 16), Some(0));
        assert_eq!(a.slot_index(0x1030, 16), Some(2));
        assert_eq!(a.slot_index(0x1040, 16), None, "footprint crosses the end");
        assert_eq!(a.slot_index(0x1008, 16), None, "misaligned");
        assert_eq!(a.slot_index(0x1000, 16), None, "below base");
        // Allocation entirely below the next alignment boundary: no slots.
        assert_eq!(Allocation::slot_count(0x1004, 8, 0x1010, 16), 0);
    }
}
