//! Pointer provenance, PNVI-ae-udi style.
//!
//! §2.3 of the paper: "the C abstract machine associates a provenance, which
//! is either an allocation unique ID or empty, with every pointer value",
//! plus the *-udi* (user-disambiguation) refinement where an
//! integer-to-pointer cast landing on the boundary between two exposed
//! allocations gets a symbolic provenance (here [`Provenance::Iota`]) that is
//! resolved at first use.

use std::fmt;

/// Unique identifier of an allocation (the `@i` of the paper's notation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AllocId(pub u64);

impl fmt::Display for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifier of an unresolved symbolic provenance (PNVI-ae-udi's ι).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IotaId(pub u64);

impl fmt::Display for IotaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ι{}", self.0)
    }
}

/// The provenance component of a pointer value (π in §4.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Provenance {
    /// No provenance: the pointer cannot be used for access.
    #[default]
    Empty,
    /// Provenance of a specific allocation.
    Alloc(AllocId),
    /// Symbolic provenance from an ambiguous integer-to-pointer cast,
    /// resolved to one of (up to) two candidate allocations at first use.
    Iota(IotaId),
}

impl Provenance {
    /// The allocation ID, if resolved.
    #[must_use]
    pub fn alloc_id(self) -> Option<AllocId> {
        match self {
            Provenance::Alloc(id) => Some(id),
            _ => None,
        }
    }

    /// Is this the empty provenance?
    #[must_use]
    pub fn is_empty(self) -> bool {
        matches!(self, Provenance::Empty)
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Empty => write!(f, "@empty"),
            Provenance::Alloc(id) => write!(f, "{id}"),
            Provenance::Iota(i) => write!(f, "{i}"),
        }
    }
}

/// State of an unresolved iota: the candidate allocations it may resolve to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IotaState {
    /// Still ambiguous between two allocations.
    Ambiguous(AllocId, AllocId),
    /// Resolved (by a use) to one allocation.
    Resolved(AllocId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Provenance::Alloc(AllocId(86)).to_string(), "@86");
        assert_eq!(Provenance::Empty.to_string(), "@empty");
        assert_eq!(Provenance::Iota(IotaId(3)).to_string(), "ι3");
    }

    #[test]
    fn default_is_empty() {
        assert!(Provenance::default().is_empty());
        assert_eq!(Provenance::Alloc(AllocId(1)).alloc_id(), Some(AllocId(1)));
        assert_eq!(Provenance::Empty.alloc_id(), None);
    }
}
