//! Integration tests of the memory object model against the paper's rules.

use cheri_cap::{Capability, GhostState, MorelloCap};

use crate::{
    AddressLayout, AllocKind, CheriMemory, IntVal, MemConfig, MemError, Provenance, PtrVal,
    TrapKind, Ub,
};

type Mem = CheriMemory<MorelloCap>;

fn reference() -> Mem {
    Mem::new(MemConfig::cheri_reference())
}

fn hardware() -> Mem {
    Mem::new(MemConfig::cheri_hardware(AddressLayout::clang_morello()))
}

fn baseline() -> Mem {
    crate::new_baseline::<MorelloCap>()
}

fn expect_ub<T: std::fmt::Debug>(r: Result<T, MemError>, ub: Ub) {
    match r {
        Err(MemError::Ub(got, _)) => assert_eq!(got, ub),
        other => panic!("expected UB {ub}, got {other:?}"),
    }
}

fn expect_trap<T: std::fmt::Debug>(r: Result<T, MemError>, kind: TrapKind) {
    match r {
        Err(MemError::Trap(got, _)) => assert_eq!(got, kind),
        other => panic!("expected trap {kind}, got {other:?}"),
    }
}

// ── Basic allocation, load, store ────────────────────────────────────────

#[test]
fn roundtrip_int() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, None).unwrap();
    m.store_int(&p, 4, &IntVal::Num(-7)).unwrap();
    assert_eq!(m.load_int(&p, 4, true, false).unwrap().value(), -7);
    assert_eq!(m.load_int(&p, 4, false, false).unwrap().value(), 0xFFFF_FFF9);
}

#[test]
fn fresh_allocation_capability_matches_footprint() {
    let mut m = reference();
    let p = m.allocate_object("x", 8, 8, false, None).unwrap();
    assert!(p.cap.tag());
    assert_eq!(p.cap.bounds().base, p.addr());
    assert_eq!(p.cap.bounds().length(), 8);
    assert!(matches!(p.prov, Provenance::Alloc(_)));
}

#[test]
fn uninitialised_read_is_ub() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, None).unwrap();
    expect_ub(m.load_int(&p, 4, true, false), Ub::UninitialisedRead);
}

#[test]
fn readonly_object_rejects_store() {
    let mut m = reference();
    let p = m.allocate_object("c", 4, 4, true, Some(&[1, 0, 0, 0])).unwrap();
    assert_eq!(m.load_int(&p, 4, true, false).unwrap().value(), 1);
    // §3.9: the capability lacks write permission, so this is flagged by the
    // capability check before the allocation check.
    let e = m.store_int(&p, 4, &IntVal::Num(2)).unwrap_err();
    assert!(matches!(
        e,
        MemError::Ub(Ub::CheriInsufficientPermissions | Ub::WriteToReadOnly, _)
    ));
}

#[test]
fn stack_allocations_grow_down_heap_up() {
    let mut m = reference();
    let a = m.allocate_object("a", 4, 4, false, None).unwrap();
    let b = m.allocate_object("b", 4, 4, false, None).unwrap();
    assert!(b.addr() < a.addr());
    let ha = m.allocate_region(16, 16).unwrap();
    let hb = m.allocate_region(16, 16).unwrap();
    assert!(hb.addr() > ha.addr());
}

// ── The §3.1 example: one-past write traps / is UB ───────────────────────

#[test]
fn one_past_write_is_bounds_violation() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let q = m.array_shift(&x, 4, 1).unwrap(); // legal construction
    expect_ub(m.store_int(&q, 4, &IntVal::Num(42)), Ub::CheriBoundsViolation);
}

#[test]
fn one_past_write_traps_on_hardware() {
    let mut m = hardware();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let q = m.array_shift(&x, 4, 1).unwrap();
    expect_trap(m.store_int(&q, 4, &IntVal::Num(42)), TrapKind::BoundsViolation);
}

#[test]
fn baseline_detects_oob_via_provenance_only() {
    let mut m = baseline();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let q = m.array_shift(&x, 4, 1).unwrap();
    expect_ub(m.store_int(&q, 4, &IntVal::Num(42)), Ub::AccessOutOfBounds);
}

// ── §3.2: out-of-bounds construction ─────────────────────────────────────

#[test]
fn far_oob_construction_is_ub_in_reference() {
    let mut m = reference();
    let x = m.allocate_object("x", 8, 4, false, Some(&[0; 8])).unwrap();
    expect_ub(m.array_shift(&x, 4, 100_001), Ub::OutOfBoundPtrArithmetic);
}

#[test]
fn far_oob_construction_clears_tag_on_hardware() {
    let mut m = hardware();
    let x = m.allocate_object("x", 8, 4, false, Some(&[0; 8])).unwrap();
    let q = m.array_shift(&x, 4, 100_001).unwrap(); // no abstract UB
    assert!(!q.cap.tag(), "non-representable construction clears the tag");
    assert_eq!(q.addr(), x.addr().wrapping_add(400_004));
    // ... and coming back into range does not restore it.
    let back = m.array_shift(&q, 4, -100_000).unwrap();
    assert!(!back.cap.tag());
    expect_trap(m.store_int(&back, 4, &IntVal::Num(1)), TrapKind::TagViolation);
}

// ── Temporal safety (§3.11, use-after-free) ──────────────────────────────

#[test]
fn use_after_free_is_ub() {
    let mut m = reference();
    let p = m.allocate_region(16, 16).unwrap();
    m.store_int(&p, 4, &IntVal::Num(3)).unwrap();
    m.kill(&p, true).unwrap();
    expect_ub(m.load_int(&p, 4, true, false), Ub::AccessDeadAllocation);
}

#[test]
fn double_free_is_ub() {
    let mut m = reference();
    let p = m.allocate_region(16, 16).unwrap();
    m.kill(&p, true).unwrap();
    expect_ub(m.kill(&p, true), Ub::DoubleFree);
}

#[test]
fn free_of_interior_pointer_is_ub() {
    let mut m = reference();
    let p = m.allocate_region(16, 16).unwrap();
    let q = m.array_shift(&p, 1, 4).unwrap();
    expect_ub(m.kill(&q, true), Ub::FreeInvalidPointer);
}

#[test]
fn free_null_is_noop() {
    let mut m = reference();
    m.kill(&PtrVal::null(), true).unwrap();
}

#[test]
fn hardware_mode_misses_use_after_free_when_memory_reused() {
    // §3.11: "in the absence of a capability revocation mechanism ... one
    // could have a pointer to a heap object that has been killed and another
    // pointer to a newly allocated object at the same address".
    let mut m = hardware();
    let p = m.allocate_region(16, 16).unwrap();
    m.kill(&p, true).unwrap();
    // The capability is still tagged and in bounds; hardware cannot object
    // (our bump allocator does not reuse, so give it fresh backing bytes).
    let e = m.store_int(&p, 4, &IntVal::Num(9));
    assert!(e.is_ok(), "hardware cannot detect temporal violations: {e:?}");
}

// ── Pointer/integer casts (§3.3) and PNVI-ae-udi ─────────────────────────

#[test]
fn intptr_roundtrip_preserves_capability() {
    let mut m = reference();
    let p = m.allocate_object("x", 8, 8, false, Some(&[0; 8])).unwrap();
    let iv = m.cast_ptr_to_int(&p, true, false, 16);
    assert!(iv.is_cap());
    assert_eq!(iv.value(), i128::from(p.addr()));
    let q = m.cast_int_to_ptr(&iv);
    assert_eq!(q.cap, p.cap);
    assert_eq!(q.prov, p.prov);
    m.store_int(&q, 4, &IntVal::Num(5)).unwrap();
}

#[test]
fn ptr_to_int_cast_exposes_allocation() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let id = p.prov.alloc_id().unwrap();
    assert!(!m.allocations()[&id].exposed);
    let _ = m.cast_ptr_to_int(&p, false, true, 8);
    assert!(m.allocations()[&id].exposed);
}

#[test]
fn int_to_ptr_attaches_provenance_of_exposed_allocation() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, Some(&[7, 0, 0, 0])).unwrap();
    let addr = p.addr();
    let iv = m.cast_ptr_to_int(&p, false, false, 8); // expose, lose the cap
    assert_eq!(iv, IntVal::Num(i128::from(addr)));
    let q = m.cast_int_to_ptr(&iv);
    assert_eq!(q.prov, p.prov, "PNVI-ae lookup recovers the provenance");
    // But the capability is null-derived: usable in the baseline sense only.
    assert!(!q.cap.tag());
    expect_ub(m.load_int(&q, 4, true, false), Ub::CheriInvalidCap);
}

#[test]
fn int_to_ptr_without_expose_gets_empty_provenance() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let q = m.cast_int_to_ptr(&IntVal::Num(i128::from(p.addr())));
    assert!(q.prov.is_empty());
}

#[test]
fn baseline_int_to_ptr_roundtrip_works() {
    // In the baseline model the same cast chain yields a *usable* pointer —
    // this is the PNVI-ae-udi of §2.3 without capabilities.
    let mut m = baseline();
    let p = m.allocate_object("x", 4, 4, false, Some(&[7, 0, 0, 0])).unwrap();
    let iv = m.cast_ptr_to_int(&p, false, false, 8);
    let q = m.cast_int_to_ptr(&iv);
    assert_eq!(m.load_int(&q, 4, true, false).unwrap().value(), 7);
}

#[test]
fn ambiguous_one_past_cast_creates_iota() {
    let mut m = reference();
    // Two adjacent heap allocations: one-past of `a` may equal base of `b`.
    let a = m.allocate_region(16, 16).unwrap();
    let b = m.allocate_region(16, 16).unwrap();
    if a.addr() + 16 != b.addr() {
        return; // representability padding separated them; nothing to test
    }
    let _ = m.cast_ptr_to_int(&a, false, false, 8);
    let _ = m.cast_ptr_to_int(&b, false, false, 8);
    let q = m.cast_int_to_ptr(&IntVal::Num(i128::from(b.addr())));
    assert!(matches!(q.prov, Provenance::Iota(_)));
}

// ── Capability representation accesses (§3.5) ────────────────────────────

#[test]
fn byte_write_to_stored_capability_makes_tag_unspecified() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let px = m.allocate_object("px", 16, 16, false, None).unwrap();
    m.store_ptr(&px, &x).unwrap();
    assert!(m.cap_meta_at(px.addr()).tag);
    // p[0] = p[0]: read a representation byte, write it back.
    let b = m.load_int(&px, 1, false, false).unwrap();
    m.store_int(&px, 1, &b).unwrap();
    let meta = m.cap_meta_at(px.addr());
    assert!(meta.ghost.tag_unspecified, "ghost bit set, tag not cleared");
    assert!(meta.tag, "abstract machine keeps the tag itself");
    // Loading yields a capability with unspecified tag; using it is UB.
    let loaded = m.load_ptr(&px).unwrap();
    assert!(loaded.cap.ghost().tag_unspecified);
    expect_ub(m.store_int(&loaded, 4, &IntVal::Num(1)), Ub::CheriUndefinedTag);
}

#[test]
fn byte_write_clears_tag_on_hardware() {
    let mut m = hardware();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let px = m.allocate_object("px", 16, 16, false, None).unwrap();
    m.store_ptr(&px, &x).unwrap();
    let b = m.load_int(&px, 1, false, false).unwrap();
    m.store_int(&px, 1, &b).unwrap();
    let meta = m.cap_meta_at(px.addr());
    assert!(!meta.tag, "hardware deterministically clears the tag");
    let loaded = m.load_ptr(&px).unwrap();
    expect_trap(m.store_int(&loaded, 4, &IntVal::Num(1)), TrapKind::TagViolation);
}

#[test]
fn bytewise_copy_of_pointer_loses_tag_but_keeps_provenance_bytes() {
    // The §3.5 for-loop example: copying a pointer byte-by-byte. In the
    // abstract machine the destination tag is unset (no capability store
    // ever happened there), so using the copy is UB.
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let p0 = m.allocate_object("px0", 16, 16, false, None).unwrap();
    let p1 = m.allocate_object("px1", 16, 16, false, None).unwrap();
    m.store_ptr(&p0, &x).unwrap();
    for i in 0..16 {
        let src = m.array_shift(&p0, 1, i).unwrap();
        let dst = m.array_shift(&p1, 1, i).unwrap();
        let b = m.load_int(&src, 1, false, false).unwrap();
        m.store_int(&dst, 1, &b).unwrap();
    }
    let copied = m.load_ptr(&p1).unwrap();
    assert!(!copied.cap.tag());
    let e = m.store_int(&copied, 4, &IntVal::Num(1));
    assert!(e.is_err());
}

#[test]
fn memcpy_preserves_capability() {
    // ... whereas memcpy uses capability-sized accesses and preserves tags.
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let p0 = m.allocate_object("px0", 16, 16, false, None).unwrap();
    let p1 = m.allocate_object("px1", 16, 16, false, None).unwrap();
    m.store_ptr(&p0, &x).unwrap();
    m.memcpy(&p1, &p0, 16).unwrap();
    let copied = m.load_ptr(&p1).unwrap();
    assert!(copied.cap.tag());
    assert_eq!(copied.prov, x.prov);
    m.store_int(&copied, 4, &IntVal::Num(1)).unwrap();
}

#[test]
fn partial_memcpy_of_capability_invalidates() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let p0 = m.allocate_object("px0", 16, 16, false, None).unwrap();
    let p1 = m.allocate_object("px1", 16, 16, false, None).unwrap();
    m.store_ptr(&p0, &x).unwrap();
    m.memcpy(&p1, &p0, 8).unwrap(); // half a capability
    let e = m.load_ptr(&p1);
    assert!(e.is_err(), "half-initialised pointer read: {e:?}");
}

#[test]
fn memset_invalidates_stored_capability() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let px = m.allocate_object("px", 16, 16, false, None).unwrap();
    m.store_ptr(&px, &x).unwrap();
    m.memset(&px, 0, 16).unwrap();
    let p = m.load_ptr(&px).unwrap();
    assert!(p.cap.ghost().tag_unspecified || !p.cap.tag());
}

// ── Pointer comparison and subtraction ───────────────────────────────────

#[test]
fn ptr_diff_same_allocation() {
    let mut m = reference();
    let a = m.allocate_object("arr", 40, 4, false, Some(&[0; 40])).unwrap();
    let p = m.array_shift(&a, 4, 7).unwrap();
    assert_eq!(m.ptr_diff(&p, &a, 4).unwrap(), 7);
}

#[test]
fn ptr_diff_different_provenance_is_ub() {
    let mut m = reference();
    let a = m.allocate_object("a", 4, 4, false, None).unwrap();
    let b = m.allocate_object("b", 4, 4, false, None).unwrap();
    expect_ub(m.ptr_diff(&a, &b, 4), Ub::PtrDiffDifferentProvenance);
}

#[test]
fn equality_is_address_only() {
    // §3.6: == compares addresses, ignoring metadata.
    let mut m = reference();
    let a = m.allocate_object("a", 8, 8, false, Some(&[0; 8])).unwrap();
    let narrowed = PtrVal::new(a.prov, a.cap.with_bounds(a.addr(), 4));
    let untagged = PtrVal::new(a.prov, a.cap.clear_tag());
    assert!(m.ptr_eq(&a, &narrowed));
    assert!(m.ptr_eq(&a, &untagged));
    assert!(!a.cap.exact_eq(&narrowed.cap), "exact equality distinguishes");
}

#[test]
fn relational_compare_different_provenance_is_ub() {
    let mut m = reference();
    let a = m.allocate_object("a", 4, 4, false, None).unwrap();
    let b = m.allocate_object("b", 4, 4, false, None).unwrap();
    expect_ub(m.ptr_rel_cmp(&a, &b), Ub::RelationalCompareDifferentProvenance);
    assert!(m.ptr_rel_cmp(&a, &a).is_ok());
}

// ── realloc ──────────────────────────────────────────────────────────────

#[test]
fn realloc_copies_and_frees() {
    let mut m = reference();
    let p = m.allocate_region(8, 8).unwrap();
    m.store_int(&p, 4, &IntVal::Num(99)).unwrap();
    let q = m.reallocate(&p, 32).unwrap();
    assert_eq!(m.load_int(&q, 4, true, false).unwrap().value(), 99);
    expect_ub(m.load_int(&p, 4, true, false), Ub::AccessDeadAllocation);
}

#[test]
fn realloc_null_is_malloc() {
    let mut m = reference();
    let q = m.reallocate(&PtrVal::null(), 8).unwrap();
    m.store_int(&q, 4, &IntVal::Num(1)).unwrap();
}

// ── Allocator layout profiles (Appendix A mechanism) ─────────────────────

#[test]
fn layout_controls_stack_addresses() {
    let mut cer = reference();
    let mut gcc = Mem::new(MemConfig::cheri_hardware(AddressLayout::gcc_morello()));
    let a = cer.allocate_object("x", 8, 8, false, None).unwrap();
    let b = gcc.allocate_object("x", 8, 8, false, None).unwrap();
    assert!(a.addr() > 0x8000_0000, "cerberus stack above INT_MAX");
    assert!(b.addr() < 0x8000_0000, "gcc stack below INT_MAX");
}

#[test]
fn representability_padding_for_large_allocations() {
    let mut m = reference();
    // Large enough that bounds need rounding: check base/size got padded so
    // the handed-out capability is exact.
    let size = (1u64 << 20) + 3;
    let p = m.allocate_region(size, 16).unwrap();
    assert!(p.cap.tag());
    assert_eq!(p.cap.bounds().base, p.addr(), "base is exactly aligned");
    assert!(p.cap.bounds().length() >= size, "bounds cover the request");
    assert_eq!(
        p.cap.bounds().length(),
        MorelloCap::representable_length(size),
        "bounds are padded to the representable length"
    );
    assert!(m.stats.padding_bytes > 0);
}

// ── Function allocations ─────────────────────────────────────────────────

#[test]
fn function_pointers_are_executable_not_writable() {
    let mut m = reference();
    let f = m
        .allocate_kind("f", 1, 1, AllocKind::Function, true, Some(&[0]))
        .unwrap();
    assert!(f.cap.perms().contains(cheri_cap::Perms::EXECUTE));
    assert!(!f.cap.perms().contains(cheri_cap::Perms::STORE));
    assert!(m.store_int(&f, 1, &IntVal::Num(0)).is_err());
}

// ── Ghost-state arithmetic values (§3.3 option (c)) ──────────────────────

#[test]
fn ghosted_value_store_load_roundtrips_but_access_is_ub() {
    // §3.3: values with ghost state may be stored and loaded (memcpy of
    // them must not be UB), but accessing memory via them is UB.
    let mut m = reference();
    let x = m.allocate_object("x", 8, 8, false, Some(&[0; 8])).unwrap();
    let slot = m.allocate_object("ip", 16, 16, false, None).unwrap();
    let ghosted = PtrVal::new(
        x.prov,
        x.cap
            .with_address(0x7fff_0000)
            .with_ghost(GhostState::UNSPECIFIED),
    );
    m.store_ptr(&slot, &ghosted).unwrap();
    let back = m.load_ptr(&slot).unwrap();
    assert!(back.cap.ghost().tag_unspecified);
    expect_ub(m.load_int(&back, 4, true, false), Ub::CheriUndefinedTag);
}

// ── Overlapping copies and iota resolution ───────────────────────────────

#[test]
fn overlapping_memcpy_is_memmove_safe() {
    // copy_bytes_raw snapshots the source first, so overlapping ranges
    // behave like memmove.
    let mut m = reference();
    let a = m.allocate_object("buf", 16, 1, false, Some(&[1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0])).unwrap();
    let dst = m.array_shift(&a, 1, 4).unwrap();
    m.memcpy(&dst, &a, 8).unwrap();
    // buf[4..12] == old buf[0..8]
    for (i, want) in [1u8, 2, 3, 4, 5, 6, 7, 8].iter().enumerate() {
        let p = m.array_shift(&a, 1, 4 + i as i64).unwrap();
        assert_eq!(m.load_int(&p, 1, false, false).unwrap().value(), i128::from(*want));
    }
}

#[test]
fn iota_resolves_on_first_use_and_stays_resolved() {
    let mut m = reference();
    let a = m.allocate_region(16, 16).unwrap();
    let b = m.allocate_region(16, 16).unwrap();
    if a.addr() + 16 != b.addr() {
        return; // no adjacency, nothing to disambiguate
    }
    m.store_int(&b, 4, &IntVal::Num(5)).unwrap();
    let _ = m.cast_ptr_to_int(&a, false, false, 8);
    let _ = m.cast_ptr_to_int(&b, false, false, 8);
    let amb = m.cast_int_to_ptr(&IntVal::Num(i128::from(b.addr())));
    assert!(matches!(amb.prov, Provenance::Iota(_)));
    // First access inside b's footprint resolves the iota to b…
    let with_cap = PtrVal::new(amb.prov, b.cap);
    assert_eq!(m.load_int(&with_cap, 4, true, false).unwrap().value(), 5);
    // …after which an access that only fits a is a provenance violation.
    let back_into_a = PtrVal::new(amb.prov, a.cap.with_address(a.addr()));
    expect_ub(m.load_int(&back_into_a, 4, true, false), Ub::AccessOutOfBounds);
}
