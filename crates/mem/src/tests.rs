//! Integration tests of the memory object model against the paper's rules.

use cheri_cap::{Capability, GhostState, MorelloCap};

use crate::{
    AddressLayout, AllocKind, CheriMemory, IntVal, MemConfig, MemError, Provenance, PtrVal,
    TrapKind, Ub,
};

type Mem = CheriMemory<MorelloCap>;

fn reference() -> Mem {
    Mem::new(MemConfig::cheri_reference())
}

fn hardware() -> Mem {
    Mem::new(MemConfig::cheri_hardware(AddressLayout::clang_morello()))
}

fn baseline() -> Mem {
    crate::new_baseline::<MorelloCap>()
}

fn expect_ub<T: std::fmt::Debug>(r: Result<T, MemError>, ub: Ub) {
    match r {
        Err(MemError::Ub(got, _)) => assert_eq!(got, ub),
        other => panic!("expected UB {ub}, got {other:?}"),
    }
}

fn expect_trap<T: std::fmt::Debug>(r: Result<T, MemError>, kind: TrapKind) {
    match r {
        Err(MemError::Trap(got, _)) => assert_eq!(got, kind),
        other => panic!("expected trap {kind}, got {other:?}"),
    }
}

// ── Basic allocation, load, store ────────────────────────────────────────

#[test]
fn roundtrip_int() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, None).unwrap();
    m.store_int(&p, 4, &IntVal::Num(-7)).unwrap();
    assert_eq!(m.load_int(&p, 4, true, false).unwrap().value(), -7);
    assert_eq!(m.load_int(&p, 4, false, false).unwrap().value(), 0xFFFF_FFF9);
}

#[test]
fn fresh_allocation_capability_matches_footprint() {
    let mut m = reference();
    let p = m.allocate_object("x", 8, 8, false, None).unwrap();
    assert!(p.cap.tag());
    assert_eq!(p.cap.bounds().base, p.addr());
    assert_eq!(p.cap.bounds().length(), 8);
    assert!(matches!(p.prov, Provenance::Alloc(_)));
}

#[test]
fn uninitialised_read_is_ub() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, None).unwrap();
    expect_ub(m.load_int(&p, 4, true, false), Ub::UninitialisedRead);
}

#[test]
fn readonly_object_rejects_store() {
    let mut m = reference();
    let p = m.allocate_object("c", 4, 4, true, Some(&[1, 0, 0, 0])).unwrap();
    assert_eq!(m.load_int(&p, 4, true, false).unwrap().value(), 1);
    // §3.9: the capability lacks write permission, so this is flagged by the
    // capability check before the allocation check.
    let e = m.store_int(&p, 4, &IntVal::Num(2)).unwrap_err();
    assert!(matches!(
        e,
        MemError::Ub(Ub::CheriInsufficientPermissions | Ub::WriteToReadOnly, _)
    ));
}

#[test]
fn stack_allocations_grow_down_heap_up() {
    let mut m = reference();
    let a = m.allocate_object("a", 4, 4, false, None).unwrap();
    let b = m.allocate_object("b", 4, 4, false, None).unwrap();
    assert!(b.addr() < a.addr());
    let ha = m.allocate_region(16, 16).unwrap();
    let hb = m.allocate_region(16, 16).unwrap();
    assert!(hb.addr() > ha.addr());
}

// ── The §3.1 example: one-past write traps / is UB ───────────────────────

#[test]
fn one_past_write_is_bounds_violation() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let q = m.array_shift(&x, 4, 1).unwrap(); // legal construction
    expect_ub(m.store_int(&q, 4, &IntVal::Num(42)), Ub::CheriBoundsViolation);
}

#[test]
fn one_past_write_traps_on_hardware() {
    let mut m = hardware();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let q = m.array_shift(&x, 4, 1).unwrap();
    expect_trap(m.store_int(&q, 4, &IntVal::Num(42)), TrapKind::BoundsViolation);
}

#[test]
fn baseline_detects_oob_via_provenance_only() {
    let mut m = baseline();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let q = m.array_shift(&x, 4, 1).unwrap();
    expect_ub(m.store_int(&q, 4, &IntVal::Num(42)), Ub::AccessOutOfBounds);
}

// ── §3.2: out-of-bounds construction ─────────────────────────────────────

#[test]
fn far_oob_construction_is_ub_in_reference() {
    let mut m = reference();
    let x = m.allocate_object("x", 8, 4, false, Some(&[0; 8])).unwrap();
    expect_ub(m.array_shift(&x, 4, 100_001), Ub::OutOfBoundPtrArithmetic);
}

#[test]
fn far_oob_construction_clears_tag_on_hardware() {
    let mut m = hardware();
    let x = m.allocate_object("x", 8, 4, false, Some(&[0; 8])).unwrap();
    let q = m.array_shift(&x, 4, 100_001).unwrap(); // no abstract UB
    assert!(!q.cap.tag(), "non-representable construction clears the tag");
    assert_eq!(q.addr(), x.addr().wrapping_add(400_004));
    // ... and coming back into range does not restore it.
    let back = m.array_shift(&q, 4, -100_000).unwrap();
    assert!(!back.cap.tag());
    expect_trap(m.store_int(&back, 4, &IntVal::Num(1)), TrapKind::TagViolation);
}

// ── Temporal safety (§3.11, use-after-free) ──────────────────────────────

#[test]
fn use_after_free_is_ub() {
    let mut m = reference();
    let p = m.allocate_region(16, 16).unwrap();
    m.store_int(&p, 4, &IntVal::Num(3)).unwrap();
    m.kill(&p, true).unwrap();
    expect_ub(m.load_int(&p, 4, true, false), Ub::AccessDeadAllocation);
}

#[test]
fn double_free_is_ub() {
    let mut m = reference();
    let p = m.allocate_region(16, 16).unwrap();
    m.kill(&p, true).unwrap();
    expect_ub(m.kill(&p, true), Ub::DoubleFree);
}

#[test]
fn free_of_interior_pointer_is_ub() {
    let mut m = reference();
    let p = m.allocate_region(16, 16).unwrap();
    let q = m.array_shift(&p, 1, 4).unwrap();
    expect_ub(m.kill(&q, true), Ub::FreeInvalidPointer);
}

#[test]
fn free_null_is_noop() {
    let mut m = reference();
    m.kill(&PtrVal::null(), true).unwrap();
}

#[test]
fn hardware_mode_misses_use_after_free_when_memory_reused() {
    // §3.11: "in the absence of a capability revocation mechanism ... one
    // could have a pointer to a heap object that has been killed and another
    // pointer to a newly allocated object at the same address".
    let mut m = hardware();
    let p = m.allocate_region(16, 16).unwrap();
    m.kill(&p, true).unwrap();
    // The capability is still tagged and in bounds; hardware cannot object
    // (our bump allocator does not reuse, so give it fresh backing bytes).
    let e = m.store_int(&p, 4, &IntVal::Num(9));
    assert!(e.is_ok(), "hardware cannot detect temporal violations: {e:?}");
}

// ── Pointer/integer casts (§3.3) and PNVI-ae-udi ─────────────────────────

#[test]
fn intptr_roundtrip_preserves_capability() {
    let mut m = reference();
    let p = m.allocate_object("x", 8, 8, false, Some(&[0; 8])).unwrap();
    let iv = m.cast_ptr_to_int(&p, true, false, 16);
    assert!(iv.is_cap());
    assert_eq!(iv.value(), i128::from(p.addr()));
    let q = m.cast_int_to_ptr(&iv);
    assert_eq!(q.cap, p.cap);
    assert_eq!(q.prov, p.prov);
    m.store_int(&q, 4, &IntVal::Num(5)).unwrap();
}

#[test]
fn ptr_to_int_cast_exposes_allocation() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let id = p.prov.alloc_id().unwrap();
    assert!(!m.allocation(id).expect("allocation exists").exposed);
    let _ = m.cast_ptr_to_int(&p, false, true, 8);
    assert!(m.allocation(id).expect("allocation exists").exposed);
}

#[test]
fn int_to_ptr_attaches_provenance_of_exposed_allocation() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, Some(&[7, 0, 0, 0])).unwrap();
    let addr = p.addr();
    let iv = m.cast_ptr_to_int(&p, false, false, 8); // expose, lose the cap
    assert_eq!(iv, IntVal::Num(i128::from(addr)));
    let q = m.cast_int_to_ptr(&iv);
    assert_eq!(q.prov, p.prov, "PNVI-ae lookup recovers the provenance");
    // But the capability is null-derived: usable in the baseline sense only.
    assert!(!q.cap.tag());
    expect_ub(m.load_int(&q, 4, true, false), Ub::CheriInvalidCap);
}

#[test]
fn int_to_ptr_without_expose_gets_empty_provenance() {
    let mut m = reference();
    let p = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let q = m.cast_int_to_ptr(&IntVal::Num(i128::from(p.addr())));
    assert!(q.prov.is_empty());
}

#[test]
fn baseline_int_to_ptr_roundtrip_works() {
    // In the baseline model the same cast chain yields a *usable* pointer —
    // this is the PNVI-ae-udi of §2.3 without capabilities.
    let mut m = baseline();
    let p = m.allocate_object("x", 4, 4, false, Some(&[7, 0, 0, 0])).unwrap();
    let iv = m.cast_ptr_to_int(&p, false, false, 8);
    let q = m.cast_int_to_ptr(&iv);
    assert_eq!(m.load_int(&q, 4, true, false).unwrap().value(), 7);
}

#[test]
fn ambiguous_one_past_cast_creates_iota() {
    let mut m = reference();
    // Two adjacent heap allocations: one-past of `a` may equal base of `b`.
    let a = m.allocate_region(16, 16).unwrap();
    let b = m.allocate_region(16, 16).unwrap();
    if a.addr() + 16 != b.addr() {
        return; // representability padding separated them; nothing to test
    }
    let _ = m.cast_ptr_to_int(&a, false, false, 8);
    let _ = m.cast_ptr_to_int(&b, false, false, 8);
    let q = m.cast_int_to_ptr(&IntVal::Num(i128::from(b.addr())));
    assert!(matches!(q.prov, Provenance::Iota(_)));
}

// ── Capability representation accesses (§3.5) ────────────────────────────

#[test]
fn byte_write_to_stored_capability_makes_tag_unspecified() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let px = m.allocate_object("px", 16, 16, false, None).unwrap();
    m.store_ptr(&px, &x).unwrap();
    assert!(m.cap_meta_at(px.addr()).tag);
    // p[0] = p[0]: read a representation byte, write it back.
    let b = m.load_int(&px, 1, false, false).unwrap();
    m.store_int(&px, 1, &b).unwrap();
    let meta = m.cap_meta_at(px.addr());
    assert!(meta.ghost.tag_unspecified, "ghost bit set, tag not cleared");
    assert!(meta.tag, "abstract machine keeps the tag itself");
    // Loading yields a capability with unspecified tag; using it is UB.
    let loaded = m.load_ptr(&px).unwrap();
    assert!(loaded.cap.ghost().tag_unspecified);
    expect_ub(m.store_int(&loaded, 4, &IntVal::Num(1)), Ub::CheriUndefinedTag);
}

#[test]
fn byte_write_clears_tag_on_hardware() {
    let mut m = hardware();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let px = m.allocate_object("px", 16, 16, false, None).unwrap();
    m.store_ptr(&px, &x).unwrap();
    let b = m.load_int(&px, 1, false, false).unwrap();
    m.store_int(&px, 1, &b).unwrap();
    let meta = m.cap_meta_at(px.addr());
    assert!(!meta.tag, "hardware deterministically clears the tag");
    let loaded = m.load_ptr(&px).unwrap();
    expect_trap(m.store_int(&loaded, 4, &IntVal::Num(1)), TrapKind::TagViolation);
}

#[test]
fn bytewise_copy_of_pointer_loses_tag_but_keeps_provenance_bytes() {
    // The §3.5 for-loop example: copying a pointer byte-by-byte. In the
    // abstract machine the destination tag is unset (no capability store
    // ever happened there), so using the copy is UB.
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let p0 = m.allocate_object("px0", 16, 16, false, None).unwrap();
    let p1 = m.allocate_object("px1", 16, 16, false, None).unwrap();
    m.store_ptr(&p0, &x).unwrap();
    for i in 0..16 {
        let src = m.array_shift(&p0, 1, i).unwrap();
        let dst = m.array_shift(&p1, 1, i).unwrap();
        let b = m.load_int(&src, 1, false, false).unwrap();
        m.store_int(&dst, 1, &b).unwrap();
    }
    let copied = m.load_ptr(&p1).unwrap();
    assert!(!copied.cap.tag());
    let e = m.store_int(&copied, 4, &IntVal::Num(1));
    assert!(e.is_err());
}

#[test]
fn memcpy_preserves_capability() {
    // ... whereas memcpy uses capability-sized accesses and preserves tags.
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let p0 = m.allocate_object("px0", 16, 16, false, None).unwrap();
    let p1 = m.allocate_object("px1", 16, 16, false, None).unwrap();
    m.store_ptr(&p0, &x).unwrap();
    m.memcpy(&p1, &p0, 16).unwrap();
    let copied = m.load_ptr(&p1).unwrap();
    assert!(copied.cap.tag());
    assert_eq!(copied.prov, x.prov);
    m.store_int(&copied, 4, &IntVal::Num(1)).unwrap();
}

#[test]
fn partial_memcpy_of_capability_invalidates() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let p0 = m.allocate_object("px0", 16, 16, false, None).unwrap();
    let p1 = m.allocate_object("px1", 16, 16, false, None).unwrap();
    m.store_ptr(&p0, &x).unwrap();
    m.memcpy(&p1, &p0, 8).unwrap(); // half a capability
    let e = m.load_ptr(&p1);
    assert!(e.is_err(), "half-initialised pointer read: {e:?}");
}

#[test]
fn memset_invalidates_stored_capability() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let px = m.allocate_object("px", 16, 16, false, None).unwrap();
    m.store_ptr(&px, &x).unwrap();
    m.memset(&px, 0, 16).unwrap();
    let p = m.load_ptr(&px).unwrap();
    assert!(p.cap.ghost().tag_unspecified || !p.cap.tag());
}

// ── Pointer comparison and subtraction ───────────────────────────────────

#[test]
fn ptr_diff_same_allocation() {
    let mut m = reference();
    let a = m.allocate_object("arr", 40, 4, false, Some(&[0; 40])).unwrap();
    let p = m.array_shift(&a, 4, 7).unwrap();
    assert_eq!(m.ptr_diff(&p, &a, 4).unwrap(), 7);
}

#[test]
fn ptr_diff_different_provenance_is_ub() {
    let mut m = reference();
    let a = m.allocate_object("a", 4, 4, false, None).unwrap();
    let b = m.allocate_object("b", 4, 4, false, None).unwrap();
    expect_ub(m.ptr_diff(&a, &b, 4), Ub::PtrDiffDifferentProvenance);
}

#[test]
fn equality_is_address_only() {
    // §3.6: == compares addresses, ignoring metadata.
    let mut m = reference();
    let a = m.allocate_object("a", 8, 8, false, Some(&[0; 8])).unwrap();
    let narrowed = PtrVal::new(a.prov, a.cap.with_bounds(a.addr(), 4));
    let untagged = PtrVal::new(a.prov, a.cap.clear_tag());
    assert!(m.ptr_eq(&a, &narrowed));
    assert!(m.ptr_eq(&a, &untagged));
    assert!(!a.cap.exact_eq(&narrowed.cap), "exact equality distinguishes");
}

#[test]
fn relational_compare_different_provenance_is_ub() {
    let mut m = reference();
    let a = m.allocate_object("a", 4, 4, false, None).unwrap();
    let b = m.allocate_object("b", 4, 4, false, None).unwrap();
    expect_ub(m.ptr_rel_cmp(&a, &b), Ub::RelationalCompareDifferentProvenance);
    assert!(m.ptr_rel_cmp(&a, &a).is_ok());
}

// ── realloc ──────────────────────────────────────────────────────────────

#[test]
fn realloc_copies_and_frees() {
    let mut m = reference();
    let p = m.allocate_region(8, 8).unwrap();
    m.store_int(&p, 4, &IntVal::Num(99)).unwrap();
    let q = m.reallocate(&p, 32).unwrap();
    assert_eq!(m.load_int(&q, 4, true, false).unwrap().value(), 99);
    expect_ub(m.load_int(&p, 4, true, false), Ub::AccessDeadAllocation);
}

#[test]
fn realloc_null_is_malloc() {
    let mut m = reference();
    let q = m.reallocate(&PtrVal::null(), 8).unwrap();
    m.store_int(&q, 4, &IntVal::Num(1)).unwrap();
}

// ── Allocator layout profiles (Appendix A mechanism) ─────────────────────

#[test]
fn layout_controls_stack_addresses() {
    let mut cer = reference();
    let mut gcc = Mem::new(MemConfig::cheri_hardware(AddressLayout::gcc_morello()));
    let a = cer.allocate_object("x", 8, 8, false, None).unwrap();
    let b = gcc.allocate_object("x", 8, 8, false, None).unwrap();
    assert!(a.addr() > 0x8000_0000, "cerberus stack above INT_MAX");
    assert!(b.addr() < 0x8000_0000, "gcc stack below INT_MAX");
}

#[test]
fn representability_padding_for_large_allocations() {
    let mut m = reference();
    // Large enough that bounds need rounding: check base/size got padded so
    // the handed-out capability is exact.
    let size = (1u64 << 20) + 3;
    let p = m.allocate_region(size, 16).unwrap();
    assert!(p.cap.tag());
    assert_eq!(p.cap.bounds().base, p.addr(), "base is exactly aligned");
    assert!(p.cap.bounds().length() >= size, "bounds cover the request");
    assert_eq!(
        p.cap.bounds().length(),
        MorelloCap::representable_length(size),
        "bounds are padded to the representable length"
    );
    assert!(m.stats.padding_bytes > 0);
}

// ── Function allocations ─────────────────────────────────────────────────

#[test]
fn function_pointers_are_executable_not_writable() {
    let mut m = reference();
    let f = m
        .allocate_kind("f", 1, 1, AllocKind::Function, true, Some(&[0]))
        .unwrap();
    assert!(f.cap.perms().contains(cheri_cap::Perms::EXECUTE));
    assert!(!f.cap.perms().contains(cheri_cap::Perms::STORE));
    assert!(m.store_int(&f, 1, &IntVal::Num(0)).is_err());
}

// ── Ghost-state arithmetic values (§3.3 option (c)) ──────────────────────

#[test]
fn ghosted_value_store_load_roundtrips_but_access_is_ub() {
    // §3.3: values with ghost state may be stored and loaded (memcpy of
    // them must not be UB), but accessing memory via them is UB.
    let mut m = reference();
    let x = m.allocate_object("x", 8, 8, false, Some(&[0; 8])).unwrap();
    let slot = m.allocate_object("ip", 16, 16, false, None).unwrap();
    let ghosted = PtrVal::new(
        x.prov,
        x.cap
            .with_address(0x7fff_0000)
            .with_ghost(GhostState::UNSPECIFIED),
    );
    m.store_ptr(&slot, &ghosted).unwrap();
    let back = m.load_ptr(&slot).unwrap();
    assert!(back.cap.ghost().tag_unspecified);
    expect_ub(m.load_int(&back, 4, true, false), Ub::CheriUndefinedTag);
}

// ── Overlapping copies and iota resolution ───────────────────────────────

#[test]
fn overlapping_memcpy_is_memmove_safe() {
    // copy_bytes_raw snapshots the source first, so overlapping ranges
    // behave like memmove.
    let mut m = reference();
    let a = m.allocate_object("buf", 16, 1, false, Some(&[1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0])).unwrap();
    let dst = m.array_shift(&a, 1, 4).unwrap();
    m.memcpy(&dst, &a, 8).unwrap();
    // buf[4..12] == old buf[0..8]
    for (i, want) in [1u8, 2, 3, 4, 5, 6, 7, 8].iter().enumerate() {
        let p = m.array_shift(&a, 1, 4 + i as i64).unwrap();
        assert_eq!(m.load_int(&p, 1, false, false).unwrap().value(), i128::from(*want));
    }
}

#[test]
fn iota_resolves_on_first_use_and_stays_resolved() {
    let mut m = reference();
    let a = m.allocate_region(16, 16).unwrap();
    let b = m.allocate_region(16, 16).unwrap();
    if a.addr() + 16 != b.addr() {
        return; // no adjacency, nothing to disambiguate
    }
    m.store_int(&b, 4, &IntVal::Num(5)).unwrap();
    let _ = m.cast_ptr_to_int(&a, false, false, 8);
    let _ = m.cast_ptr_to_int(&b, false, false, 8);
    let amb = m.cast_int_to_ptr(&IntVal::Num(i128::from(b.addr())));
    assert!(matches!(amb.prov, Provenance::Iota(_)));
    // First access inside b's footprint resolves the iota to b…
    let with_cap = PtrVal::new(amb.prov, b.cap);
    assert_eq!(m.load_int(&with_cap, 4, true, false).unwrap().value(), 5);
    // …after which an access that only fits a is a provenance violation.
    let back_into_a = PtrVal::new(amb.prov, a.cap.with_address(a.addr()));
    expect_ub(m.load_int(&back_into_a, 4, true, false), Ub::AccessOutOfBounds);
}

// ── Revocation sweep: bounds-overlap, not base-membership (§7 + §3.2) ────

#[test]
fn revocation_sweeps_padded_capability_whose_base_escapes_the_freed_range() {
    use cheri_cap::{CcCap, CheriotProfile};
    type Cap = CcCap<CheriotProfile>;

    let mut m = CheriMemory::<Cap>::new(MemConfig::cheriot());
    // Shift the heap cursor so the victim's base is *not* aligned to the
    // CHERI-Concentrate granule of the capability crafted below.
    let _pad = m.allocate_region(16, 16).unwrap();
    let v = m.allocate_region(16, 16).unwrap();

    // Craft a tagged capability into `v` whose representability padding
    // pushed the decoded base BELOW the allocation base: exactly the shape
    // that escaped the old `base ∈ [lo, hi)` revocation filter.
    let mut escape: Option<Cap> = None;
    'search: for off in [4u64, 8, 12] {
        let mut len = 32u64;
        while len <= 1 << 24 {
            let c = Cap::root().with_bounds(v.addr() + off, len);
            if c.tag() && c.bounds().base < v.addr() {
                escape = Some(c);
                break 'search;
            }
            len *= 2;
        }
    }
    let escape = escape.expect("some length forces downward base padding");
    let b = escape.bounds();
    assert!(
        b.base < v.addr(),
        "premise: padding pushed the decoded base below the allocation"
    );
    assert!(
        b.top > u128::from(v.addr()),
        "premise: the footprint still overlaps the allocation"
    );

    let slot = m.allocate_object("slot", 8, 8, false, None).unwrap();
    m.store_ptr(&slot, &PtrVal::new(v.prov, escape)).unwrap();
    assert!(m.cap_meta_at(slot.addr()).tag);

    m.kill(&v, true).unwrap();
    assert!(
        !m.cap_meta_at(slot.addr()).tag,
        "overlap-based revocation must catch the padded capability"
    );
    assert!(m.stats.revoked_caps >= 1);

    // End to end: reloading and using the revoked pointer traps.
    let loaded = m.load_ptr(&slot).unwrap();
    assert!(!loaded.cap.tag());
    expect_trap(m.store_int(&loaded, 4, &IntVal::Num(1)), TrapKind::TagViolation);
}

#[test]
fn revocation_still_sweeps_exact_capability_to_freed_region() {
    use cheri_cap::{CcCap, CheriotProfile};
    type Cap = CcCap<CheriotProfile>;

    let mut m = CheriMemory::<Cap>::new(MemConfig::cheriot());
    let v = m.allocate_region(16, 16).unwrap();
    let slot = m.allocate_object("slot", 8, 8, false, None).unwrap();
    m.store_ptr(&slot, &v).unwrap();
    m.kill(&v, true).unwrap();
    assert!(!m.cap_meta_at(slot.addr()).tag);
    assert_eq!(m.stats.revoked_caps, 1);
    let loaded = m.load_ptr(&slot).unwrap();
    expect_trap(m.load_int(&loaded, 4, true, false), TrapKind::TagViolation);
}

#[test]
fn revocation_spares_capabilities_to_other_allocations() {
    use cheri_cap::{CcCap, CheriotProfile};
    type Cap = CcCap<CheriotProfile>;

    let mut m = CheriMemory::<Cap>::new(MemConfig::cheriot());
    let keep = m.allocate_region(16, 16).unwrap();
    let v = m.allocate_region(16, 16).unwrap();
    let slot = m.allocate_object("slot", 8, 8, false, None).unwrap();
    m.store_ptr(&slot, &keep).unwrap();
    m.kill(&v, true).unwrap();
    assert!(
        m.cap_meta_at(slot.addr()).tag,
        "capability to a live allocation must survive the sweep"
    );
    assert_eq!(m.stats.revoked_caps, 0);
}

// ── memcmp: abstract UB vs hardware stale-byte reads ─────────────────────

#[test]
fn memcmp_of_uninitialised_memory_diverges_by_profile() {
    // Abstract machine (cerberus): comparing uninitialised bytes is UB.
    let mut r = reference();
    let a = r.allocate_object("a", 8, 8, false, None).unwrap();
    let b = r.allocate_object("b", 8, 8, false, Some(&[0; 8])).unwrap();
    expect_ub(r.memcmp(&a, &b, 8), Ub::UninitialisedRead);

    // Hardware emulation: real memory has no "uninitialised" state; the
    // stale concrete bytes (deterministically 0 in our never-reused RAM)
    // are compared, matching the kill() stale-byte behaviour.
    let mut h = hardware();
    let a = h.allocate_object("a", 8, 8, false, None).unwrap();
    let b = h.allocate_object("b", 8, 8, false, Some(&[0; 8])).unwrap();
    assert_eq!(h.memcmp(&a, &b, 8).unwrap(), 0);
    let c = h
        .allocate_object("c", 8, 8, false, Some(&[1, 0, 0, 0, 0, 0, 0, 0]))
        .unwrap();
    assert_eq!(h.memcmp(&a, &c, 8).unwrap(), -1);
    assert_eq!(h.memcmp(&c, &a, 8).unwrap(), 1);
}

// ── ptr_diff: zero-sized element type is a loud failure ──────────────────

#[test]
fn ptr_diff_with_zero_sized_element_fails_loudly() {
    let mut m = reference();
    let a = m.allocate_object("arr", 16, 4, false, Some(&[0; 16])).unwrap();
    let p = m.array_shift(&a, 4, 2).unwrap();
    assert!(matches!(m.ptr_diff(&p, &a, 0), Err(MemError::Fail(_))));
    // Not gated on abstract_ub: an interpreter bug is loud in every profile.
    let mut h = hardware();
    let a = h.allocate_object("arr", 16, 4, false, Some(&[0; 16])).unwrap();
    assert!(matches!(h.ptr_diff(&a, &a, 0), Err(MemError::Fail(_))));
}

// ── memcpy tag transfer: misalignment, partial slots, overlap (§3.5) ─────

#[test]
fn misaligned_memcpy_does_not_transfer_tags() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let p0 = m.allocate_object("src", 16, 16, false, None).unwrap();
    let p1 = m.allocate_object("dst", 32, 16, false, Some(&[0; 32])).unwrap();
    m.store_ptr(&p0, &x).unwrap();
    let dst = m.array_shift(&p1, 1, 4).unwrap();
    m.memcpy(&dst, &p0, 16).unwrap();
    // src % CAP_BYTES != dst % CAP_BYTES: no slot can move as one unit.
    assert!(!m.cap_meta_at(p1.addr()).tag);
    assert!(!m.cap_meta_at(p1.addr() + 16).tag);
    assert_eq!(m.tagged_caps_in_memory(), 1, "only the source tag survives");
}

#[test]
fn memcpy_partial_trailing_slot_does_not_transfer_tag() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let b0 = m.allocate_object("src", 32, 16, false, Some(&[0; 32])).unwrap();
    let b1 = m.allocate_object("dst", 32, 16, false, Some(&[0; 32])).unwrap();
    let hi0 = m.array_shift(&b0, 1, 16).unwrap();
    m.store_ptr(&hi0, &x).unwrap(); // capability in the second slot of b0
    m.memcpy(&b1, &b0, 24).unwrap(); // slot 0 fully copied, slot 1 partially
    assert!(m.cap_meta_at(b0.addr() + 16).tag, "source stays tagged");
    assert!(
        !m.cap_meta_at(b1.addr() + 16).tag,
        "a partially copied slot must not carry the tag"
    );
    let hi1 = m.array_shift(&b1, 1, 16).unwrap();
    let loaded = m.load_ptr(&hi1).unwrap();
    assert!(!loaded.cap.tag());
}

#[test]
fn overlapping_forward_memcpy_moves_tag_with_the_bytes() {
    let mut m = reference();
    let x = m.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let buf = m.allocate_object("buf", 48, 16, false, Some(&[0; 48])).unwrap();
    m.store_ptr(&buf, &x).unwrap(); // capability at offset 0
    let fwd = m.array_shift(&buf, 1, 16).unwrap();
    m.memcpy(&fwd, &buf, 32).unwrap(); // [0,32) -> [16,48), overlapping
    // The slot below the destination range is untouched, and the capability
    // arrives intact at offset 16 (bytes are snapshotted first: memmove).
    assert!(m.cap_meta_at(buf.addr()).tag);
    assert!(m.cap_meta_at(buf.addr() + 16).tag);
    let at16 = m.load_ptr(&fwd).unwrap();
    assert!(at16.cap.tag());
    assert!(at16.cap.ghost().is_clean());
    m.store_int(&at16, 4, &IntVal::Num(7)).unwrap(); // still usable
}

#[test]
fn overlapping_backward_memcpy_invalidates_the_moved_tag() {
    // dst < src with overlap: the destination-range invalidation hits the
    // source slot *before* the tag transfer, so the moved capability comes
    // out ghost-invalidated (abstract) or untagged (hardware). This pins
    // the legacy semantics so the flat store cannot silently change them.
    let mut r = reference();
    let x = r.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let buf = r.allocate_object("buf", 48, 16, false, Some(&[0; 48])).unwrap();
    let mid = r.array_shift(&buf, 1, 16).unwrap();
    r.store_ptr(&mid, &x).unwrap(); // capability at offset 16
    r.memcpy(&buf, &mid, 32).unwrap(); // [16,48) -> [0,32), overlapping
    let meta = r.cap_meta_at(buf.addr());
    assert!(meta.tag && meta.ghost.tag_unspecified);
    let loaded = r.load_ptr(&buf).unwrap();
    expect_ub(r.store_int(&loaded, 4, &IntVal::Num(1)), Ub::CheriUndefinedTag);

    let mut h = hardware();
    let x = h.allocate_object("x", 4, 4, false, Some(&[0; 4])).unwrap();
    let buf = h.allocate_object("buf", 48, 16, false, Some(&[0; 48])).unwrap();
    let mid = h.array_shift(&buf, 1, 16).unwrap();
    h.store_ptr(&mid, &x).unwrap();
    h.memcpy(&buf, &mid, 32).unwrap();
    assert!(!h.cap_meta_at(buf.addr()).tag, "hardware cleared the tag");
}
