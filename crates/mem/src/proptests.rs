//! Property-based tests of the memory object model: random well-defined
//! operation sequences checked against a shadow model, and the model's
//! safety invariants.

use proptest::prelude::*;

use cheri_cap::{Capability, MorelloCap};

use crate::{CheriMemory, IntVal, MemConfig, PtrVal};

type Mem = CheriMemory<MorelloCap>;

/// A well-defined operation on a set of live allocations.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes (as object k).
    Alloc { size: u8 },
    /// Store `val` at byte offset `off % size` (4-byte aligned within).
    Store { target: u8, off: u8, val: i32 },
    /// Load from a previously-stored offset and check the shadow.
    Load { target: u8, off: u8 },
    /// memcpy between two allocations (length clamped in-bounds).
    Copy { from: u8, to: u8, len: u8 },
    /// memset a prefix.
    Set { target: u8, byte: u8, len: u8 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (8u8..64).prop_map(|size| Op::Alloc { size }),
            (any::<u8>(), any::<u8>(), any::<i32>())
                .prop_map(|(target, off, val)| Op::Store { target, off, val }),
            (any::<u8>(), any::<u8>()).prop_map(|(target, off)| Op::Load { target, off }),
            (any::<u8>(), any::<u8>(), 1u8..32)
                .prop_map(|(from, to, len)| Op::Copy { from, to, len }),
            (any::<u8>(), any::<u8>(), 1u8..32)
                .prop_map(|(target, byte, len)| Op::Set { target, byte, len }),
        ],
        1..60,
    )
}

/// Shadow model: per allocation, a byte array mirroring what the program
/// wrote (None = uninitialised).
struct Shadow {
    allocs: Vec<(PtrVal<MorelloCap>, Vec<Option<u8>>)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every in-bounds operation sequence is defined, and loads return
    /// exactly what the shadow model predicts.
    #[test]
    fn defined_sequences_match_shadow(ops in arb_ops()) {
        let mut mem = Mem::new(MemConfig::cheri_reference());
        let mut sh = Shadow { allocs: Vec::new() };
        for op in ops {
            match op {
                Op::Alloc { size } => {
                    let size = u64::from(size).max(4);
                    let p = mem.allocate_region(size, 16).expect("allocate");
                    sh.allocs.push((p, vec![None; size as usize]));
                }
                Op::Store { target, off, val } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let (base, shadow) = &mut sh.allocs[t];
                    let max_off = shadow.len() - 4;
                    let off = (usize::from(off) % (max_off / 4 + 1)) * 4;
                    let p = mem.array_shift(base, 1, off as i64).expect("shift");
                    mem.store_int(&p, 4, &IntVal::Num(i128::from(val))).expect("store");
                    for (i, b) in val.to_le_bytes().iter().enumerate() {
                        shadow[off + i] = Some(*b);
                    }
                }
                Op::Load { target, off } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let (base, shadow) = &sh.allocs[t];
                    let max_off = shadow.len() - 4;
                    let off = (usize::from(off) % (max_off / 4 + 1)) * 4;
                    let bytes: Option<Vec<u8>> =
                        shadow[off..off + 4].iter().copied().collect();
                    let p = mem.array_shift(base, 1, off as i64).expect("shift");
                    if let Some(bytes) = bytes {
                        let want = i32::from_le_bytes(bytes.try_into().expect("4 bytes"));
                        let got = mem.load_int(&p, 4, true, false).expect("load");
                        prop_assert_eq!(got.value(), i128::from(want));
                    } else {
                        // Uninitialised (fully or partially): UB, not a panic.
                        prop_assert!(mem.load_int(&p, 4, true, false).is_err());
                    }
                }
                Op::Copy { from, to, len } => {
                    if sh.allocs.len() < 2 { continue; }
                    let f = usize::from(from) % sh.allocs.len();
                    let mut t = usize::from(to) % sh.allocs.len();
                    if f == t { t = (t + 1) % sh.allocs.len(); }
                    let n = usize::from(len)
                        .min(sh.allocs[f].1.len())
                        .min(sh.allocs[t].1.len());
                    let src = sh.allocs[f].0.clone();
                    let dst = sh.allocs[t].0.clone();
                    mem.memcpy(&dst, &src, n as u64).expect("memcpy");
                    let copied: Vec<Option<u8>> = sh.allocs[f].1[..n].to_vec();
                    sh.allocs[t].1[..n].copy_from_slice(&copied);
                }
                Op::Set { target, byte, len } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let n = usize::from(len).min(sh.allocs[t].1.len());
                    let dst = sh.allocs[t].0.clone();
                    mem.memset(&dst, byte, n as u64).expect("memset");
                    for b in &mut sh.allocs[t].1[..n] {
                        *b = Some(byte);
                    }
                }
            }
        }
    }

    /// Unforgeability at the model level: the number of *tagged*
    /// capabilities in memory only grows through capability stores
    /// (store_ptr / capability-preserving memcpy); data writes never mint
    /// tags.
    #[test]
    fn data_writes_never_mint_tags(
        writes in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40)
    ) {
        let mut mem = Mem::new(MemConfig::cheri_reference());
        let x = mem.allocate_object("x", 4, 4, false, Some(&[0; 4])).expect("x");
        let slots = mem.allocate_object("slots", 16 * 8, 16, false, None).expect("slots");
        for i in 0..8 {
            let p = mem.array_shift(&slots, 16, i).expect("shift");
            mem.store_ptr(&p, &x).expect("store");
        }
        let before = mem.tagged_caps_in_memory();
        for (off, val) in writes {
            let off = i64::from(off) % (16 * 8 - 4);
            let p = mem.array_shift(&slots, 1, off).expect("shift");
            mem.store_int(&p, 4, &IntVal::Num(i128::from(val))).expect("store");
            prop_assert!(mem.tagged_caps_in_memory() <= before);
        }
    }

    /// Temporal invariant: after kill, every access through any pointer
    /// into the allocation is UB (abstract machine), regardless of offset.
    #[test]
    fn killed_allocations_unreachable(size in 4u64..64, offs in prop::collection::vec(any::<u8>(), 1..8)) {
        let mut mem = Mem::new(MemConfig::cheri_reference());
        let size = size & !3;
        let p = mem.allocate_region(size.max(4), 16).expect("malloc");
        mem.memset(&p, 1, size.max(4)).expect("memset");
        mem.kill(&p, true).expect("free");
        for off in offs {
            let off = u64::from(off) % size.max(4);
            let q = PtrVal::new(p.prov, p.cap.with_address(p.addr() + off));
            prop_assert!(mem.load_int(&q, 1, false, false).is_err());
        }
    }

    /// Capability stores round-trip through memory at any aligned slot and
    /// preserve every field.
    #[test]
    fn pointer_store_load_roundtrip(slot in 0u64..16, narrow in any::<bool>()) {
        let mut mem = Mem::new(MemConfig::cheri_reference());
        let x = mem.allocate_object("x", 64, 16, false, Some(&[0; 64])).expect("x");
        let v = if narrow {
            PtrVal::new(x.prov, x.cap.with_bounds(x.addr() + 16, 16))
        } else {
            x.clone()
        };
        let slots = mem.allocate_object("slots", 16 * 16, 16, false, None).expect("slots");
        let p = mem.array_shift(&slots, 16, slot as i64).expect("shift");
        mem.store_ptr(&p, &v).expect("store");
        let back = mem.load_ptr(&p).expect("load");
        prop_assert_eq!(back.prov, v.prov);
        prop_assert!(back.cap.exact_eq(&v.cap));
    }
}
