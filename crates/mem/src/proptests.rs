//! Property-based tests of the memory object model: random well-defined
//! operation sequences checked against a shadow model, and the model's
//! safety invariants. Runs on the hermetic `cheri-qc` harness —
//! deterministic cases, seed-pinned replay (`CHERI_QC_SEED=...`), and
//! shrinking by operation deletion.

use cheri_qc::prop::{check, Config};
use cheri_qc::Rng;

use cheri_cap::{Capability, MorelloCap};

use crate::{CheriMemory, IntVal, MemConfig, PtrVal};

type Mem = CheriMemory<MorelloCap>;

/// A well-defined operation on a set of live allocations.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes (as object k).
    Alloc { size: u8 },
    /// Store `val` at byte offset `off % size` (4-byte aligned within).
    Store { target: u8, off: u8, val: i32 },
    /// Load from a previously-stored offset and check the shadow.
    Load { target: u8, off: u8 },
    /// memcpy between two allocations (length clamped in-bounds).
    Copy { from: u8, to: u8, len: u8 },
    /// memset a prefix.
    Set { target: u8, byte: u8, len: u8 },
}

cheri_qc::no_shrink!(Op);

fn arb_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0..5u8) {
        0 => Op::Alloc { size: rng.gen_range(8u8..64) },
        1 => Op::Store {
            target: rng.gen(),
            off: rng.gen(),
            val: rng.gen(),
        },
        2 => Op::Load { target: rng.gen(), off: rng.gen() },
        3 => Op::Copy {
            from: rng.gen(),
            to: rng.gen(),
            len: rng.gen_range(1u8..32),
        },
        _ => Op::Set {
            target: rng.gen(),
            byte: rng.gen(),
            len: rng.gen_range(1u8..32),
        },
    }
}

fn arb_ops(rng: &mut Rng) -> Vec<Op> {
    let n = rng.gen_range(1usize..60);
    (0..n).map(|_| arb_op(rng)).collect()
}

/// Shadow model: per allocation, a byte array mirroring what the program
/// wrote (None = uninitialised).
struct Shadow {
    allocs: Vec<(PtrVal<MorelloCap>, Vec<Option<u8>>)>,
}

/// Every in-bounds operation sequence is defined, and loads return
/// exactly what the shadow model predicts.
#[test]
fn defined_sequences_match_shadow() {
    check("defined_sequences_match_shadow", Config::cases(256), arb_ops, |ops| {
        let mut mem = Mem::new(MemConfig::cheri_reference());
        let mut sh = Shadow { allocs: Vec::new() };
        for op in ops {
            match *op {
                Op::Alloc { size } => {
                    let size = u64::from(size).max(4);
                    let p = mem.allocate_region(size, 16).expect("allocate");
                    sh.allocs.push((p, vec![None; size as usize]));
                }
                Op::Store { target, off, val } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let (base, shadow) = &mut sh.allocs[t];
                    let max_off = shadow.len() - 4;
                    let off = (usize::from(off) % (max_off / 4 + 1)) * 4;
                    let p = mem.array_shift(base, 1, off as i64).expect("shift");
                    mem.store_int(&p, 4, &IntVal::Num(i128::from(val))).expect("store");
                    for (i, b) in val.to_le_bytes().iter().enumerate() {
                        shadow[off + i] = Some(*b);
                    }
                }
                Op::Load { target, off } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let (base, shadow) = &sh.allocs[t];
                    let max_off = shadow.len() - 4;
                    let off = (usize::from(off) % (max_off / 4 + 1)) * 4;
                    let bytes: Option<Vec<u8>> =
                        shadow[off..off + 4].iter().copied().collect();
                    let p = mem.array_shift(base, 1, off as i64).expect("shift");
                    if let Some(bytes) = bytes {
                        let want = i32::from_le_bytes(bytes.try_into().expect("4 bytes"));
                        let got = mem.load_int(&p, 4, true, false).expect("load");
                        assert_eq!(got.value(), i128::from(want));
                    } else {
                        // Uninitialised (fully or partially): UB, not a panic.
                        assert!(mem.load_int(&p, 4, true, false).is_err());
                    }
                }
                Op::Copy { from, to, len } => {
                    if sh.allocs.len() < 2 { continue; }
                    let f = usize::from(from) % sh.allocs.len();
                    let mut t = usize::from(to) % sh.allocs.len();
                    if f == t { t = (t + 1) % sh.allocs.len(); }
                    let n = usize::from(len)
                        .min(sh.allocs[f].1.len())
                        .min(sh.allocs[t].1.len());
                    let src = sh.allocs[f].0.clone();
                    let dst = sh.allocs[t].0.clone();
                    mem.memcpy(&dst, &src, n as u64).expect("memcpy");
                    let copied: Vec<Option<u8>> = sh.allocs[f].1[..n].to_vec();
                    sh.allocs[t].1[..n].copy_from_slice(&copied);
                }
                Op::Set { target, byte, len } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let n = usize::from(len).min(sh.allocs[t].1.len());
                    let dst = sh.allocs[t].0.clone();
                    mem.memset(&dst, byte, n as u64).expect("memset");
                    for b in &mut sh.allocs[t].1[..n] {
                        *b = Some(byte);
                    }
                }
            }
        }
    });
}

/// Unforgeability at the model level: the number of *tagged*
/// capabilities in memory only grows through capability stores
/// (store_ptr / capability-preserving memcpy); data writes never mint
/// tags.
#[test]
fn data_writes_never_mint_tags() {
    check(
        "data_writes_never_mint_tags",
        Config::cases(128),
        |rng| {
            let n = rng.gen_range(1usize..40);
            (0..n).map(|_| (rng.gen::<u8>(), rng.gen::<u8>())).collect::<Vec<(u8, u8)>>()
        },
        |writes| {
            let mut mem = Mem::new(MemConfig::cheri_reference());
            let x = mem.allocate_object("x", 4, 4, false, Some(&[0; 4])).expect("x");
            let slots = mem.allocate_object("slots", 16 * 8, 16, false, None).expect("slots");
            for i in 0..8 {
                let p = mem.array_shift(&slots, 16, i).expect("shift");
                mem.store_ptr(&p, &x).expect("store");
            }
            let before = mem.tagged_caps_in_memory();
            for &(off, val) in writes {
                let off = i64::from(off) % (16 * 8 - 4);
                let p = mem.array_shift(&slots, 1, off).expect("shift");
                mem.store_int(&p, 4, &IntVal::Num(i128::from(val))).expect("store");
                assert!(mem.tagged_caps_in_memory() <= before);
            }
        },
    );
}

/// Temporal invariant: after kill, every access through any pointer
/// into the allocation is UB (abstract machine), regardless of offset.
#[test]
fn killed_allocations_unreachable() {
    check(
        "killed_allocations_unreachable",
        Config::cases(128),
        |rng| {
            let size = rng.gen_range(4u64..64);
            let n = rng.gen_range(1usize..8);
            let offs: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            (size, offs)
        },
        |&(size, ref offs)| {
            let size = size.clamp(4, 64) & !3;
            let mut mem = Mem::new(MemConfig::cheri_reference());
            let p = mem.allocate_region(size.max(4), 16).expect("malloc");
            mem.memset(&p, 1, size.max(4)).expect("memset");
            mem.kill(&p, true).expect("free");
            for &off in offs {
                let off = u64::from(off) % size.max(4);
                let q = PtrVal::new(p.prov, p.cap.with_address(p.addr() + off));
                assert!(mem.load_int(&q, 1, false, false).is_err());
            }
        },
    );
}

/// Capability stores round-trip through memory at any aligned slot and
/// preserve every field.
#[test]
fn pointer_store_load_roundtrip() {
    check(
        "pointer_store_load_roundtrip",
        Config::cases(128),
        |rng| (rng.gen_range(0u64..16), rng.gen::<bool>()),
        |&(slot, narrow)| {
            let mut mem = Mem::new(MemConfig::cheri_reference());
            let x = mem.allocate_object("x", 64, 16, false, Some(&[0; 64])).expect("x");
            let v = if narrow {
                PtrVal::new(x.prov, x.cap.with_bounds(x.addr() + 16, 16))
            } else {
                x.clone()
            };
            let slots = mem.allocate_object("slots", 16 * 16, 16, false, None).expect("slots");
            let p = mem.array_shift(&slots, 16, (slot % 16) as i64).expect("shift");
            mem.store_ptr(&p, &v).expect("store");
            let back = mem.load_ptr(&p).expect("load");
            assert_eq!(back.prov, v.prov);
            assert!(back.cap.exact_eq(&v.cap));
        },
    );
}
