//! Property-based tests of the memory object model: random well-defined
//! operation sequences checked against a shadow model, and the model's
//! safety invariants. Runs on the hermetic `cheri-qc` harness —
//! deterministic cases, seed-pinned replay (`CHERI_QC_SEED=...`), and
//! shrinking by operation deletion.

use cheri_qc::prop::{check, Config};
use cheri_qc::Rng;

use cheri_cap::{Capability, MorelloCap};

use crate::{CheriMemory, IntVal, MemConfig, PtrVal};

type Mem = CheriMemory<MorelloCap>;

/// A well-defined operation on a set of live allocations.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes (as object k).
    Alloc { size: u8 },
    /// Store `val` at byte offset `off % size` (4-byte aligned within).
    Store { target: u8, off: u8, val: i32 },
    /// Load from a previously-stored offset and check the shadow.
    Load { target: u8, off: u8 },
    /// memcpy between two allocations (length clamped in-bounds).
    Copy { from: u8, to: u8, len: u8 },
    /// memset a prefix.
    Set { target: u8, byte: u8, len: u8 },
}

cheri_qc::no_shrink!(Op);

fn arb_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0..5u8) {
        0 => Op::Alloc { size: rng.gen_range(8u8..64) },
        1 => Op::Store {
            target: rng.gen(),
            off: rng.gen(),
            val: rng.gen(),
        },
        2 => Op::Load { target: rng.gen(), off: rng.gen() },
        3 => Op::Copy {
            from: rng.gen(),
            to: rng.gen(),
            len: rng.gen_range(1u8..32),
        },
        _ => Op::Set {
            target: rng.gen(),
            byte: rng.gen(),
            len: rng.gen_range(1u8..32),
        },
    }
}

fn arb_ops(rng: &mut Rng) -> Vec<Op> {
    let n = rng.gen_range(1usize..60);
    (0..n).map(|_| arb_op(rng)).collect()
}

/// Shadow model: per allocation, a byte array mirroring what the program
/// wrote (None = uninitialised).
struct Shadow {
    allocs: Vec<(PtrVal<MorelloCap>, Vec<Option<u8>>)>,
}

/// Every in-bounds operation sequence is defined, and loads return
/// exactly what the shadow model predicts.
#[test]
fn defined_sequences_match_shadow() {
    check("defined_sequences_match_shadow", Config::cases(256), arb_ops, |ops| {
        let mut mem = Mem::new(MemConfig::cheri_reference());
        let mut sh = Shadow { allocs: Vec::new() };
        for op in ops {
            match *op {
                Op::Alloc { size } => {
                    let size = u64::from(size).max(4);
                    let p = mem.allocate_region(size, 16).expect("allocate");
                    sh.allocs.push((p, vec![None; size as usize]));
                }
                Op::Store { target, off, val } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let (base, shadow) = &mut sh.allocs[t];
                    let max_off = shadow.len() - 4;
                    let off = (usize::from(off) % (max_off / 4 + 1)) * 4;
                    let p = mem.array_shift(base, 1, off as i64).expect("shift");
                    mem.store_int(&p, 4, &IntVal::Num(i128::from(val))).expect("store");
                    for (i, b) in val.to_le_bytes().iter().enumerate() {
                        shadow[off + i] = Some(*b);
                    }
                }
                Op::Load { target, off } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let (base, shadow) = &sh.allocs[t];
                    let max_off = shadow.len() - 4;
                    let off = (usize::from(off) % (max_off / 4 + 1)) * 4;
                    let bytes: Option<Vec<u8>> =
                        shadow[off..off + 4].iter().copied().collect();
                    let p = mem.array_shift(base, 1, off as i64).expect("shift");
                    if let Some(bytes) = bytes {
                        let want = i32::from_le_bytes(bytes.try_into().expect("4 bytes"));
                        let got = mem.load_int(&p, 4, true, false).expect("load");
                        assert_eq!(got.value(), i128::from(want));
                    } else {
                        // Uninitialised (fully or partially): UB, not a panic.
                        assert!(mem.load_int(&p, 4, true, false).is_err());
                    }
                }
                Op::Copy { from, to, len } => {
                    if sh.allocs.len() < 2 { continue; }
                    let f = usize::from(from) % sh.allocs.len();
                    let mut t = usize::from(to) % sh.allocs.len();
                    if f == t { t = (t + 1) % sh.allocs.len(); }
                    let n = usize::from(len)
                        .min(sh.allocs[f].1.len())
                        .min(sh.allocs[t].1.len());
                    let src = sh.allocs[f].0.clone();
                    let dst = sh.allocs[t].0.clone();
                    mem.memcpy(&dst, &src, n as u64).expect("memcpy");
                    let copied: Vec<Option<u8>> = sh.allocs[f].1[..n].to_vec();
                    sh.allocs[t].1[..n].copy_from_slice(&copied);
                }
                Op::Set { target, byte, len } => {
                    if sh.allocs.is_empty() { continue; }
                    let t = usize::from(target) % sh.allocs.len();
                    let n = usize::from(len).min(sh.allocs[t].1.len());
                    let dst = sh.allocs[t].0.clone();
                    mem.memset(&dst, byte, n as u64).expect("memset");
                    for b in &mut sh.allocs[t].1[..n] {
                        *b = Some(byte);
                    }
                }
            }
        }
    });
}

/// Unforgeability at the model level: the number of *tagged*
/// capabilities in memory only grows through capability stores
/// (store_ptr / capability-preserving memcpy); data writes never mint
/// tags.
#[test]
fn data_writes_never_mint_tags() {
    check(
        "data_writes_never_mint_tags",
        Config::cases(128),
        |rng| {
            let n = rng.gen_range(1usize..40);
            (0..n).map(|_| (rng.gen::<u8>(), rng.gen::<u8>())).collect::<Vec<(u8, u8)>>()
        },
        |writes| {
            let mut mem = Mem::new(MemConfig::cheri_reference());
            let x = mem.allocate_object("x", 4, 4, false, Some(&[0; 4])).expect("x");
            let slots = mem.allocate_object("slots", 16 * 8, 16, false, None).expect("slots");
            for i in 0..8 {
                let p = mem.array_shift(&slots, 16, i).expect("shift");
                mem.store_ptr(&p, &x).expect("store");
            }
            let before = mem.tagged_caps_in_memory();
            for &(off, val) in writes {
                let off = i64::from(off) % (16 * 8 - 4);
                let p = mem.array_shift(&slots, 1, off).expect("shift");
                mem.store_int(&p, 4, &IntVal::Num(i128::from(val))).expect("store");
                assert!(mem.tagged_caps_in_memory() <= before);
            }
        },
    );
}

/// Temporal invariant: after kill, every access through any pointer
/// into the allocation is UB (abstract machine), regardless of offset.
#[test]
fn killed_allocations_unreachable() {
    check(
        "killed_allocations_unreachable",
        Config::cases(128),
        |rng| {
            let size = rng.gen_range(4u64..64);
            let n = rng.gen_range(1usize..8);
            let offs: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            (size, offs)
        },
        |&(size, ref offs)| {
            let size = size.clamp(4, 64) & !3;
            let mut mem = Mem::new(MemConfig::cheri_reference());
            let p = mem.allocate_region(size.max(4), 16).expect("malloc");
            mem.memset(&p, 1, size.max(4)).expect("memset");
            mem.kill(&p, true).expect("free");
            for &off in offs {
                let off = u64::from(off) % size.max(4);
                let q = PtrVal::new(p.prov, p.cap.with_address(p.addr() + off));
                assert!(mem.load_int(&q, 1, false, false).is_err());
            }
        },
    );
}

/// Capability stores round-trip through memory at any aligned slot and
/// preserve every field.
#[test]
fn pointer_store_load_roundtrip() {
    check(
        "pointer_store_load_roundtrip",
        Config::cases(128),
        |rng| (rng.gen_range(0u64..16), rng.gen::<bool>()),
        |&(slot, narrow)| {
            let mut mem = Mem::new(MemConfig::cheri_reference());
            let x = mem.allocate_object("x", 64, 16, false, Some(&[0; 64])).expect("x");
            let v = if narrow {
                PtrVal::new(x.prov, x.cap.with_bounds(x.addr() + 16, 16))
            } else {
                x
            };
            let slots = mem.allocate_object("slots", 16 * 16, 16, false, None).expect("slots");
            let p = mem.array_shift(&slots, 16, (slot % 16) as i64).expect("shift");
            mem.store_ptr(&p, &v).expect("store");
            let back = mem.load_ptr(&p).expect("load");
            assert_eq!(back.prov, v.prov);
            assert!(back.cap.exact_eq(&v.cap));
        },
    );
}

// ── Packed AbsByte ───────────────────────────────────────────────────────

/// An arbitrary §4.3 triple for the packing round-trip property.
#[derive(Clone, Debug, PartialEq)]
struct Parts {
    prov: crate::Provenance,
    value: Option<u8>,
    copy_index: Option<u8>,
}

cheri_qc::no_shrink!(Parts);

fn arb_parts(rng: &mut Rng) -> Parts {
    use crate::{AllocId, IotaId, Provenance};
    // Ids span the full 44-bit packed field, biased toward small (realistic)
    // allocation counters.
    let id = |rng: &mut Rng| -> u64 {
        if rng.gen() {
            u64::from(rng.gen::<u16>())
        } else {
            rng.gen_range(0u64..1 << 44)
        }
    };
    let prov = match rng.gen_range(0..3u8) {
        0 => Provenance::Empty,
        1 => Provenance::Alloc(AllocId(id(rng))),
        _ => Provenance::Iota(IotaId(id(rng))),
    };
    Parts {
        prov,
        value: if rng.gen() { Some(rng.gen::<u8>()) } else { None },
        copy_index: if rng.gen() { Some(rng.gen::<u8>()) } else { None },
    }
}

/// Packing is lossless and canonical: `parts ∘ from_parts = id`, packed
/// equality coincides with triple equality, and the derived accessors
/// (`is_init`, `concrete`) match the unpacked definitions.
#[test]
fn packed_absbyte_roundtrip_lossless() {
    use crate::AbsByte;
    check(
        "packed_absbyte_roundtrip_lossless",
        Config::cases(512),
        |rng| {
            let n = rng.gen_range(1usize..32);
            (0..n).map(|_| arb_parts(rng)).collect::<Vec<Parts>>()
        },
        |parts| {
            for p in parts {
                let b = AbsByte::from_parts(p.prov, p.value, p.copy_index);
                let (prov, value, copy_index) = b.parts();
                assert_eq!(
                    Parts { prov, value, copy_index },
                    *p,
                    "unpack(pack(x)) != x"
                );
                assert_eq!(b.is_init(), p.value.is_some());
                assert_eq!(b.concrete(), p.value.unwrap_or(0));
            }
            for a in parts {
                for b in parts {
                    let pa = AbsByte::from_parts(a.prov, a.value, a.copy_index);
                    let pb = AbsByte::from_parts(b.prov, b.value, b.copy_index);
                    assert_eq!(pa == pb, a == b, "packed equality is not canonical");
                }
            }
        },
    );
}

// ── Differential: flat store vs legacy store ─────────────────────────────

/// A mixed (deliberately UB-capable) operation for the store-equivalence
/// referee: every outcome, including errors, is compared across stores.
#[derive(Clone, Debug)]
enum MOp {
    Alloc { size: u8 },
    Free { t: u8 },
    Store { t: u8, off: u8, val: i32 },
    Load { t: u8, off: u8 },
    StorePtr { t: u8, off: u8, src: u8 },
    LoadPtr { t: u8, off: u8 },
    Copy { from: u8, to: u8, from_off: u8, to_off: u8, len: u8 },
    Set { t: u8, off: u8, byte: u8, len: u8 },
}

cheri_qc::no_shrink!(MOp);

fn arb_mop(rng: &mut Rng) -> MOp {
    match rng.gen_range(0..8u8) {
        0 => MOp::Alloc { size: rng.gen_range(1u8..96) },
        1 => MOp::Free { t: rng.gen() },
        2 => MOp::Store { t: rng.gen(), off: rng.gen_range(0u8..96), val: rng.gen() },
        3 => MOp::Load { t: rng.gen(), off: rng.gen_range(0u8..96) },
        4 => MOp::StorePtr { t: rng.gen(), off: rng.gen_range(0u8..96), src: rng.gen() },
        5 => MOp::LoadPtr { t: rng.gen(), off: rng.gen_range(0u8..96) },
        6 => MOp::Copy {
            from: rng.gen(),
            to: rng.gen(),
            from_off: rng.gen_range(0u8..64),
            to_off: rng.gen_range(0u8..64),
            len: rng.gen_range(0u8..48),
        },
        _ => MOp::Set {
            t: rng.gen(),
            off: rng.gen_range(0u8..64),
            byte: rng.gen(),
            len: rng.gen_range(0u8..48),
        },
    }
}

fn arb_mops(rng: &mut Rng) -> Vec<MOp> {
    let n = rng.gen_range(1usize..50);
    (0..n).map(|_| arb_mop(rng)).collect()
}

/// Rebase a pointer to `addr + off` without the arithmetic UB check, so the
/// sequence can probe out-of-bounds accesses too.
fn at<C: Capability>(p: &PtrVal<C>, off: u8) -> PtrVal<C> {
    PtrVal::new(
        p.prov,
        p.cap.with_address(p.addr().wrapping_add(u64::from(off))),
    )
}

/// Run a mixed sequence and log every observable: op results (values and
/// errors), the tagged-capability count after each op, a final byte/slot
/// sweep over every allocation, the stats counters, and the event trace.
fn run_mixed<C: Capability>(cfg: MemConfig, ops: &[MOp]) -> Vec<String> {
    fn pick<C: Capability>(ptrs: &[PtrVal<C>], t: u8) -> Option<PtrVal<C>> {
        if ptrs.is_empty() {
            None
        } else {
            Some(ptrs[usize::from(t) % ptrs.len()].clone())
        }
    }
    let mut mem = CheriMemory::<C>::new(cfg);
    mem.enable_trace();
    let mut ptrs: Vec<PtrVal<C>> = Vec::new();
    let mut log: Vec<String> = Vec::new();
    for op in ops {
        let line = match *op {
            MOp::Alloc { size } => match mem.allocate_region(u64::from(size), 16) {
                Ok(p) => {
                    ptrs.push(p.clone());
                    format!("alloc @{:#x}", p.addr())
                }
                Err(e) => format!("alloc err {e:?}"),
            },
            MOp::Free { t } => match pick(&ptrs, t) {
                Some(p) => format!("free {:?}", mem.kill(&p, true)),
                None => "skip".into(),
            },
            MOp::Store { t, off, val } => match pick(&ptrs, t) {
                Some(p) => format!(
                    "store {:?}",
                    mem.store_int(&at(&p, off), 4, &IntVal::Num(i128::from(val)))
                ),
                None => "skip".into(),
            },
            MOp::Load { t, off } => match pick(&ptrs, t) {
                Some(p) => format!("load {:?}", mem.load_int(&at(&p, off), 4, true, false)),
                None => "skip".into(),
            },
            MOp::StorePtr { t, off, src } => match (pick(&ptrs, t), pick(&ptrs, src)) {
                (Some(p), Some(s)) => format!("storep {:?}", mem.store_ptr(&at(&p, off), &s)),
                _ => "skip".into(),
            },
            MOp::LoadPtr { t, off } => match pick(&ptrs, t) {
                Some(p) => format!("loadp {:?}", mem.load_ptr(&at(&p, off))),
                None => "skip".into(),
            },
            MOp::Copy { from, to, from_off, to_off, len } => {
                match (pick(&ptrs, from), pick(&ptrs, to)) {
                    (Some(f), Some(d)) => format!(
                        "copy {:?}",
                        mem.memcpy(&at(&d, to_off), &at(&f, from_off), u64::from(len))
                    ),
                    _ => "skip".into(),
                }
            }
            MOp::Set { t, off, byte, len } => match pick(&ptrs, t) {
                Some(p) => format!(
                    "set {:?}",
                    mem.memset(&at(&p, off), byte, u64::from(len))
                ),
                None => "skip".into(),
            },
        };
        log.push(format!("{line}; tags={}", mem.tagged_caps_in_memory()));
    }
    for p in &ptrs {
        for off in (0..96u8).step_by(4) {
            log.push(format!("sweep {:?}", mem.load_int(&at(p, off), 4, false, false)));
        }
        let cb = C::CAP_BYTES as u64;
        let mut slot = (p.addr() + cb - 1) & !(cb - 1);
        while slot < p.addr() + 96 {
            log.push(format!("meta {slot:#x} {:?}", mem.cap_meta_at(slot)));
            slot += cb;
        }
    }
    log.push(format!("stats {:?}", mem.stats));
    log.extend(mem.take_trace());
    log
}

/// The flat per-allocation store and the legacy global-dictionary store
/// are observably identical — results (including UB/trap errors), traces,
/// capability slots, stats, and byte contents — across every profile
/// family, including the revocation-on-free CHERIoT configuration.
#[test]
fn legacy_and_flat_stores_agree() {
    use cheri_cap::{CcCap, CheriotProfile};
    use crate::AddressLayout;

    check("legacy_and_flat_stores_agree", Config::cases(96), arb_mops, |ops| {
        let morello_cfgs = [
            MemConfig::cheri_reference(),
            MemConfig::cheri_hardware(AddressLayout::clang_morello()),
            MemConfig::iso_baseline(),
        ];
        for cfg in morello_cfgs {
            let mut legacy = cfg;
            legacy.legacy_store = true;
            let mut flat = cfg;
            flat.legacy_store = false;
            assert_eq!(
                run_mixed::<MorelloCap>(flat, ops),
                run_mixed::<MorelloCap>(legacy, ops),
                "stores diverge under {cfg:?}"
            );
        }
        let cfg = MemConfig::cheriot();
        let mut legacy = cfg;
        legacy.legacy_store = true;
        let mut flat = cfg;
        flat.legacy_store = false;
        assert_eq!(
            run_mixed::<CcCap<CheriotProfile>>(flat, ops),
            run_mixed::<CcCap<CheriotProfile>>(legacy, ops),
            "stores diverge under {cfg:?}"
        );
    });
}
