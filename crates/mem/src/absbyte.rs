//! Abstract memory bytes.
//!
//! §4.3: `AbsByte ≜ π × (option byte) × (option ℕ)` — each byte of the
//! memory content carries a provenance, an optional 8-bit value (absent for
//! uninitialised memory), and an optional *copy index* recording which byte
//! of a pointer representation it is, so that a bytewise `memcpy` of a
//! pointer can reassemble its provenance.
//!
//! # Packed representation
//!
//! The naive `(Provenance, Option<u8>, Option<u8>)` struct is 24 bytes —
//! 16 of them the provenance enum — and the flat store keeps one `AbsByte`
//! per reserved byte of every allocation, so the footprint (and cache
//! traffic of `memcpy`/scalar loads) is dominated by it. The triple packs
//! into a single `u64` instead:
//!
//! ```text
//! bit  63..20   provenance id (44 bits; allocation/iota counters are
//!               sequential, so 2^44 ids is unreachable in practice)
//! bit  19..18   provenance kind: 0 = Empty, 1 = Alloc, 2 = Iota
//! bit  17       copy_index is Some
//! bit  16       value is Some
//! bit  15..8    copy_index payload (0 when absent)
//! bit   7..0    value payload (0 when absent)
//! ```
//!
//! Absent options keep a zero payload, so the packed form is canonical:
//! bit-equality coincides with logical equality of the triple and the
//! derived `PartialEq`/`Eq` stay correct. The all-zero word is exactly
//! [`AbsByte::UNINIT`], which lets `vec![AbsByte::UNINIT; n]` and
//! `buf.fill(AbsByte::UNINIT)` lower to `memset`.

use crate::{AllocId, IotaId, Provenance};

/// One byte of abstract memory (packed; see the module docs for the layout).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct AbsByte {
    bits: u64,
}

const VALUE_SHIFT: u32 = 0;
const INDEX_SHIFT: u32 = 8;
const HAS_VALUE: u64 = 1 << 16;
const HAS_INDEX: u64 = 1 << 17;
const KIND_SHIFT: u32 = 18;
const KIND_MASK: u64 = 0b11 << KIND_SHIFT;
const KIND_ALLOC: u64 = 0b01 << KIND_SHIFT;
const KIND_IOTA: u64 = 0b10 << KIND_SHIFT;
const ID_SHIFT: u32 = 20;
const ID_BITS: u32 = 64 - ID_SHIFT;

const _: () = assert!(std::mem::size_of::<AbsByte>() == 8);

fn pack_prov(prov: Provenance) -> u64 {
    let (kind, id) = match prov {
        Provenance::Empty => return 0,
        Provenance::Alloc(AllocId(id)) => (KIND_ALLOC, id),
        Provenance::Iota(IotaId(id)) => (KIND_IOTA, id),
    };
    assert!(
        id < 1 << ID_BITS,
        "provenance id {id} exceeds the {ID_BITS}-bit packed field"
    );
    kind | (id << ID_SHIFT)
}

impl AbsByte {
    /// An uninitialised byte with empty provenance.
    pub const UNINIT: AbsByte = AbsByte { bits: 0 };

    /// A plain data byte with no provenance.
    #[must_use]
    pub fn data(value: u8) -> Self {
        AbsByte {
            bits: HAS_VALUE | u64::from(value) << VALUE_SHIFT,
        }
    }

    /// A byte of a pointer representation.
    #[must_use]
    pub fn pointer(prov: Provenance, value: u8, index: u8) -> Self {
        AbsByte {
            bits: pack_prov(prov)
                | HAS_VALUE
                | HAS_INDEX
                | u64::from(value) << VALUE_SHIFT
                | u64::from(index) << INDEX_SHIFT,
        }
    }

    /// Assemble a byte from the unpacked §4.3 triple.
    #[must_use]
    pub fn from_parts(prov: Provenance, value: Option<u8>, copy_index: Option<u8>) -> Self {
        let mut bits = pack_prov(prov);
        if let Some(v) = value {
            bits |= HAS_VALUE | u64::from(v) << VALUE_SHIFT;
        }
        if let Some(i) = copy_index {
            bits |= HAS_INDEX | u64::from(i) << INDEX_SHIFT;
        }
        AbsByte { bits }
    }

    /// The unpacked §4.3 triple `(π, option byte, option ℕ)`.
    #[must_use]
    pub fn parts(self) -> (Provenance, Option<u8>, Option<u8>) {
        (self.prov(), self.value(), self.copy_index())
    }

    /// Provenance carried by this byte (π).
    #[must_use]
    pub fn prov(self) -> Provenance {
        let id = self.bits >> ID_SHIFT;
        match self.bits & KIND_MASK {
            KIND_ALLOC => Provenance::Alloc(AllocId(id)),
            KIND_IOTA => Provenance::Iota(IotaId(id)),
            _ => Provenance::Empty,
        }
    }

    /// The byte value; `None` for uninitialised memory.
    #[must_use]
    pub fn value(self) -> Option<u8> {
        if self.bits & HAS_VALUE != 0 {
            Some((self.bits >> VALUE_SHIFT) as u8)
        } else {
            None
        }
    }

    /// For bytes of a pointer representation: the index of this byte within
    /// the pointer (0-based), enabling provenance recovery on reassembly.
    #[must_use]
    pub fn copy_index(self) -> Option<u8> {
        if self.bits & HAS_INDEX != 0 {
            Some((self.bits >> INDEX_SHIFT) as u8)
        } else {
            None
        }
    }

    /// Is this byte initialised?
    #[must_use]
    pub fn is_init(&self) -> bool {
        self.bits & HAS_VALUE != 0
    }

    /// The concrete value a *hardware* read observes: real memory has no
    /// "uninitialised" state, so abstract-machine-uninitialised bytes read
    /// back as the deterministic stale value 0 (our emulated RAM is
    /// zero-filled and never reused). Used by the hardware-emulation
    /// profiles (`memcmp`, the revocation sweep's capability decode).
    #[must_use]
    pub fn concrete(&self) -> u8 {
        // Absent values keep a zero payload, so no branch is needed.
        (self.bits >> VALUE_SHIFT) as u8
    }
}

impl std::fmt::Debug for AbsByte {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbsByte")
            .field("prov", &self.prov())
            .field("value", &self.value())
            .field("copy_index", &self.copy_index())
            .finish()
    }
}

/// Recover the provenance of a pointer reassembled from `bytes`, PNVI-style:
/// all bytes must carry the same non-empty provenance and consecutive copy
/// indices starting at 0, otherwise the result is [`Provenance::Empty`].
#[must_use]
pub fn recover_provenance(bytes: &[AbsByte]) -> Provenance {
    let first = match bytes.first() {
        Some(b) => b,
        None => return Provenance::Empty,
    };
    let prov = first.prov();
    if prov.is_empty() {
        return Provenance::Empty;
    }
    for (i, b) in bytes.iter().enumerate() {
        if b.prov() != prov || b.copy_index() != Some(i as u8) {
            return Provenance::Empty;
        }
    }
    prov
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocId;

    fn ptr_bytes(id: u64, n: u8) -> Vec<AbsByte> {
        (0..n)
            .map(|i| AbsByte::pointer(Provenance::Alloc(AllocId(id)), i, i))
            .collect()
    }

    #[test]
    fn uninit_byte() {
        assert!(!AbsByte::UNINIT.is_init());
        assert!(AbsByte::data(0).is_init());
    }

    #[test]
    fn packed_is_8_bytes_and_default_is_uninit() {
        assert_eq!(std::mem::size_of::<AbsByte>(), 8);
        assert_eq!(AbsByte::default(), AbsByte::UNINIT);
        assert_eq!(AbsByte::UNINIT.parts(), (Provenance::Empty, None, None));
    }

    #[test]
    fn data_byte_roundtrip() {
        for v in [0u8, 1, 0x7f, 0xff] {
            let b = AbsByte::data(v);
            assert_eq!(b.parts(), (Provenance::Empty, Some(v), None));
            assert_eq!(b.concrete(), v);
        }
        // A zero data byte is initialised — distinct from UNINIT even
        // though both read back 0 concretely.
        assert_ne!(AbsByte::data(0), AbsByte::UNINIT);
        assert_eq!(AbsByte::data(0).concrete(), AbsByte::UNINIT.concrete());
    }

    #[test]
    fn pointer_byte_roundtrip() {
        let prov = Provenance::Alloc(AllocId(86));
        let b = AbsByte::pointer(prov, 0xAB, 15);
        assert_eq!(b.prov(), prov);
        assert_eq!(b.value(), Some(0xAB));
        assert_eq!(b.copy_index(), Some(15));
        let iota = AbsByte::pointer(Provenance::Iota(crate::IotaId(3)), 0, 0);
        assert_eq!(iota.prov(), Provenance::Iota(crate::IotaId(3)));
    }

    #[test]
    fn copy_index_edge_at_15() {
        // Byte 15 is the last byte of a 16-byte Morello capability: the
        // highest copy index the store ever writes, and off-by-one packing
        // of the index field would corrupt exactly this byte.
        let bytes = ptr_bytes(7, 16);
        assert_eq!(bytes[15].copy_index(), Some(15));
        assert_eq!(bytes[15].value(), Some(15));
        assert_eq!(recover_provenance(&bytes), Provenance::Alloc(AllocId(7)));
        // ... and an index of 15 must not be confused with absence or 0.
        assert_ne!(bytes[15], AbsByte::pointer(Provenance::Alloc(AllocId(7)), 15, 0));
        assert_ne!(
            bytes[15],
            AbsByte::from_parts(Provenance::Alloc(AllocId(7)), Some(15), None)
        );
    }

    #[test]
    fn parts_roundtrip_is_lossless() {
        let provs = [
            Provenance::Empty,
            Provenance::Alloc(AllocId(0)),
            Provenance::Alloc(AllocId((1 << 44) - 1)),
            Provenance::Iota(crate::IotaId(12345)),
        ];
        for prov in provs {
            for value in [None, Some(0u8), Some(0xFF)] {
                for idx in [None, Some(0u8), Some(15), Some(0xFF)] {
                    let b = AbsByte::from_parts(prov, value, idx);
                    assert_eq!(b.parts(), (prov, value, idx));
                }
            }
        }
    }

    #[test]
    fn recover_intact_pointer() {
        let bytes = ptr_bytes(7, 16);
        assert_eq!(recover_provenance(&bytes), Provenance::Alloc(AllocId(7)));
    }

    #[test]
    fn recover_fails_on_shuffled_bytes() {
        let mut bytes = ptr_bytes(7, 16);
        bytes.swap(0, 1);
        assert_eq!(recover_provenance(&bytes), Provenance::Empty);
    }

    #[test]
    fn recover_fails_on_mixed_provenance() {
        let mut bytes = ptr_bytes(7, 16);
        bytes[5] = AbsByte::from_parts(
            Provenance::Alloc(AllocId(8)),
            bytes[5].value(),
            bytes[5].copy_index(),
        );
        assert_eq!(recover_provenance(&bytes), Provenance::Empty);
    }

    #[test]
    fn recover_fails_on_overwritten_byte() {
        let mut bytes = ptr_bytes(7, 16);
        bytes[0] = AbsByte::data(0x41);
        assert_eq!(recover_provenance(&bytes), Provenance::Empty);
    }

    #[test]
    fn recover_provenance_through_memcpy_reassembly() {
        // A bytewise copy that preserves order keeps the provenance; the
        // same bytes shifted by one (a misaligned reassembly) lose it.
        let src = ptr_bytes(42, 16);
        let mut dst = vec![AbsByte::UNINIT; 16];
        dst.copy_from_slice(&src);
        assert_eq!(recover_provenance(&dst), Provenance::Alloc(AllocId(42)));
        let shifted: Vec<AbsByte> = src[1..].iter().copied().chain([src[0]]).collect();
        assert_eq!(recover_provenance(&shifted), Provenance::Empty);
    }
}
