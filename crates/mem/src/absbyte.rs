//! Abstract memory bytes.
//!
//! §4.3: `AbsByte ≜ π × (option byte) × (option ℕ)` — each byte of the
//! memory content carries a provenance, an optional 8-bit value (absent for
//! uninitialised memory), and an optional *copy index* recording which byte
//! of a pointer representation it is, so that a bytewise `memcpy` of a
//! pointer can reassemble its provenance.

use crate::Provenance;

/// One byte of abstract memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AbsByte {
    /// Provenance carried by this byte (π).
    pub prov: Provenance,
    /// The byte value; `None` for uninitialised memory.
    pub value: Option<u8>,
    /// For bytes of a pointer representation: the index of this byte within
    /// the pointer (0-based), enabling provenance recovery on reassembly.
    pub copy_index: Option<u8>,
}

impl AbsByte {
    /// An uninitialised byte with empty provenance.
    pub const UNINIT: AbsByte = AbsByte {
        prov: Provenance::Empty,
        value: None,
        copy_index: None,
    };

    /// A plain data byte with no provenance.
    #[must_use]
    pub fn data(value: u8) -> Self {
        AbsByte {
            prov: Provenance::Empty,
            value: Some(value),
            copy_index: None,
        }
    }

    /// A byte of a pointer representation.
    #[must_use]
    pub fn pointer(prov: Provenance, value: u8, index: u8) -> Self {
        AbsByte {
            prov,
            value: Some(value),
            copy_index: Some(index),
        }
    }

    /// Is this byte initialised?
    #[must_use]
    pub fn is_init(&self) -> bool {
        self.value.is_some()
    }

    /// The concrete value a *hardware* read observes: real memory has no
    /// "uninitialised" state, so abstract-machine-uninitialised bytes read
    /// back as the deterministic stale value 0 (our emulated RAM is
    /// zero-filled and never reused). Used by the hardware-emulation
    /// profiles (`memcmp`, the revocation sweep's capability decode).
    #[must_use]
    pub fn concrete(&self) -> u8 {
        self.value.unwrap_or(0)
    }
}

/// Recover the provenance of a pointer reassembled from `bytes`, PNVI-style:
/// all bytes must carry the same non-empty provenance and consecutive copy
/// indices starting at 0, otherwise the result is [`Provenance::Empty`].
#[must_use]
pub fn recover_provenance(bytes: &[AbsByte]) -> Provenance {
    let first = match bytes.first() {
        Some(b) => b,
        None => return Provenance::Empty,
    };
    let prov = first.prov;
    if prov.is_empty() {
        return Provenance::Empty;
    }
    for (i, b) in bytes.iter().enumerate() {
        if b.prov != prov || b.copy_index != Some(i as u8) {
            return Provenance::Empty;
        }
    }
    prov
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocId;

    fn ptr_bytes(id: u64, n: u8) -> Vec<AbsByte> {
        (0..n)
            .map(|i| AbsByte::pointer(Provenance::Alloc(AllocId(id)), i, i))
            .collect()
    }

    #[test]
    fn uninit_byte() {
        assert!(!AbsByte::UNINIT.is_init());
        assert!(AbsByte::data(0).is_init());
    }

    #[test]
    fn recover_intact_pointer() {
        let bytes = ptr_bytes(7, 16);
        assert_eq!(recover_provenance(&bytes), Provenance::Alloc(AllocId(7)));
    }

    #[test]
    fn recover_fails_on_shuffled_bytes() {
        let mut bytes = ptr_bytes(7, 16);
        bytes.swap(0, 1);
        assert_eq!(recover_provenance(&bytes), Provenance::Empty);
    }

    #[test]
    fn recover_fails_on_mixed_provenance() {
        let mut bytes = ptr_bytes(7, 16);
        bytes[5].prov = Provenance::Alloc(AllocId(8));
        assert_eq!(recover_provenance(&bytes), Provenance::Empty);
    }

    #[test]
    fn recover_fails_on_overwritten_byte() {
        let mut bytes = ptr_bytes(7, 16);
        bytes[0] = AbsByte::data(0x41);
        assert_eq!(recover_provenance(&bytes), Provenance::Empty);
    }
}
