//! The CHERI C memory object model (§4.3 of the paper).
//!
//! The state is the paper's `mem_state ≜ A × S × M` with `M ≜ B × C`:
//! allocations, PNVI-ae-udi provenance bookkeeping, the byte store `B` of
//! [`AbsByte`]s, and the capability-metadata dictionary `C`. All operations
//! are methods on [`CheriMemory`] returning [`MemResult`] — the Rust
//! rendering of the paper's `memM` state-and-error monad.
//!
//! `B` and `C` have two observably-identical renderings, selected by
//! [`MemConfig::legacy_store`]: the original global per-byte/per-slot
//! `BTreeMap` dictionaries, and the default *flat store* — one contiguous
//! `Vec<AbsByte>` buffer plus a packed capability-slot bitset per
//! allocation, addressed through a sorted interval index over the pairwise
//! disjoint reserved footprints.
//!
//! The same type also serves as the *baseline* ISO C PNVI-ae-udi concrete
//! model (§2.3) when constructed with `capabilities = false`, and as the
//! hardware-emulation model for the implementation-comparison profiles when
//! constructed with `abstract_ub = false` (capability traps only, no
//! abstract UB detection) — see [`MemConfig`].

use std::collections::BTreeMap;

use cheri_cap::{Capability, GhostState, Perms};
use cheri_obs::sink::EventSink;

/// Largest scalar access (bytes) served from a stack buffer on the
/// load/store hot path; covers every capability representation
/// (`C::CAP_BYTES` is at most 16). Larger windows fall back to a heap
/// `Vec`.
const SCALAR_BUF: usize = 16;
use cheri_obs::{
    AllocClass, MemEvent, Name, SinkHandle, TagClearReason, VecSink, TAG_CLEAR_REASONS,
};

use crate::absbyte::{recover_provenance, AbsByte};
use crate::allocation::{AllocKind, Allocation};
use crate::capmeta::{CapMeta, SlotMeta, TagInvalidation};
use crate::layout::AddressLayout;
use crate::provenance::{AllocId, IotaId, IotaState, Provenance};
use crate::ub::{MemError, MemResult, TrapKind, Ub};
use crate::value::{IntVal, PtrVal};

/// Configuration of a memory-model instance.
#[derive(Clone, Copy, Debug)]
pub struct MemConfig {
    /// `true`: the CHERI C model (pointers are capabilities, architectural
    /// checks on every access). `false`: the baseline PNVI-ae-udi concrete
    /// model with machine-word pointers.
    pub capabilities: bool,
    /// `true`: abstract-machine semantics — provenance/liveness/ISO checks
    /// are performed and failures are reported as UB. `false`: hardware
    /// emulation — only the architectural capability checks run, failing
    /// with [`MemError::Trap`].
    pub abstract_ub: bool,
    /// How non-capability writes invalidate overlapping capabilities.
    pub tag_invalidation: TagInvalidation,
    /// Allocator address layout.
    pub layout: AddressLayout,
    /// Pad and align allocations so their capabilities are exactly
    /// representable (§3.2: "allocators need to use additional padding
    /// and/or alignment").
    pub pad_for_representability: bool,
    /// Capability revocation on free (§5.4/§7: CHERIoT-style temporal
    /// safety / Cornucopia): ending a heap allocation's lifetime sweeps
    /// memory and clears the tag of every stored capability whose bounds
    /// overlap the freed region, so even the hardware-only profiles
    /// catch use-after-free through reloaded pointers.
    pub revocation: bool,
    /// Use the legacy storage layout: one global `BTreeMap<u64, AbsByte>`
    /// byte dictionary plus a global [`CapMeta`] slot dictionary, instead of
    /// the per-allocation flat buffers and slot bitsets. Kept for one
    /// release as a differential referee and benchmark baseline; the two
    /// layouts are observably identical (same outcomes, traces, and stats).
    pub legacy_store: bool,
}

impl MemConfig {
    /// The reference (Cerberus-like) CHERI C abstract machine.
    #[must_use]
    pub fn cheri_reference() -> Self {
        MemConfig {
            capabilities: true,
            abstract_ub: true,
            tag_invalidation: TagInvalidation::Ghost,
            layout: AddressLayout::cerberus(),
            pad_for_representability: true,
            revocation: false,
            legacy_store: false,
        }
    }

    /// A CHERI hardware implementation (capability traps, no abstract UB),
    /// with the given allocator layout.
    #[must_use]
    pub fn cheri_hardware(layout: AddressLayout) -> Self {
        MemConfig {
            capabilities: true,
            abstract_ub: false,
            tag_invalidation: TagInvalidation::Clear,
            layout,
            pad_for_representability: true,
            revocation: false,
            legacy_store: false,
        }
    }

    /// A CHERIoT-style configuration: hardware checking plus revocation on
    /// free (§5.4: "CHERIoT provides additional temporal guarantees").
    #[must_use]
    pub fn cheriot() -> Self {
        MemConfig {
            capabilities: true,
            abstract_ub: false,
            tag_invalidation: TagInvalidation::Clear,
            layout: AddressLayout::embedded32(),
            pad_for_representability: true,
            revocation: true,
            legacy_store: false,
        }
    }

    /// The baseline ISO C concrete model (PNVI-ae-udi, no capabilities).
    #[must_use]
    pub fn iso_baseline() -> Self {
        MemConfig {
            capabilities: false,
            abstract_ub: true,
            tag_invalidation: TagInvalidation::Ghost,
            layout: AddressLayout::cerberus(),
            pad_for_representability: false,
            revocation: false,
            legacy_store: false,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::cheri_reference()
    }
}

/// Operation counters, for the benchmark harness and `cheri-c --stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Number of scalar loads performed.
    pub loads: u64,
    /// Number of scalar stores performed.
    pub stores: u64,
    /// Number of allocations created.
    pub allocations: u64,
    /// Number of capability-representability checks performed.
    pub representability_checks: u64,
    /// Bytes wasted to representability padding (§3.2).
    pub padding_bytes: u64,
    /// Number of stored capabilities whose tag a revocation sweep cleared
    /// (§7 temporal-safety extension).
    pub revoked_caps: u64,
    /// Number of allocation lifetime ends (scope exits and `free`).
    pub frees: u64,
    /// Total bytes moved by `memcpy`/`memmove`.
    pub memcpy_bytes: u64,
    /// Total capability slots whose tag was cleared or marked unspecified
    /// (sum over all reasons, including revocation).
    pub tag_clears: u64,
    /// `tag_clears` broken down by [`TagClearReason`], indexed by
    /// `TagClearReason::code()`.
    pub tag_clears_by_reason: [u64; TAG_CLEAR_REASONS],
}

/// Which kind of access a check is for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Access {
    Load,
    Store,
}

/// [`AllocKind`] → the event vocabulary's [`AllocClass`] (same variants;
/// `cheri-obs` keeps its own copy to stay a leaf crate).
fn alloc_class(kind: AllocKind) -> AllocClass {
    match kind {
        AllocKind::Auto => AllocClass::Auto,
        AllocKind::Static => AllocClass::Static,
        AllocKind::Heap => AllocClass::Heap,
        AllocKind::Function => AllocClass::Function,
        AllocKind::StringLiteral => AllocClass::StringLiteral,
    }
}

/// The memory object model.
///
/// # Example
///
/// ```
/// use cheri_cap::MorelloCap;
/// use cheri_mem::{CheriMemory, MemConfig, IntVal};
///
/// let mut mem = CheriMemory::<MorelloCap>::new(MemConfig::cheri_reference());
/// let p = mem.allocate_object("x", 4, 4, false, None).unwrap();
/// mem.store_int(&p, 4, &IntVal::Num(42)).unwrap();
/// assert_eq!(mem.load_int(&p, 4, true, false).unwrap().value(), 42);
///
/// // One-past construction is fine; accessing through it is UB.
/// let q = mem.array_shift(&p, 4, 1).unwrap();
/// assert!(mem.load_int(&q, 4, true, false).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct CheriMemory<C: Capability> {
    cfg: MemConfig,
    /// Every allocation ever created, in ID order. IDs are dense (a
    /// counter starting at 1, never reused) and dead allocations are kept
    /// for diagnostics, so the "map" is a plain vector indexed by
    /// `id - 1` — O(1) resolution on the access hot path.
    allocations: Vec<Allocation>,
    next_alloc: u64,
    iotas: BTreeMap<IotaId, IotaState>,
    next_iota: u64,
    /// Legacy store only: the global address-indexed byte dictionary.
    bytes: BTreeMap<u64, AbsByte>,
    /// Legacy store only: the global capability-metadata dictionary.
    caps: CapMeta,
    /// Sorted interval index over *reserved* allocation footprints:
    /// `(base, base + reserved_size, id)`, ordered by `base`. Footprints are
    /// pairwise disjoint (the bump allocators never reuse addresses), so a
    /// binary search resolves address → allocation in O(log #allocs). Kept
    /// in both storage modes; the flat store additionally routes all byte
    /// and capability-slot traffic through it.
    index: Vec<(u64, u64, AllocId)>,
    /// Flat store only: bytes written *outside* every allocation's reserved
    /// footprint. Reachable only through capabilities whose
    /// CHERI-Concentrate padding extends past their allocation (§3.2), so
    /// this is empty in practice — it exists to keep the flat store
    /// observably identical to the legacy global dictionary.
    spill: BTreeMap<u64, AbsByte>,
    /// Flat store only: capability-slot metadata for slots whose footprint
    /// is not fully inside one allocation (same provenance as `spill`).
    spill_caps: CapMeta,
    stack_ptr: u64,
    heap_ptr: u64,
    globals_ptr: u64,
    /// Operation counters.
    pub stats: MemStats,
    /// Event-sink slot: when empty, emitting costs one branch and events
    /// are never constructed (`cheri-obs`' zero-cost-when-off contract).
    sink: SinkHandle,
    /// Flat-store byte buffers harvested by [`CheriMemory::reset`] and
    /// reused by subsequent allocations, so a long-lived instance (one
    /// batch-service worker) stops paying a heap allocation per program
    /// object. Buffer identity is not observable: a recycled buffer is
    /// cleared and refilled with `UNINIT` exactly like a fresh one.
    recycle: Vec<Vec<AbsByte>>,
    _cap: std::marker::PhantomData<C>,
}

/// Cap on the number of byte buffers [`CheriMemory::reset`] keeps for
/// reuse; beyond it, buffers are dropped like in a single-shot run.
const RECYCLE_POOL_CAP: usize = 256;

impl<C: Capability> CheriMemory<C> {
    /// Create an empty memory with the given configuration.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        CheriMemory {
            cfg,
            allocations: Vec::new(),
            // Allocation IDs start above the IDs the runtime start-up would
            // consume in Cerberus; cosmetic only.
            next_alloc: 1,
            iotas: BTreeMap::new(),
            next_iota: 0,
            bytes: BTreeMap::new(),
            caps: CapMeta::new(),
            index: Vec::new(),
            spill: BTreeMap::new(),
            spill_caps: CapMeta::new(),
            stack_ptr: cfg.layout.stack_base,
            heap_ptr: cfg.layout.heap_base,
            globals_ptr: cfg.layout.globals_base,
            stats: MemStats::default(),
            sink: SinkHandle::none(),
            recycle: Vec::new(),
            _cap: std::marker::PhantomData,
        }
    }

    /// Reset this instance to the pristine state of [`CheriMemory::new`]
    /// under `cfg` — same observable behaviour, but the flat-store byte
    /// buffers of the previous run are kept (capacity-preserving) and
    /// reused by future allocations. A long-lived caller executing many
    /// programs (the `cheri-serve` batch workers) resets one arena per
    /// worker instead of reallocating a world per job.
    ///
    /// Any installed event sink is removed (and dropped): a recycled
    /// memory must not leak one job's trace into the next.
    pub fn reset(&mut self, cfg: MemConfig) {
        for a in &mut self.allocations {
            let buf = std::mem::take(&mut a.buf);
            if buf.capacity() > 0 && self.recycle.len() < RECYCLE_POOL_CAP {
                self.recycle.push(buf);
            }
        }
        self.allocations.clear();
        self.next_alloc = 1;
        self.iotas.clear();
        self.next_iota = 0;
        self.bytes.clear();
        self.caps = CapMeta::new();
        self.index.clear();
        self.spill.clear();
        self.spill_caps = CapMeta::new();
        self.cfg = cfg;
        self.stack_ptr = cfg.layout.stack_base;
        self.heap_ptr = cfg.layout.heap_base;
        self.globals_ptr = cfg.layout.globals_base;
        self.stats = MemStats::default();
        self.sink = SinkHandle::none();
    }

    /// A zeroed (`UNINIT`-filled) byte buffer of length `len`, drawn from
    /// the recycle pool when a buffer with enough capacity is available.
    fn uninit_buf(&mut self, len: usize) -> Vec<AbsByte> {
        if let Some(i) = self.recycle.iter().position(|b| b.capacity() >= len) {
            let mut buf = self.recycle.swap_remove(i);
            buf.clear();
            buf.resize(len, AbsByte::UNINIT);
            return buf;
        }
        vec![AbsByte::UNINIT; len]
    }

    /// Enable memory-event tracing: every observable action is recorded as
    /// a typed [`MemEvent`] in a [`VecSink`]. Supports using the executable
    /// semantics as a test oracle (§7 of the paper).
    pub fn enable_trace(&mut self) {
        self.sink.install(Box::new(VecSink::new()));
    }

    /// Take the recorded trace rendered as the legacy text lines (the
    /// historical `--trace` format, byte for byte), leaving tracing
    /// enabled. Empty if no [`VecSink`] is installed.
    pub fn take_trace(&mut self) -> Vec<String> {
        cheri_obs::render::legacy_lines(&self.take_events())
    }

    /// Take the recorded typed events, leaving tracing enabled. Empty if
    /// no [`VecSink`] is installed.
    pub fn take_events(&mut self) -> Vec<MemEvent> {
        match self.sink.downcast_mut::<VecSink>() {
            Some(v) => std::mem::take(&mut v.events),
            None => Vec::new(),
        }
    }

    /// Install an arbitrary event sink (replacing any existing one, which
    /// is returned). See [`cheri_obs::sink`] for the stock sinks.
    pub fn set_sink(&mut self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        self.sink.install(sink)
    }

    /// Remove and return the installed event sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Is an event sink installed?
    #[must_use]
    pub fn sink_active(&self) -> bool {
        self.sink.is_active()
    }

    /// Emit an event into the installed sink, if any. The closure runs only
    /// when a sink is installed — this is the zero-cost-when-off path.
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce() -> MemEvent) {
        self.sink.emit_with(f);
    }

    /// The configuration this instance runs with.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Size in bytes of a stored pointer in this model (capability size, or
    /// machine-word size for the baseline model).
    #[must_use]
    pub fn pointer_bytes(&self) -> usize {
        if self.cfg.capabilities {
            C::CAP_BYTES
        } else {
            (C::ADDR_BITS / 8) as usize
        }
    }

    // ── Allocation ───────────────────────────────────────────────────────

    fn fresh_alloc_id(&mut self) -> AllocId {
        let id = AllocId(self.next_alloc);
        self.next_alloc += 1;
        id
    }

    /// Allocation lookup by ID (IDs index the dense vector at `id - 1`).
    #[inline]
    fn alloc_ref(&self, id: AllocId) -> Option<&Allocation> {
        self.allocations.get(id.0.checked_sub(1)? as usize)
    }

    /// Mutable counterpart of [`CheriMemory::alloc_ref`].
    #[inline]
    fn alloc_mut(&mut self, id: AllocId) -> Option<&mut Allocation> {
        self.allocations.get_mut(id.0.checked_sub(1)? as usize)
    }

    /// Compute the address for a new allocation of `size` bytes with
    /// `align` alignment in the region for `kind`.
    fn place(&mut self, size: u64, align: u64, kind: AllocKind) -> MemResult<u64> {
        let align = align.max(1);
        match kind {
            AllocKind::Auto => {
                let base = self
                    .stack_ptr
                    .checked_sub(size)
                    .map(|a| a & !(align - 1))
                    .ok_or_else(|| MemError::Fail("stack exhausted".into()))?;
                if base < self.cfg.layout.stack_limit {
                    return Err(MemError::Fail("stack exhausted".into()));
                }
                self.stack_ptr = base;
                Ok(base)
            }
            AllocKind::Heap => {
                let base = (self.heap_ptr + align - 1) & !(align - 1);
                let end = base
                    .checked_add(size)
                    .ok_or_else(|| MemError::Fail("heap exhausted".into()))?;
                if end > self.cfg.layout.heap_limit {
                    return Err(MemError::Fail("heap exhausted".into()));
                }
                self.heap_ptr = end;
                Ok(base)
            }
            AllocKind::Static | AllocKind::Function | AllocKind::StringLiteral => {
                let base = (self.globals_ptr + align - 1) & !(align - 1);
                let end = base
                    .checked_add(size)
                    .ok_or_else(|| MemError::Fail("globals exhausted".into()))?;
                if end > self.cfg.layout.globals_limit {
                    return Err(MemError::Fail("globals region exhausted".into()));
                }
                self.globals_ptr = end;
                Ok(base)
            }
        }
    }

    /// Derive the capability handed out for a fresh allocation: bounds
    /// narrowed to the footprint, data permissions (read-only for `const`
    /// objects, §3.9; execute for functions).
    fn allocation_cap(&self, base: u64, size: u64, kind: AllocKind, readonly: bool) -> C {
        if !self.cfg.capabilities {
            // Baseline model: pointers are plain addresses; keep a root
            // capability around purely as the address carrier.
            return C::root().with_address(base);
        }
        let perms = match kind {
            AllocKind::Function => Perms::code(),
            AllocKind::StringLiteral => Perms::data_readonly(),
            _ if readonly => Perms::data_readonly(),
            _ => Perms::data(),
        };
        C::root()
            .with_bounds(base, size)
            .with_perms_and(perms)
            .with_address(base)
    }

    /// Allocate an object (local or global variable, function, or string
    /// literal) and return a pointer to it. `init` optionally provides the
    /// initial byte contents; otherwise the object is uninitialised.
    ///
    /// # Errors
    ///
    /// Fails (not UB) when the address space region is exhausted.
    pub fn allocate_object(
        &mut self,
        prefix: &str,
        size: u64,
        align: u64,
        readonly: bool,
        init: Option<&[u8]>,
    ) -> MemResult<PtrVal<C>> {
        self.allocate_kind(prefix, size, align, AllocKind::Auto, readonly, init)
    }

    /// Allocate with an explicit [`AllocKind`].
    ///
    /// # Errors
    ///
    /// Fails (not UB) when the address space region is exhausted.
    pub fn allocate_kind(
        &mut self,
        prefix: &str,
        size: u64,
        align: u64,
        kind: AllocKind,
        readonly: bool,
        init: Option<&[u8]>,
    ) -> MemResult<PtrVal<C>> {
        let (align, reserved) = if self.cfg.capabilities && self.cfg.pad_for_representability {
            let mask = C::representable_alignment_mask(size);
            let repr_align = (!mask).wrapping_add(1).max(1);
            let reserved = C::representable_length(size).max(size.max(1));
            self.stats.padding_bytes += reserved - size;
            self.emit(|| MemEvent::RepCheck {
                size,
                reserved,
                padded: reserved != size,
            });
            (align.max(repr_align), reserved)
        } else {
            (align, size.max(1))
        };
        let base = self.place(reserved, align, kind)?;
        let id = self.fresh_alloc_id();
        let (buf, slots, first_slot) = if self.cfg.legacy_store {
            (Vec::new(), crate::capmeta::CapSlotBits::new(0), base)
        } else {
            let cb = C::CAP_BYTES as u64;
            // First capability-aligned address at or above `base`.
            let first_slot = (base.wrapping_add(cb - 1)) & !(cb - 1);
            let n_slots = Allocation::slot_count(base, reserved, first_slot, cb);
            let mut buf = self.uninit_buf(reserved as usize);
            if let Some(init) = init {
                for (i, b) in init.iter().enumerate() {
                    buf[i] = AbsByte::data(*b);
                }
            }
            (buf, crate::capmeta::CapSlotBits::new(n_slots), first_slot)
        };
        debug_assert_eq!(self.allocations.len() as u64 + 1, id.0);
        self.allocations.push(
            Allocation {
                id,
                base,
                size,
                reserved_size: reserved,
                align,
                kind,
                alive: true,
                exposed: false,
                readonly: readonly || kind.inherently_readonly(),
                prefix: prefix.to_string(),
                buf,
                slots,
                first_slot,
            },
        );
        let pos = self.index.partition_point(|e| e.0 < base);
        self.index.insert(pos, (base, base + reserved, id));
        self.stats.allocations += 1;
        self.emit(|| MemEvent::Alloc {
            id: id.0,
            base,
            size,
            kind: alloc_class(kind),
            name: Name::new(prefix),
        });
        if let Some(init) = init {
            debug_assert_eq!(init.len() as u64, size);
            if self.cfg.legacy_store {
                for (i, b) in init.iter().enumerate() {
                    self.bytes.insert(base + i as u64, AbsByte::data(*b));
                }
            }
        }
        let cap = self.allocation_cap(base, size, kind, readonly);
        Ok(PtrVal::new(Provenance::Alloc(id), cap))
    }

    /// `malloc`: allocate a dynamic region.
    ///
    /// # Errors
    ///
    /// Fails (not UB) when the heap is exhausted.
    pub fn allocate_region(&mut self, size: u64, align: u64) -> MemResult<PtrVal<C>> {
        self.allocate_kind("malloc", size, align.max(16), AllocKind::Heap, false, None)
    }

    /// End the lifetime of an allocation. `dynamic` selects `free` semantics
    /// (heap region, pointer must be the start) vs. automatic end-of-scope.
    ///
    /// # Errors
    ///
    /// UB per ISO C: freeing an invalid pointer, double free, freeing a
    /// pointer that is not the start of a heap allocation.
    pub fn kill(&mut self, p: &PtrVal<C>, dynamic: bool) -> MemResult<()> {
        if dynamic && p.is_null() {
            return Ok(()); // free(NULL) is a no-op
        }
        let id = match self.resolve_prov(&p.prov, p.addr(), 0)? {
            Some(id) => id,
            None => {
                return Err(MemError::ub(
                    Ub::FreeInvalidPointer,
                    format!("no provenance for {:#x}", p.addr()),
                ))
            }
        };
        let alloc = self
            .alloc_ref(id)
            .ok_or_else(|| MemError::ub(Ub::FreeInvalidPointer, "unknown allocation"))?;
        if !alloc.alive {
            return Err(MemError::ub(
                Ub::DoubleFree,
                format!("{} ({})", id, alloc.prefix),
            ));
        }
        if dynamic {
            if alloc.kind != AllocKind::Heap || p.addr() != alloc.base {
                return Err(MemError::ub(
                    Ub::FreeInvalidPointer,
                    format!("{:#x} is not the start of a heap allocation", p.addr()),
                ));
            }
            if self.cfg.capabilities && !p.cap.tag() {
                return Err(self.cap_fail(
                    Ub::CheriInvalidCap,
                    TrapKind::TagViolation,
                    "free via untagged capability",
                ));
            }
        }
        let (base, end) = (alloc.base, alloc.base + alloc.reserved_size);
        self.stats.frees += 1;
        self.emit(|| MemEvent::Free {
            id: id.0,
            base,
            end,
            dynamic,
        });
        // Field-indexing (not `alloc_mut`) keeps the borrow on
        // `self.allocations` alone so `self.cfg`/`self.bytes` stay usable.
        let alloc = &mut self.allocations[(id.0 - 1) as usize];
        alloc.alive = false;
        if self.cfg.abstract_ub {
            // Abstract machine: the contents become indeterminate when the
            // lifetime ends.
            if self.cfg.legacy_store {
                let keys: Vec<u64> = self.bytes.range(base..end).map(|(k, _)| *k).collect();
                for k in keys {
                    self.bytes.remove(&k);
                }
                self.caps.clear_range(base, end);
            } else {
                alloc.buf.fill(AbsByte::UNINIT);
                alloc.slots.clear_all();
                // A slot whose footprint crosses the reserved end lives in
                // the spill dictionary; forget it like the legacy clear did.
                self.spill_caps.clear_range(base, end);
            }
        }
        // Hardware emulation keeps the stale bytes: freed memory reads back
        // its old contents until reused — which is exactly the §3.11
        // temporal-safety gap the test suite demonstrates.
        if self.cfg.revocation && dynamic {
            // Heap revocation (Cornucopia revokes heap capabilities).
            self.revoke_range(base, end);
        }
        Ok(())
    }

    /// Revocation sweep (§7 temporal-safety extension): clear the tag of
    /// every capability stored anywhere in memory whose decoded bounds
    /// *overlap* `[lo, hi)`. This models a Cornucopia/CHERIoT-style revoker;
    /// capabilities held only in registers are swept at the next epoch on
    /// real systems — here every C object lives in memory, so the sweep is
    /// complete.
    ///
    /// The overlap test — not "decoded base inside the freed range" — is
    /// essential: CHERI-Concentrate representability padding (§3.2) can
    /// round a derived capability's base *below* the freed allocation's
    /// base, and a capability spanning several objects starts before the
    /// freed one. Either way its footprint still covers freed memory, so a
    /// base-membership test would let it escape the sweep and stay usable
    /// after `free`.
    fn revoke_range(&mut self, lo: u64, hi: u64) {
        let before = self.stats.revoked_caps;
        self.revoke_range_sweep(lo, hi);
        let cleared = self.stats.revoked_caps - before;
        if cleared > 0 {
            self.stats.tag_clears += cleared;
            self.stats.tag_clears_by_reason[TagClearReason::Revoked.code() as usize] += cleared;
        }
        self.emit(|| MemEvent::Revoke {
            base: lo,
            end: hi,
            cleared,
        });
    }

    /// The sweep itself (increments `stats.revoked_caps` per hit).
    fn revoke_range_sweep(&mut self, lo: u64, hi: u64) {
        let cb = C::CAP_BYTES as u64;
        let overlaps = |cap: &C| {
            let b = cap.bounds();
            b.base < hi && b.top > u128::from(lo)
        };
        if self.cfg.legacy_store {
            let slots: Vec<u64> = self
                .bytes
                .keys()
                .copied()
                .filter(|a| a % cb == 0)
                .collect();
            for slot in slots {
                let meta = self.caps.get(slot);
                if !meta.tag {
                    continue;
                }
                let raw: Vec<u8> = (0..cb)
                    .map(|i| {
                        self.bytes
                            .get(&(slot + i))
                            .map(AbsByte::concrete)
                            .unwrap_or(0)
                    })
                    .collect();
                if let Some(cap) = C::decode(&raw, true) {
                    if overlaps(&cap) {
                        self.stats.revoked_caps += 1;
                        self.caps.set(
                            slot,
                            SlotMeta {
                                tag: false,
                                ghost: meta.ghost,
                            },
                        );
                    }
                }
            }
            return;
        }
        // Flat store: only tagged slots are visited, per allocation, instead
        // of every byte key in memory.
        let ids: Vec<AllocId> = self.index.iter().map(|e| e.2).collect();
        for id in ids {
            let a = self.alloc_ref(id).expect("indexed allocation");
            let mut hits: Vec<usize> = Vec::new();
            for k in a.slots.tagged_indices() {
                let slot = a.first_slot + k as u64 * cb;
                let off = (slot - a.base) as usize;
                let raw: Vec<u8> = a.buf[off..off + cb as usize]
                    .iter()
                    .map(AbsByte::concrete)
                    .collect();
                if let Some(cap) = C::decode(&raw, true) {
                    if overlaps(&cap) {
                        hits.push(k);
                    }
                }
            }
            if hits.is_empty() {
                continue;
            }
            self.stats.revoked_caps += hits.len() as u64;
            let a = self.alloc_mut(id).expect("indexed allocation");
            for k in hits {
                let meta = a.slots.get(k);
                a.slots.set(
                    k,
                    SlotMeta {
                        tag: false,
                        ghost: meta.ghost,
                    },
                );
            }
        }
        // Capabilities stored outside every allocation footprint (spill).
        for slot in self.spill_caps.tagged_addrs() {
            let raw: Vec<u8> = self
                .read_bytes(slot, cb)
                .iter()
                .map(AbsByte::concrete)
                .collect();
            if let Some(cap) = C::decode(&raw, true) {
                if overlaps(&cap) {
                    self.stats.revoked_caps += 1;
                    let meta = self.spill_caps.get(slot);
                    self.spill_caps.set(
                        slot,
                        SlotMeta {
                            tag: false,
                            ghost: meta.ghost,
                        },
                    );
                }
            }
        }
    }

    /// `realloc`: allocate a new region, copy contents, free the old one.
    ///
    /// # Errors
    ///
    /// UB on an invalid old pointer; fails when the heap is exhausted.
    pub fn reallocate(&mut self, old: &PtrVal<C>, new_size: u64) -> MemResult<PtrVal<C>> {
        if old.is_null() {
            return self.allocate_region(new_size, 16);
        }
        let id = self
            .resolve_prov(&old.prov, old.addr(), 0)?
            .ok_or_else(|| MemError::ub(Ub::FreeInvalidPointer, "realloc of unknown pointer"))?;
        let (old_base, old_size, alive, kind) = {
            let a = self.alloc_ref(id).expect("indexed allocation");
            (a.base, a.size, a.alive, a.kind)
        };
        if !alive {
            return Err(MemError::ub(Ub::DoubleFree, "realloc of freed pointer"));
        }
        if kind != AllocKind::Heap || old.addr() != old_base {
            return Err(MemError::ub(
                Ub::FreeInvalidPointer,
                "realloc of a non-heap pointer",
            ));
        }
        let new = self.allocate_region(new_size, 16)?;
        let n = old_size.min(new_size);
        self.copy_bytes_raw(old_base, new.addr(), n);
        self.kill(old, true)?;
        Ok(new)
    }

    // ── Provenance ───────────────────────────────────────────────────────

    /// Mark the allocation identified by `prov` as exposed (PNVI-ae).
    pub fn expose(&mut self, prov: Provenance) {
        if let Provenance::Alloc(id) = prov {
            if let Some(a) = self.alloc_mut(id) {
                a.exposed = true;
            }
        }
    }

    /// Resolve a provenance to an allocation ID, resolving iotas against the
    /// access footprint `[addr, addr+size)` (PNVI-ae-udi user
    /// disambiguation).
    fn resolve_prov(
        &mut self,
        prov: &Provenance,
        addr: u64,
        size: u64,
    ) -> MemResult<Option<AllocId>> {
        match *prov {
            Provenance::Empty => Ok(None),
            Provenance::Alloc(id) => Ok(Some(id)),
            Provenance::Iota(iota) => {
                let state = *self
                    .iotas
                    .get(&iota)
                    .ok_or_else(|| MemError::Fail(format!("unknown iota {iota}")))?;
                match state {
                    IotaState::Resolved(id) => Ok(Some(id)),
                    IotaState::Ambiguous(a, b) => {
                        let fits = |id: AllocId, this: &Self| {
                            this.alloc_ref(id)
                                .is_some_and(|al| al.alive && al.contains_range(addr, size.max(1)))
                        };
                        let in_a = fits(a, self);
                        let in_b = fits(b, self);
                        let chosen = match (in_a, in_b) {
                            (true, false) => a,
                            (false, true) => b,
                            _ => {
                                return Err(MemError::ub(
                                    Ub::AmbiguousProvenance,
                                    format!("iota {iota} unresolvable at {addr:#x}"),
                                ))
                            }
                        };
                        self.iotas.insert(iota, IotaState::Resolved(chosen));
                        Ok(Some(chosen))
                    }
                }
            }
        }
    }

    /// PNVI-ae-udi integer-to-pointer provenance lookup: find the exposed,
    /// live allocation(s) whose footprint (or one-past point) contains
    /// `addr`.
    ///
    /// Resolved through the interval index instead of a linear scan: any
    /// allocation with `addr ∈ [base, end())` or `addr == end()` also has
    /// `addr` or `addr - 1` inside its *reserved* footprint (requested size
    /// ≤ reserved size, and an `end() == addr` match with `size > 0` covers
    /// `addr - 1`; a zero-sized allocation covers `addr` itself since at
    /// least one byte is always reserved). So the only candidates are the
    /// two index hits, examined in ascending ID order exactly like the old
    /// full scan.
    fn lookup_provenance(&mut self, addr: u64) -> Provenance {
        let mut cand = [
            addr.checked_sub(1)
                .and_then(|a| self.index_pos(a))
                .map(|i| self.index[i].2),
            self.index_pos(addr).map(|i| self.index[i].2),
        ];
        if cand[0] == cand[1] {
            cand[0] = None;
        }
        let mut ids: Vec<AllocId> = cand.into_iter().flatten().collect();
        ids.sort_unstable();
        let mut inside: Option<AllocId> = None;
        let mut one_past: Option<AllocId> = None;
        for id in ids {
            let a = self.alloc_ref(id).expect("indexed allocation");
            if !a.alive || !a.exposed {
                continue;
            }
            if addr >= a.base && addr < a.end() {
                inside = Some(id);
            } else if addr == a.end() {
                one_past = Some(id);
            }
        }
        match (inside, one_past) {
            (Some(i), None) => Provenance::Alloc(i),
            (None, Some(p)) => Provenance::Alloc(p),
            (Some(i), Some(p)) => {
                // The address is both one-past allocation `p` and the start
                // of allocation `i`: defer the choice (udi).
                let iota = IotaId(self.next_iota);
                self.next_iota += 1;
                self.iotas.insert(iota, IotaState::Ambiguous(p, i));
                Provenance::Iota(iota)
            }
            (None, None) => Provenance::Empty,
        }
    }

    // ── Access checking (the bounds_check of §4.3) ───────────────────────

    fn cap_fail(&self, ub: Ub, trap: TrapKind, ctx: &str) -> MemError {
        if self.cfg.abstract_ub {
            MemError::ub(ub, ctx)
        } else {
            MemError::trap(trap, ctx)
        }
    }

    /// The full access check: architectural capability checks (tag, ghost
    /// tag, seal, permissions, bounds — the (1†) clauses) followed by the
    /// abstract-machine provenance checks (the (1f)/(1g) clauses).
    fn check_access(&mut self, p: &PtrVal<C>, size: u64, access: Access) -> MemResult<()> {
        let addr = p.addr();
        if self.cfg.capabilities {
            let c = &p.cap;
            if p.is_null() || (addr == 0 && !c.tag()) {
                return Err(MemError::ub(Ub::NullDereference, "null capability"));
            }
            if c.ghost().tag_unspecified {
                return Err(MemError::ub(
                    Ub::CheriUndefinedTag,
                    "capability tag is unspecified in ghost state",
                ));
            }
            if !c.tag() {
                return Err(self.cap_fail(
                    Ub::CheriInvalidCap,
                    TrapKind::TagViolation,
                    "capability tag cleared",
                ));
            }
            if c.is_sealed() {
                return Err(self.cap_fail(
                    Ub::CheriInvalidCap,
                    TrapKind::TagViolation,
                    "capability is sealed",
                ));
            }
            let need = match access {
                Access::Load => Perms::LOAD,
                Access::Store => Perms::STORE,
            };
            if !c.perms().contains(need) {
                return Err(self.cap_fail(
                    Ub::CheriInsufficientPermissions,
                    TrapKind::PermissionViolation,
                    "missing load/store permission",
                ));
            }
            if !c.bounds().contains_range(addr, size) {
                return Err(self.cap_fail(
                    Ub::CheriBoundsViolation,
                    TrapKind::BoundsViolation,
                    &format!("access [{:#x},+{}) outside bounds {}", addr, size, c.bounds()),
                ));
            }
        } else if addr == 0 {
            return Err(MemError::ub(Ub::NullDereference, "null pointer"));
        }
        if self.cfg.abstract_ub {
            let id = self.resolve_prov(&p.prov, addr, size)?.ok_or_else(|| {
                MemError::ub(
                    Ub::EmptyProvenanceAccess,
                    format!("access via empty-provenance pointer {addr:#x}"),
                )
            })?;
            let a = self
                .alloc_ref(id)
                .ok_or_else(|| MemError::Fail(format!("unknown allocation {id}")))?;
            if !a.alive {
                return Err(MemError::ub(
                    Ub::AccessDeadAllocation,
                    format!("{} ({})", id, a.prefix),
                ));
            }
            if !a.contains_range(addr, size) {
                return Err(MemError::ub(
                    Ub::AccessOutOfBounds,
                    format!(
                        "[{:#x},+{}) outside {} [{:#x},+{})",
                        addr, size, id, a.base, a.size
                    ),
                ));
            }
            if access == Access::Store && !a.writable() {
                return Err(MemError::ub(
                    Ub::WriteToReadOnly,
                    format!("{} ({})", id, a.prefix),
                ));
            }
        }
        Ok(())
    }

    // ── Byte-level helpers (the B and C dictionaries) ────────────────────
    //
    // Every byte and capability-slot access below dispatches on
    // `cfg.legacy_store`: the legacy path keeps the original global
    // `BTreeMap` dictionaries, the flat path routes through the interval
    // index into per-allocation buffers/bitsets. Checked accesses always
    // land inside one allocation's reserved footprint (capability bounds
    // are confined to it by representability padding), so the segment walks
    // below take the single-allocation fast path in practice; the gap/spill
    // branches only exist for padded-out-of-allocation capabilities.

    /// Interval-index position of the allocation whose *reserved* footprint
    /// contains `addr`.
    #[inline]
    fn index_pos(&self, addr: u64) -> Option<usize> {
        let i = self.index.partition_point(|e| e.0 <= addr);
        (i > 0 && addr < self.index[i - 1].1).then(|| i - 1)
    }

    /// The allocation whose reserved footprint contains `addr` (flat store).
    #[inline]
    fn alloc_at(&self, addr: u64) -> Option<&Allocation> {
        self.index_pos(addr)
            .map(|i| self.alloc_ref(self.index[i].2).expect("indexed allocation"))
    }

    fn read_bytes(&self, addr: u64, n: u64) -> Vec<AbsByte> {
        let mut out = vec![AbsByte::UNINIT; n as usize];
        self.read_bytes_into(addr, &mut out);
        out
    }

    /// [`CheriMemory::read_bytes`] into a caller-provided buffer: the
    /// scalar load path uses a stack buffer to keep `Vec` allocations off
    /// the per-access hot path.
    fn read_bytes_into(&self, addr: u64, out: &mut [AbsByte]) {
        let n = out.len() as u64;
        if self.cfg.legacy_store {
            for (i, o) in out.iter_mut().enumerate() {
                *o = self
                    .bytes
                    .get(&(addr + i as u64))
                    .copied()
                    .unwrap_or(AbsByte::UNINIT);
            }
            return;
        }
        let end = addr + n;
        let mut cur = addr;
        while cur < end {
            if let Some(i) = self.index_pos(cur) {
                let (base, a_end, id) = self.index[i];
                let a = self.alloc_ref(id).expect("indexed allocation");
                let take = (a_end.min(end) - cur) as usize;
                let off = (cur - base) as usize;
                let dst = (cur - addr) as usize;
                out[dst..dst + take].copy_from_slice(&a.buf[off..off + take]);
                cur += take as u64;
            } else {
                let j = self.index.partition_point(|e| e.0 <= cur);
                let stop = self
                    .index
                    .get(j)
                    .map_or(end, |e| e.0.min(end));
                if !self.spill.is_empty() {
                    for (k, b) in self.spill.range(cur..stop) {
                        out[(k - addr) as usize] = *b;
                    }
                }
                cur = stop;
            }
        }
    }

    /// Write abstract bytes verbatim (provenance and copy indices intact).
    fn write_abs_bytes(&mut self, addr: u64, data: &[AbsByte]) {
        if self.cfg.legacy_store {
            for (i, b) in data.iter().enumerate() {
                self.bytes.insert(addr + i as u64, *b);
            }
            return;
        }
        let end = addr + data.len() as u64;
        let mut cur = addr;
        while cur < end {
            if let Some(i) = self.index_pos(cur) {
                let (base, a_end, id) = self.index[i];
                let take = (a_end.min(end) - cur) as usize;
                let off = (cur - base) as usize;
                let src = (cur - addr) as usize;
                let a = self.alloc_mut(id).expect("indexed allocation");
                a.buf[off..off + take].copy_from_slice(&data[src..src + take]);
                cur += take as u64;
            } else {
                let j = self.index.partition_point(|e| e.0 <= cur);
                let stop = self
                    .index
                    .get(j)
                    .map_or(end, |e| e.0.min(end));
                for k in cur..stop {
                    self.spill.insert(k, data[(k - addr) as usize]);
                }
                cur = stop;
            }
        }
    }

    /// Capability-slot metadata at aligned address `addr`.
    fn slot_get(&self, addr: u64) -> SlotMeta {
        if self.cfg.legacy_store {
            return self.caps.get(addr);
        }
        let cb = C::CAP_BYTES as u64;
        if let Some(a) = self.alloc_at(addr) {
            if let Some(k) = a.slot_index(addr, cb) {
                return a.slots.get(k);
            }
        }
        self.spill_caps.get(addr)
    }

    /// Record capability-slot metadata at aligned address `addr`.
    fn slot_set(&mut self, addr: u64, meta: SlotMeta) {
        if self.cfg.legacy_store {
            self.caps.set(addr, meta);
            return;
        }
        let cb = C::CAP_BYTES as u64;
        if let Some(i) = self.index_pos(addr) {
            let id = self.index[i].2;
            let a = self.alloc_mut(id).expect("indexed allocation");
            if let Some(k) = a.slot_index(addr, cb) {
                a.slots.set(k, meta);
                return;
            }
        }
        self.spill_caps.set(addr, meta);
    }

    /// Invalidate every capability slot whose footprint overlaps `[lo, hi)`
    /// (§4.3 non-capability write rule), mirroring
    /// [`CapMeta::invalidate_range`] exactly. `reason` attributes the
    /// clears in the stats histogram and the emitted event; both storage
    /// modes count affected slots with the same condition, so the counters
    /// are store-mode invariant.
    fn caps_invalidate(&mut self, lo: u64, hi: u64, reason: TagClearReason) {
        let cb = C::CAP_BYTES as u64;
        let mode = self.cfg.tag_invalidation;
        let affected = if self.cfg.legacy_store {
            self.caps.invalidate_range(lo, hi, cb, mode)
        } else {
            self.caps_invalidate_flat(lo, hi)
        };
        if affected > 0 {
            self.stats.tag_clears += affected as u64;
            self.stats.tag_clears_by_reason[reason.code() as usize] += affected as u64;
            self.emit(|| MemEvent::CapTagClear {
                addr: lo,
                count: affected as u64,
                reason,
            });
        }
    }

    /// Flat-store body of [`CheriMemory::caps_invalidate`]; returns the
    /// number of slots affected (same counting rule as
    /// [`CapMeta::invalidate_range`]).
    fn caps_invalidate_flat(&mut self, lo: u64, hi: u64) -> usize {
        let cb = C::CAP_BYTES as u64;
        let mode = self.cfg.tag_invalidation;
        if hi <= lo {
            return 0;
        }
        let mut affected = 0;
        let first = lo & !(cb - 1);
        let mut pos = self.index.partition_point(|e| e.1 <= first);
        while pos < self.index.len() && self.index[pos].0 < hi {
            let id = self.index[pos].2;
            let a = self.alloc_mut(id).expect("indexed allocation");
            let n_slots = a.slots.len() as u64;
            if n_slots > 0 && hi > a.first_slot {
                // Slot `k` sits at `first_slot + k*cb`; touch those with
                // address in `[first, hi)`.
                let k_lo = if first > a.first_slot {
                    (first - a.first_slot).div_ceil(cb)
                } else {
                    0
                };
                let k_hi = (hi - a.first_slot).div_ceil(cb).min(n_slots);
                for k in k_lo..k_hi {
                    let m = a.slots.get(k as usize);
                    if m.tag || !m.ghost.is_clean() {
                        affected += 1;
                        let new = match mode {
                            TagInvalidation::Ghost => SlotMeta {
                                tag: m.tag,
                                ghost: GhostState {
                                    tag_unspecified: true,
                                    bounds_unspecified: m.ghost.bounds_unspecified,
                                },
                            },
                            TagInvalidation::Clear => SlotMeta::default(),
                        };
                        a.slots.set(k as usize, new);
                    }
                }
            }
            pos += 1;
        }
        if !self.spill_caps.is_empty() {
            affected += self.spill_caps.invalidate_range(lo, hi, cb, mode);
        }
        affected
    }

    fn write_data_bytes(&mut self, addr: u64, data: &[u8]) {
        if self.cfg.legacy_store {
            for (i, b) in data.iter().enumerate() {
                self.bytes.insert(addr + i as u64, AbsByte::data(*b));
            }
        } else {
            let end = addr + data.len() as u64;
            let mut cur = addr;
            while cur < end {
                if let Some(i) = self.index_pos(cur) {
                    let (base, a_end, id) = self.index[i];
                    let take = (a_end.min(end) - cur) as usize;
                    let off = (cur - base) as usize;
                    let src = (cur - addr) as usize;
                    let a = self.alloc_mut(id).expect("indexed allocation");
                    for t in 0..take {
                        a.buf[off + t] = AbsByte::data(data[src + t]);
                    }
                    cur += take as u64;
                } else {
                    let j = self.index.partition_point(|e| e.0 <= cur);
                    let stop = self
                        .index
                        .get(j)
                        .map_or(end, |e| e.0.min(end));
                    for k in cur..stop {
                        self.spill.insert(k, AbsByte::data(data[(k - addr) as usize]));
                    }
                    cur = stop;
                }
            }
        }
        self.caps_invalidate(addr, addr + data.len() as u64, TagClearReason::NonCapWrite);
        self.stats.stores += 1;
    }

    /// Raw byte copy without checks (used by realloc internally).
    fn copy_bytes_raw(&mut self, src: u64, dst: u64, n: u64) {
        let bytes = self.read_bytes(src, n);
        self.write_abs_bytes(dst, &bytes);
        // The copy is a (possibly partial) representation write to the
        // destination: any capability whose slot it touches is invalidated…
        let cb = C::CAP_BYTES as u64;
        self.caps_invalidate(dst, dst + n, TagClearReason::Memcpy);
        // …and then capability-aligned, fully-copied slots get the source
        // metadata transferred (§3.5: memcpy uses capability-sized accesses
        // where possible, preserving tags).
        if src % cb == dst % cb {
            let mut slot = (src + cb - 1) & !(cb - 1);
            while slot + cb <= src + n {
                let meta = self.slot_get(slot);
                self.slot_set(dst + (slot - src), meta);
                slot += cb;
            }
        }
    }

    /// The `expose(A, I_tainted)` step of the load rule: loading pointer
    /// bytes at an integer type exposes the allocations those bytes point
    /// into (clause (2g) of §4.3).
    fn expose_tainted(&mut self, bytes: &[AbsByte]) {
        let tainted: Vec<AllocId> = bytes.iter().filter_map(|b| b.prov().alloc_id()).collect();
        for id in tainted {
            if let Some(a) = self.alloc_mut(id) {
                if a.alive {
                    a.exposed = true;
                }
            }
        }
    }

    // ── Scalar loads and stores ──────────────────────────────────────────

    /// Load an integer of `size` bytes. `want_intptr` selects the
    /// `(u)intptr_t` behaviour: a capability value is reconstructed from the
    /// stored representation and metadata (§4.3).
    ///
    /// # Errors
    ///
    /// All the UBs of the load rule: capability and provenance check
    /// failures, and uninitialised reads.
    pub fn load_int(
        &mut self,
        p: &PtrVal<C>,
        size: u64,
        signed: bool,
        want_intptr: bool,
    ) -> MemResult<IntVal<C>> {
        self.check_access(p, size, Access::Load)?;
        let addr = p.addr();
        let mut stack = [AbsByte::UNINIT; SCALAR_BUF];
        let mut heap: Vec<AbsByte>;
        let bytes: &[AbsByte] = if size as usize <= SCALAR_BUF {
            let window = &mut stack[..size as usize];
            self.read_bytes_into(addr, window);
            window
        } else {
            heap = vec![AbsByte::UNINIT; size as usize];
            self.read_bytes_into(addr, &mut heap);
            &heap
        };
        if bytes.iter().any(|b| !b.is_init()) {
            if bytes.iter().any(super::absbyte::AbsByte::is_init) && want_intptr {
                // Partially-initialised capability representation: a trap
                // representation (§4.2, UB012).
                return Err(MemError::ub(
                    Ub::LvalueReadTrapRepresentation,
                    "partially initialised capability representation",
                ));
            }
            return Err(MemError::ub(
                Ub::UninitialisedRead,
                format!("read of uninitialised memory at {addr:#x}"),
            ));
        }
        self.stats.loads += 1;
        self.emit(|| MemEvent::Load {
            addr,
            size,
            intptr: want_intptr,
        });
        if want_intptr && self.cfg.capabilities && size == C::CAP_BYTES as u64 {
            let mut raw = [0u8; SCALAR_BUF];
            for (r, b) in raw.iter_mut().zip(bytes) {
                *r = b.concrete();
            }
            let raw = &raw[..size as usize];
            let prov = recover_provenance(bytes);
            let (cap, ghost_extra) = if addr.is_multiple_of(C::CAP_BYTES as u64) {
                let meta = self.slot_get(addr);
                let cap = C::decode(raw, meta.tag)
                    .ok_or_else(|| MemError::Fail("capability decode".into()))?;
                (cap.with_ghost(meta.ghost), GhostState::CLEAN)
            } else {
                let cap = C::decode(raw, false)
                    .ok_or_else(|| MemError::Fail("capability decode".into()))?;
                (cap, GhostState::CLEAN)
            };
            let cap = cap.with_ghost(cap.ghost().join(ghost_extra));
            return Ok(IntVal::Cap {
                signed,
                cap,
                prov,
            });
        }
        // Plain integer: examining these bytes exposes any pointer
        // representations they belong to (PNVI-ae).
        self.expose_tainted(bytes);
        let mut v: i128 = 0;
        for (i, b) in bytes.iter().enumerate() {
            v |= i128::from(b.concrete()) << (8 * i);
        }
        if signed && size < 16 {
            let shift = 128 - 8 * size as u32;
            v = (v << shift) >> shift;
        }
        Ok(IntVal::Num(v))
    }

    /// Store an integer of `size` bytes.
    ///
    /// # Errors
    ///
    /// Capability/provenance check failures as for loads, plus
    /// [`Ub::WriteToReadOnly`].
    pub fn store_int(&mut self, p: &PtrVal<C>, size: u64, v: &IntVal<C>) -> MemResult<()> {
        self.check_access(p, size, Access::Store)?;
        let addr = p.addr();
        self.emit(|| MemEvent::Store { addr, size });
        match v {
            IntVal::Cap { cap, prov, .. }
                if self.cfg.capabilities && size == C::CAP_BYTES as u64 =>
            {
                self.store_cap_bytes(addr, cap, *prov);
                Ok(())
            }
            _ => {
                let n = v.value();
                if size as usize <= SCALAR_BUF {
                    let mut data = [0u8; SCALAR_BUF];
                    for (i, d) in data[..size as usize].iter_mut().enumerate() {
                        *d = (n >> (8 * i)) as u8;
                    }
                    self.write_data_bytes(addr, &data[..size as usize]);
                } else {
                    let data: Vec<u8> = (0..size).map(|i| (n >> (8 * i)) as u8).collect();
                    self.write_data_bytes(addr, &data);
                }
                Ok(())
            }
        }
    }

    /// Load a pointer value (the §4.3 load rule at pointer type).
    ///
    /// # Errors
    ///
    /// As for [`CheriMemory::load_int`].
    pub fn load_ptr(&mut self, p: &PtrVal<C>) -> MemResult<PtrVal<C>> {
        let size = self.pointer_bytes() as u64;
        self.check_access(p, size, Access::Load)?;
        let addr = p.addr();
        let mut stack = [AbsByte::UNINIT; SCALAR_BUF];
        let bytes = &mut stack[..size as usize];
        self.read_bytes_into(addr, bytes);
        if bytes.iter().any(|b| !b.is_init()) {
            if bytes.iter().any(super::absbyte::AbsByte::is_init) {
                return Err(MemError::ub(
                    Ub::LvalueReadTrapRepresentation,
                    "partially initialised pointer representation",
                ));
            }
            return Err(MemError::ub(
                Ub::UninitialisedRead,
                format!("read of uninitialised pointer at {addr:#x}"),
            ));
        }
        self.stats.loads += 1;
        let mut raw = [0u8; SCALAR_BUF];
        for (r, b) in raw.iter_mut().zip(bytes.iter()) {
            *r = b.concrete();
        }
        let raw = &raw[..size as usize];
        let prov = recover_provenance(bytes);
        if self.cfg.capabilities {
            let (tag, ghost) = if addr.is_multiple_of(C::CAP_BYTES as u64) {
                let meta = self.slot_get(addr);
                (meta.tag, meta.ghost)
            } else {
                (false, GhostState::CLEAN)
            };
            let cap = C::decode(raw, tag)
                .ok_or_else(|| MemError::Fail("capability decode".into()))?
                .with_ghost(ghost);
            Ok(PtrVal::new(prov, cap))
        } else {
            let mut a: u64 = 0;
            for (i, b) in raw.iter().enumerate() {
                a |= u64::from(*b) << (8 * i);
            }
            Ok(PtrVal::new(prov, C::root().with_address(a)))
        }
    }

    /// Store a pointer value.
    ///
    /// # Errors
    ///
    /// As for [`CheriMemory::store_int`].
    pub fn store_ptr(&mut self, p: &PtrVal<C>, v: &PtrVal<C>) -> MemResult<()> {
        let size = self.pointer_bytes() as u64;
        self.check_access(p, size, Access::Store)?;
        if self.cfg.capabilities {
            self.store_cap_bytes(p.addr(), &v.cap, v.prov);
        } else {
            let a = v.addr();
            let addr = p.addr();
            let mut abs = [AbsByte::UNINIT; SCALAR_BUF];
            for (i, o) in abs[..size as usize].iter_mut().enumerate() {
                *o = AbsByte::pointer(v.prov, (a >> (8 * i)) as u8, i as u8);
            }
            self.write_abs_bytes(addr, &abs[..size as usize]);
            self.stats.stores += 1;
        }
        Ok(())
    }

    fn store_cap_bytes(&mut self, addr: u64, cap: &C, prov: Provenance) {
        let enc = cap.encode();
        let cb = C::CAP_BYTES as u64;
        let mut abs = [AbsByte::UNINIT; SCALAR_BUF];
        for (i, o) in abs[..enc.len()].iter_mut().enumerate() {
            *o = AbsByte::pointer(prov, enc[i], i as u8);
        }
        self.write_abs_bytes(addr, &abs[..enc.len()]);
        if addr.is_multiple_of(cb) {
            self.slot_set(
                addr,
                SlotMeta {
                    tag: cap.tag(),
                    ghost: cap.ghost(),
                },
            );
        } else {
            // Misaligned capability store: the tag cannot be represented.
            self.caps_invalidate(addr, addr + cb, TagClearReason::MisalignedStore);
        }
        self.stats.stores += 1;
    }

    // ── memcpy / memset / memcmp ─────────────────────────────────────────

    /// `memcpy` / `memmove`: copies bytes *and* capability metadata for
    /// capability-aligned chunks, as CHERI C requires (§3.5: "memcpy must be
    /// implemented with capability-sized and aligned accesses where
    /// possible, to preserve pointers").
    ///
    /// # Errors
    ///
    /// Access-check failures on either range.
    pub fn memcpy(&mut self, dst: &PtrVal<C>, src: &PtrVal<C>, n: u64) -> MemResult<()> {
        if n == 0 {
            return Ok(());
        }
        self.check_access(src, n, Access::Load)?;
        self.check_access(dst, n, Access::Store)?;
        let (s_addr, d_addr) = (src.addr(), dst.addr());
        self.stats.memcpy_bytes += n;
        self.emit(|| MemEvent::Memcpy {
            dst: d_addr,
            src: s_addr,
            n,
        });
        self.copy_bytes_raw(s_addr, d_addr, n);
        Ok(())
    }

    /// `memset`.
    ///
    /// # Errors
    ///
    /// Access-check failures on the range.
    pub fn memset(&mut self, dst: &PtrVal<C>, byte: u8, n: u64) -> MemResult<()> {
        if n == 0 {
            return Ok(());
        }
        self.check_access(dst, n, Access::Store)?;
        let data = vec![byte; n as usize];
        self.write_data_bytes(dst.addr(), &data);
        Ok(())
    }

    /// `memcmp`.
    ///
    /// # Errors
    ///
    /// Access-check failures; in abstract-machine mode, UB on comparing
    /// uninitialised bytes. The hardware-emulation profiles instead compare
    /// the stale concrete bytes (real memory has no "uninitialised" state —
    /// the same behaviour [`CheriMemory::kill`] documents for freed memory).
    pub fn memcmp(&mut self, a: &PtrVal<C>, b: &PtrVal<C>, n: u64) -> MemResult<i32> {
        if n == 0 {
            return Ok(0);
        }
        self.check_access(a, n, Access::Load)?;
        self.check_access(b, n, Access::Load)?;
        let ba = self.read_bytes(a.addr(), n);
        let bb = self.read_bytes(b.addr(), n);
        for (x, y) in ba.iter().zip(bb.iter()) {
            let (x, y) = if self.cfg.abstract_ub {
                match (x.value(), y.value()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        return Err(MemError::ub(
                            Ub::UninitialisedRead,
                            "memcmp of uninitialised bytes",
                        ))
                    }
                }
            } else {
                (x.concrete(), y.concrete())
            };
            if x != y {
                return Ok(if x < y { -1 } else { 1 });
            }
        }
        Ok(0)
    }

    // ── Pointer arithmetic and comparison ────────────────────────────────

    /// Pointer + integer (array indexing). Applies the ISO rule (§3.2
    /// option (a)): in abstract mode, constructing a pointer below the
    /// allocation or more than one past it is UB. The capability address is
    /// updated either way, with hardware tag-clearing on
    /// non-representability.
    ///
    /// # Errors
    ///
    /// [`Ub::OutOfBoundPtrArithmetic`] in abstract mode.
    pub fn array_shift(&mut self, p: &PtrVal<C>, elem: u64, index: i64) -> MemResult<PtrVal<C>> {
        let delta = (elem as i128) * (index as i128);
        let new_addr = (p.addr() as i128).wrapping_add(delta) as u64;
        if self.cfg.abstract_ub {
            if let Some(id) = self.resolve_prov(&p.prov, p.addr(), 0)? {
                let a = self.alloc_ref(id).expect("indexed allocation");
                if !a.contains_or_one_past(new_addr) {
                    return Err(MemError::ub(
                        Ub::OutOfBoundPtrArithmetic,
                        format!(
                            "{:#x} is outside [{:#x},{:#x}]",
                            new_addr,
                            a.base,
                            a.end()
                        ),
                    ));
                }
            }
        }
        self.stats.representability_checks += 1;
        let cap = p.cap.with_address(new_addr);
        self.emit(|| MemEvent::CapDerive {
            from: p.addr(),
            to: new_addr,
            tag_cleared: p.cap.tag() && !cap.tag(),
        });
        Ok(PtrVal::new(p.prov, cap))
    }

    /// Pointer + byte offset for struct member access; stays within the
    /// object by construction, so no arithmetic UB check is needed.
    #[must_use]
    pub fn member_shift(&self, p: &PtrVal<C>, offset: u64) -> PtrVal<C> {
        PtrVal::new(p.prov, p.cap.with_address(p.addr().wrapping_add(offset)))
    }

    /// Pointer subtraction, in units of `elem` bytes.
    ///
    /// # Errors
    ///
    /// UB when the provenances differ (§3.11 check (2)). A zero-sized
    /// element type is a hard [`MemError::Fail`]: it cannot arise from
    /// well-typed C, so reaching it is an interpreter bug we want loud,
    /// not masked by silently dividing by 1.
    pub fn ptr_diff(&mut self, a: &PtrVal<C>, b: &PtrVal<C>, elem: u64) -> MemResult<i64> {
        if self.cfg.abstract_ub {
            let ia = self.resolve_prov(&a.prov, a.addr(), 0)?;
            let ib = self.resolve_prov(&b.prov, b.addr(), 0)?;
            if ia.is_none() || ia != ib {
                return Err(MemError::ub(
                    Ub::PtrDiffDifferentProvenance,
                    format!("{} vs {}", a.prov, b.prov),
                ));
            }
        }
        if elem == 0 {
            return Err(MemError::Fail(
                "pointer subtraction with zero-sized element type".into(),
            ));
        }
        let d = (a.addr() as i128 - b.addr() as i128) / elem as i128;
        Ok(d as i64)
    }

    /// Relational comparison (`<` etc.). Returns `Ordering` by address.
    ///
    /// # Errors
    ///
    /// UB when provenances differ, in abstract mode (ISO 6.5.8p5).
    pub fn ptr_rel_cmp(
        &mut self,
        a: &PtrVal<C>,
        b: &PtrVal<C>,
    ) -> MemResult<std::cmp::Ordering> {
        if self.cfg.abstract_ub {
            let ia = self.resolve_prov(&a.prov, a.addr(), 0)?;
            let ib = self.resolve_prov(&b.prov, b.addr(), 0)?;
            if ia.is_none() || ia != ib {
                return Err(MemError::ub(
                    Ub::RelationalCompareDifferentProvenance,
                    format!("{} vs {}", a.prov, b.prov),
                ));
            }
        }
        Ok(a.addr().cmp(&b.addr()))
    }

    /// Pointer equality: address-only (§3.6 option (3)) — never UB, and
    /// deliberately ignores tags, bounds and permissions.
    #[must_use]
    pub fn ptr_eq(&self, a: &PtrVal<C>, b: &PtrVal<C>) -> bool {
        a.addr() == b.addr()
    }

    // ── Pointer/integer conversions (§3.3, PNVI-ae-udi) ──────────────────

    /// Cast pointer → integer. For `(u)intptr_t` targets the capability is
    /// preserved (§3.4); for narrower integer types the address is
    /// truncated. Either way the allocation is marked exposed (PNVI-ae).
    pub fn cast_ptr_to_int(
        &mut self,
        p: &PtrVal<C>,
        to_intptr: bool,
        signed: bool,
        size: u64,
    ) -> IntVal<C> {
        self.expose(p.prov);
        if to_intptr {
            IntVal::Cap {
                signed,
                cap: p.cap.clone(),
                prov: p.prov,
            }
        } else {
            let mut v = i128::from(p.addr());
            if size < 16 {
                let shift = 128 - 8 * size as u32;
                v = if signed {
                    (v << shift) >> shift
                } else {
                    ((v << shift) as u128 >> shift) as i128
                };
            }
            IntVal::Num(v)
        }
    }

    /// Cast integer → pointer. A capability-carrying value keeps its
    /// capability (round-trip, §3.3); provenance is the carried one when
    /// still valid, otherwise the PNVI-ae-udi exposed-allocation lookup.
    /// A pure numeric value yields an untagged null-derived capability.
    pub fn cast_int_to_ptr(&mut self, v: &IntVal<C>) -> PtrVal<C> {
        match v {
            IntVal::Num(0) => PtrVal::null(),
            IntVal::Num(n) => {
                let addr = *n as u64;
                let prov = self.lookup_provenance(addr);
                PtrVal::new(prov, C::null().with_address(addr))
            }
            IntVal::Cap { cap, prov, .. } => {
                let addr = cap.address();
                let live = prov
                    .alloc_id()
                    .and_then(|id| self.alloc_ref(id))
                    .is_some_and(|a| a.alive && a.contains_or_one_past(addr));
                let prov = if live { *prov } else { self.lookup_provenance(addr) };
                PtrVal::new(prov, cap.clone())
            }
        }
    }

    /// Mark an allocation read-only after initialisation and return a
    /// read-only capability to it. Used for `const` objects (§3.9): the
    /// interpreter allocates writable, runs the initialiser, then freezes.
    ///
    /// # Errors
    ///
    /// Fails if the pointer has no resolvable provenance.
    pub fn freeze_readonly(&mut self, p: &PtrVal<C>) -> MemResult<PtrVal<C>> {
        let id = self
            .resolve_prov(&p.prov, p.addr(), 0)?
            .ok_or_else(|| MemError::Fail("freeze of unknown allocation".into()))?;
        if let Some(a) = self.alloc_mut(id) {
            a.readonly = true;
        }
        let cap = if self.cfg.capabilities {
            p.cap.with_perms_and(Perms::data_readonly())
        } else {
            p.cap.clone()
        };
        Ok(PtrVal::new(p.prov, cap))
    }

    // ── Introspection ────────────────────────────────────────────────────

    /// The allocation map (diagnostics and tests).
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// A single allocation by ID (diagnostics and tests).
    #[must_use]
    pub fn allocation(&self, id: AllocId) -> Option<&Allocation> {
        self.alloc_ref(id)
    }

    /// Find the live allocation containing `addr`, if any.
    #[must_use]
    pub fn find_live(&self, addr: u64) -> Option<&Allocation> {
        // The reserved footprint is a superset of the requested one, so the
        // index hit is the only possible candidate.
        self.alloc_at(addr)
            .filter(|a| a.alive && addr >= a.base && addr < a.end())
    }

    /// Number of tagged capabilities currently in memory.
    #[must_use]
    pub fn tagged_caps_in_memory(&self) -> usize {
        if self.cfg.legacy_store {
            self.caps.tagged_count()
        } else {
            self.allocations
                .iter()
                .map(|a| a.slots.tagged_count())
                .sum::<usize>()
                + self.spill_caps.tagged_count()
        }
    }

    /// Direct access to the capability metadata of an aligned slot (tests).
    #[must_use]
    pub fn cap_meta_at(&self, addr: u64) -> SlotMeta {
        self.slot_get(addr)
    }
}
