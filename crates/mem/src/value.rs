//! Pointer and integer values of the memory object model.
//!
//! §4.3: "Pointer values are capabilities ... Integer values could be either
//! pure numeric values for integer types, or capabilities (with signedness
//! flag) for `(u)intptr_t` types. This representation allows us to preserve
//! all capability fields when casting pointers to `(u)intptr_t` and back"
//! (`integer_value ≜ ℤ ⊕ (𝔹 × Cap)`).

use std::fmt;

use cheri_cap::{CapDisplay, Capability};

use crate::Provenance;

/// A pointer value: provenance plus a capability (the `(@i, c)` pairs of the
/// load rule in §4.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PtrVal<C> {
    /// PNVI-ae-udi provenance.
    pub prov: Provenance,
    /// The capability. In the baseline (non-CHERI) model this is a
    /// root-derived capability used only for its address field.
    pub cap: C,
}

impl<C: Capability> PtrVal<C> {
    /// The null pointer.
    #[must_use]
    pub fn null() -> Self {
        PtrVal {
            prov: Provenance::Empty,
            cap: C::null(),
        }
    }

    /// Construct from provenance and capability.
    #[must_use]
    pub fn new(prov: Provenance, cap: C) -> Self {
        PtrVal { prov, cap }
    }

    /// The virtual address.
    #[must_use]
    pub fn addr(&self) -> u64 {
        self.cap.address()
    }

    /// Is this a null pointer (address 0, null-derived capability)?
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.addr() == 0 && self.cap.is_null_derived()
    }
}

impl<C: Capability> fmt::Display for PtrVal<C> {
    /// Appendix A style: `(@86, 0xffffe6dc [rwRW,0xffffe6dc-0xffffe6e4])`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.prov, CapDisplay(&self.cap))
    }
}

/// An integer value: `ℤ ⊕ (𝔹 × Cap)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IntVal<C> {
    /// A pure numeric value (arbitrary precision within `i128`).
    Num(i128),
    /// A capability-carrying value of `(u)intptr_t` type. It keeps the
    /// provenance of the pointer it was cast from so that type punning
    /// through unions (§3.4) and load/modify/store of `(u)intptr_t` objects
    /// behave like the executable Cerberus-CHERI semantics.
    Cap {
        /// True for `intptr_t`, false for `uintptr_t`.
        signed: bool,
        /// The capability; its address field is the numeric value.
        cap: C,
        /// Provenance carried along with the capability.
        prov: Provenance,
    },
}

impl<C: Capability> IntVal<C> {
    /// The numeric (address) value, interpreting the address according to
    /// the signedness for capability-carrying values.
    #[must_use]
    pub fn value(&self) -> i128 {
        match self {
            IntVal::Num(n) => *n,
            IntVal::Cap { signed, cap, .. } => {
                let a = cap.address();
                if *signed && C::ADDR_BITS == 64 {
                    i128::from(a as i64)
                } else if *signed {
                    i128::from(a as u32 as i32)
                } else {
                    i128::from(a)
                }
            }
        }
    }

    /// The capability, if this value carries one.
    #[must_use]
    pub fn as_cap(&self) -> Option<&C> {
        match self {
            IntVal::Num(_) => None,
            IntVal::Cap { cap, .. } => Some(cap),
        }
    }

    /// The provenance carried by this value ([`Provenance::Empty`] for pure
    /// numerics).
    #[must_use]
    pub fn prov(&self) -> Provenance {
        match self {
            IntVal::Num(_) => Provenance::Empty,
            IntVal::Cap { prov, .. } => *prov,
        }
    }

    /// Is this a capability-carrying value?
    #[must_use]
    pub fn is_cap(&self) -> bool {
        matches!(self, IntVal::Cap { .. })
    }

    /// Derive a capability-carrying value with a new address from this
    /// value's capability (or from the null capability for numerics). The
    /// tag is cleared by the capability model if `addr` is not
    /// representable; the caller decides whether to also set ghost state
    /// (§3.3 option (c) sets it only for abstract-machine excursions).
    #[must_use]
    pub fn derive_with_address(&self, signed: bool, addr: u64) -> IntVal<C> {
        let (base, prov) = match self {
            IntVal::Num(_) => (C::null(), Provenance::Empty),
            IntVal::Cap { cap, prov, .. } => (cap.clone(), *prov),
        };
        IntVal::Cap {
            signed,
            cap: base.with_address(addr),
            prov,
        }
    }
}

impl<C: Capability> fmt::Display for IntVal<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntVal::Num(n) => write!(f, "{n}"),
            IntVal::Cap { cap, .. } => write!(f, "{}", CapDisplay(cap)),
        }
    }
}

/// A scalar memory value, as loaded from or stored to memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemVal<C> {
    /// An unspecified value (e.g. loaded from uninitialised memory when the
    /// model is configured to tolerate it).
    Unspec,
    /// An integer value with its byte size.
    Int {
        /// Width in bytes of the representation.
        size: usize,
        /// The value.
        v: IntVal<C>,
    },
    /// A pointer value.
    Ptr(PtrVal<C>),
}

impl<C: Capability> fmt::Display for MemVal<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemVal::Unspec => write!(f, "<unspecified>"),
            MemVal::Int { v, .. } => write!(f, "{v}"),
            MemVal::Ptr(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::MorelloCap;

    #[test]
    fn null_pointer_properties() {
        let p: PtrVal<MorelloCap> = PtrVal::null();
        assert!(p.is_null());
        assert_eq!(p.addr(), 0);
        assert!(p.prov.is_empty());
    }

    #[test]
    fn intval_signed_interpretation() {
        let cap = MorelloCap::null().with_address(u64::MAX);
        let signed = IntVal::Cap { signed: true, cap, prov: Provenance::Empty };
        let unsigned = IntVal::Cap { signed: false, cap, prov: Provenance::Empty };
        assert_eq!(signed.value(), -1);
        assert_eq!(unsigned.value(), i128::from(u64::MAX));
    }

    #[test]
    fn derive_from_num_is_null_derived() {
        let v: IntVal<MorelloCap> = IntVal::Num(0x1234);
        let d = v.derive_with_address(false, 0x1234);
        let cap = d.as_cap().unwrap();
        assert!(!cap.tag());
        assert!(cap.is_null_derived());
        assert_eq!(d.value(), 0x1234);
    }

    #[test]
    fn derive_from_cap_keeps_bounds() {
        let cap = MorelloCap::root().with_bounds(0x1000, 64);
        let v = IntVal::Cap { signed: false, cap, prov: Provenance::Empty };
        let d = v.derive_with_address(true, 0x1010);
        let c = d.as_cap().unwrap();
        assert!(c.tag());
        assert_eq!(c.bounds().base, 0x1000);
        assert_eq!(d.value(), 0x1010);
    }

    #[test]
    fn display_matches_appendix_a() {
        use crate::AllocId;
        let cap = MorelloCap::root()
            .with_perms_and(cheri_cap::Perms::data())
            .with_bounds(0xffffe6dc, 8);
        let p = PtrVal::new(Provenance::Alloc(AllocId(86)), cap);
        assert_eq!(
            p.to_string(),
            "(@86, 0xffffe6dc [rwRW,0xffffe6dc-0xffffe6e4])"
        );
    }
}
