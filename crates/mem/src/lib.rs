//! The CHERI C memory object model, in Rust.
//!
//! This crate is the Rust counterpart of the paper's Coq memory object model
//! (§4.3 of *Formal Mechanised Semantics of CHERI C*, ASPLOS 2024): the
//! state `mem_state ≜ A × S × M` with `M ≜ B × C`, where
//!
//! * `A` is the allocation map ([`Allocation`], [`AllocId`]),
//! * `S` is PNVI-ae-udi provenance bookkeeping ([`Provenance`], iotas),
//! * `B` is the byte dictionary (`ℤ ⇀ AbsByte`, [`AbsByte`]),
//! * `C` is the capability-metadata dictionary: per capability-aligned slot,
//!   a tag and a two-bit ghost state ([`CapMeta`]).
//!
//! The central type is [`CheriMemory`], generic over the capability model
//! ([`cheri_cap::Capability`]). Three configurations cover the paper's
//! experimental axes (see [`MemConfig`]):
//!
//! * [`MemConfig::cheri_reference`] — the abstract CHERI C machine
//!   (capability checks *and* UB detection; Cerberus-like).
//! * [`MemConfig::cheri_hardware`] — emulates a real implementation:
//!   capability traps only, deterministic tag clearing, and a configurable
//!   allocator address layout (this is what differentiates the
//!   clang/gcc rows of Appendix A).
//! * [`MemConfig::iso_baseline`] — the ISO C PNVI-ae-udi concrete model with
//!   machine-word pointers and no capabilities (§2.3), used as the
//!   comparison baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absbyte;
mod allocation;
mod capmeta;
mod cheri;
mod layout;
mod provenance;
mod ub;
mod value;

pub use absbyte::{recover_provenance, AbsByte};
pub use allocation::{AllocKind, Allocation};
pub use capmeta::{CapMeta, CapSlotBits, SlotMeta, TagInvalidation};
pub use cheri::{CheriMemory, MemConfig, MemStats};
pub use layout::AddressLayout;
pub use provenance::{AllocId, IotaId, IotaState, Provenance};
pub use ub::{MemError, MemResult, TrapKind, Ub};
pub use value::{IntVal, MemVal, PtrVal};

// Re-exported observability vocabulary (the types `CheriMemory` emits);
// see the `cheri-obs` crate for sinks, renderers, binary traces, diffing.
pub use cheri_obs::{AllocClass, EventKind, MemEvent, TagClearReason};

/// The baseline ISO C memory model: [`CheriMemory`] in non-capability mode.
///
/// The capability type parameter is still needed as the address-width
/// carrier; use [`new_baseline`] to construct one.
pub type ConcreteMemory<C> = CheriMemory<C>;

/// Construct the baseline ISO C (PNVI-ae-udi, machine-word pointer) model.
#[must_use]
pub fn new_baseline<C: cheri_cap::Capability>() -> ConcreteMemory<C> {
    CheriMemory::new(MemConfig::iso_baseline())
}

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod tests;
