//! Undefined behaviours.
//!
//! §4.2 of the paper: CHERI C adds four new undefined behaviours to ISO C's
//! catalogue, and the executable semantics flags the ISO ones too. The enum
//! below covers the CHERI UBs verbatim plus every ISO UB the memory object
//! model and the test suite exercise.

use std::fmt;

/// An undefined behaviour detected by the abstract machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum Ub {
    // ── CHERI-specific UBs (§4.2) ────────────────────────────────────────
    /// Dereference of a pointer whose capability tag is cleared.
    CheriInvalidCap,
    /// Dereference of a pointer whose capability tag is *unspecified* in the
    /// ghost state (after a representation write or a non-representable
    /// `(u)intptr_t` excursion).
    CheriUndefinedTag,
    /// Memory access via a capability lacking the permission for the
    /// operation.
    CheriInsufficientPermissions,
    /// Dereference of an out-of-bounds pointer.
    CheriBoundsViolation,
    /// ISO C UB012: reading an lvalue whose stored representation is a trap
    /// representation — flagged when decoding a stored capability fails.
    LvalueReadTrapRepresentation,

    // ── ISO C memory-object UBs ──────────────────────────────────────────
    /// Access outside the footprint of the allocation identified by the
    /// pointer's provenance.
    AccessOutOfBounds,
    /// Access to an allocation whose lifetime has ended (temporal error).
    AccessDeadAllocation,
    /// Pointer arithmetic producing a value below, or more than one past,
    /// the allocation (ISO 6.5.6p8; §3.2 option (a) keeps this rule for
    /// CHERI C).
    OutOfBoundPtrArithmetic,
    /// `free`/`realloc` of a pointer that is not the start of a live
    /// heap allocation.
    FreeInvalidPointer,
    /// `free` of an allocation already freed.
    DoubleFree,
    /// Subtraction of pointers with different provenance.
    PtrDiffDifferentProvenance,
    /// Relational comparison (`<`, `<=`, `>`, `>=`) of pointers with
    /// different provenance.
    RelationalCompareDifferentProvenance,
    /// Read of an uninitialised object.
    UninitialisedRead,
    /// Read through a pointer with empty provenance (no live allocation
    /// matches).
    EmptyProvenanceAccess,
    /// Write to an object declared with a `const`-qualified type, or through
    /// a capability for read-only data (§3.9).
    WriteToReadOnly,
    /// Dereference of a null pointer.
    NullDereference,
    /// Signed integer overflow.
    SignedOverflow,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Shift amount negative or at least the width of the type.
    ShiftOutOfRange,
    /// Misaligned scalar access.
    MisalignedAccess,
    /// Use of an indeterminate (`iota`) provenance pointer in a way that
    /// cannot be disambiguated (PNVI-ae-udi).
    AmbiguousProvenance,
}

impl Ub {
    /// Is this one of the UBs CHERI C adds over ISO C (§4.2)?
    #[must_use]
    pub fn is_cheri(self) -> bool {
        matches!(
            self,
            Ub::CheriInvalidCap
                | Ub::CheriUndefinedTag
                | Ub::CheriInsufficientPermissions
                | Ub::CheriBoundsViolation
        )
    }

    /// The identifier used in the paper / Cerberus output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Ub::CheriInvalidCap => "UB_CHERI_InvalidCap",
            Ub::CheriUndefinedTag => "UB_CHERI_UndefinedTag",
            Ub::CheriInsufficientPermissions => "UB_CHERI_InsufficientPermissions",
            Ub::CheriBoundsViolation => "UB_CHERI_BoundsViolation",
            Ub::LvalueReadTrapRepresentation => "UB012_lvalue_read_trap_representation",
            Ub::AccessOutOfBounds => "UB_access_out_of_bounds",
            Ub::AccessDeadAllocation => "UB_access_dead_allocation",
            Ub::OutOfBoundPtrArithmetic => "UB046_out_of_bounds_pointer_arithmetic",
            Ub::FreeInvalidPointer => "UB_free_invalid_pointer",
            Ub::DoubleFree => "UB_double_free",
            Ub::PtrDiffDifferentProvenance => "UB048_ptrdiff_different_provenance",
            Ub::RelationalCompareDifferentProvenance => "UB053_relational_different_provenance",
            Ub::UninitialisedRead => "UB_uninitialised_read",
            Ub::EmptyProvenanceAccess => "UB_empty_provenance_access",
            Ub::WriteToReadOnly => "UB033_write_to_read_only",
            Ub::NullDereference => "UB_null_dereference",
            Ub::SignedOverflow => "UB036_signed_overflow",
            Ub::DivisionByZero => "UB045_division_by_zero",
            Ub::ShiftOutOfRange => "UB051_shift_out_of_range",
            Ub::MisalignedAccess => "UB_misaligned_access",
            Ub::AmbiguousProvenance => "UB_ambiguous_provenance",
        }
    }
}

impl fmt::Display for Ub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A hardware trap, as raised by a CHERI machine when a capability check
/// fails at access time (§2.1: "such an access triggers a synchronous data
/// abort exception"). The implementation-emulation profiles report these
/// instead of abstract-machine UB.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrapKind {
    /// Capability tag clear (or sealed) at access.
    TagViolation,
    /// Access outside the capability bounds.
    BoundsViolation,
    /// Missing permission for the access.
    PermissionViolation,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            TrapKind::TagViolation => "capability tag fault",
            TrapKind::BoundsViolation => "capability bounds fault",
            TrapKind::PermissionViolation => "capability permission fault",
        };
        f.write_str(msg)
    }
}

/// Error type of all memory-model operations (the `memM` monad of §4.3:
/// state threading is Rust `&mut self`, the error component is this enum).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The abstract machine encountered undefined behaviour.
    Ub(Ub, String),
    /// The (emulated) hardware raised a capability exception — used by the
    /// implementation profiles, where there is no abstract UB detection and
    /// the only checks are the architectural ones.
    Trap(TrapKind, String),
    /// A constraint failure that is not UB (e.g. allocation exhaustion).
    Fail(String),
}

impl MemError {
    /// Construct a UB error with context.
    pub fn ub(ub: Ub, ctx: impl Into<String>) -> Self {
        MemError::Ub(ub, ctx.into())
    }

    /// Construct a hardware trap error with context.
    pub fn trap(kind: TrapKind, ctx: impl Into<String>) -> Self {
        MemError::Trap(kind, ctx.into())
    }

    /// The UB, if this error is one.
    #[must_use]
    pub fn as_ub(&self) -> Option<Ub> {
        match self {
            MemError::Ub(ub, _) => Some(*ub),
            _ => None,
        }
    }

    /// The trap kind, if this error is a hardware trap.
    #[must_use]
    pub fn as_trap(&self) -> Option<TrapKind> {
        match self {
            MemError::Trap(k, _) => Some(*k),
            _ => None,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Ub(ub, ctx) if ctx.is_empty() => write!(f, "undefined behaviour: {ub}"),
            MemError::Ub(ub, ctx) => write!(f, "undefined behaviour: {ub} ({ctx})"),
            MemError::Trap(k, ctx) if ctx.is_empty() => write!(f, "hardware trap: {k}"),
            MemError::Trap(k, ctx) => write!(f, "hardware trap: {k} ({ctx})"),
            MemError::Fail(msg) => write!(f, "memory model failure: {msg}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Result type of memory-model operations.
pub type MemResult<T> = Result<T, MemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheri_ubs_are_flagged() {
        assert!(Ub::CheriInvalidCap.is_cheri());
        assert!(Ub::CheriBoundsViolation.is_cheri());
        assert!(!Ub::AccessOutOfBounds.is_cheri());
        assert!(!Ub::LvalueReadTrapRepresentation.is_cheri());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Ub::CheriInvalidCap.name(), "UB_CHERI_InvalidCap");
        assert_eq!(Ub::CheriUndefinedTag.name(), "UB_CHERI_UndefinedTag");
        assert_eq!(
            Ub::CheriInsufficientPermissions.name(),
            "UB_CHERI_InsufficientPermissions"
        );
        assert_eq!(Ub::CheriBoundsViolation.name(), "UB_CHERI_BoundsViolation");
    }

    #[test]
    fn display_includes_context() {
        let e = MemError::ub(Ub::DoubleFree, "p");
        assert_eq!(e.to_string(), "undefined behaviour: UB_double_free (p)");
        assert_eq!(e.as_ub(), Some(Ub::DoubleFree));
    }
}
