//! Undefined behaviours and the memory-model error monad.
//!
//! §4.2 of the paper: CHERI C adds four new undefined behaviours to ISO C's
//! catalogue, and the executable semantics flags the ISO ones too. The
//! [`Ub`] and [`TrapKind`] taxonomies themselves live in `cheri-obs` (so
//! trace events can carry them without a dependency cycle) and are
//! re-exported here under their historical paths; this module keeps the
//! error monad ([`MemError`], [`MemResult`]) that threads them through the
//! memory model's operations.

use std::fmt;

pub use cheri_obs::kinds::{TrapKind, Ub};

/// Error type of all memory-model operations (the `memM` monad of §4.3:
/// state threading is Rust `&mut self`, the error component is this enum).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The abstract machine encountered undefined behaviour.
    Ub(Ub, String),
    /// The (emulated) hardware raised a capability exception — used by the
    /// implementation profiles, where there is no abstract UB detection and
    /// the only checks are the architectural ones.
    Trap(TrapKind, String),
    /// A constraint failure that is not UB (e.g. allocation exhaustion).
    Fail(String),
}

impl MemError {
    /// Construct a UB error with context.
    pub fn ub(ub: Ub, ctx: impl Into<String>) -> Self {
        MemError::Ub(ub, ctx.into())
    }

    /// Construct a hardware trap error with context.
    pub fn trap(kind: TrapKind, ctx: impl Into<String>) -> Self {
        MemError::Trap(kind, ctx.into())
    }

    /// The UB, if this error is one.
    #[must_use]
    pub fn as_ub(&self) -> Option<Ub> {
        match self {
            MemError::Ub(ub, _) => Some(*ub),
            _ => None,
        }
    }

    /// The trap kind, if this error is a hardware trap.
    #[must_use]
    pub fn as_trap(&self) -> Option<TrapKind> {
        match self {
            MemError::Trap(k, _) => Some(*k),
            _ => None,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Ub(ub, ctx) if ctx.is_empty() => write!(f, "undefined behaviour: {ub}"),
            MemError::Ub(ub, ctx) => write!(f, "undefined behaviour: {ub} ({ctx})"),
            MemError::Trap(k, ctx) if ctx.is_empty() => write!(f, "hardware trap: {k}"),
            MemError::Trap(k, ctx) => write!(f, "hardware trap: {k} ({ctx})"),
            MemError::Fail(msg) => write!(f, "memory model failure: {msg}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Result type of memory-model operations.
pub type MemResult<T> = Result<T, MemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheri_ubs_are_flagged() {
        assert!(Ub::CheriInvalidCap.is_cheri());
        assert!(Ub::CheriBoundsViolation.is_cheri());
        assert!(!Ub::AccessOutOfBounds.is_cheri());
        assert!(!Ub::LvalueReadTrapRepresentation.is_cheri());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Ub::CheriInvalidCap.name(), "UB_CHERI_InvalidCap");
        assert_eq!(Ub::CheriUndefinedTag.name(), "UB_CHERI_UndefinedTag");
        assert_eq!(
            Ub::CheriInsufficientPermissions.name(),
            "UB_CHERI_InsufficientPermissions"
        );
        assert_eq!(Ub::CheriBoundsViolation.name(), "UB_CHERI_BoundsViolation");
    }

    #[test]
    fn display_includes_context() {
        let e = MemError::ub(Ub::DoubleFree, "p");
        assert_eq!(e.to_string(), "undefined behaviour: UB_double_free (p)");
        assert_eq!(e.as_ub(), Some(Ub::DoubleFree));
    }
}
