//! Capability metadata: the `C` dictionary of §4.3.
//!
//! "For each capability-size aligned memory location, we add metadata
//! consisting of the capability tag and a two-bit ghost state ... The first
//! bit of the ghost state for a given capability indicates whether the tag
//! is unspecified, and the second bit indicates whether the address and
//! bounds are unspecified."

use std::collections::BTreeMap;

use cheri_cap::GhostState;

/// How the model invalidates capabilities whose representation was touched
/// by a non-capability write.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TagInvalidation {
    /// Abstract-machine semantics (§3.5): the tag becomes *unspecified* in
    /// ghost state, so later use for access is UB but optimisations that
    /// remove the invalidation remain sound.
    #[default]
    Ghost,
    /// Hardware semantics: the tag is deterministically cleared (what a
    /// Morello or CHERI-RISC-V machine does). Used by the implementation
    /// emulation profiles.
    Clear,
}

/// The per-slot metadata: the stored tag and the two ghost bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SlotMeta {
    /// The stored capability tag.
    pub tag: bool,
    /// Ghost state of the stored capability.
    pub ghost: GhostState,
}

/// Packed per-allocation capability-slot metadata: the flat-store rendering
/// of the `C` dictionary for the slots inside one allocation.
///
/// Each capability-aligned slot needs three bits — the stored tag and the
/// two ghost bits — so slots are packed four bits wide into `u64` words
/// (16 slots per word). Absent metadata reads as untagged-and-clean, exactly
/// like an absent key in the legacy global [`CapMeta`] dictionary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CapSlotBits {
    n: usize,
    words: Vec<u64>,
}

/// Bit layout of one 4-bit slot entry in [`CapSlotBits`].
const BIT_TAG: u64 = 0b0001;
const BIT_TAG_UNSPEC: u64 = 0b0010;
const BIT_BOUNDS_UNSPEC: u64 = 0b0100;
/// `BIT_TAG` replicated into every 4-bit lane of a word, for popcounts.
const TAG_LANES: u64 = 0x1111_1111_1111_1111;

impl CapSlotBits {
    /// A bitset for `n` capability slots, all untagged-and-clean.
    #[must_use]
    pub fn new(n: usize) -> Self {
        CapSlotBits {
            n,
            words: vec![0; n.div_ceil(16)],
        }
    }

    /// Number of slots tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Does this bitset track zero slots?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Metadata for slot `i` (out-of-range reads as untagged-and-clean).
    #[must_use]
    pub fn get(&self, i: usize) -> SlotMeta {
        if i >= self.n {
            return SlotMeta::default();
        }
        let nib = (self.words[i / 16] >> ((i % 16) * 4)) & 0xF;
        SlotMeta {
            tag: nib & BIT_TAG != 0,
            ghost: GhostState {
                tag_unspecified: nib & BIT_TAG_UNSPEC != 0,
                bounds_unspecified: nib & BIT_BOUNDS_UNSPEC != 0,
            },
        }
    }

    /// Record metadata for slot `i` (out-of-range writes are ignored).
    pub fn set(&mut self, i: usize, meta: SlotMeta) {
        if i >= self.n {
            return;
        }
        let mut nib = 0u64;
        if meta.tag {
            nib |= BIT_TAG;
        }
        if meta.ghost.tag_unspecified {
            nib |= BIT_TAG_UNSPEC;
        }
        if meta.ghost.bounds_unspecified {
            nib |= BIT_BOUNDS_UNSPEC;
        }
        let shift = (i % 16) * 4;
        let w = &mut self.words[i / 16];
        *w = (*w & !(0xF << shift)) | (nib << shift);
    }

    /// Reset every slot to untagged-and-clean.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of tagged slots, by popcount over the tag lanes.
    #[must_use]
    pub fn tagged_count(&self) -> usize {
        self.words
            .iter()
            .map(|w| (w & TAG_LANES).count_ones() as usize)
            .sum()
    }

    /// Indices of every tagged slot, in ascending order.
    pub fn tagged_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let w = w & TAG_LANES;
            (0..16)
                .filter(move |lane| w >> (lane * 4) & 1 != 0)
                .map(move |lane| wi * 16 + lane)
        })
    }
}

/// The capability-metadata dictionary, keyed by capability-aligned address.
#[derive(Clone, Debug, Default)]
pub struct CapMeta {
    slots: BTreeMap<u64, SlotMeta>,
}

impl CapMeta {
    /// An empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        CapMeta::default()
    }

    /// Metadata for the slot at `addr` (which must be aligned); absent slots
    /// read as untagged-and-clean.
    #[must_use]
    pub fn get(&self, addr: u64) -> SlotMeta {
        self.slots.get(&addr).copied().unwrap_or_default()
    }

    /// Record a capability store at aligned address `addr`.
    pub fn set(&mut self, addr: u64, meta: SlotMeta) {
        if meta == SlotMeta::default() {
            self.slots.remove(&addr);
        } else {
            self.slots.insert(addr, meta);
        }
    }

    /// Invalidate every slot whose `cap_bytes`-sized footprint overlaps
    /// `[lo, hi)` — called for every non-capability write (§4.3: "Writing
    /// non-capabilities to memory marks all previously set tags for the
    /// corresponding address range as unspecified in the ghost state").
    ///
    /// Returns the number of slots affected.
    pub fn invalidate_range(
        &mut self,
        lo: u64,
        hi: u64,
        cap_bytes: u64,
        mode: TagInvalidation,
    ) -> usize {
        if hi <= lo {
            return 0;
        }
        let first_slot = lo & !(cap_bytes - 1);
        let mut affected = 0;
        let mut slot = first_slot;
        while slot < hi {
            if let Some(meta) = self.slots.get_mut(&slot) {
                if meta.tag || !meta.ghost.is_clean() {
                    affected += 1;
                    match mode {
                        TagInvalidation::Ghost => {
                            meta.ghost.tag_unspecified = true;
                        }
                        TagInvalidation::Clear => {
                            meta.tag = false;
                            meta.ghost = GhostState::CLEAN;
                        }
                    }
                }
            }
            slot = match slot.checked_add(cap_bytes) {
                Some(s) => s,
                None => break,
            };
        }
        affected
    }

    /// Forget all slots within `[lo, hi)` (used when an allocation dies).
    pub fn clear_range(&mut self, lo: u64, hi: u64) {
        let keys: Vec<u64> = self.slots.range(lo..hi).map(|(k, _)| *k).collect();
        for k in keys {
            self.slots.remove(&k);
        }
    }

    /// Number of tagged slots (diagnostics).
    #[must_use]
    pub fn tagged_count(&self) -> usize {
        self.slots.values().filter(|m| m.tag).count()
    }

    /// Is the dictionary empty (no slot carries any metadata)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Addresses of every tagged slot, in ascending order.
    #[must_use]
    pub fn tagged_addrs(&self) -> Vec<u64> {
        self.slots
            .iter()
            .filter(|(_, m)| m.tag)
            .map(|(a, _)| *a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged() -> SlotMeta {
        SlotMeta {
            tag: true,
            ghost: GhostState::CLEAN,
        }
    }

    #[test]
    fn absent_slots_are_untagged() {
        let m = CapMeta::new();
        assert!(!m.get(0x1000).tag);
        assert!(m.get(0x1000).ghost.is_clean());
    }

    #[test]
    fn ghost_invalidation_marks_unspecified() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        let n = m.invalidate_range(0x1004, 0x1005, 16, TagInvalidation::Ghost);
        assert_eq!(n, 1);
        let s = m.get(0x1000);
        assert!(s.tag, "tag itself survives in ghost mode");
        assert!(s.ghost.tag_unspecified);
    }

    #[test]
    fn clear_invalidation_drops_tag() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        m.invalidate_range(0x1000, 0x1010, 16, TagInvalidation::Clear);
        assert!(!m.get(0x1000).tag);
        assert!(m.get(0x1000).ghost.is_clean());
    }

    #[test]
    fn write_not_overlapping_slot_leaves_it() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        let n = m.invalidate_range(0x1010, 0x1020, 16, TagInvalidation::Ghost);
        assert_eq!(n, 0);
        assert!(m.get(0x1000).ghost.is_clean());
    }

    #[test]
    fn wide_write_invalidates_multiple_slots() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        m.set(0x1010, tagged());
        m.set(0x1020, tagged());
        let n = m.invalidate_range(0x1008, 0x1018, 16, TagInvalidation::Clear);
        assert_eq!(n, 2);
        assert!(!m.get(0x1000).tag);
        assert!(!m.get(0x1010).tag);
        assert!(m.get(0x1020).tag);
    }

    #[test]
    fn clear_range_forgets_slots() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        m.set(0x1010, tagged());
        m.clear_range(0x1000, 0x1010);
        assert_eq!(m.tagged_count(), 1);
    }

    #[test]
    fn slot_bits_roundtrip_all_combinations() {
        let mut b = CapSlotBits::new(40);
        assert_eq!(b.len(), 40);
        assert!(!b.is_empty());
        for i in 0..40 {
            let meta = SlotMeta {
                tag: i % 2 == 0,
                ghost: GhostState {
                    tag_unspecified: i % 3 == 0,
                    bounds_unspecified: i % 5 == 0,
                },
            };
            b.set(i, meta);
            assert_eq!(b.get(i), meta, "slot {i}");
        }
        // Neighbours are untouched by a rewrite.
        b.set(17, tagged());
        assert!(b.get(16).tag);
        assert!(b.get(18).tag);
        assert_eq!(
            b.tagged_count(),
            (0..40).filter(|i| i % 2 == 0).count() + 1
        );
    }

    #[test]
    fn slot_bits_tagged_indices_and_clear() {
        let mut b = CapSlotBits::new(33);
        for i in [0usize, 15, 16, 31, 32] {
            b.set(i, tagged());
        }
        assert_eq!(b.tagged_indices().collect::<Vec<_>>(), vec![0, 15, 16, 31, 32]);
        assert_eq!(b.tagged_count(), 5);
        b.clear_all();
        assert_eq!(b.tagged_count(), 0);
        assert_eq!(b.get(15), SlotMeta::default());
    }

    #[test]
    fn slot_bits_out_of_range_is_inert() {
        let mut b = CapSlotBits::new(2);
        b.set(7, tagged()); // ignored
        assert_eq!(b.tagged_count(), 0);
        assert_eq!(b.get(7), SlotMeta::default());
        let empty = CapSlotBits::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.tagged_count(), 0);
    }
}
