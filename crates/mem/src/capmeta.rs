//! Capability metadata: the `C` dictionary of §4.3.
//!
//! "For each capability-size aligned memory location, we add metadata
//! consisting of the capability tag and a two-bit ghost state ... The first
//! bit of the ghost state for a given capability indicates whether the tag
//! is unspecified, and the second bit indicates whether the address and
//! bounds are unspecified."

use std::collections::BTreeMap;

use cheri_cap::GhostState;

/// How the model invalidates capabilities whose representation was touched
/// by a non-capability write.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TagInvalidation {
    /// Abstract-machine semantics (§3.5): the tag becomes *unspecified* in
    /// ghost state, so later use for access is UB but optimisations that
    /// remove the invalidation remain sound.
    #[default]
    Ghost,
    /// Hardware semantics: the tag is deterministically cleared (what a
    /// Morello or CHERI-RISC-V machine does). Used by the implementation
    /// emulation profiles.
    Clear,
}

/// The per-slot metadata: the stored tag and the two ghost bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SlotMeta {
    /// The stored capability tag.
    pub tag: bool,
    /// Ghost state of the stored capability.
    pub ghost: GhostState,
}

/// The capability-metadata dictionary, keyed by capability-aligned address.
#[derive(Clone, Debug, Default)]
pub struct CapMeta {
    slots: BTreeMap<u64, SlotMeta>,
}

impl CapMeta {
    /// An empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        CapMeta::default()
    }

    /// Metadata for the slot at `addr` (which must be aligned); absent slots
    /// read as untagged-and-clean.
    #[must_use]
    pub fn get(&self, addr: u64) -> SlotMeta {
        self.slots.get(&addr).copied().unwrap_or_default()
    }

    /// Record a capability store at aligned address `addr`.
    pub fn set(&mut self, addr: u64, meta: SlotMeta) {
        if meta == SlotMeta::default() {
            self.slots.remove(&addr);
        } else {
            self.slots.insert(addr, meta);
        }
    }

    /// Invalidate every slot whose `cap_bytes`-sized footprint overlaps
    /// `[lo, hi)` — called for every non-capability write (§4.3: "Writing
    /// non-capabilities to memory marks all previously set tags for the
    /// corresponding address range as unspecified in the ghost state").
    ///
    /// Returns the number of slots affected.
    pub fn invalidate_range(
        &mut self,
        lo: u64,
        hi: u64,
        cap_bytes: u64,
        mode: TagInvalidation,
    ) -> usize {
        if hi <= lo {
            return 0;
        }
        let first_slot = lo & !(cap_bytes - 1);
        let mut affected = 0;
        let mut slot = first_slot;
        while slot < hi {
            if let Some(meta) = self.slots.get_mut(&slot) {
                if meta.tag || !meta.ghost.is_clean() {
                    affected += 1;
                    match mode {
                        TagInvalidation::Ghost => {
                            meta.ghost.tag_unspecified = true;
                        }
                        TagInvalidation::Clear => {
                            meta.tag = false;
                            meta.ghost = GhostState::CLEAN;
                        }
                    }
                }
            }
            slot = match slot.checked_add(cap_bytes) {
                Some(s) => s,
                None => break,
            };
        }
        affected
    }

    /// Forget all slots within `[lo, hi)` (used when an allocation dies).
    pub fn clear_range(&mut self, lo: u64, hi: u64) {
        let keys: Vec<u64> = self.slots.range(lo..hi).map(|(k, _)| *k).collect();
        for k in keys {
            self.slots.remove(&k);
        }
    }

    /// Number of tagged slots (diagnostics).
    #[must_use]
    pub fn tagged_count(&self) -> usize {
        self.slots.values().filter(|m| m.tag).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged() -> SlotMeta {
        SlotMeta {
            tag: true,
            ghost: GhostState::CLEAN,
        }
    }

    #[test]
    fn absent_slots_are_untagged() {
        let m = CapMeta::new();
        assert!(!m.get(0x1000).tag);
        assert!(m.get(0x1000).ghost.is_clean());
    }

    #[test]
    fn ghost_invalidation_marks_unspecified() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        let n = m.invalidate_range(0x1004, 0x1005, 16, TagInvalidation::Ghost);
        assert_eq!(n, 1);
        let s = m.get(0x1000);
        assert!(s.tag, "tag itself survives in ghost mode");
        assert!(s.ghost.tag_unspecified);
    }

    #[test]
    fn clear_invalidation_drops_tag() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        m.invalidate_range(0x1000, 0x1010, 16, TagInvalidation::Clear);
        assert!(!m.get(0x1000).tag);
        assert!(m.get(0x1000).ghost.is_clean());
    }

    #[test]
    fn write_not_overlapping_slot_leaves_it() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        let n = m.invalidate_range(0x1010, 0x1020, 16, TagInvalidation::Ghost);
        assert_eq!(n, 0);
        assert!(m.get(0x1000).ghost.is_clean());
    }

    #[test]
    fn wide_write_invalidates_multiple_slots() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        m.set(0x1010, tagged());
        m.set(0x1020, tagged());
        let n = m.invalidate_range(0x1008, 0x1018, 16, TagInvalidation::Clear);
        assert_eq!(n, 2);
        assert!(!m.get(0x1000).tag);
        assert!(!m.get(0x1010).tag);
        assert!(m.get(0x1020).tag);
    }

    #[test]
    fn clear_range_forgets_slots() {
        let mut m = CapMeta::new();
        m.set(0x1000, tagged());
        m.set(0x1010, tagged());
        m.clear_range(0x1000, 0x1010);
        assert_eq!(m.tagged_count(), 1);
    }
}
