//! Allocator address layouts.
//!
//! Appendix A of the paper shows that observable differences between CHERI C
//! implementations for `intptr_t` bitwise masking are driven by where each
//! implementation's allocator places objects: GCC Morello's stack sits below
//! 2³¹, so `cap & INT_MAX` leaves the address (and hence representability)
//! unchanged, while Clang's stacks sit far above 2³², so masking moves the
//! address out of the representable range and the capability becomes
//! invalid. These presets reproduce the address ranges observable in the
//! paper's sample output.

/// Address-space layout used by a memory-model instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AddressLayout {
    /// First address handed out for automatic (stack) objects; the stack
    /// region grows downward from here.
    pub stack_base: u64,
    /// Lowest address the stack region may reach.
    pub stack_limit: u64,
    /// First address of the heap region (grows upward).
    pub heap_base: u64,
    /// One past the last heap address.
    pub heap_limit: u64,
    /// First address for globals and functions (grows upward).
    pub globals_base: u64,
    /// One past the last globals address.
    pub globals_limit: u64,
    /// Human-readable name for diagnostics.
    pub name: &'static str,
}

impl AddressLayout {
    /// The layout used by the Cerberus reference semantics: a 32-bit-style
    /// address space with the stack just below 2³² (Appendix A shows stack
    /// addresses like `0xffffe6dc`).
    #[must_use]
    pub const fn cerberus() -> Self {
        AddressLayout {
            stack_base: 0xFFFF_F000,
            stack_limit: 0xF000_0000,
            heap_base: 0x4000_0000,
            heap_limit: 0x8000_0000,
            globals_base: 0x0001_0000,
            globals_limit: 0x1000_0000,
            name: "cerberus",
        }
    }

    /// Clang CHERI-RISC-V under CheriBSD: stack around `0x3fffdfffxx`
    /// (above 2³², below 2³⁸).
    #[must_use]
    pub const fn clang_riscv() -> Self {
        AddressLayout {
            stack_base: 0x3F_FFE0_0000,
            stack_limit: 0x3F_F000_0000,
            heap_base: 0x3E_0000_0000,
            heap_limit: 0x3F_0000_0000,
            globals_base: 0x10_1000_0000,
            globals_limit: 0x10_2000_0000,
            name: "clang-riscv",
        }
    }

    /// Clang Morello under CheriBSD: stack around `0xfffffff7ffxx`
    /// (just below 2⁴⁸).
    #[must_use]
    pub const fn clang_morello() -> Self {
        AddressLayout {
            stack_base: 0xFFFF_FFF8_0000,
            stack_limit: 0xFFFF_F000_0000,
            heap_base: 0x4_0000_0000,
            heap_limit: 0x5_0000_0000,
            globals_base: 0x1_0000_0000,
            globals_limit: 0x1_1000_0000,
            name: "clang-morello",
        }
    }

    /// GCC Morello bare-metal (newlib): everything below 2³¹ — the stack at
    /// `0x7fffffxx`, which is why Appendix A shows no invalidation for GCC.
    #[must_use]
    pub const fn gcc_morello() -> Self {
        AddressLayout {
            stack_base: 0x8000_0000,
            stack_limit: 0x7000_0000,
            heap_base: 0x2000_0000,
            heap_limit: 0x3000_0000,
            globals_base: 0x0001_0000,
            globals_limit: 0x1000_0000,
            name: "gcc-morello",
        }
    }

    /// A small layout for a 32-bit (CHERIoT-style) address space.
    #[must_use]
    pub const fn embedded32() -> Self {
        AddressLayout {
            stack_base: 0x2000_F000,
            stack_limit: 0x2000_0000,
            heap_base: 0x2001_0000,
            heap_limit: 0x2008_0000,
            globals_base: 0x1000_0000,
            globals_limit: 0x1010_0000,
            name: "embedded32",
        }
    }
}

impl Default for AddressLayout {
    fn default() -> Self {
        AddressLayout::cerberus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cerberus_stack_is_32bit_high() {
        let l = AddressLayout::cerberus();
        assert!(u32::try_from(l.stack_base).is_ok());
        assert!(l.stack_base > 0x8000_0000); // above INT_MAX: `& INT_MAX` moves it
    }

    #[test]
    fn gcc_stack_below_int_max() {
        let l = AddressLayout::gcc_morello();
        assert!(l.stack_base <= 0x8000_0000); // `& INT_MAX` is identity below here
    }

    #[test]
    fn clang_stacks_above_uint_max() {
        assert!(AddressLayout::clang_riscv().stack_base > u64::from(u32::MAX));
        assert!(AddressLayout::clang_morello().stack_base > u64::from(u32::MAX));
    }

    #[test]
    fn regions_are_disjoint() {
        for l in [
            AddressLayout::cerberus(),
            AddressLayout::clang_riscv(),
            AddressLayout::clang_morello(),
            AddressLayout::gcc_morello(),
            AddressLayout::embedded32(),
        ] {
            let mut regions = [
                (l.stack_limit, l.stack_base),
                (l.heap_base, l.heap_limit),
                (l.globals_base, l.globals_limit),
            ];
            regions.sort_unstable();
            assert!(regions[0].1 <= regions[1].0, "{}: stack/heap overlap", l.name);
            assert!(regions[1].1 <= regions[2].0, "{}: heap/globals overlap", l.name);
        }
    }
}
