//! Ablation benchmarks for the design choices DESIGN.md calls out: what do
//! the individual mechanisms of the CHERI C semantics cost?
//!
//! * representability padding (§3.2) — allocator throughput and wasted bytes;
//! * ghost-state vs deterministic tag invalidation (§3.5) — data-store
//!   throughput over capability-dense memory;
//! * abstract-machine provenance checking (§2.3) vs hardware-only checks —
//!   pointer-arithmetic throughput;
//! * revocation sweeps (§7 temporal-safety extension) — free() cost with
//!   many live capabilities in memory.

use cheri_qc::bench::{black_box, Bench as Criterion};

use cheri_cap::MorelloCap;
use cheri_mem::{CheriMemory, IntVal, MemConfig, TagInvalidation};

type Mem = CheriMemory<MorelloCap>;

fn bench_padding(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/representability_padding");
    for (name, pad) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = MemConfig::cheri_reference();
                cfg.pad_for_representability = pad;
                let mut mem = Mem::new(cfg);
                for i in 0..64u64 {
                    let p = mem.allocate_region((1 << 14) + i * 13, 16).expect("malloc");
                    black_box(p.addr());
                }
                black_box(mem.stats.padding_bytes)
            });
        });
    }
    g.finish();
}

fn bench_tag_invalidation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/tag_invalidation");
    for (name, mode) in [
        ("ghost", TagInvalidation::Ghost),
        ("clear", TagInvalidation::Clear),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = MemConfig::cheri_reference();
                cfg.tag_invalidation = mode;
                let mut mem = Mem::new(cfg);
                // Capability-dense region: 64 stored pointers.
                let x = mem.allocate_object("x", 4, 4, false, Some(&[0; 4])).expect("x");
                let slots = mem
                    .allocate_object("slots", 16 * 64, 16, false, None)
                    .expect("slots");
                for i in 0..64 {
                    let p = mem.array_shift(&slots, 16, i).expect("shift");
                    mem.store_ptr(&p, &x).expect("store");
                }
                // Now hammer data stores over the same region, invalidating.
                for i in 0..(16 * 64) {
                    let p = mem.array_shift(&slots, 1, i).expect("shift");
                    mem.store_int(&p, 1, &IntVal::Num(7)).expect("store");
                }
                black_box(mem.tagged_caps_in_memory())
            });
        });
    }
    g.finish();
}

fn bench_provenance_checking(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/abstract_ub_checks");
    for (name, abstract_ub) in [("abstract_machine", true), ("hardware_only", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = MemConfig::cheri_reference();
                cfg.abstract_ub = abstract_ub;
                let mut mem = Mem::new(cfg);
                let arr = mem
                    .allocate_object("arr", 4 * 512, 4, false, None)
                    .expect("arr");
                let mut acc = 0u64;
                for round in 0..8 {
                    for i in 0..512 {
                        let p = mem.array_shift(&arr, 4, (i + round) % 512).expect("shift");
                        acc ^= p.addr();
                    }
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

fn bench_revocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/revocation_sweep");
    for (name, revoke) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = MemConfig::cheri_hardware(cheri_mem::AddressLayout::cerberus());
                cfg.revocation = revoke;
                let mut mem = Mem::new(cfg);
                // Populate memory with many live capabilities the sweep has
                // to scan.
                let x = mem.allocate_object("x", 4, 4, false, Some(&[0; 4])).expect("x");
                let slots = mem
                    .allocate_object("slots", 16 * 128, 16, false, None)
                    .expect("slots");
                for i in 0..128 {
                    let p = mem.array_shift(&slots, 16, i).expect("shift");
                    mem.store_ptr(&p, &x).expect("store");
                }
                for _ in 0..16 {
                    let h = mem.allocate_region(64, 16).expect("malloc");
                    mem.kill(&h, true).expect("free");
                }
                black_box(mem.stats.allocations)
            });
        });
    }
    g.finish();
}

cheri_qc::bench_group!(
    benches,
    bench_padding,
    bench_tag_invalidation,
    bench_provenance_checking,
    bench_revocation
);
cheri_qc::bench_main!(benches);
