//! End-to-end interpreter benchmarks: whole CHERI C programs through the
//! full pipeline (parse → typecheck → interpret), comparing the reference
//! semantics, an emulated hardware implementation, and the ISO baseline,
//! plus the cost of running the complete 94-test validation suite.

use cheri_qc::bench::{black_box, Bench as Criterion};

use cheri_core::{compile, run, Interp, MorelloCap, Profile};

const SUM_LOOP: &str = r#"
int main(void) {
  int a[64];
  for (int i = 0; i < 64; i++) a[i] = i;
  int s = 0;
  for (int round = 0; round < 50; round++)
    for (int i = 0; i < 64; i++)
      s += a[i];
  return s == 50 * 2016 ? 0 : 1;
}"#;

const UINTPTR_CHURN: &str = r#"
#include <stdint.h>
int main(void) {
  int a[32];
  for (int i = 0; i < 32; i++) a[i] = i;
  uintptr_t base = (uintptr_t)a;
  int s = 0;
  for (int round = 0; round < 50; round++) {
    for (int i = 0; i < 32; i++) {
      uintptr_t u = base + i * sizeof(int);
      int *p = (int*)u;
      s += *p;
    }
  }
  return s == 50 * 496 ? 0 : 1;
}"#;

const MALLOC_CHURN: &str = r#"
int main(void) {
  for (int i = 0; i < 100; i++) {
    int *p = malloc(32 * sizeof(int));
    for (int j = 0; j < 32; j++) p[j] = j;
    free(p);
  }
  return 0;
}"#;

fn bench_programs(c: &mut Criterion) {
    for (name, src) in [
        ("sum_loop", SUM_LOOP),
        ("uintptr_churn", UINTPTR_CHURN),
        ("malloc_churn", MALLOC_CHURN),
    ] {
        let mut g = c.benchmark_group(format!("interp/{name}"));
        for profile in [
            Profile::cerberus(),
            Profile::clang_morello(false),
            Profile::iso_baseline(),
        ] {
            let prog = compile(src, &profile).expect("compile");
            g.bench_function(profile.name.clone(), |b| {
                b.iter(|| {
                    let r = Interp::<MorelloCap>::new(&prog, &profile).run();
                    assert!(r.outcome.is_success(), "{}", r.outcome);
                    black_box(r.unspecified_reads)
                });
            });
        }
        g.finish();
    }
}

fn bench_frontend(c: &mut Criterion) {
    let profile = Profile::cerberus();
    c.bench_function("frontend/parse_typecheck", |b| {
        b.iter(|| black_box(compile(UINTPTR_CHURN, &profile).expect("compile")));
    });
}

fn bench_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("suite");
    g.sample_size(10);
    g.bench_function("all_94_tests_reference", |b| {
        b.iter(|| {
            let profile = Profile::cerberus();
            let mut matched = 0usize;
            for t in cheri_testsuite::all_tests() {
                let r = run(t.source, &profile);
                matched += usize::from(t.expected_for("cerberus").matches(&r));
            }
            assert_eq!(matched, 94);
            black_box(matched)
        });
    });
    g.finish();
}

cheri_qc::bench_group!(
    benches, bench_programs, bench_frontend, bench_suite);
cheri_qc::bench_main!(benches);
