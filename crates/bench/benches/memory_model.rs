//! Memory-object-model benchmarks: the cost of the CHERI abstract machine's
//! checks relative to the ISO baseline model. The *shape* to expect: the
//! CHERI model is somewhat slower per access (capability bounds decode +
//! tag/permission checks + provenance), and capability-preserving `memcpy`
//! costs more than plain data copies.

use cheri_qc::bench::{black_box, Bench as Criterion};

use cheri_bench::MEM_OPS;
use cheri_cap::{Capability, MorelloCap};
use cheri_mem::{CheriMemory, IntVal, MemConfig};

type Mem = CheriMemory<MorelloCap>;

fn store_load_workload(mem: &mut Mem) -> i128 {
    let arr = mem
        .allocate_object("arr", 4 * MEM_OPS as u64, 4, false, None)
        .expect("allocate");
    let mut acc = 0i128;
    for i in 0..MEM_OPS {
        let p = mem.array_shift(&arr, 4, i as i64).expect("shift");
        mem.store_int(&p, 4, &IntVal::Num(i as i128)).expect("store");
    }
    for i in 0..MEM_OPS {
        let p = mem.array_shift(&arr, 4, i as i64).expect("shift");
        acc += mem.load_int(&p, 4, true, false).expect("load").value();
    }
    mem.kill(&arr, false).expect("kill");
    acc
}

fn bench_scalar_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem/scalar_store_load");
    g.bench_function("cheri_reference", |b| {
        b.iter(|| {
            let mut mem = Mem::new(MemConfig::cheri_reference());
            black_box(store_load_workload(&mut mem))
        });
    });
    g.bench_function("cheri_hardware", |b| {
        b.iter(|| {
            let mut mem = Mem::new(MemConfig::cheri_hardware(
                cheri_mem::AddressLayout::clang_morello(),
            ));
            black_box(store_load_workload(&mut mem))
        });
    });
    g.bench_function("iso_baseline", |b| {
        b.iter(|| {
            let mut mem = Mem::new(MemConfig::iso_baseline());
            black_box(store_load_workload(&mut mem))
        });
    });
    g.finish();
}

fn bench_pointer_heavy(c: &mut Criterion) {
    // Stores and loads of *pointers*: the capability-metadata path.
    let mut g = c.benchmark_group("mem/pointer_store_load");
    for (name, cfg) in [
        ("cheri_reference", MemConfig::cheri_reference()),
        ("iso_baseline", MemConfig::iso_baseline()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut mem = Mem::new(cfg);
                let x = mem.allocate_object("x", 4, 4, false, Some(&[0; 4])).expect("x");
                let slots = mem
                    .allocate_object("slots", 16 * 256, 16, false, None)
                    .expect("slots");
                for i in 0..256 {
                    let p = mem.array_shift(&slots, 16, i).expect("shift");
                    mem.store_ptr(&p, &x).expect("store");
                }
                let mut tags = 0usize;
                for i in 0..256 {
                    let p = mem.array_shift(&slots, 16, i).expect("shift");
                    tags += usize::from(mem.load_ptr(&p).expect("load").cap.tag());
                }
                black_box(tags)
            });
        });
    }
    g.finish();
}

fn bench_memcpy(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem/memcpy_4k");
    for (name, cfg) in [
        ("cheri_reference", MemConfig::cheri_reference()),
        ("iso_baseline", MemConfig::iso_baseline()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut mem = Mem::new(cfg);
                let src = mem.allocate_object("src", 4096, 16, false, None).expect("src");
                mem.memset(&src, 0xAB, 4096).expect("memset");
                let dst = mem.allocate_object("dst", 4096, 16, false, None).expect("dst");
                mem.memcpy(&dst, &src, 4096).expect("memcpy");
                black_box(mem.memcmp(&dst, &src, 4096).expect("memcmp"))
            });
        });
    }
    g.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem/allocate_free");
    for (name, cfg) in [
        ("cheri_reference", MemConfig::cheri_reference()),
        ("iso_baseline", MemConfig::iso_baseline()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut mem = Mem::new(cfg);
                for i in 0..128u64 {
                    let p = mem.allocate_region(16 + i * 8, 16).expect("malloc");
                    mem.kill(&p, true).expect("free");
                }
                black_box(mem.stats.allocations)
            });
        });
    }
    g.finish();
}

cheri_qc::bench_group!(
    benches,
    bench_scalar_ops,
    bench_pointer_heavy,
    bench_memcpy,
    bench_allocation
);
cheri_qc::bench_main!(benches);
