//! Microbenchmarks of the capability models: bounds compression
//! (encode/set-bounds), decompression (bounds decode), representability
//! checks, and byte encode/decode — the operations every memory access in
//! the semantics performs.

use cheri_qc::bench::{black_box, Bench as Criterion};
use cheri_qc::Rng;

use cheri_cap::{Capability, CheriotCap, MorelloCap};

fn regions(n: usize) -> Vec<(u64, u64)> {
    let mut rng = Rng::seed_from_u64(0x5EED);
    (0..n)
        .map(|_| {
            let base: u64 = rng.gen::<u64>() & 0xFFFF_FFFF_FFFF;
            let len: u64 = 1u64 << rng.gen_range(0u32..40);
            (base, len + rng.gen_range(0..len.max(2)))
        })
        .collect()
}

fn bench_set_bounds(c: &mut Criterion) {
    let rs = regions(1024);
    let root = MorelloCap::root();
    c.bench_function("cap/morello/set_bounds", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (base, len) in &rs {
                let cap = root.with_bounds(*base, *len);
                acc ^= cap.bounds().base;
            }
            black_box(acc)
        });
    });
    let root32 = CheriotCap::root();
    c.bench_function("cap/cheriot/set_bounds", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (base, len) in &rs {
                let cap = root32.with_bounds(base & 0x0FFF_FFFF, len & 0x00FF_FFFF);
                acc ^= cap.bounds().base;
            }
            black_box(acc)
        });
    });
}

fn bench_decode_bounds(c: &mut Criterion) {
    let caps: Vec<MorelloCap> = regions(1024)
        .into_iter()
        .map(|(base, len)| MorelloCap::root().with_bounds(base, len))
        .collect();
    c.bench_function("cap/morello/decode_bounds", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for cap in &caps {
                acc ^= black_box(cap).bounds().top;
            }
            black_box(acc)
        });
    });
}

fn bench_representability(c: &mut Criterion) {
    let caps: Vec<MorelloCap> = regions(256)
        .into_iter()
        .map(|(base, len)| MorelloCap::root().with_bounds(base, len))
        .collect();
    let mut rng = Rng::seed_from_u64(7);
    let probes: Vec<u64> = (0..256).map(|_| rng.gen()).collect();
    c.bench_function("cap/morello/is_representable", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for cap in &caps {
                for p in &probes[..16] {
                    if cap.is_representable(cap.address().wrapping_add(p % 4096)) {
                        n += 1;
                    }
                }
            }
            black_box(n)
        });
    });
    c.bench_function("cap/morello/with_address", |b| {
        b.iter(|| {
            let mut tags = 0usize;
            for cap in &caps {
                for p in &probes[..16] {
                    tags += usize::from(cap.with_address(*p).tag());
                }
            }
            black_box(tags)
        });
    });
}

fn bench_byte_roundtrip(c: &mut Criterion) {
    let caps: Vec<MorelloCap> = regions(1024)
        .into_iter()
        .map(|(base, len)| MorelloCap::root().with_bounds(base, len))
        .collect();
    c.bench_function("cap/morello/encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for cap in &caps {
                let bytes = cap.encode();
                let back = MorelloCap::decode(&bytes, cap.tag()).expect("16 bytes");
                acc ^= back.encode()[0];
            }
            black_box(acc)
        });
    });
}

cheri_qc::bench_group!(
    benches,
    bench_set_bounds,
    bench_decode_bounds,
    bench_representability,
    bench_byte_roundtrip
);
cheri_qc::bench_main!(benches);
