//! The deterministic oracle-fuzz **corpus**: a fixed block of generator
//! seeds run differentially through every compared implementation profile,
//! with automatic shrinking of any divergence to a minimal reproducing
//! program.
//!
//! This is the paper's §7 claim made executable *in CI*: `cargo test -q`
//! replays the corpus on every run (see `tests/oracle_corpus.rs`), and the
//! `oracle_fuzz` binary drives the same machinery over extended seed
//! ranges. Both report a divergence the same way — as a shrunk minimal
//! program plus a ready-to-paste regression entry for
//! `crates/testsuite/src/regressions.rs`.

use std::fmt::Write as _;

use cheri_core::{run, run_traced, Outcome, Profile};
use cheri_obs::{binfmt, DiffMode};

use crate::progen::{generate_traced, shrink_program, TracedProgram};

/// One divergence between the oracle and a profile, with its shrunk
/// reproducer.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Generator seed of the originating program.
    pub seed: u64,
    /// Whether the program came from the bug-injected family.
    pub buggy: bool,
    /// The profile that disagreed.
    pub profile: String,
    /// What the oracle expected (rendered).
    pub expected: String,
    /// What the profile produced (rendered).
    pub got: String,
    /// The minimal program still exhibiting the divergence.
    pub minimal: TracedProgram,
    /// Statement count before shrinking.
    pub original_stmts: usize,
    /// First event-level divergence of the minimal program against the
    /// cerberus reference (normalized addresses); `None` when the event
    /// streams agree and only the final outcome differs.
    pub event_diff: Option<String>,
}

/// Aggregate result of running a seed block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Well-defined programs checked.
    pub defined: u64,
    /// Buggy programs checked.
    pub buggy: u64,
    /// Profile runs that agreed with the oracle (well-defined family).
    pub agreed: u64,
    /// Profile runs that safety-stopped (buggy family).
    pub stopped: u64,
    /// Profile runs where an injected bug was masked (tolerated).
    pub masked: u64,
}

/// Check one well-defined seed against every profile; shrink any
/// divergence found.
fn check_defined(seed: u64, profiles: &[Profile], stats: &mut CorpusStats) -> Vec<Divergence> {
    let prog = generate_traced(seed, false);
    let want = Outcome::Exit(prog.oracle_exit().expect("well-defined"));
    stats.defined += 1;
    let mut out = Vec::new();
    for p in profiles {
        let r = run(&prog.source(), p);
        if r.outcome == want {
            stats.agreed += 1;
        } else {
            out.push(shrink_divergence(&prog, seed, false, p, &r.outcome));
        }
    }
    out
}

/// Check one bug-injected seed: every profile must either safety-stop or
/// (tolerated) mask the bug — an internal interpreter error is a
/// divergence.
fn check_buggy(seed: u64, profiles: &[Profile], stats: &mut CorpusStats) -> Vec<Divergence> {
    let prog = generate_traced(seed, true);
    stats.buggy += 1;
    let mut out = Vec::new();
    for p in profiles {
        let r = run(&prog.source(), p);
        match r.outcome {
            Outcome::Ub { .. } | Outcome::Trap { .. } => stats.stopped += 1,
            Outcome::Exit(_) | Outcome::Abort | Outcome::AssertFailed(_) => {
                // An injected bug can be masked (e.g. the free() variant
                // under a hardware profile which has no allocator
                // bookkeeping checks); count but don't fail.
                stats.masked += 1;
            }
            Outcome::Error(_) => {
                out.push(shrink_divergence(&prog, seed, true, p, &r.outcome));
            }
        }
    }
    out
}

/// Event-level view of a divergence: run the minimal reproducer under the
/// cerberus reference and the diverging profile, and diff the two typed
/// event streams in allocation-relative coordinates. When the
/// `CHERI_OBS_TRACE_DIR` environment variable is set, both sides' binary
/// (CHOB) traces are also written there — CI uploads them as artifacts on
/// corpus failure so a divergence can be replayed without re-running.
fn event_level_diff(
    seed: u64,
    buggy: bool,
    profile: &Profile,
    minimal: &TracedProgram,
) -> Option<String> {
    let src = minimal.source();
    let (_, oracle_events) = run_traced(&src, &Profile::cerberus());
    let (_, profile_events) = run_traced(&src, profile);
    if let Ok(dir) = std::env::var("CHERI_OBS_TRACE_DIR") {
        let family = if buggy { "buggy" } else { "defined" };
        let stem = format!("seed-{seed}-{family}-{}", profile.name);
        let _ = std::fs::create_dir_all(&dir);
        for (side, events) in [("oracle", &oracle_events), ("profile", &profile_events)] {
            let path = format!("{dir}/{stem}.{side}.chob");
            if let Err(e) = std::fs::write(&path, binfmt::encode_trace(events)) {
                eprintln!("warning: cannot write {path}: {e}");
            }
        }
    }
    cheri_obs::diff(&oracle_events, &profile_events, DiffMode::Normalized, 3)
        .map(|d| cheri_obs::render_diff(&d))
}

/// Shrink a diverging program to a minimal reproducer under `profile`.
///
/// For the well-defined family, a candidate "still fails" when the profile's
/// outcome differs from the candidate's *recomputed* oracle exit (the
/// trace-replay oracle makes statement deletion sound). For the buggy
/// family, it still fails when the profile reports an internal error.
fn shrink_divergence(
    prog: &TracedProgram,
    seed: u64,
    buggy: bool,
    profile: &Profile,
    got: &Outcome,
) -> Divergence {
    let minimal = shrink_program(prog, |cand| {
        if cand.stmts.is_empty() && cand.arrays.is_empty() {
            return false;
        }
        match cand.oracle_exit() {
            Some(code) => run(&cand.source(), profile).outcome != Outcome::Exit(code),
            // Bug statement still present (buggy family), or — either
            // family — a candidate we can't predict: require the same
            // error class to keep chasing the original defect.
            None => matches!(run(&cand.source(), profile).outcome, Outcome::Error(_)),
        }
    });
    let expected = match prog.oracle_exit() {
        Some(code) => format!("exit {code}"),
        None => "safety stop (no internal error)".to_string(),
    };
    let event_diff = event_level_diff(seed, buggy, profile, &minimal);
    Divergence {
        seed,
        buggy,
        profile: profile.name.clone(),
        expected,
        got: got.to_string(),
        minimal,
        original_stmts: prog.stmts.len(),
        event_diff,
    }
}

/// Run the corpus `[base, base+count)` (both families) over `profiles`.
#[must_use] 
pub fn run_corpus(base: u64, count: u64, profiles: &[Profile]) -> (CorpusStats, Vec<Divergence>) {
    let mut stats = CorpusStats::default();
    let mut divergences = Vec::new();
    for seed in base..base + count {
        divergences.extend(check_defined(seed, profiles, &mut stats));
        divergences.extend(check_buggy(seed, profiles, &mut stats));
    }
    (stats, divergences)
}

/// Render a divergence as a human report plus a ready-to-paste regression
/// entry for `crates/testsuite/src/regressions.rs`.
#[must_use]
pub fn render_divergence(d: &Divergence) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "DIVERGENCE seed={} family={} profile={}",
        d.seed,
        if d.buggy { "buggy" } else { "well-defined" },
        d.profile
    );
    let _ = writeln!(s, "  oracle expected: {}", d.expected);
    let _ = writeln!(s, "  profile produced: {}", d.got);
    let _ = writeln!(
        s,
        "  shrunk {} → {} statements, {} arrays; minimal reproducer:",
        d.original_stmts,
        d.minimal.stmts.len(),
        d.minimal.arrays.len()
    );
    for line in d.minimal.source().lines() {
        let _ = writeln!(s, "    {line}");
    }
    match &d.event_diff {
        Some(diff) => {
            let _ = writeln!(s, "  event-level diff vs cerberus (normalized addresses):");
            for line in diff.lines() {
                let _ = writeln!(s, "    {line}");
            }
        }
        None => {
            let _ = writeln!(
                s,
                "  event streams agree with cerberus; divergence is in the outcome only"
            );
        }
    }
    let _ = writeln!(s, "  replay: cargo run -p cheri-bench --bin oracle_fuzz -- 1 {}", d.seed);
    let _ = writeln!(s, "  ready-to-paste regression (crates/testsuite/src/regressions.rs):");
    let _ = writeln!(s, "    Regression {{");
    let _ = writeln!(s, "        id: \"oracle-fuzz/seed-{}-{}\",", d.seed, d.profile);
    let _ = writeln!(s, "        seed: {},", d.seed);
    let _ = writeln!(s, "        source: r#\"{}\"#,", d.minimal.source());
    let expect = match d.minimal.oracle_exit() {
        Some(code) => format!("Some({code})"),
        None => "None".to_string(),
    };
    let _ = writeln!(s, "        expected_exit: {expect},");
    let _ = writeln!(s, "    }},");
    s
}

/// Render the closing summary line for a corpus run.
#[must_use]
pub fn render_stats(stats: &CorpusStats, n_profiles: usize, n_div: usize) -> String {
    format!(
        "{} defined programs x {} configurations: {}/{} agreed; \
         {} buggy programs: {} safety-stopped, {} masked; {} divergences",
        stats.defined,
        n_profiles,
        stats.agreed,
        stats.defined * n_profiles as u64,
        stats.buggy,
        stats.stopped,
        stats.masked,
        n_div
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_mem::AddressLayout;

    #[test]
    fn small_corpus_is_clean_and_deterministic() {
        let profiles = [Profile::cerberus(), Profile::clang_morello(false)];
        let (s1, d1) = run_corpus(0, 4, &profiles);
        let (s2, d2) = run_corpus(0, 4, &profiles);
        assert!(d1.is_empty(), "{}", render_divergence(&d1[0]));
        assert!(d2.is_empty());
        assert_eq!(s1, s2, "corpus must be deterministic");
        assert_eq!(s1.defined, 4);
        assert_eq!(s1.agreed, 8);
    }

    #[test]
    fn forced_divergence_is_caught_and_shrunk() {
        // Mis-set a profile: a stack region too small for any array forces
        // allocation failures, so well-defined programs can't reach their
        // oracle exit. The corpus must flag it and shrink the reproducer.
        let mut broken = Profile::clang_morello(false);
        broken.name = "clang-morello-O0-broken-stack".into();
        broken.mem.layout = AddressLayout {
            stack_base: 0x1040,
            stack_limit: 0x1000,
            ..AddressLayout::clang_morello()
        };
        let (_, divs) = run_corpus(0, 2, &[broken]);
        assert!(!divs.is_empty(), "tiny stack must diverge");
        let d = &divs[0];
        assert!(d.minimal.stmts.len() <= d.original_stmts);
        let report = render_divergence(d);
        assert!(report.contains("DIVERGENCE seed="), "{report}");
        assert!(report.contains("ready-to-paste"), "{report}");
        // The shrunk program must still reproduce on the broken profile.
        let r = run(&d.minimal.source(), &Profile {
            name: "replay".into(),
            mem: {
                let mut m = Profile::clang_morello(false).mem;
                m.layout = AddressLayout {
                    stack_base: 0x1040,
                    stack_limit: 0x1000,
                    ..AddressLayout::clang_morello()
                };
                m
            },
            ..Profile::clang_morello(false)
        });
        match d.minimal.oracle_exit() {
            Some(code) => assert_ne!(r.outcome, Outcome::Exit(code)),
            None => assert!(matches!(r.outcome, Outcome::Error(_))),
        }
    }
}
