//! Benchmark and experiment harness for the CHERI C semantics
//! reconstruction.
//!
//! Binaries (each regenerates one artefact of the paper's evaluation):
//!
//! * `table1_tests` — Table 1 and the §5 compliance summary;
//! * `fig1_layout` — Figure 1 (the Morello capability bit-field layout);
//! * `appendix_a` — the Appendix A multi-implementation comparison;
//! * `run_c` — debug driver: run a C file under a named profile.
//!
//! Criterion benches (`cargo bench`) characterise the reconstruction:
//! capability encode/decode and representability checks, memory-model
//! load/store throughput (CHERI vs the ISO baseline), and end-to-end
//! interpretation of the paper's §3 example programs.

#![forbid(unsafe_code)]

pub mod corpus;
pub mod progen;

/// Workload sizes shared between benches so results are comparable.
pub const MEM_OPS: usize = 4096;
