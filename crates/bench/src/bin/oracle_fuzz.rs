//! Test-oracle fuzzing (§7 of the paper): generate random CHERI C programs,
//! use the executable reference semantics as the oracle, and check every
//! implementation configuration against it — "letting one use randomly
//! generated tests without manually curating their intended results."
//!
//! ```sh
//! cargo run --release -p cheri-bench --bin oracle_fuzz -- [count] [base-seed]
//! ```

use cheri_bench::progen::generate;
use cheri_core::{run, Outcome, Profile};

fn main() {
    let mut args = std::env::args().skip(1);
    let count: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let base: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);

    let profiles = Profile::all_compared();
    let mut divergences = 0u64;
    let mut defined = 0u64;
    let mut stopped = 0u64;

    println!("oracle fuzz: {count} well-defined + {count} buggy programs, seeds {base}..");
    for seed in base..base + count {
        // Well-defined family: every configuration must exit with the
        // oracle's value.
        let g = generate(seed, false);
        let want = Outcome::Exit(g.expected_exit.expect("well-defined"));
        defined += 1;
        for p in &profiles {
            let r = run(&g.source, p);
            if r.outcome != want {
                divergences += 1;
                println!(
                    "DIVERGENCE seed={seed} profile={} expected {want} got {}",
                    p.name, r.outcome
                );
                println!("{}", g.source);
            }
        }
        // Buggy family: every CHERI configuration must stop (UB or trap).
        let g = generate(seed, true);
        for p in &profiles {
            let r = run(&g.source, p);
            match r.outcome {
                Outcome::Ub { .. } | Outcome::Trap { .. } => stopped += 1,
                Outcome::Exit(_) | Outcome::Abort | Outcome::AssertFailed(_) => {
                    // An injected bug can be masked (e.g. the free() variant
                    // under a hardware profile which has no allocator
                    // bookkeeping checks); count but don't fail.
                }
                Outcome::Error(e) => {
                    divergences += 1;
                    println!("ERROR seed={seed} profile={}: {e}", p.name);
                }
            }
        }
    }
    println!(
        "\n{defined} defined programs x {} configurations: {divergences} divergences",
        profiles.len()
    );
    println!(
        "{count} buggy programs: {stopped}/{} configuration-runs safety-stopped",
        count * profiles.len() as u64
    );
    if divergences > 0 {
        std::process::exit(1);
    }
    println!("oracle agrees with every configuration.");
}
