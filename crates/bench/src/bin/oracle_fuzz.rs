//! Test-oracle fuzzing (§7 of the paper): generate random CHERI C programs,
//! use the executable reference semantics as the oracle, and check every
//! implementation configuration against it — "letting one use randomly
//! generated tests without manually curating their intended results."
//!
//! ```sh
//! cargo run --release -p cheri-bench --bin oracle_fuzz -- [count] [base-seed]
//! ```
//!
//! A fixed prefix of this stream (seeds 0..64) also runs on every
//! `cargo test -q` as the deterministic differential corpus
//! (`tests/oracle_corpus.rs`); this binary is the extended-range driver.
//! Any divergence is automatically shrunk by statement deletion to a
//! minimal reproducing program and printed together with a ready-to-paste
//! entry for `crates/testsuite/src/regressions.rs`.

use cheri_bench::corpus::{render_divergence, render_stats, run_corpus};
use cheri_core::Profile;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut num = |what: &str, default: u64| match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("oracle_fuzz: {what} must be a number, got {a:?}");
            eprintln!("usage: oracle_fuzz [count] [base-seed]");
            std::process::exit(2);
        }),
    };
    let count = num("count", 200);
    let base = num("base-seed", 0);

    let profiles = Profile::all_compared();
    println!(
        "oracle fuzz: {count} well-defined + {count} buggy programs, seeds {base}.., \
         {} configurations",
        profiles.len()
    );

    let (stats, divergences) = run_corpus(base, count, &profiles);
    for d in &divergences {
        println!("{}", render_divergence(d));
    }
    println!("\n{}", render_stats(&stats, profiles.len(), divergences.len()));
    if !divergences.is_empty() {
        std::process::exit(1);
    }
    println!("oracle agrees with every configuration.");
}
