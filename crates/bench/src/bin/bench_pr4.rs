//! `bench_pr4` — cost of the cheri-obs event-tracing subsystem.
//!
//! Measures the PR 4 observability rewrite from two angles and writes the
//! comparison to `BENCH_pr4.json` (path = first CLI argument, default
//! `./BENCH_pr4.json`):
//!
//! * **Zero-cost-when-off** — the end-to-end interpreter workload from
//!   `bench_pr3` (malloc churn + array sums under the cerberus profile)
//!   with *no sink installed*. The per-sample *minimum* is compared against
//!   the `interp_end_to_end/cerberus/flat` minimum recorded in
//!   `BENCH_pr3.json` (path = second CLI argument, default
//!   `./BENCH_pr3.json`); the un-hooked interpreter must stay within a
//!   noise margin of the pre-obs baseline. The minimum — not the median —
//!   is gated because at ~8 ms/iteration a sample is a single iteration and
//!   the median absorbs scheduler preemption; the minimum is the cleanest
//!   observation of work actually added. The median ratio is still
//!   recorded. The margin defaults to 2% and is tunable via
//!   `CHERI_OBS_PERF_MARGIN` (a fraction, e.g. `0.05`). When the baseline
//!   file is missing the ratio is reported as `null` and the gate is
//!   skipped.
//! * **Sink throughput** — a fixed, representative event stream replayed
//!   through each [`cheri_obs::EventSink`]. The structured [`RingSink`]
//!   (moves events, no formatting) must beat the [`StringSink`] (eagerly
//!   renders the legacy text line, i.e. what the old `Vec<String>` tracer
//!   did) on events per second — the argument for keeping traces typed
//!   until render time.
//!
//! Exit status is non-zero if either gate fails. `CHERI_QC_BENCH_FAST=1`
//! shrinks samples for CI.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use cheri_core::{compile, Interp, MorelloCap, Outcome, Profile};
use cheri_obs::{
    AllocClass, CountingSink, EventSink, MemEvent, Name, RingSink, SinkHandle, StringSink,
    TagClearReason, VecSink,
};
use cheri_qc::bench::{black_box, Bench, Stats};

const CHURN_PROGRAM: &str = r#"
int main(void) {
  int acc = 0;
  for (int i = 0; i < 40; i++) {
    int *p = malloc(64 * sizeof(int));
    for (int j = 0; j < 64; j++) p[j] = j;
    for (int j = 0; j < 64; j++) acc += p[j];
    free(p);
  }
  return acc == 40 * 2016 ? 0 : 1;
}"#;

/// Whole-pipeline run (parse → typecheck → interpret) with no sink — the
/// same workload `bench_pr3` records as `interp_end_to_end/cerberus/flat`.
fn interp_no_sink() -> u64 {
    let r = cheri_core::run(CHURN_PROGRAM, &Profile::cerberus());
    assert!(
        matches!(r.outcome, Outcome::Exit(0)),
        "end-to-end workload must be well-defined: {:?}",
        r.outcome
    );
    r.mem_stats.loads
}

/// The same pipeline with a sink observing every memory event.
fn interp_with_sink(sink: Box<dyn EventSink>) -> u64 {
    let profile = Profile::cerberus();
    let prog = compile(CHURN_PROGRAM, &profile).expect("compile");
    let mut it = Interp::<MorelloCap>::new(&prog, &profile);
    it.mem.set_sink(sink);
    let r = it.run();
    assert!(matches!(r.outcome, Outcome::Exit(0)));
    r.mem_stats.loads
}

/// A fixed event stream with the mix a real run produces: allocations,
/// loads/stores, copies, tag clears, and a terminal event.
fn sample_events() -> Vec<MemEvent> {
    let mut evs = Vec::new();
    for i in 0..64u64 {
        let base = 0x1000 + i * 0x100;
        evs.push(MemEvent::Alloc {
            id: i + 1,
            base,
            size: 64,
            kind: AllocClass::Heap,
            name: Name::new("malloc"),
        });
        for j in 0..8u64 {
            evs.push(MemEvent::Store {
                addr: base + j * 8,
                size: 8,
            });
            evs.push(MemEvent::Load {
                addr: base + j * 8,
                size: 8,
                intptr: j % 3 == 0,
            });
        }
        evs.push(MemEvent::Memcpy {
            dst: base,
            src: base + 32,
            n: 32,
        });
        evs.push(MemEvent::CapTagClear {
            addr: base,
            count: 2,
            reason: TagClearReason::Memcpy,
        });
        evs.push(MemEvent::Free {
            id: i + 1,
            base,
            end: base + 64,
            dynamic: true,
        });
    }
    evs.push(MemEvent::Exit(0));
    evs
}

/// Replay `events` into a fresh sink through the same [`SinkHandle`] hot
/// path the memory model uses; returns the handle so the sink's work can't
/// be optimised away.
fn replay(events: &[MemEvent], sink: Box<dyn EventSink>) -> SinkHandle {
    let mut h = SinkHandle::none();
    h.install(sink);
    for ev in events {
        h.emit_with(|| ev.clone());
    }
    h
}

/// Pull `"key": <number>` out of a flat JSON object fragment starting at
/// the first occurrence of `anchor`. Good enough for the hand-rolled JSON
/// the bench binaries write; returns `None` if anything is missing.
fn json_number_after(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let at = text.find(anchor)?;
    let rest = &text[at..];
    let k = rest.find(&format!("\"{key}\":"))?;
    let tail = rest[k + key.len() + 3..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr4.json".into());
    let baseline_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_pr3.json".into());
    let fast = std::env::var("CHERI_QC_BENCH_FAST").is_ok();
    let margin: f64 = std::env::var("CHERI_OBS_PERF_MARGIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    let mut c = Bench::new();

    c.bench_function("interp_end_to_end/cerberus/no_sink", |b| {
        b.iter(|| black_box(interp_no_sink()));
    });
    c.bench_function("interp_end_to_end/cerberus/ring_sink", |b| {
        b.iter(|| black_box(interp_with_sink(Box::new(RingSink::new(4096)))));
    });
    c.bench_function("interp_end_to_end/cerberus/counting_sink", |b| {
        b.iter(|| black_box(interp_with_sink(Box::new(CountingSink::new()))));
    });

    let events = sample_events();
    let n_events = events.len();
    c.bench_function("sink_throughput/ring", |b| {
        b.iter(|| black_box(replay(&events, Box::new(RingSink::new(n_events)))));
    });
    c.bench_function("sink_throughput/string", |b| {
        b.iter(|| black_box(replay(&events, Box::new(StringSink::new()))));
    });
    c.bench_function("sink_throughput/vec", |b| {
        b.iter(|| black_box(replay(&events, Box::new(VecSink::new()))));
    });
    c.bench_function("sink_throughput/counting", |b| {
        b.iter(|| black_box(replay(&events, Box::new(CountingSink::new()))));
    });

    // Sanity: the ring sink really observes the interpreter's events, and
    // the replay harness feeds every event through.
    {
        let mut ring = RingSink::new(64);
        for ev in &events {
            ring.emit(ev);
        }
        assert_eq!(ring.len(), 64, "ring keeps the most recent events");
        let mut h = replay(&events, Box::new(CountingSink::new()));
        let counted = h.downcast_mut::<CountingSink>().expect("counting sink");
        assert_eq!(counted.total, n_events as u64, "replay emits every event");
    }

    let results: Vec<Stats> = c.results().to_vec();
    let median = |id: &str| {
        results
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median)
            .expect("benchmark ran")
    };

    let stat = |id: &str, f: fn(&Stats) -> f64| {
        results
            .iter()
            .find(|s| s.id == id)
            .map(f)
            .expect("benchmark ran")
    };
    let no_sink_ns = median("interp_end_to_end/cerberus/no_sink");
    let no_sink_min_ns = stat("interp_end_to_end/cerberus/no_sink", |s| s.min);
    let ring_e2e_ns = median("interp_end_to_end/cerberus/ring_sink");
    let ring_ns = median("sink_throughput/ring");
    let string_ns = median("sink_throughput/string");
    let events_per_sec = |ns: f64| n_events as f64 / (ns * 1e-9);

    // Gate 1: no-sink end-to-end vs the PR-3 recorded baseline (min vs min).
    let baseline_text = std::fs::read_to_string(&baseline_path).ok();
    let baseline_min = baseline_text
        .as_deref()
        .and_then(|t| json_number_after(t, "interp_end_to_end/cerberus/flat", "min_ns"));
    let baseline_median = baseline_text
        .as_deref()
        .and_then(|t| json_number_after(t, "interp_end_to_end/cerberus/flat", "median_ns"));
    let median_ratio = baseline_median.map(|b| no_sink_ns / b);
    let (gate1_pass, ratio) = match baseline_min {
        Some(b) => (no_sink_min_ns <= b * (1.0 + margin), Some(no_sink_min_ns / b)),
        None => {
            eprintln!("note: {baseline_path} not found — skipping baseline gate");
            (true, None)
        }
    };

    // Gate 2: structured ring sink must out-pace the eager string tracer.
    let gate2_pass = ring_ns < string_ns;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr4\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(json, "  \"sample_events\": {n_events},");
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters_per_sample\": {}}}{}",
            json_escape(&s.id),
            s.median,
            s.mean,
            s.min,
            s.iters_per_sample,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sink_overhead_ring_e2e\": {:.3},",
        ring_e2e_ns / no_sink_ns
    );
    let _ = writeln!(
        json,
        "  \"events_per_sec\": {{\"ring\": {:.0}, \"string\": {:.0}}},",
        events_per_sec(ring_ns),
        events_per_sec(string_ns)
    );
    json.push_str("  \"gates\": {\n");
    let _ = writeln!(
        json,
        "    \"no_sink_vs_pr3_baseline\": {{\"margin\": {margin}, \"baseline_min_ns\": {}, \"no_sink_min_ns\": {no_sink_min_ns:.1}, \"min_ratio\": {}, \"median_ratio\": {}, \"pass\": {gate1_pass}}},",
        baseline_min.map_or_else(|| "null".into(), |b| format!("{b:.1}")),
        ratio.map_or_else(|| "null".into(), |r| format!("{r:.3}")),
        median_ratio.map_or_else(|| "null".into(), |r| format!("{r:.3}")),
    );
    let _ = writeln!(
        json,
        "    \"ring_beats_string_sink\": {{\"ring_median_ns\": {ring_ns:.1}, \"string_median_ns\": {string_ns:.1}, \"speedup\": {:.2}, \"pass\": {gate2_pass}}}",
        string_ns / ring_ns
    );
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr4.json");
    println!("\nwrote {out_path}");
    match (baseline_min, ratio) {
        (Some(b), Some(r)) => println!(
            "gate no-sink vs PR-3 baseline: baseline min {b:.0} ns, no-sink min {no_sink_min_ns:.0} ns, ratio {r:.3} (margin {margin}) — {}",
            if gate1_pass { "PASS" } else { "FAIL" }
        ),
        _ => println!("gate no-sink vs PR-3 baseline: SKIPPED (no {baseline_path})"),
    }
    println!(
        "gate ring vs string sink: ring {:.0} ev/s, string {:.0} ev/s, speedup {:.2}x — {}",
        events_per_sec(ring_ns),
        events_per_sec(string_ns),
        string_ns / ring_ns,
        if gate2_pass { "PASS" } else { "FAIL" }
    );
    if !(gate1_pass && gate2_pass) {
        std::process::exit(1);
    }
}
