//! Debug driver: run a C file (or inline source) under a named profile and
//! print the outcome and output.
use cheri_core::{run, Profile};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args.get(1).expect("usage: run_c <file.c> [profile]");
    let profile = match args.get(2).map(String::as_str) {
        None | Some("cerberus") => Profile::cerberus(),
        Some("baseline") => Profile::iso_baseline(),
        Some("clang-morello-O0") => Profile::clang_morello(false),
        Some("clang-morello-O3") => Profile::clang_morello(true),
        Some("clang-riscv-O0") => Profile::clang_riscv(false),
        Some("clang-riscv-O3") => Profile::clang_riscv(true),
        Some("gcc-morello-O0") => Profile::gcc_morello(false),
        Some("gcc-morello-O3") => Profile::gcc_morello(true),
        Some(p) => panic!("unknown profile {p}"),
    };
    let src = std::fs::read_to_string(path).expect("read source");
    let r = run(&src, &profile);
    println!("outcome: {}", r.outcome);
    if !r.stdout.is_empty() {
        println!("── stdout ──\n{}", r.stdout);
    }
    if !r.stderr.is_empty() {
        println!("── stderr ──\n{}", r.stderr);
    }
}
