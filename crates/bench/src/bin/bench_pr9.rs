//! `bench_pr9` — the `cheri-serve` scenario matrix.
//!
//! Measures the PR 9 batched differential-execution service over a
//! `progen` corpus and writes `BENCH_pr9.json` (path = first CLI
//! argument). Scenario ids name their axes, flagd-evaluator style:
//!
//! ```text
//! <cache>/<mode>/p<profiles>/w<workers>
//! ```
//!
//! * `cache` — `cold` (every sample starts from an empty program cache;
//!   parse + typecheck + lower are on the measured path) vs `cached`
//!   (cache pre-warmed once; compiles amortised to a hash lookup);
//! * `mode` — `run`, `lint`, or `trace-diff`;
//! * `p1`/`p7` — one profile (cerberus) vs the 7-profile compared set;
//! * `w1`/`w2`/`w4`/`wmax` — worker-pool width (`max` = every core).
//!
//! Per scenario: total wall time over the batch (median of samples) →
//! jobs/sec, and the per-job `exec_ns` distribution → p50/p99 latency.
//!
//! Gates (CI perf-smoke; exit status non-zero if any fails):
//!
//! 1. **determinism** — the rendered outputs of `cached/run/p7` are
//!    byte-identical at every worker count, and the cold run renders the
//!    same bytes as the cached run (the cache must be invisible);
//! 2. **cached ≥ `CHERI_PR9_CACHED_MIN`× cold** (default 5×) on
//!    `run/p1/w1` jobs/sec — the content-hash cache must amortise the
//!    front end, not shave it. `p1` is the clean measurement of the
//!    cache axis: with 7 profiles per job the cold path already
//!    amortises each compile over 7 executions, so the `p7` ratio
//!    (reported as `cached_speedup_p7`, informational) is structurally
//!    smaller;
//! 3. **scaling** — `run/p7` jobs/sec at `w=min(4, cores)` vs `w1` must
//!    reach `CHERI_PR9_SCALING_MIN` (default 2.0 on ≥ 4 cores, 1.2 on
//!    2–3 cores; *skipped* on a single-core host, where a thread pool
//!    cannot outrun one thread — the committed record notes the core
//!    count it was made on);
//! 4. **smoke floor** — `cached/run/p1/w1` must sustain at least
//!    `CHERI_PR9_MIN_JOBS_PER_SEC` (default 25) jobs/sec.
//!
//! `CHERI_PR9_SEEDS` sizes the corpus (default 64; fast mode 16);
//! `CHERI_QC_BENCH_FAST=1` shrinks samples for CI.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cheri_bench::progen::generate_traced;
use cheri_cap::MorelloCap;
use cheri_core::Profile;
use cheri_serve::{JobSpec, Mode, ProgramCache, Service};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The corpus: deterministic `progen` programs, 1 in 4 seeded with a
/// planted out-of-bounds step so every mode sees both clean and UB jobs.
fn corpus(n: usize) -> Vec<Arc<String>> {
    (0..n as u64)
        .map(|seed| Arc::new(generate_traced(seed, seed % 4 == 0).source()))
        .collect()
}

fn jobs_for(corpus: &[Arc<String>], profiles: &[Profile], mode: Mode) -> Vec<JobSpec> {
    corpus
        .iter()
        .enumerate()
        .map(|(i, src)| JobSpec {
            id: format!("seed-{i}"),
            source: Arc::clone(src),
            profiles: profiles.to_vec(),
            mode,
        })
        .collect()
}

/// Percentile (nearest-rank on a sorted slice).
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

struct Scenario {
    id: String,
    jobs: usize,
    workers: usize,
    samples: usize,
    wall_ns_median: u128,
    jobs_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Run one scenario: `samples` repetitions of the same batch, median
/// wall-clock. `cache = None` is the cold axis (a fresh service — and so
/// a fresh cache — per sample); `Some` shares the pre-warmed cache.
/// Returns the measurements plus the rendered outputs (identical across
/// samples by the determinism invariant; taken from the last).
#[allow(clippy::cast_precision_loss)]
fn run_scenario(
    id: &str,
    jobs: &[JobSpec],
    workers: usize,
    cache: Option<&Arc<ProgramCache>>,
    samples: usize,
) -> (Scenario, Vec<String>) {
    let mut walls: Vec<u128> = Vec::with_capacity(samples);
    let mut renders: Vec<String> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    for _ in 0..samples {
        let mut svc = match cache {
            Some(c) => Service::<MorelloCap>::with_cache(workers, Arc::clone(c)),
            None => Service::<MorelloCap>::new(workers),
        };
        let start = Instant::now();
        let outs = svc.run_batch(jobs.to_vec());
        walls.push(start.elapsed().as_nanos());
        latencies = outs.iter().map(|o| o.exec_ns).collect();
        renders = outs.iter().map(cheri_serve::JobOutput::render).collect();
    }
    walls.sort_unstable();
    latencies.sort_unstable();
    let wall_ns_median = walls[walls.len() / 2];
    let jobs_per_sec = jobs.len() as f64 / (wall_ns_median as f64 / 1e9);
    println!(
        "  {id:<28} {:>8.1} jobs/s   wall {:>8.1} ms   p50 {:>7.0} µs   p99 {:>7.0} µs",
        jobs_per_sec,
        wall_ns_median as f64 / 1e6,
        percentile(&latencies, 50.0) as f64 / 1e3,
        percentile(&latencies, 99.0) as f64 / 1e3,
    );
    (
        Scenario {
            id: id.to_string(),
            jobs: jobs.len(),
            workers,
            samples,
            wall_ns_median,
            jobs_per_sec,
            p50_ns: percentile(&latencies, 50.0),
            p99_ns: percentile(&latencies, 99.0),
        },
        renders,
    )
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr9.json".into());
    let fast = std::env::var("CHERI_QC_BENCH_FAST").is_ok();
    let n_seeds = env_usize("CHERI_PR9_SEEDS", if fast { 16 } else { 64 });
    let samples = env_usize("CHERI_PR9_SAMPLES", if fast { 2 } else { 5 });
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let corpus = corpus(n_seeds);
    let p1 = vec![Profile::cerberus()];
    let p7 = Profile::all_compared();
    println!(
        "bench_pr9: {n_seeds} progen jobs, {samples} samples/scenario, {cores} core(s)"
    );

    // Pre-warm the shared cache for every `cached/*` scenario (one pass
    // over both profile sets compiles every key the matrix touches).
    let warm = Arc::new(ProgramCache::new());
    {
        let mut svc = Service::<MorelloCap>::with_cache(1, Arc::clone(&warm));
        svc.run_batch(jobs_for(&corpus, &p7, Mode::Run));
        svc.run_batch(jobs_for(&corpus, &p1, Mode::Run));
    }
    println!(
        "  (cache warmed: {} programs, {} workers available)",
        warm.len(),
        cores
    );

    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut push = |s: Scenario| scenarios.push(s);

    // Cold vs cached, 1 vs 7 profiles (the cache axis).
    let (s, cold_p1_renders) =
        run_scenario("cold/run/p1/w1", &jobs_for(&corpus, &p1, Mode::Run), 1, None, samples);
    let cold_p1 = s.jobs_per_sec;
    push(s);
    let (s, cached_p1_renders) = run_scenario(
        "cached/run/p1/w1",
        &jobs_for(&corpus, &p1, Mode::Run),
        1,
        Some(&warm),
        samples,
    );
    let cached_p1 = s.jobs_per_sec;
    push(s);
    let (s, cold_p7_renders) =
        run_scenario("cold/run/p7/w1", &jobs_for(&corpus, &p7, Mode::Run), 1, None, samples);
    let cold_p7 = s.jobs_per_sec;
    push(s);
    let (s, cached_p7_w1_renders) = run_scenario(
        "cached/run/p7/w1",
        &jobs_for(&corpus, &p7, Mode::Run),
        1,
        Some(&warm),
        samples,
    );
    let cached_p7 = s.jobs_per_sec;
    push(s);

    // Mode axis (cached, 7 profiles).
    let (s, _) = run_scenario(
        "cached/lint/p7/w1",
        &jobs_for(&corpus, &p7, Mode::Lint),
        1,
        Some(&warm),
        samples,
    );
    push(s);
    let (s, _) = run_scenario(
        "cached/trace-diff/p7/w1",
        &jobs_for(&corpus, &p7, Mode::TraceDiff),
        1,
        Some(&warm),
        samples,
    );
    push(s);

    // Worker axis (cached, run, 7 profiles) + determinism evidence.
    let mut scaling: Vec<(usize, f64)> = vec![(1, cached_p7)];
    let mut determinism_pass = cold_p7_renders == cached_p7_w1_renders;
    if !determinism_pass {
        eprintln!("DETERMINISM: cold/run/p7/w1 differs from cached/run/p7/w1");
    }
    if cold_p1_renders != cached_p1_renders {
        determinism_pass = false;
        eprintln!("DETERMINISM: cold/run/p1/w1 differs from cached/run/p1/w1");
    }
    let mut widths = vec![2usize, 4];
    if !widths.contains(&cores) {
        widths.push(cores);
    }
    for w in widths {
        let id = if w == cores && w != 2 && w != 4 {
            format!("cached/run/p7/wmax{w}")
        } else {
            format!("cached/run/p7/w{w}")
        };
        let (s, renders) =
            run_scenario(&id, &jobs_for(&corpus, &p7, Mode::Run), w, Some(&warm), samples);
        scaling.push((w, s.jobs_per_sec));
        push(s);
        if renders != cached_p7_w1_renders {
            determinism_pass = false;
            eprintln!("DETERMINISM: {id} differs from cached/run/p7/w1");
        }
    }

    // Gate 2: the cache must amortise the front end. Gated on p1 (one
    // compile per cold job); the p7 ratio is informational — cold p7
    // already spreads each compile over 7 executions.
    let cached_min = env_f64("CHERI_PR9_CACHED_MIN", 5.0);
    let cached_speedup = cached_p1 / cold_p1;
    let cached_speedup_p7 = cached_p7 / cold_p7;
    let cached_pass = cached_speedup >= cached_min;

    // Gate 3: scaling, honest about the host. A worker pool cannot beat
    // one thread on one core; the gate needs ≥ 2 cores to mean anything.
    let scale_w = 4.min(cores);
    let scale_jps = scaling
        .iter()
        .find(|&&(w, _)| w == scale_w)
        .map_or(cached_p7, |&(_, j)| j);
    let scaling_ratio = scale_jps / cached_p7;
    let scaling_skipped = cores < 2;
    let scaling_min = env_f64(
        "CHERI_PR9_SCALING_MIN",
        if cores >= 4 { 2.0 } else { 1.2 },
    );
    let scaling_pass = scaling_skipped || scaling_ratio >= scaling_min;

    // Gate 4: absolute throughput smoke floor.
    let floor = env_f64("CHERI_PR9_MIN_JOBS_PER_SEC", 25.0);
    let floor_pass = cached_p1 >= floor;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr9\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"corpus_seeds\": {n_seeds},");
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"jobs\": {}, \"workers\": {}, \"samples\": {}, \"wall_ms_median\": {:.2}, \"jobs_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}",
            s.id,
            s.jobs,
            s.workers,
            s.samples,
            s.wall_ns_median as f64 / 1e6,
            s.jobs_per_sec,
            s.p50_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
            if i + 1 == scenarios.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"gates\": {\n");
    let _ = writeln!(
        json,
        "    \"determinism_across_workers\": {{\"pass\": {determinism_pass}}},"
    );
    let _ = writeln!(
        json,
        "    \"cached_speedup\": {{\"speedup\": {cached_speedup:.2}, \"speedup_p7\": {cached_speedup_p7:.2}, \"min\": {cached_min}, \"pass\": {cached_pass}}},"
    );
    let _ = writeln!(
        json,
        "    \"scaling\": {{\"workers\": {scale_w}, \"ratio\": {scaling_ratio:.2}, \"min\": {scaling_min}, \"skipped\": {scaling_skipped}, \"pass\": {scaling_pass}}},"
    );
    let _ = writeln!(
        json,
        "    \"throughput_floor\": {{\"jobs_per_sec\": {cached_p1:.1}, \"min\": {floor}, \"pass\": {floor_pass}}}"
    );
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_pr9.json");

    println!("\nwrote {out_path}");
    println!(
        "gate determinism: outputs identical across cache state and worker counts — {}",
        if determinism_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "gate cached: {cached_speedup:.2}x vs cold on p1 (p7: {cached_speedup_p7:.2}x; min {cached_min}) — {}",
        if cached_pass { "PASS" } else { "FAIL" }
    );
    if scaling_skipped {
        println!("gate scaling: SKIPPED ({cores} core host; pool cannot outrun one thread)");
    } else {
        println!(
            "gate scaling: {scaling_ratio:.2}x at w{scale_w} vs w1 (min {scaling_min}) — {}",
            if scaling_pass { "PASS" } else { "FAIL" }
        );
    }
    println!(
        "gate floor: {cached_p1:.1} jobs/s on cached/run/p1/w1 (min {floor}) — {}",
        if floor_pass { "PASS" } else { "FAIL" }
    );
    if !(determinism_pass && cached_pass && scaling_pass && floor_pass) {
        std::process::exit(1);
    }
}
