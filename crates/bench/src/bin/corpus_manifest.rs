//! `corpus_manifest` — materialise the deterministic oracle-fuzz corpus
//! as batch manifests for `cheri-c --batch`.
//!
//! The extended-corpus CI gates (engine differential, lint soundness)
//! historically ran as single-threaded `cargo test` sweeps: 1024 seeds ×
//! two program families × all compared profiles, one program at a time.
//! The `cheri-serve` batch engine runs the same checks as job modes
//! (`engine-diff`, `lint-check`) behind a program cache and a worker
//! pool — this binary writes the corpus to disk so CI can shard those
//! sweeps across every runner core:
//!
//! ```text
//! corpus_manifest <out_dir> [seeds]      # default 1024
//! cheri-c --batch <out_dir>/engine-diff.txt --jobs max
//! cheri-c --batch <out_dir>/lint-check.txt --jobs max
//! ```
//!
//! Outputs, all deterministic functions of the seed count:
//!
//! * `seed<N>-<0|1>.c` — the program of seed N (clean / buggy family);
//! * `engine-diff.txt` — one `engine-diff compared seed<N>-<B>.c` line
//!   per program: both engines, any divergence is an erroring outcome;
//! * `lint-check.txt` — one `lint-check compared seed<N>-<B>.c` line per
//!   program: dynamic outcome vs static verdict, any soundness violation
//!   is an erroring outcome.
//!
//! `cheri-c --batch` exits non-zero if any job errs, so the manifests
//! are CI gates on their own; the batch output is byte-deterministic
//! across worker counts, which CI pins once per sweep by comparing the
//! `--jobs max` bytes against `--jobs 1`.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::Path;

use cheri_bench::progen::generate_traced;

fn main() {
    let mut args = std::env::args().skip(1);
    let out_dir = args.next().unwrap_or_else(|| "corpus".into());
    let seeds: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let dir = Path::new(&out_dir);
    std::fs::create_dir_all(dir).expect("create corpus dir");

    let mut engine_diff = String::from(
        "# engine differential: tree vs bytecode over the oracle corpus\n",
    );
    let mut lint_check = String::from(
        "# lint soundness: static verdict vs dynamic outcome over the oracle corpus\n",
    );
    let mut programs = 0u64;
    for seed in 0..seeds {
        for buggy in [false, true] {
            let name = format!("seed{seed}-{}.c", u8::from(buggy));
            let src = generate_traced(seed, buggy).source();
            std::fs::write(dir.join(&name), src).expect("write corpus program");
            let _ = writeln!(engine_diff, "engine-diff compared {name}");
            let _ = writeln!(lint_check, "lint-check compared {name}");
            programs += 1;
        }
    }
    std::fs::write(dir.join("engine-diff.txt"), engine_diff).expect("write manifest");
    std::fs::write(dir.join("lint-check.txt"), lint_check).expect("write manifest");
    println!(
        "wrote {programs} programs ({seeds} seeds x 2 families) and 2 manifests to {out_dir}/"
    );
}
