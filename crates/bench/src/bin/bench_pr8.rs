//! `bench_pr8` — trace-preserving capability & IR optimisations.
//!
//! Measures the PR 8 performance work — memoised CHERI-Concentrate bounds
//! decoding inside `CcCap`, the 24 → 8 byte packed `AbsByte`, and the
//! bytecode peephole pass — and writes the comparison to `BENCH_pr8.json`
//! (path = first CLI argument; the PR 7 baseline is read from the second,
//! default `./BENCH_pr7.json`).
//!
//! Workloads (ids deliberately match `bench_pr7` where the workload is
//! identical, so the two JSON files diff cleanly):
//!
//! * `scalar_store_load/cheri_reference` — the `memory_model` scalar
//!   workload (`MEM_OPS` 4-byte stores then loads) on the flat store;
//!   also reported as ns per load/store op, the number EXPERIMENTS.md
//!   tracks across PRs (91 ns → 54 ns → this PR);
//! * `interp_end_to_end/{profile}/{engine}` — whole pipeline on the
//!   malloc-churn + array-sum program, three profiles × both engines;
//! * `dispatch_loop/cerberus/{tree,bytecode-raw,bytecode-peephole}` — the
//!   tight arithmetic loop on a pre-compiled program; the VM runs both
//!   the raw lowering and the peephole-optimised form, isolating what
//!   the pass buys at equal event traces.
//!
//! Gates (CI perf-smoke; exit status non-zero if any fails):
//!
//! 1. scalar ns/op must be **below the 54 ns/op recorded for PR 7** —
//!    the bounds memo and packed `AbsByte` attack exactly this path.
//!    Gated on the per-sample *minimum* (the standard noise-robust
//!    estimator for an absolute-cost bar on shared runners; the median
//!    is reported alongside it). `CHERI_PR8_SCALAR_BUDGET_NS` overrides
//!    the bar — an absolute ns figure is machine-dependent, so CI
//!    runners get a documented wider budget while the committed
//!    `BENCH_pr8.json` records the dev-box figure against the real bar;
//! 2. the peephole-optimised VM must not be slower than the raw VM on
//!    `dispatch_loop` (same-process comparison; min-vs-min within a
//!    noise margin, `CHERI_PR8_PEEPHOLE_MARGIN`, default 5%);
//! 3. when the baseline path (second CLI argument) is a readable
//!    `BENCH_pr7.json`: the bytecode engine's minimum on every
//!    end-to-end workload (and the dispatch loop) must beat the PR 7
//!    recorded minimum — a measurable improvement, not noise. This gate
//!    only means something against the *committed* PR 7 record made on
//!    the same machine as this run: CI regenerates `BENCH_pr7.json`
//!    with the already-optimised code (the capability/`AbsByte` wins
//!    sit in the path both engines share), which would make the ratio
//!    ≈ 1.0 by construction, so CI passes `none` to skip it;
//! 4. when the *record* path (third CLI argument) is a readable
//!    `BENCH_pr8.json`: the same minima must stay within
//!    `CHERI_PR8_RECORD_SLACK` × the committed record (default 3.0 —
//!    the record is made on a dev box, CI runs on shared runners, and
//!    the gate is an order-of-magnitude regression tripwire, not a
//!    same-machine comparison). This is the gate CI actually runs: it
//!    copies the committed `BENCH_pr8.json` aside before regenerating
//!    it, so an e2e perf regression fails CI rather than only a dev-box
//!    rerun (gate 3 was local-only by construction).
//!
//! `CHERI_QC_BENCH_FAST=1` shrinks samples for CI.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::Arc;

use cheri_bench::MEM_OPS;
use cheri_core::ir::{lower, lower_opt, IrProgram};
use cheri_core::{compile_for, Engine, Interp, MorelloCap, Outcome, Profile};
use cheri_mem::{CheriMemory, IntVal, MemConfig};
use cheri_qc::bench::{black_box, Bench, Stats};

/// PR 7's recorded scalar cost on the reference memory model
/// (EXPERIMENTS.md "91 → 54 ns per scalar load/store op"): the bar this
/// PR's capability/`AbsByte` work must clear.
const PR7_SCALAR_NS_PER_OP: f64 = 54.0;

/// Same end-to-end workload as `bench_pr7` (ids must stay comparable).
const CHURN_PROGRAM: &str = r#"
int main(void) {
  long acc = 0;
  for (int i = 0; i < 64; i++) {
    int *p = malloc(128 * sizeof(int));
    for (int j = 0; j < 128; j++) p[j] = j ^ i;
    for (int j = 0; j < 128; j++) acc += p[j];
    free(p);
  }
  return acc > 0 ? 0 : 1;
}"#;

/// Same dispatch workload as `bench_pr7`.
const DISPATCH_PROGRAM: &str = r#"
int main(void) {
  long s = 0;
  for (int i = 0; i < 20000; i++) {
    s += (i * 3) ^ (s & 7);
    s -= i >> 2;
  }
  return s != 0 ? 0 : 1;
}"#;

type Mem = CheriMemory<MorelloCap>;

/// The `memory_model` scalar workload: MEM_OPS 4-byte stores, then loads
/// (identical to `bench_pr3`'s, flat store).
fn store_load_workload(cfg: MemConfig) -> i128 {
    let mut mem = Mem::new(cfg);
    let arr = mem
        .allocate_object("arr", 4 * MEM_OPS as u64, 4, false, None)
        .expect("allocate");
    let mut acc = 0i128;
    for i in 0..MEM_OPS {
        let p = mem.array_shift(&arr, 4, i as i64).expect("shift");
        mem.store_int(&p, 4, &IntVal::Num(i as i128)).expect("store");
    }
    for i in 0..MEM_OPS {
        let p = mem.array_shift(&arr, 4, i as i64).expect("shift");
        acc += mem.load_int(&p, 4, true, false).expect("load").value();
    }
    mem.kill(&arr, false).expect("kill");
    acc
}

fn end_to_end(profile: &Profile, engine: Engine) {
    let r = cheri_core::run_with_engine::<MorelloCap>(CHURN_PROGRAM, profile, engine);
    assert!(
        matches!(r.outcome, Outcome::Exit(0)),
        "end-to-end workload must be well-defined: {:?}",
        r.outcome
    );
}

/// Pull `"key": <number>` out of the flat JSON the bench binaries write,
/// scoped to the object fragment that follows `anchor`.
fn json_number_after(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let at = text.find(anchor)?;
    let rest = &text[at..];
    let k = rest.find(&format!("\"{key}\":"))?;
    let tail = rest[k + key.len() + 3..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr8.json".into());
    let baseline_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_pr7.json".into());
    let fast = std::env::var("CHERI_QC_BENCH_FAST").is_ok();
    let mut c = Bench::new();

    // Scalar microbenchmark (reference model, flat store — the config the
    // 54 ns/op PR 7 figure was recorded under).
    let reference = MemConfig::cheri_reference();
    c.bench_function("scalar_store_load/cheri_reference/flat", |b| {
        b.iter(|| black_box(store_load_workload(reference)));
    });

    let profiles = [
        Profile::cerberus(),
        Profile::clang_morello(false),
        Profile::gcc_morello(true),
    ];
    for (engine_name, engine) in [("tree", Engine::Tree), ("bytecode", Engine::Bytecode)] {
        for profile in &profiles {
            c.bench_function(
                format!("interp_end_to_end/{}/{engine_name}", profile.name),
                |b| b.iter(|| end_to_end(profile, engine)),
            );
        }
    }

    // Dispatch microbenchmark: compile once; the VM runs both IR stages.
    let profile = Profile::cerberus();
    let dispatch_prog =
        compile_for::<MorelloCap>(DISPATCH_PROGRAM, &profile).expect("dispatch program compiles");
    let raw_ir: Arc<IrProgram> = Arc::new(lower(&dispatch_prog));
    let opt_ir: Arc<IrProgram> = Arc::new(lower_opt(&dispatch_prog));
    let run_vm = |ir: &Arc<IrProgram>| {
        let r = Interp::<MorelloCap>::new(&dispatch_prog, &profile)
            .with_ir(Arc::clone(ir))
            .run();
        assert!(matches!(r.outcome, Outcome::Exit(0)));
        black_box(r.mem_stats)
    };
    c.bench_function("dispatch_loop/cerberus/tree", |b| {
        b.iter(|| {
            let r = Interp::<MorelloCap>::new(&dispatch_prog, &profile).run();
            assert!(matches!(r.outcome, Outcome::Exit(0)));
            black_box(r.mem_stats)
        });
    });
    c.bench_function("dispatch_loop/cerberus/bytecode-raw", |b| {
        b.iter(|| run_vm(&raw_ir));
    });
    c.bench_function("dispatch_loop/cerberus/bytecode-peephole", |b| {
        b.iter(|| run_vm(&opt_ir));
    });

    let results: Vec<Stats> = c.results().to_vec();
    let stat = |id: &str, f: fn(&Stats) -> f64| {
        results
            .iter()
            .find(|s| s.id == id)
            .map(f)
            .expect("benchmark ran")
    };
    let median = |id: &str| stat(id, |s| s.median);

    // Gate 1: scalar ns/op below the PR 7 record. The minimum is the
    // noise-robust estimator for an absolute bar (OS jitter only ever
    // adds time); the median is reported next to it.
    let scalar_median_ns_per_op =
        median("scalar_store_load/cheri_reference/flat") / (2 * MEM_OPS) as f64;
    let scalar_ns_per_op =
        stat("scalar_store_load/cheri_reference/flat", |s| s.min) / (2 * MEM_OPS) as f64;
    let scalar_budget: f64 = std::env::var("CHERI_PR8_SCALAR_BUDGET_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PR7_SCALAR_NS_PER_OP);
    let gate1_pass = scalar_ns_per_op < scalar_budget;

    // Gate 2: the peephole must pay for itself on the dispatch loop.
    // Min-vs-min with a small margin: the honest effect (a handful of
    // instructions deleted from a ~30-instruction loop body) is a few
    // percent, below the median jitter of a shared runner; the gate is
    // there to catch the pass making the VM *badly* slower.
    let margin: f64 = std::env::var("CHERI_PR8_PEEPHOLE_MARGIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let raw_ns = stat("dispatch_loop/cerberus/bytecode-raw", |s| s.min);
    let opt_ns = stat("dispatch_loop/cerberus/bytecode-peephole", |s| s.min);
    let gate2_pass = opt_ns <= raw_ns * (1.0 + margin);

    // Gate 3: end-to-end minima beat the PR 7 recorded minima.
    let baseline = std::fs::read_to_string(&baseline_path).ok();
    let e2e_ids: Vec<String> = profiles
        .iter()
        .map(|p| format!("interp_end_to_end/{}/bytecode", p.name))
        .collect();
    let mut vs_pr7: Vec<(String, f64, Option<f64>)> = Vec::new();
    for id in &e2e_ids {
        let now_min = stat(id, |s| s.min);
        let base_min = baseline
            .as_deref()
            .and_then(|t| json_number_after(t, &format!("\"{id}\""), "min_ns"));
        vs_pr7.push((id.clone(), now_min, base_min));
    }
    // The dispatch loop id changed (pr7 had no stage split): compare the
    // peephole VM against pr7's plain bytecode dispatch number.
    let dispatch_base = baseline
        .as_deref()
        .and_then(|t| json_number_after(t, "\"dispatch_loop/cerberus/bytecode\"", "min_ns"));
    vs_pr7.push((
        "dispatch_loop/cerberus/bytecode-peephole".into(),
        stat("dispatch_loop/cerberus/bytecode-peephole", |s| s.min),
        dispatch_base,
    ));
    let gate3_skipped = baseline.is_none();
    let gate3_pass =
        gate3_skipped || vs_pr7.iter().all(|(_, now, base)| base.is_none_or(|b| *now < b));

    // Gate 4: regression tripwire against the *committed* PR 8 record
    // (third CLI argument). Unlike gate 3 this one runs in CI: the
    // workflow copies the committed BENCH_pr8.json aside before this
    // binary overwrites it, and a wide slack absorbs the dev-box →
    // shared-runner machine gap while still catching order-of-magnitude
    // regressions on the measured end-to-end paths.
    let record_path = std::env::args().nth(3).unwrap_or_else(|| "none".into());
    let record = std::fs::read_to_string(&record_path).ok();
    let record_slack: f64 = std::env::var("CHERI_PR8_RECORD_SLACK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let record_ids: Vec<String> = e2e_ids
        .iter()
        .cloned()
        .chain(["dispatch_loop/cerberus/bytecode-peephole".to_string()])
        .collect();
    let mut vs_record: Vec<(String, f64, Option<f64>)> = Vec::new();
    for id in &record_ids {
        let now_min = stat(id, |s| s.min);
        let rec_min = record
            .as_deref()
            .and_then(|t| json_number_after(t, &format!("\"{id}\""), "min_ns"));
        vs_record.push((id.clone(), now_min, rec_min));
    }
    let gate4_skipped = record.is_none();
    let gate4_pass = gate4_skipped
        || vs_record
            .iter()
            .all(|(_, now, rec)| rec.is_none_or(|r| *now <= r * record_slack));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr8\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters_per_sample\": {}}}{}",
            s.id,
            s.median,
            s.mean,
            s.min,
            s.iters_per_sample,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"vs_pr7_min_ratio\": {{{}}},",
        vs_pr7
            .iter()
            .map(|(id, now, base)| format!(
                "\"{id}\": {}",
                base.map_or_else(|| "null".into(), |b| format!("{:.3}", now / b))
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"gates\": {\n");
    let _ = writeln!(
        json,
        "    \"scalar_below_pr7\": {{\"min_ns_per_op\": {scalar_ns_per_op:.1}, \"median_ns_per_op\": {scalar_median_ns_per_op:.1}, \"pr7_ns_per_op\": {PR7_SCALAR_NS_PER_OP}, \"budget_ns_per_op\": {scalar_budget}, \"pass\": {gate1_pass}}},",
    );
    let _ = writeln!(
        json,
        "    \"peephole_not_slower\": {{\"raw_min_ns\": {raw_ns:.1}, \"peephole_min_ns\": {opt_ns:.1}, \"speedup\": {:.3}, \"margin\": {margin}, \"pass\": {gate2_pass}}},",
        raw_ns / opt_ns
    );
    let _ = writeln!(
        json,
        "    \"e2e_beats_pr7_min\": {{\"skipped\": {gate3_skipped}, \"pass\": {gate3_pass}}},"
    );
    let _ = writeln!(
        json,
        "    \"e2e_within_record\": {{\"skipped\": {gate4_skipped}, \"slack\": {record_slack}, \"pass\": {gate4_pass}}}"
    );
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr8.json");
    println!("\nwrote {out_path}");
    println!(
        "gate scalar: min {scalar_ns_per_op:.1} ns/op (median {scalar_median_ns_per_op:.1}) vs budget {scalar_budget} (PR7 record {PR7_SCALAR_NS_PER_OP}) — {}",
        if gate1_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "gate peephole: raw min {raw_ns:.0} ns, peephole min {opt_ns:.0} ns ({:.3}x, margin {margin}) — {}",
        raw_ns / opt_ns,
        if gate2_pass { "PASS" } else { "FAIL" }
    );
    if gate3_skipped {
        println!("gate e2e vs PR7: SKIPPED (no {baseline_path})");
    } else {
        for (id, now, base) in &vs_pr7 {
            match base {
                Some(b) => println!(
                    "  {id}: {:.1} ms vs PR7 {:.1} ms ({:.3}x)",
                    now / 1e6,
                    b / 1e6,
                    now / b
                ),
                None => println!("  {id}: no PR7 baseline entry"),
            }
        }
        println!("gate e2e vs PR7: {}", if gate3_pass { "PASS" } else { "FAIL" });
    }
    if gate4_skipped {
        println!("gate e2e vs committed record: SKIPPED (no {record_path})");
    } else {
        for (id, now, rec) in &vs_record {
            match rec {
                Some(r) => println!(
                    "  {id}: {:.1} ms vs record {:.1} ms (budget {:.1} ms)",
                    now / 1e6,
                    r / 1e6,
                    r * record_slack / 1e6
                ),
                None => println!("  {id}: no record entry"),
            }
        }
        println!(
            "gate e2e vs committed record (slack {record_slack}x): {}",
            if gate4_pass { "PASS" } else { "FAIL" }
        );
    }
    if !(gate1_pass && gate2_pass && gate3_pass && gate4_pass) {
        std::process::exit(1);
    }
}
