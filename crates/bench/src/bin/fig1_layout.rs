//! Regenerates **Figure 1** of the paper: the bit-field layout of a Morello
//! capability, printed from the implemented encoder (not from a static
//! table), plus a round-trip demonstration and the CHERIoT-style layout for
//! comparison (§3.10: abstracting capabilities across architectures).
//!
//! Run with `cargo run -p cheri-bench --bin fig1_layout`.

use cheri_cap::{Capability, CheriotCap, MorelloCap, Perms};

fn print_layout(name: &str, layout: &[(&'static str, u32, u32)], bits: u32) {
    println!("{name} capability layout ({bits}+1 bits):");
    let mut rows: Vec<_> = layout.to_vec();
    rows.sort_by_key(|(_, off, _)| std::cmp::Reverse(*off));
    for (field, off, width) in rows {
        let hi = off + width - 1;
        println!("  {field:<10} [{hi:>3}:{off:>3}]  ({width} bits)");
    }
    println!();
}

fn main() {
    println!("Figure 1: bit-field layout of Morello capability");
    println!("(paper: perms[17:2] eg otype[14:0] bounds[86:56] / address[63:0])\n");

    print_layout("morello", &MorelloCap::field_layout(), 128);
    print_layout("cheriot", &CheriotCap::field_layout(), 64);

    // Demonstrate the layout on a concrete capability: encode, show the
    // bytes, decode, verify the round trip.
    let cap = MorelloCap::root()
        .with_perms_and(Perms::data())
        .with_bounds(0x1_2340, 0x100)
        .with_address(0x1_2344);
    let bytes = cap.encode();
    println!("sample capability: {cap:?}");
    print!("encoded (little-endian): ");
    for b in bytes.iter().rev() {
        print!("{b:02x}");
    }
    println!("  tag={}", u8::from(cap.tag()));
    let back = MorelloCap::decode(&bytes, cap.tag()).expect("16 bytes");
    assert_eq!(back.bounds(), cap.bounds());
    assert_eq!(back.perms(), cap.perms());
    println!("decode(encode(c)) preserves address/bounds/perms/otype: ok");

    // The compression trade-off the paper describes (§2.1): small regions
    // exact, large regions rounded.
    println!("\nbounds-compression precision (base=0x10000):");
    for len in [16u64, 4095, 4096, 65536, (1 << 20) + 3, (1 << 32) + 9] {
        let c = MorelloCap::root().with_bounds(0x10000, len);
        let got = c.bounds().length();
        let exact = if got == len { "exact" } else { "rounded" };
        println!("  requested {len:>12}  got {got:>12}  {exact}");
    }
}
