//! `bench_pr7` — bytecode VM vs tree interpreter.
//!
//! Measures the PR 7 execution-engine rewrite: the typed AST lowered to a
//! flat register bytecode (`cheri_core::ir`) executed by a match-on-opcode
//! loop, against the original recursive tree walker kept behind
//! `Engine::Tree`. Both engines run in the *same* process against the same
//! flat-buffer store; the comparison is written to `BENCH_pr7.json`
//! (path = first CLI argument, default `./BENCH_pr7.json`).
//!
//! Workloads:
//!
//! * `interp_end_to_end` — the whole pipeline (parse → typecheck →
//!   execute) on a malloc-churn + array-sum program, under three
//!   profiles (reference, CHERI hardware O0, optimising GCC emulation);
//! * `dispatch_loop` — a tight arithmetic loop on a pre-compiled (and,
//!   for the VM, pre-lowered) program, isolating pure dispatch cost;
//! * `lowering` — the AST→bytecode lowering pass alone, reported both as
//!   ns per run and ns per lowered instruction.
//!
//! Exit status is non-zero if the bytecode engine is *slower* than the
//! tree engine on `interp_end_to_end/cerberus` — the CI perf-smoke gate.
//! `CHERI_QC_BENCH_FAST=1` shrinks samples for CI.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::Arc;

use cheri_core::ir::{lower, IrProgram};
use cheri_core::{compile_for, Engine, Interp, MorelloCap, Outcome, Profile};

use cheri_qc::bench::{black_box, Bench, Stats};

/// Malloc churn + array sums: the BENCH_pr3 end-to-end workload family,
/// scaled up so interpretation dominates the (fixed) front-end cost.
const CHURN_PROGRAM: &str = r#"
int main(void) {
  long acc = 0;
  for (int i = 0; i < 64; i++) {
    int *p = malloc(128 * sizeof(int));
    for (int j = 0; j < 128; j++) p[j] = j ^ i;
    for (int j = 0; j < 128; j++) acc += p[j];
    free(p);
  }
  return acc > 0 ? 0 : 1;
}"#;

/// A tight arithmetic loop: no allocation after the locals, so the run
/// time is dominated by statement/expression dispatch.
const DISPATCH_PROGRAM: &str = r#"
int main(void) {
  long s = 0;
  for (int i = 0; i < 20000; i++) {
    s += (i * 3) ^ (s & 7);
    s -= i >> 2;
  }
  return s != 0 ? 0 : 1;
}"#;

fn engine_of(name: &str) -> Engine {
    match name {
        "tree" => Engine::Tree,
        _ => Engine::Bytecode,
    }
}

/// Whole-pipeline run; asserts the workload stays well-defined so the two
/// engines are compared on identical work.
fn end_to_end(profile: &Profile, engine: Engine) {
    let r = cheri_core::run_with_engine::<MorelloCap>(CHURN_PROGRAM, profile, engine);
    assert!(
        matches!(r.outcome, Outcome::Exit(0)),
        "end-to-end workload must be well-defined: {:?}",
        r.outcome
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr7.json".into());
    let fast = std::env::var("CHERI_QC_BENCH_FAST").is_ok();
    let mut c = Bench::new();

    let profiles = [
        Profile::cerberus(),
        Profile::clang_morello(false),
        Profile::gcc_morello(true),
    ];

    for engine_name in ["tree", "bytecode"] {
        let engine = engine_of(engine_name);
        for profile in &profiles {
            c.bench_function(
                format!("interp_end_to_end/{}/{engine_name}", profile.name),
                |b| b.iter(|| end_to_end(profile, engine)),
            );
        }
    }

    // Dispatch microbenchmark: compile (and lower) once, execute per
    // iteration, so the measurement isolates the engines' dispatch.
    let profile = Profile::cerberus();
    let dispatch_prog =
        compile_for::<MorelloCap>(DISPATCH_PROGRAM, &profile).expect("dispatch program compiles");
    let dispatch_ir: Arc<IrProgram> = Arc::new(lower(&dispatch_prog));
    for engine_name in ["tree", "bytecode"] {
        let engine = engine_of(engine_name);
        c.bench_function(format!("dispatch_loop/cerberus/{engine_name}"), |b| {
            b.iter(|| {
                let it = Interp::<MorelloCap>::new(&dispatch_prog, &profile);
                let it = if engine == Engine::Bytecode {
                    it.with_ir(Arc::clone(&dispatch_ir))
                } else {
                    it.with_engine(engine)
                };
                let r = it.run();
                assert!(matches!(r.outcome, Outcome::Exit(0)));
                black_box(r.mem_stats)
            });
        });
    }

    // Lowering cost: the AST→bytecode pass alone.
    let churn_prog =
        compile_for::<MorelloCap>(CHURN_PROGRAM, &profile).expect("churn program compiles");
    let lowered_insts = lower(&churn_prog).code_len();
    c.bench_function("lowering/churn_program", |b| {
        b.iter(|| black_box(lower(&churn_prog).code_len()));
    });

    let results: Vec<Stats> = c.results().to_vec();
    let median = |id: &str| {
        results
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median)
            .expect("benchmark ran")
    };

    let bases: Vec<String> = profiles
        .iter()
        .map(|p| format!("interp_end_to_end/{}", p.name))
        .chain(std::iter::once("dispatch_loop/cerberus".to_string()))
        .collect();

    let lowering_ns = median("lowering/churn_program");
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr7\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(
        json,
        "  \"lowering\": {{\"median_ns\": {lowering_ns:.1}, \"insts\": {lowered_insts}, \"ns_per_inst\": {:.2}}},",
        lowering_ns / lowered_insts as f64
    );
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters_per_sample\": {}}}{}",
            s.id,
            s.median,
            s.mean,
            s.min,
            s.iters_per_sample,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_bytecode_over_tree\": {\n");
    for (i, base) in bases.iter().enumerate() {
        let speedup = median(&format!("{base}/tree")) / median(&format!("{base}/bytecode"));
        let _ = writeln!(
            json,
            "    \"{base}\": {speedup:.2}{}",
            if i + 1 == bases.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n");

    let gate_base = "interp_end_to_end/cerberus";
    let tree_ns = median(&format!("{gate_base}/tree"));
    let byte_ns = median(&format!("{gate_base}/bytecode"));
    let pass = byte_ns <= tree_ns;
    let _ = writeln!(
        json,
        "  \"gate\": {{\"bench\": \"{gate_base}\", \"tree_median_ns\": {tree_ns:.1}, \"bytecode_median_ns\": {byte_ns:.1}, \"speedup\": {:.2}, \"pass\": {pass}}}",
        tree_ns / byte_ns
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr7.json");
    println!("\nwrote {out_path}");
    println!(
        "gate {gate_base}: tree {tree_ns:.0} ns/iter, bytecode {byte_ns:.0} ns/iter, speedup {:.2}x — {}",
        tree_ns / byte_ns,
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
