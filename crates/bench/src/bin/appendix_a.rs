//! Regenerates **Appendix A** of the paper: the sample test-suite output
//! comparing how each CHERI C implementation handles bitwise masking of an
//! `intptr_t` capability (`cap & UINT_MAX`, `cap & INT_MAX`).
//!
//! Expected shape (as in the paper):
//! * `cerberus`: `cap&uint` unchanged, `cap&int` becomes `(@empty, … [?-?]
//!   (notag))` — non-representability recorded in ghost state;
//! * `clang-*`: both masks move the address out of the representable range
//!   and the capability prints as `(invalid)`;
//! * `gcc-morello`: the bare-metal allocator keeps the stack below 2³¹, so
//!   both masks are the identity and the capability stays valid.
//!
//! Run with `cargo run -p cheri-bench --bin appendix_a`.

use cheri_core::{run, Profile};

/// The Appendix A test program, with `print_cap` standing in for the
/// paper's `capprint.h` helpers (`fprintf(stderr, "%" PTR_FMT, sptr(...))`).
const APPENDIX_A: &str = r#"
#include <stdint.h>
#include <stdio.h>
#include <limits.h>
int main(void) {
  int x[2]={42,43};
  intptr_t ip = (intptr_t)&x;
  print_cap((void*)ip);
  intptr_t ip2 = ip & UINT_MAX;
  print_cap((void*)ip2);
  intptr_t ip3 = ip & INT_MAX;
  print_cap((void*)ip3);
}
"#;

fn main() {
    println!("Appendix A: bitwise operations of signed/unsigned int with intptr_t");
    println!("(program: ip = (intptr_t)&x; ip & UINT_MAX; ip & INT_MAX)\n");
    let labels = ["cap     ", "cap&uint", "cap&int "];
    let mut profiles = vec![Profile::cerberus()];
    profiles.extend(Profile::all_compared().into_iter().skip(1));
    for p in profiles {
        let name = if p.name == "cerberus" {
            "cerberus-cheri-rust".to_string()
        } else {
            p.name.clone()
        };
        println!("{name}:");
        let r = run(APPENDIX_A, &p);
        let lines: Vec<&str> = r.stdout.lines().collect();
        if lines.len() == 3 {
            for (label, line) in labels.iter().zip(lines.iter()) {
                println!("  {label} {line}");
            }
        } else {
            println!("  <unexpected outcome: {}>", r.outcome);
        }
        println!();
    }
}
