//! `bench_pr10` — what register promotion buys on the dispatch path.
//!
//! Measures the PR 10 fast mode (`OptFlags::register_promote`: escape
//! analysis + register promotion of never-addressed scalar locals) and
//! writes the comparison to `BENCH_pr10.json` (path = first CLI
//! argument; the PR 8 record is read from the second, default
//! `./BENCH_pr8.json`).
//!
//! Workloads (ids shared with `bench_pr8` where the workload is
//! identical, so the JSON files diff cleanly):
//!
//! * `dispatch_loop/cerberus/{tree,bytecode-peephole,bytecode-fast}` —
//!   the tight arithmetic loop on a pre-compiled program; the VM runs
//!   the peephole stage (the PR 8/9 default pipeline) and the
//!   escape-promoted stage side by side in the same process, isolating
//!   what promotion buys at equal front-end cost. The loop's two hot
//!   locals (`s`, `i`) live in formal allocations under the default
//!   pipeline — every iteration pays four capability-checked loads and
//!   two stores — and in virtual registers under the fast one;
//! * `interp_end_to_end/cerberus/{bytecode,bytecode-fast}` — whole
//!   pipeline on the malloc-churn + array-sum program: promotion only
//!   reaches the loop counters here (the arrays are address-taken), so
//!   this pins the realistic mixed-workload win rather than the
//!   microbenchmark ceiling.
//!
//! Every timed run asserts the workload's outcome (`Exit(0)`) so a
//! promotion bug cannot masquerade as a speedup.
//!
//! Gates (CI perf-smoke; exit status non-zero if any fails):
//!
//! 1. **fast beats peephole ≥ 1.5× on the dispatch loop** (min vs min,
//!    same process, same compiled front end) — the ISSUE's headline
//!    target: promotion must close most of the remaining gap to the
//!    concrete baseline, not shave a few percent.
//!    `CHERI_PR10_FAST_SPEEDUP` overrides the bar;
//! 2. the fast end-to-end run must not be *slower* than the default
//!    bytecode run beyond a noise margin (`CHERI_PR10_E2E_MARGIN`,
//!    default 5%) — promotion is pure win or no-op, never a pessimise;
//! 3. when the record path (third CLI argument) is a readable
//!    `BENCH_pr10.json`: minima must stay within
//!    `CHERI_PR10_RECORD_SLACK` × the committed record (default 3.0) —
//!    the order-of-magnitude regression tripwire CI actually runs (it
//!    copies the committed record aside before this binary overwrites
//!    it). The PR 8 comparison is reported as `vs_pr8_min_ratio` but
//!    not gated: that record was made on a different machine.
//!
//! `CHERI_QC_BENCH_FAST=1` shrinks samples for CI.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::Arc;

use cheri_core::ir::{lower_fast, lower_opt, IrProgram};
use cheri_core::{compile_for, Engine, Interp, MorelloCap, Outcome, Profile};
use cheri_qc::bench::{black_box, Bench, Stats};

/// Same dispatch workload as `bench_pr7`/`bench_pr8`.
const DISPATCH_PROGRAM: &str = r#"
int main(void) {
  long s = 0;
  for (int i = 0; i < 20000; i++) {
    s += (i * 3) ^ (s & 7);
    s -= i >> 2;
  }
  return s != 0 ? 0 : 1;
}"#;

/// Same end-to-end workload as `bench_pr7`/`bench_pr8`.
const CHURN_PROGRAM: &str = r#"
int main(void) {
  long acc = 0;
  for (int i = 0; i < 64; i++) {
    int *p = malloc(128 * sizeof(int));
    for (int j = 0; j < 128; j++) p[j] = j ^ i;
    for (int j = 0; j < 128; j++) acc += p[j];
    free(p);
  }
  return acc > 0 ? 0 : 1;
}"#;

fn end_to_end(profile: &Profile, engine: Engine) {
    let r = cheri_core::run_with_engine::<MorelloCap>(CHURN_PROGRAM, profile, engine);
    assert!(
        matches!(r.outcome, Outcome::Exit(0)),
        "end-to-end workload must be well-defined: {:?}",
        r.outcome
    );
}

/// Pull `"key": <number>` out of the flat JSON the bench binaries write,
/// scoped to the object fragment that follows `anchor`.
fn json_number_after(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let at = text.find(anchor)?;
    let rest = &text[at..];
    let k = rest.find(&format!("\"{key}\":"))?;
    let tail = rest[k + key.len() + 3..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr10.json".into());
    let pr8_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_pr8.json".into());
    let fast = std::env::var("CHERI_QC_BENCH_FAST").is_ok();
    let mut c = Bench::new();

    // Dispatch microbenchmark: compile once; the VM runs both pipelines'
    // IR. The fast profile is only needed to *lower*; the interpreter
    // takes whatever IR it is handed.
    let profile = Profile::cerberus();
    let fast_profile = {
        let mut p = profile.clone();
        p.opt = p.opt.fast();
        p
    };
    let dispatch_prog =
        compile_for::<MorelloCap>(DISPATCH_PROGRAM, &profile).expect("dispatch program compiles");
    let opt_ir: Arc<IrProgram> = Arc::new(lower_opt(&dispatch_prog));
    let fast_ir: Arc<IrProgram> = Arc::new(lower_fast(&dispatch_prog));
    // The outcome-equality assert, once up front and again inside every
    // timed iteration: both pipelines must compute the same exit.
    let run_vm = |ir: &Arc<IrProgram>| {
        let r = Interp::<MorelloCap>::new(&dispatch_prog, &profile)
            .with_ir(Arc::clone(ir))
            .run();
        assert!(matches!(r.outcome, Outcome::Exit(0)));
        black_box(r.mem_stats)
    };
    let opt_stats = run_vm(&opt_ir);
    let fast_stats = run_vm(&fast_ir);
    assert!(
        fast_stats.stores < opt_stats.stores,
        "promotion must remove dispatch-loop memory traffic (default {} stores, fast {})",
        opt_stats.stores,
        fast_stats.stores
    );

    c.bench_function("dispatch_loop/cerberus/tree", |b| {
        b.iter(|| {
            let r = Interp::<MorelloCap>::new(&dispatch_prog, &profile).run();
            assert!(matches!(r.outcome, Outcome::Exit(0)));
            black_box(r.mem_stats)
        });
    });
    c.bench_function("dispatch_loop/cerberus/bytecode-peephole", |b| {
        b.iter(|| run_vm(&opt_ir));
    });
    c.bench_function("dispatch_loop/cerberus/bytecode-fast", |b| {
        b.iter(|| run_vm(&fast_ir));
    });

    // End-to-end: the whole pipeline under the default and fast opt
    // flags (the fast profile routes `lower_for` through promotion).
    c.bench_function("interp_end_to_end/cerberus/bytecode", |b| {
        b.iter(|| end_to_end(&profile, Engine::Bytecode));
    });
    c.bench_function("interp_end_to_end/cerberus/bytecode-fast", |b| {
        b.iter(|| end_to_end(&fast_profile, Engine::Bytecode));
    });

    let results: Vec<Stats> = c.results().to_vec();
    let stat = |id: &str, f: fn(&Stats) -> f64| {
        results
            .iter()
            .find(|s| s.id == id)
            .map(f)
            .expect("benchmark ran")
    };

    // Gate 1: the headline speedup, min vs min in the same process.
    let speedup_bar: f64 = std::env::var("CHERI_PR10_FAST_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let peephole_min = stat("dispatch_loop/cerberus/bytecode-peephole", |s| s.min);
    let fast_min = stat("dispatch_loop/cerberus/bytecode-fast", |s| s.min);
    let dispatch_speedup = peephole_min / fast_min;
    let gate1_pass = dispatch_speedup >= speedup_bar;

    // Gate 2: fast mode never pessimises end-to-end.
    let margin: f64 = std::env::var("CHERI_PR10_E2E_MARGIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let e2e_min = stat("interp_end_to_end/cerberus/bytecode", |s| s.min);
    let e2e_fast_min = stat("interp_end_to_end/cerberus/bytecode-fast", |s| s.min);
    let gate2_pass = e2e_fast_min <= e2e_min * (1.0 + margin);

    // Informational: where the fast VM lands against the PR 8 record's
    // minima (different machine ⇒ reported, not gated).
    let pr8 = std::fs::read_to_string(&pr8_path).ok();
    let pr8_ids = [
        ("dispatch_loop/cerberus/bytecode-peephole", fast_min),
        ("dispatch_loop/cerberus/tree", fast_min),
    ];
    let mut vs_pr8: Vec<(&str, f64, Option<f64>)> = Vec::new();
    for (id, now) in pr8_ids {
        let rec = pr8
            .as_deref()
            .and_then(|t| json_number_after(t, &format!("\"{id}\""), "min_ns"));
        vs_pr8.push((id, now, rec));
    }

    // Gate 3: regression tripwire against the committed PR 10 record.
    let record_path = std::env::args().nth(3).unwrap_or_else(|| "none".into());
    let record = std::fs::read_to_string(&record_path).ok();
    let record_slack: f64 = std::env::var("CHERI_PR10_RECORD_SLACK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let record_ids = [
        "dispatch_loop/cerberus/bytecode-fast",
        "interp_end_to_end/cerberus/bytecode-fast",
    ];
    let mut vs_record: Vec<(&str, f64, Option<f64>)> = Vec::new();
    for id in record_ids {
        let now_min = stat(id, |s| s.min);
        let rec_min = record
            .as_deref()
            .and_then(|t| json_number_after(t, &format!("\"{id}\""), "min_ns"));
        vs_record.push((id, now_min, rec_min));
    }
    let gate3_skipped = record.is_none();
    let gate3_pass = gate3_skipped
        || vs_record
            .iter()
            .all(|(_, now, rec)| rec.is_none_or(|r| *now <= r * record_slack));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr10\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters_per_sample\": {}}}{}",
            s.id,
            s.median,
            s.mean,
            s.min,
            s.iters_per_sample,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"vs_pr8_min_ratio\": {{{}}},",
        vs_pr8
            .iter()
            .map(|(id, now, rec)| format!(
                "\"{id}\": {}",
                rec.map_or_else(|| "null".into(), |r| format!("{:.3}", now / r))
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"gates\": {\n");
    let _ = writeln!(
        json,
        "    \"dispatch_fast_speedup\": {{\"peephole_min_ns\": {peephole_min:.1}, \"fast_min_ns\": {fast_min:.1}, \"speedup\": {dispatch_speedup:.3}, \"bar\": {speedup_bar}, \"pass\": {gate1_pass}}},",
    );
    let _ = writeln!(
        json,
        "    \"e2e_fast_not_slower\": {{\"default_min_ns\": {e2e_min:.1}, \"fast_min_ns\": {e2e_fast_min:.1}, \"speedup\": {:.3}, \"margin\": {margin}, \"pass\": {gate2_pass}}},",
        e2e_min / e2e_fast_min
    );
    let _ = writeln!(
        json,
        "    \"within_record\": {{\"skipped\": {gate3_skipped}, \"slack\": {record_slack}, \"pass\": {gate3_pass}}}"
    );
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr10.json");
    println!("\nwrote {out_path}");
    println!(
        "gate dispatch fast speedup: peephole min {:.1} ms, fast min {:.1} ms ({dispatch_speedup:.3}x, bar {speedup_bar}x) — {}",
        peephole_min / 1e6,
        fast_min / 1e6,
        if gate1_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "gate e2e fast not slower: default min {:.1} ms, fast min {:.1} ms ({:.3}x, margin {margin}) — {}",
        e2e_min / 1e6,
        e2e_fast_min / 1e6,
        e2e_min / e2e_fast_min,
        if gate2_pass { "PASS" } else { "FAIL" }
    );
    for (id, now, rec) in &vs_pr8 {
        match rec {
            Some(r) => println!(
                "  fast VM vs PR8 {id}: {:.1} ms vs {:.1} ms ({:.3}x of record)",
                now / 1e6,
                r / 1e6,
                now / r
            ),
            None => println!("  fast VM vs PR8 {id}: no record entry in {pr8_path}"),
        }
    }
    if gate3_skipped {
        println!("gate vs committed record: SKIPPED (no {record_path})");
    } else {
        for (id, now, rec) in &vs_record {
            match rec {
                Some(r) => println!(
                    "  {id}: {:.1} ms vs record {:.1} ms (budget {:.1} ms)",
                    now / 1e6,
                    r / 1e6,
                    r * record_slack / 1e6
                ),
                None => println!("  {id}: no record entry"),
            }
        }
        println!(
            "gate vs committed record (slack {record_slack}x): {}",
            if gate3_pass { "PASS" } else { "FAIL" }
        );
    }
    if !(gate1_pass && gate2_pass && gate3_pass) {
        std::process::exit(1);
    }
}
