//! `bench_pr3` — flat-buffer store vs legacy `BTreeMap` store.
//!
//! Measures the PR 3 storage rewrite: per-allocation `Vec<AbsByte>` buffers
//! plus packed capability-slot bitsets behind a sorted interval index,
//! against the legacy global per-byte dictionary kept behind
//! `MemConfig::legacy_store`. Both paths run in the *same* process and the
//! comparison is written to `BENCH_pr3.json` (path = first CLI argument,
//! default `./BENCH_pr3.json`).
//!
//! Workloads:
//!
//! * `scalar_store_load` — the `memory_model` bench workload (`MEM_OPS`
//!   4-byte stores then loads), reference and hardware profiles;
//! * `memcpy` — capability-preserving 4 KiB copies;
//! * `revocation_sweep` — CHERI hardware profile with revocation on free:
//!   32 heap regions full of cross-pointers, all freed (each free sweeps
//!   memory for overlapping capabilities);
//! * `interp_end_to_end` — a whole C program (malloc churn + array sums)
//!   through parse → typecheck → interpret under the cerberus profile.
//!
//! Exit status is non-zero if the flat store is *slower* than the legacy
//! store on the scalar load/store microbenchmark — the CI perf-smoke gate.
//! `CHERI_QC_BENCH_FAST=1` shrinks samples for CI.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use cheri_bench::MEM_OPS;
use cheri_core::{Outcome, Profile};
use cheri_mem::{AddressLayout, CheriMemory, IntVal, MemConfig, MemStats};
use cheri_qc::bench::{black_box, Bench, Stats};

type Mem = CheriMemory<cheri_core::MorelloCap>;

fn with_store(mut cfg: MemConfig, legacy: bool) -> MemConfig {
    cfg.legacy_store = legacy;
    cfg
}

/// The `memory_model` scalar workload: MEM_OPS 4-byte stores, then loads.
fn store_load_workload(cfg: MemConfig) -> i128 {
    let mut mem = Mem::new(cfg);
    let arr = mem
        .allocate_object("arr", 4 * MEM_OPS as u64, 4, false, None)
        .expect("allocate");
    let mut acc = 0i128;
    for i in 0..MEM_OPS {
        let p = mem.array_shift(&arr, 4, i as i64).expect("shift");
        mem.store_int(&p, 4, &IntVal::Num(i as i128)).expect("store");
    }
    for i in 0..MEM_OPS {
        let p = mem.array_shift(&arr, 4, i as i64).expect("shift");
        acc += mem.load_int(&p, 4, true, false).expect("load").value();
    }
    mem.kill(&arr, false).expect("kill");
    acc
}

/// Capability-preserving 4 KiB memcpy between two heap buffers.
fn memcpy_workload(cfg: MemConfig) -> i128 {
    let n = MEM_OPS as u64;
    let mut mem = Mem::new(cfg);
    let src = mem.allocate_region(n, 16).expect("src");
    let dst = mem.allocate_region(n, 16).expect("dst");
    mem.memset(&src, 0xA5, n).expect("memset");
    for _ in 0..8 {
        mem.memcpy(&dst, &src, n).expect("memcpy");
        mem.memcpy(&src, &dst, n).expect("memcpy back");
    }
    mem.load_int(&dst, 4, false, false).expect("readback").value()
}

/// Revocation churn: 32 heap regions full of capabilities to each other,
/// then freed one by one — every free sweeps memory for overlapping
/// capabilities (§7 temporal-safety extension).
fn revocation_workload(cfg: MemConfig) -> u64 {
    let mut mem = Mem::new(cfg);
    let regions: Vec<_> = (0..32)
        .map(|_| mem.allocate_region(256, 16).expect("region"))
        .collect();
    for (i, r) in regions.iter().enumerate() {
        for j in 0..16i64 {
            let p = mem.array_shift(r, 16, j).expect("shift");
            let target = &regions[(i + j as usize) % regions.len()];
            mem.store_ptr(&p, target).expect("store cap");
        }
    }
    for r in &regions {
        mem.kill(r, true).expect("free");
    }
    mem.stats.revoked_caps
}

const CHURN_PROGRAM: &str = r#"
int main(void) {
  int acc = 0;
  for (int i = 0; i < 40; i++) {
    int *p = malloc(64 * sizeof(int));
    for (int j = 0; j < 64; j++) p[j] = j;
    for (int j = 0; j < 64; j++) acc += p[j];
    free(p);
  }
  return acc == 40 * 2016 ? 0 : 1;
}"#;

/// Whole-pipeline run under the cerberus profile; returns the memory-model
/// counters so the JSON records the workload size.
fn interp_workload(legacy: bool) -> MemStats {
    let mut profile = Profile::cerberus();
    profile.mem.legacy_store = legacy;
    let r = cheri_core::run(CHURN_PROGRAM, &profile);
    assert!(
        matches!(r.outcome, Outcome::Exit(0)),
        "end-to-end workload must be well-defined: {:?}",
        r.outcome
    );
    r.mem_stats
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".into());
    let fast = std::env::var("CHERI_QC_BENCH_FAST").is_ok();
    let mut c = Bench::new();

    for (store, legacy) in [("legacy", true), ("flat", false)] {
        let reference = with_store(MemConfig::cheri_reference(), legacy);
        c.bench_function(format!("scalar_store_load/cheri_reference/{store}"), |b| {
            b.iter(|| black_box(store_load_workload(reference)));
        });
        let hardware = with_store(
            MemConfig::cheri_hardware(AddressLayout::clang_morello()),
            legacy,
        );
        c.bench_function(format!("scalar_store_load/cheri_hardware/{store}"), |b| {
            b.iter(|| black_box(store_load_workload(hardware)));
        });
        c.bench_function(format!("memcpy_4k/cheri_reference/{store}"), |b| {
            b.iter(|| black_box(memcpy_workload(reference)));
        });
        let mut revoking = with_store(
            MemConfig::cheri_hardware(AddressLayout::clang_morello()),
            legacy,
        );
        revoking.revocation = true;
        c.bench_function(format!("revocation_sweep/cheri_hardware/{store}"), |b| {
            b.iter(|| black_box(revocation_workload(revoking)));
        });
        c.bench_function(format!("interp_end_to_end/cerberus/{store}"), |b| {
            b.iter(|| black_box(interp_workload(legacy)));
        });
    }

    // Sanity checks shared by both stores: the sweep really revokes, and
    // the stats plumbing reports the run's operation counts.
    let revoked = {
        let mut cfg = MemConfig::cheri_hardware(AddressLayout::clang_morello());
        cfg.revocation = true;
        revocation_workload(cfg)
    };
    assert!(revoked > 0, "revocation workload must clear tags");
    let stats = interp_workload(false);
    assert!(stats.loads > 0 && stats.stores > 0 && stats.allocations > 0);

    let results: Vec<Stats> = c.results().to_vec();
    let median = |id: &str| {
        results
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median)
            .expect("benchmark ran")
    };

    let bases = [
        "scalar_store_load/cheri_reference",
        "scalar_store_load/cheri_hardware",
        "memcpy_4k/cheri_reference",
        "revocation_sweep/cheri_hardware",
        "interp_end_to_end/cerberus",
    ];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr3\",");
    let _ = writeln!(json, "  \"mem_ops\": {MEM_OPS},");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(
        json,
        "  \"interp_workload_stats\": {{\"loads\": {}, \"stores\": {}, \"allocations\": {}}},",
        stats.loads, stats.stores, stats.allocations
    );
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters_per_sample\": {}}}{}",
            json_escape(&s.id),
            s.median,
            s.mean,
            s.min,
            s.iters_per_sample,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_flat_over_legacy\": {\n");
    for (i, base) in bases.iter().enumerate() {
        let speedup = median(&format!("{base}/legacy")) / median(&format!("{base}/flat"));
        let _ = writeln!(
            json,
            "    \"{base}\": {speedup:.2}{}",
            if i + 1 == bases.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n");

    let gate_base = "scalar_store_load/cheri_reference";
    let legacy_ns = median(&format!("{gate_base}/legacy"));
    let flat_ns = median(&format!("{gate_base}/flat"));
    let pass = flat_ns <= legacy_ns;
    let _ = writeln!(
        json,
        "  \"gate\": {{\"bench\": \"{gate_base}\", \"legacy_median_ns\": {legacy_ns:.1}, \"flat_median_ns\": {flat_ns:.1}, \"speedup\": {:.2}, \"pass\": {pass}}}",
        legacy_ns / flat_ns
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr3.json");
    println!("\nwrote {out_path}");
    println!(
        "gate {gate_base}: legacy {legacy_ns:.0} ns/iter, flat {flat_ns:.0} ns/iter, speedup {:.2}x — {}",
        legacy_ns / flat_ns,
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
