//! Regenerates **Table 1** of the paper (the 94-test suite, grouped into 34
//! semantic categories with per-category coverage counts) and the §5
//! compliance summary (running every test under every implementation
//! configuration and reporting agreement).
//!
//! Run with `cargo run -p cheri-bench --bin table1_tests [-- --details]`.

use cheri_core::Profile;
use cheri_testsuite::harness::{render_markdown, render_summary, render_table1, run_suite};

fn main() {
    let details = std::env::args().any(|a| a == "--details");
    let markdown = std::env::args().any(|a| a == "--markdown");

    println!("Table 1: Summary of the tests for which we compared the results");
    println!("on the CHERI C implementation configurations.\n");
    println!("{}", render_table1());

    println!("§5 Validation: running the suite under every configuration…\n");
    let profiles = Profile::all_compared();
    let report = run_suite(&profiles);
    println!("{}", render_summary(&report));

    if markdown {
        let path = "docs/test-results.md";
        if let Err(e) = std::fs::create_dir_all("docs")
            .and_then(|()| std::fs::write(path, render_markdown(&report)))
        {
            eprintln!("cannot write {path}: {e}");
        } else {
            println!("full results written to {path}");
        }
    }
    if details {
        println!("per-test outcomes:");
        for t in &report.tests {
            print!("  {:<48}", t.id);
            for c in &t.cells {
                let mark = if c.matched { ' ' } else { '!' };
                print!(" {}{mark}", c.observed);
            }
            println!();
        }
    } else {
        println!("(pass --details for per-test outcomes)");
    }
}
