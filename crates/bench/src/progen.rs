//! Random CHERI C program generation with a built-in oracle.
//!
//! §7 of the paper: "The fact that our semantics is executable means that it
//! could be used as a test oracle for more aggressive compiler testing,
//! letting one use randomly generated tests without manually curating their
//! intended results." This module provides exactly that workload: a
//! deterministic generator of two program families —
//!
//! * **well-defined** programs whose exit code the generator computes while
//!   emitting them (array writes/reads, pointer walks, `(u)intptr_t` round
//!   trips, `memcpy`, helper-function calls); and
//! * **buggy** programs: the same, with a single spatial violation injected
//!   at a random point.
//!
//! Every implementation configuration must give the generated exit code for
//! the first family and a safety stop for the second.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated program plus its expected behaviour.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// The C source.
    pub source: String,
    /// Expected exit code (`None` for buggy programs, which must
    /// safety-stop instead).
    pub expected_exit: Option<i64>,
    /// The seed it was generated from.
    pub seed: u64,
}

struct Gen {
    rng: StdRng,
    body: String,
    arrays: Vec<(String, usize, Vec<i64>)>,
    acc: i64,
    stmt_budget: usize,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            body: String::new(),
            arrays: Vec::new(),
            acc: 0,
            stmt_budget: 0,
        }
    }

    fn emit(&mut self, line: &str) {
        self.body.push_str("  ");
        self.body.push_str(line);
        self.body.push('\n');
    }

    fn pick_array(&mut self) -> usize {
        self.rng.gen_range(0..self.arrays.len())
    }

    fn stmt_write(&mut self) {
        let a = self.pick_array();
        let (name, size, _) = self.arrays[a].clone();
        let i = self.rng.gen_range(0..size);
        let v = self.rng.gen_range(-100..100i64);
        let style = self.rng.gen_range(0..3);
        match style {
            0 => self.emit(&format!("{name}[{i}] = {v};")),
            1 => self.emit(&format!("*({name} + {i}) = {v};")),
            _ => self.emit(&format!(
                "*(int*)((uintptr_t){name} + {i} * sizeof(int)) = {v};"
            )),
        }
        self.arrays[a].2[i] = v;
    }

    fn stmt_read(&mut self) {
        let a = self.pick_array();
        let (name, size, vals) = self.arrays[a].clone();
        let i = self.rng.gen_range(0..size);
        let style = self.rng.gen_range(0..3);
        match style {
            0 => self.emit(&format!("s += {name}[{i}];")),
            1 => self.emit(&format!("s += *({name} + {i});")),
            _ => self.emit(&format!(
                "s += *(int*)((uintptr_t){name} + {i} * sizeof(int));"
            )),
        }
        self.acc += vals[i];
    }

    fn stmt_loop_sum(&mut self) {
        let a = self.pick_array();
        let (name, size, vals) = self.arrays[a].clone();
        self.emit(&format!(
            "for (int i = 0; i < {size}; i++) s += {name}[i];"
        ));
        self.acc += vals.iter().sum::<i64>();
    }

    fn stmt_memcpy(&mut self) {
        if self.arrays.len() < 2 {
            return;
        }
        let a = self.pick_array();
        let mut b = self.pick_array();
        if a == b {
            b = (b + 1) % self.arrays.len();
        }
        let n = self.arrays[a].1.min(self.arrays[b].1);
        let n = self.rng.gen_range(1..=n);
        let (src, _, sv) = self.arrays[a].clone();
        let (dst, _, _) = self.arrays[b].clone();
        self.emit(&format!("memcpy({dst}, {src}, {n} * sizeof(int));"));
        self.arrays[b].2[..n].copy_from_slice(&sv[..n]);
    }

    fn stmt_helper_call(&mut self) {
        let a = self.pick_array();
        let (name, size, vals) = self.arrays[a].clone();
        let i = self.rng.gen_range(0..size);
        self.emit(&format!("s += get({name}, {i});"));
        self.acc += vals[i];
    }

    fn stmt_ptr_walk(&mut self) {
        let a = self.pick_array();
        let (name, size, vals) = self.arrays[a].clone();
        let start = self.rng.gen_range(0..size);
        self.emit(&format!(
            "{{ int *p = {name} + {start}; while (p != {name}) {{ p--; s += *p; }} }}"
        ));
        self.acc += vals[..start].iter().sum::<i64>();
    }

    fn random_stmt(&mut self) {
        match self.rng.gen_range(0..12) {
            0..=3 => self.stmt_write(),
            4..=6 => self.stmt_read(),
            7 => self.stmt_loop_sum(),
            8 => self.stmt_memcpy(),
            9 => self.stmt_helper_call(),
            _ => self.stmt_ptr_walk(),
        }
    }

    fn inject_bug(&mut self) {
        let a = self.pick_array();
        let (name, size, _) = self.arrays[a].clone();
        match self.rng.gen_range(0..3) {
            0 => self.emit(&format!("{name}[{size}] = 1; /* one past */")),
            1 => self.emit(&format!("s += {name}[{}]; /* far off */", size + 7)),
            _ => self.emit(&format!(
                "{{ int *p = {name}; free(p); /* not a heap pointer */ }}"
            )),
        }
    }

    fn finish(self, expected: Option<i64>) -> (String, Option<i64>) {
        let mut decls = String::new();
        for (name, size, init) in &self.arrays {
            let vals: Vec<String> = init.iter().map(|_| "0".to_string()).collect();
            let _ = vals;
            decls.push_str(&format!("  int {name}[{size}];\n"));
            decls.push_str(&format!(
                "  for (int i = 0; i < {size}; i++) {name}[i] = 0;\n"
            ));
        }
        let src = format!(
            "#include <stdint.h>\n\
             int get(int *a, int i) {{ return a[i]; }}\n\
             int main(void) {{\n{decls}  long s = 0;\n{}  \
             return (int)(s < 0 ? (-s) % 97 : s % 97);\n}}\n",
            self.body
        );
        (src, expected)
    }
}

/// Generate a program from `seed`. `buggy` injects one spatial violation at
/// a random point (after which the oracle stops being meaningful).
#[must_use]
pub fn generate(seed: u64, buggy: bool) -> GenProgram {
    let mut g = Gen::new(seed);
    let n_arrays = g.rng.gen_range(1..4usize);
    for k in 0..n_arrays {
        let size = g.rng.gen_range(2..12usize);
        g.arrays.push((format!("a{k}"), size, vec![0; size]));
    }
    g.stmt_budget = g.rng.gen_range(4..20);
    let bug_at = if buggy {
        Some(g.rng.gen_range(0..g.stmt_budget))
    } else {
        None
    };
    for i in 0..g.stmt_budget {
        if bug_at == Some(i) {
            g.inject_bug();
            break;
        }
        g.random_stmt();
    }
    let expected = if buggy {
        None
    } else {
        let s = g.acc;
        Some(if s < 0 { (-s) % 97 } else { s % 97 })
    };
    let (source, expected_exit) = g.finish(expected);
    GenProgram {
        source,
        expected_exit,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_core::{run, Outcome, Profile};

    #[test]
    fn generated_programs_match_their_oracle() {
        for seed in 0..40 {
            let g = generate(seed, false);
            let r = run(&g.source, &Profile::cerberus());
            assert_eq!(
                r.outcome,
                Outcome::Exit(g.expected_exit.expect("well-defined")),
                "seed {seed}\n{}",
                g.source
            );
        }
    }

    #[test]
    fn buggy_programs_safety_stop_under_cheri() {
        let mut stops = 0;
        for seed in 0..40 {
            let g = generate(seed, true);
            let r = run(&g.source, &Profile::cerberus());
            assert!(
                !matches!(r.outcome, Outcome::Error(_)),
                "seed {seed}: {}\n{}",
                r.outcome,
                g.source
            );
            if r.outcome.is_safety_stop() {
                stops += 1;
            }
        }
        assert!(stops >= 35, "only {stops}/40 injected bugs were caught");
    }
}
