//! Random CHERI C program generation with a built-in oracle and a
//! trace-level shrinker.
//!
//! §7 of the paper: "The fact that our semantics is executable means that it
//! could be used as a test oracle for more aggressive compiler testing,
//! letting one use randomly generated tests without manually curating their
//! intended results." This module provides exactly that workload: a
//! deterministic generator of two program families —
//!
//! * **well-defined** programs whose exit code the generator computes while
//!   emitting them (array writes/reads, pointer walks, `(u)intptr_t` round
//!   trips, `memcpy`, helper-function calls); and
//! * **buggy** programs: the same, with a single spatial violation injected
//!   at a random point.
//!
//! Every implementation configuration must give the generated exit code for
//! the first family and a safety stop for the second.
//!
//! Unlike the original emit-strings-as-you-go design, generation now records
//! a **trace** of abstract statements ([`TraceStmt`]) from which both the C
//! source and the oracle's expected exit code are derived *after* the fact
//! ([`TracedProgram::source`] / [`TracedProgram::oracle_exit`]). Because the
//! oracle is recomputed from whatever statements remain, a divergence can be
//! minimised by **statement deletion** ([`shrink_program`]): remove
//! statements (and then unreferenced arrays) while the divergence persists,
//! re-deriving the expected exit code for every candidate.

use cheri_qc::Rng;

/// One abstract statement of a generated program. Each knows how to render
/// itself as C and how to replay itself against shadow arrays to update the
/// oracle's accumulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceStmt {
    /// `a[i] = v;` in one of three syntactic styles (index, pointer
    /// arithmetic, `uintptr_t` round trip).
    Write {
        /// Array id.
        arr: usize,
        /// In-bounds element index.
        idx: usize,
        /// Value stored.
        val: i64,
        /// Syntactic style 0..3.
        style: u8,
    },
    /// `s += a[i];` in one of three syntactic styles.
    Read {
        /// Array id.
        arr: usize,
        /// In-bounds element index.
        idx: usize,
        /// Syntactic style 0..3.
        style: u8,
    },
    /// `for (...) s += a[i];` over the whole array.
    LoopSum {
        /// Array id.
        arr: usize,
    },
    /// `memcpy(dst, src, n * sizeof(int));`
    Memcpy {
        /// Source array id.
        from: usize,
        /// Destination array id (≠ `from`).
        to: usize,
        /// Elements copied (≤ both sizes).
        n: usize,
    },
    /// `s += get(a, i);` through the helper function.
    HelperCall {
        /// Array id.
        arr: usize,
        /// In-bounds element index.
        idx: usize,
    },
    /// Walk a pointer from `a + start` down to `a`, summing.
    PtrWalk {
        /// Array id.
        arr: usize,
        /// Starting element index.
        start: usize,
    },
    /// An injected spatial violation (makes the program buggy; the oracle
    /// becomes "must safety-stop").
    Bug {
        /// Array id.
        arr: usize,
        /// Violation kind 0..3 (one-past write, far-off read, bad free).
        kind: u8,
    },
}

/// A generated array: `int a{id}[size];`, zero-initialised.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Array {
    /// Stable id; the C identifier is `a{id}`. Ids survive shrinking so
    /// statement operands never need renaming.
    pub id: usize,
    /// Element count.
    pub size: usize,
}

impl Array {
    fn name(&self) -> String {
        format!("a{}", self.id)
    }
}

impl TraceStmt {
    /// Array ids this statement references.
    #[must_use]
    pub fn touches(&self) -> Vec<usize> {
        match *self {
            TraceStmt::Write { arr, .. }
            | TraceStmt::Read { arr, .. }
            | TraceStmt::LoopSum { arr }
            | TraceStmt::HelperCall { arr, .. }
            | TraceStmt::PtrWalk { arr, .. }
            | TraceStmt::Bug { arr, .. } => vec![arr],
            TraceStmt::Memcpy { from, to, .. } => vec![from, to],
        }
    }

    fn emit(&self, name_of: impl Fn(usize) -> String) -> String {
        match self {
            TraceStmt::Write { arr, idx, val, style } => {
                let name = name_of(*arr);
                match style {
                    0 => format!("{name}[{idx}] = {val};"),
                    1 => format!("*({name} + {idx}) = {val};"),
                    _ => format!("*(int*)((uintptr_t){name} + {idx} * sizeof(int)) = {val};"),
                }
            }
            TraceStmt::Read { arr, idx, style } => {
                let name = name_of(*arr);
                match style {
                    0 => format!("s += {name}[{idx}];"),
                    1 => format!("s += *({name} + {idx});"),
                    _ => format!("s += *(int*)((uintptr_t){name} + {idx} * sizeof(int));"),
                }
            }
            TraceStmt::LoopSum { arr } => {
                let name = name_of(*arr);
                format!("for (int i = 0; i < SIZE_{name}; i++) s += {name}[i];")
            }
            TraceStmt::Memcpy { from, to, n } => {
                format!("memcpy({}, {}, {n} * sizeof(int));", name_of(*to), name_of(*from))
            }
            TraceStmt::HelperCall { arr, idx } => {
                format!("s += get({}, {idx});", name_of(*arr))
            }
            TraceStmt::PtrWalk { arr, start } => {
                let name = name_of(*arr);
                format!("{{ int *p = {name} + {start}; while (p != {name}) {{ p--; s += *p; }} }}")
            }
            TraceStmt::Bug { arr, kind } => {
                let name = name_of(*arr);
                match kind {
                    0 => format!("{name}[SIZE_{name}] = 1; /* one past */"),
                    1 => format!("s += {name}[SIZE_{name} + 7]; /* far off */"),
                    _ => format!("{{ int *p = {name}; free(p); /* not a heap pointer */ }}"),
                }
            }
        }
    }
}

/// A generated program as an abstract trace: arrays + statements. The C
/// source and the oracle verdict are derived views, so the trace can be
/// edited (shrunk) and both views stay consistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedProgram {
    /// The seed this program was generated from (preserved through
    /// shrinking for replay).
    pub seed: u64,
    /// Declared arrays.
    pub arrays: Vec<Array>,
    /// Statement trace, in program order.
    pub stmts: Vec<TraceStmt>,
}

impl TracedProgram {
    /// Does the trace contain an injected violation?
    #[must_use]
    pub fn is_buggy(&self) -> bool {
        self.stmts.iter().any(|s| matches!(s, TraceStmt::Bug { .. }))
    }

    /// Render the C source for the current trace.
    #[must_use]
    pub fn source(&self) -> String {
        let mut decls = String::new();
        for a in &self.arrays {
            let name = a.name();
            let size = a.size;
            decls.push_str(&format!("  int {name}[{size}];\n"));
            decls.push_str(&format!(
                "  for (int i = 0; i < {size}; i++) {name}[i] = 0;\n"
            ));
        }
        let mut body = String::new();
        for s in &self.stmts {
            let line = s.emit(|id| format!("a{id}"));
            // `SIZE_aN` placeholders keep statement text independent of the
            // array table; substitute the real extents here.
            let line = self.arrays.iter().fold(line, |l, a| {
                l.replace(&format!("SIZE_{}", a.name()), &a.size.to_string())
            });
            body.push_str("  ");
            body.push_str(&line);
            body.push('\n');
        }
        format!(
            "#include <stdint.h>\n\
             int get(int *a, int i) {{ return a[i]; }}\n\
             int main(void) {{\n{decls}  long s = 0;\n{body}  \
             return (int)(s < 0 ? (-s) % 97 : s % 97);\n}}\n"
        )
    }

    /// Replay the trace against shadow arrays and return the expected exit
    /// code — `None` if the trace contains an injected violation (then the
    /// only expectation is a safety stop).
    #[must_use]
    pub fn oracle_exit(&self) -> Option<i64> {
        if self.is_buggy() {
            return None;
        }
        let mut shadow: Vec<(usize, Vec<i64>)> = self
            .arrays
            .iter()
            .map(|a| (a.id, vec![0i64; a.size]))
            .collect();
        let idx_of = |shadow: &Vec<(usize, Vec<i64>)>, id: usize| {
            shadow.iter().position(|(i, _)| *i == id).expect("array id")
        };
        let mut acc = 0i64;
        for s in &self.stmts {
            match *s {
                TraceStmt::Write { arr, idx, val, .. } => {
                    let a = idx_of(&shadow, arr);
                    shadow[a].1[idx] = val;
                }
                TraceStmt::Read { arr, idx, .. } | TraceStmt::HelperCall { arr, idx } => {
                    let a = idx_of(&shadow, arr);
                    acc += shadow[a].1[idx];
                }
                TraceStmt::LoopSum { arr } => {
                    let a = idx_of(&shadow, arr);
                    acc += shadow[a].1.iter().sum::<i64>();
                }
                TraceStmt::Memcpy { from, to, n } => {
                    let f = idx_of(&shadow, from);
                    let t = idx_of(&shadow, to);
                    let src: Vec<i64> = shadow[f].1[..n].to_vec();
                    shadow[t].1[..n].copy_from_slice(&src);
                }
                TraceStmt::PtrWalk { arr, start } => {
                    let a = idx_of(&shadow, arr);
                    acc += shadow[a].1[..start].iter().sum::<i64>();
                }
                TraceStmt::Bug { .. } => unreachable!("checked is_buggy above"),
            }
        }
        Some(if acc < 0 { (-acc) % 97 } else { acc % 97 })
    }

    /// Drop arrays no remaining statement references (shrinking aid; ids —
    /// and hence C identifiers — of the surviving arrays are unchanged).
    pub fn drop_unreferenced_arrays(&mut self) {
        let mut used = vec![false; self.arrays.iter().map(|a| a.id).max().map_or(0, |m| m + 1)];
        for s in &self.stmts {
            for id in s.touches() {
                used[id] = true;
            }
        }
        self.arrays.retain(|a| used[a.id]);
    }
}

/// A generated program plus its expected behaviour — the rendered view of a
/// [`TracedProgram`], kept for the oracle-fuzz binary and examples.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// The C source.
    pub source: String,
    /// Expected exit code (`None` for buggy programs, which must
    /// safety-stop instead).
    pub expected_exit: Option<i64>,
    /// The seed it was generated from.
    pub seed: u64,
}

/// Generate the abstract trace for `seed`. `buggy` injects one spatial
/// violation at a random point (after which the oracle stops being
/// meaningful and the expectation becomes "safety stop").
#[must_use]
pub fn generate_traced(seed: u64, buggy: bool) -> TracedProgram {
    let mut rng = Rng::seed_from_u64(seed);
    let n_arrays = rng.gen_range(1..4usize);
    let arrays: Vec<Array> = (0..n_arrays)
        .map(|id| Array {
            id,
            size: rng.gen_range(2..12usize),
        })
        .collect();
    let mut prog = TracedProgram {
        seed,
        arrays,
        stmts: Vec::new(),
    };
    let budget = rng.gen_range(4..20usize);
    let bug_at = if buggy { Some(rng.gen_range(0..budget)) } else { None };
    for i in 0..budget {
        if bug_at == Some(i) {
            let arr = rng.gen_range(0..prog.arrays.len());
            let kind = rng.gen_range(0..3u8);
            prog.stmts.push(TraceStmt::Bug { arr, kind });
            break;
        }
        let stmt = random_stmt(&mut rng, &prog.arrays);
        prog.stmts.push(stmt);
    }
    prog
}

fn random_stmt(rng: &mut Rng, arrays: &[Array]) -> TraceStmt {
    let pick = |rng: &mut Rng| rng.gen_range(0..arrays.len());
    match rng.gen_range(0..12u8) {
        0..=3 => {
            let arr = pick(rng);
            let idx = rng.gen_range(0..arrays[arr].size);
            let val = rng.gen_range(-100..100i64);
            let style = rng.gen_range(0..3u8);
            TraceStmt::Write { arr, idx, val, style }
        }
        4..=6 => {
            let arr = pick(rng);
            let idx = rng.gen_range(0..arrays[arr].size);
            let style = rng.gen_range(0..3u8);
            TraceStmt::Read { arr, idx, style }
        }
        7 => TraceStmt::LoopSum { arr: pick(rng) },
        8 => {
            if arrays.len() < 2 {
                // Mirror the old generator: a memcpy pick with one array
                // degrades to a loop-sum rather than re-rolling.
                return TraceStmt::LoopSum { arr: 0 };
            }
            let from = pick(rng);
            let mut to = pick(rng);
            if from == to {
                to = (to + 1) % arrays.len();
            }
            let max = arrays[from].size.min(arrays[to].size);
            let n = rng.gen_range(1..=max);
            TraceStmt::Memcpy { from, to, n }
        }
        9 => {
            let arr = pick(rng);
            let idx = rng.gen_range(0..arrays[arr].size);
            TraceStmt::HelperCall { arr, idx }
        }
        _ => {
            let arr = pick(rng);
            let start = rng.gen_range(0..arrays[arr].size);
            TraceStmt::PtrWalk { arr, start }
        }
    }
}

/// Generate a program from `seed` (rendered view).
#[must_use]
pub fn generate(seed: u64, buggy: bool) -> GenProgram {
    let t = generate_traced(seed, buggy);
    GenProgram {
        source: t.source(),
        expected_exit: t.oracle_exit(),
        seed,
    }
}

/// Minimise a program by statement deletion while `still_fails` holds.
///
/// ddmin-lite: try deleting exponentially smaller chunks of the statement
/// trace, then single statements, then unreferenced arrays, iterating to a
/// fixpoint. `still_fails` receives each candidate (with its oracle
/// re-derived by the caller via [`TracedProgram::oracle_exit`]) and returns
/// whether the divergence is still observable. The returned program is
/// 1-minimal: deleting any single remaining statement makes the failure
/// disappear.
pub fn shrink_program<F>(prog: &TracedProgram, mut still_fails: F) -> TracedProgram
where
    F: FnMut(&TracedProgram) -> bool,
{
    let mut cur = prog.clone();
    loop {
        let before = cur.stmts.len();
        // Chunked deletion: halves, quarters, ... down to single statements.
        let mut chunk = (cur.stmts.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.stmts.len() {
                let mut cand = cur.clone();
                let end = (i + chunk).min(cand.stmts.len());
                cand.stmts.drain(i..end);
                if still_fails(&cand) {
                    cur = cand;
                    // Same position now holds the next chunk.
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Drop arrays nothing references any more (can enable nothing
        // further, but shortens the report).
        let mut cand = cur.clone();
        cand.drop_unreferenced_arrays();
        if cand != cur && still_fails(&cand) {
            cur = cand;
        }
        if cur.stmts.len() == before {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_core::{run, Outcome, Profile};

    #[test]
    fn generated_programs_match_their_oracle() {
        for seed in 0..40 {
            let g = generate(seed, false);
            let r = run(&g.source, &Profile::cerberus());
            assert_eq!(
                r.outcome,
                Outcome::Exit(g.expected_exit.expect("well-defined")),
                "seed {seed}\n{}",
                g.source
            );
        }
    }

    #[test]
    fn buggy_programs_safety_stop_under_cheri() {
        let mut stops = 0;
        for seed in 0..40 {
            let g = generate(seed, true);
            let r = run(&g.source, &Profile::cerberus());
            assert!(
                !matches!(r.outcome, Outcome::Error(_)),
                "seed {seed}: {}\n{}",
                r.outcome,
                g.source
            );
            if r.outcome.is_safety_stop() {
                stops += 1;
            }
        }
        assert!(stops >= 35, "only {stops}/40 injected bugs were caught");
    }

    #[test]
    fn trace_and_rendered_views_agree() {
        for seed in 0..60 {
            let t = generate_traced(seed, seed % 3 == 0);
            let g = generate(seed, seed % 3 == 0);
            assert_eq!(t.source(), g.source, "seed {seed}");
            assert_eq!(t.oracle_exit(), g.expected_exit, "seed {seed}");
            assert_eq!(t.is_buggy(), g.expected_exit.is_none(), "seed {seed}");
        }
    }

    #[test]
    fn oracle_replay_is_deletion_stable() {
        // Deleting a statement must still yield a replayable, well-defined
        // program whose recomputed oracle matches an actual run.
        for seed in [3u64, 11, 17, 29] {
            let t = generate_traced(seed, false);
            for i in 0..t.stmts.len() {
                let mut cand = t.clone();
                cand.stmts.remove(i);
                let want = cand.oracle_exit().expect("still well-defined");
                let r = run(&cand.source(), &Profile::cerberus());
                assert_eq!(
                    r.outcome,
                    Outcome::Exit(want),
                    "seed {seed}, deleted stmt {i}\n{}",
                    cand.source()
                );
            }
        }
    }

    #[test]
    fn shrinker_reaches_one_minimal_trace() {
        // Plant a synthetic failure — "the program reads array 0 at least
        // once" — and check the shrinker strips everything else.
        let t = generate_traced(5, false);
        let fails = |p: &TracedProgram| {
            p.stmts
                .iter()
                .any(|s| matches!(s, TraceStmt::Read { arr: 0, .. } | TraceStmt::LoopSum { arr: 0 }))
        };
        if !fails(&t) {
            // Make sure the premise holds for this seed.
            let mut t = t;
            t.stmts.push(TraceStmt::Read { arr: 0, idx: 0, style: 0 });
            let min = shrink_program(&t, fails);
            assert_eq!(min.stmts.len(), 1, "{min:?}");
            return;
        }
        let min = shrink_program(&t, fails);
        assert_eq!(min.stmts.len(), 1, "{min:?}");
        assert!(fails(&min));
        // 1-minimality: deleting the last statement kills the failure.
        let mut none = min;
        none.stmts.clear();
        assert!(!fails(&none));
    }

    #[test]
    fn shrinker_drops_unreferenced_arrays() {
        let mut t = generate_traced(9, false);
        // Force multiple arrays, then a failure that only needs one stmt.
        if t.arrays.len() < 2 {
            t.arrays.push(Array { id: t.arrays.len(), size: 4 });
        }
        t.stmts.push(TraceStmt::Read { arr: 0, idx: 0, style: 0 });
        let min = shrink_program(&t, |p| {
            p.stmts
                .iter()
                .any(|s| matches!(s, TraceStmt::Read { arr: 0, .. }))
        });
        assert_eq!(min.arrays.len(), 1, "{min:?}");
        assert_eq!(min.arrays[0].id, 0);
    }
}
