//! Lexer for the CHERI C subset.
//!
//! Preprocessor directives (`#include`, `#define` of simple object-like
//! macros) are handled here: includes are ignored (the standard headers'
//! relevant contents are built into the semantics), and object-like macros
//! are expanded textually.

use std::collections::HashMap;
use std::fmt;

/// Source position (1-based line, column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal with suffix-derived unsignedness/longness.
    IntLit {
        /// The value.
        value: u128,
        /// `U` suffix present.
        unsigned: bool,
        /// `L`/`LL` suffix present.
        long: bool,
    },
    /// Floating-point literal; `single` when suffixed `f`.
    FloatLit {
        /// The value.
        value: f64,
        /// `f`/`F` suffix present (type `float`).
        single: bool,
    },
    /// Character literal (value of the character).
    CharLit(i64),
    /// String literal (unescaped contents).
    StrLit(String),
    /// Punctuation, e.g. `"+="`, `"->"`, `"("`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::IntLit { value, .. } => write!(f, "{value}"),
            Tok::FloatLit { value, .. } => write!(f, "{value}"),
            Tok::CharLit(c) => write!(f, "'{c}'"),
            Tok::StrLit(s) => write!(f, "{s:?}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Lexical error.
#[derive(Clone, Debug)]
pub struct LexError {
    /// What went wrong.
    pub msg: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    // Three-char first, then two-char, then one-char: longest match wins.
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "[", "]", "{", "}", ";", ",", ".", "+",
    "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "?", ":",
];

struct Lexer<'s> {
    src: &'s [u8],
    i: usize,
    line: u32,
    col: u32,
    macros: HashMap<String, Vec<Spanned>>,
}

impl Lexer<'_> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LexError> {
        Err(LexError {
            msg: msg.into(),
            pos: self.pos(),
        })
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if (c as char).is_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => return self.err("unterminated comment"),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_directive(&mut self) -> Result<(), LexError> {
        // Consume '#'. Directives occupy one (logical) line.
        self.bump();
        let start = self.i;
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        let line = std::str::from_utf8(&self.src[start..self.i])
            .map_err(|_| LexError {
                msg: "non-UTF8 directive".into(),
                pos: self.pos(),
            })?
            .trim()
            .to_string();
        if let Some(rest) = line.strip_prefix("define") {
            let rest = rest.trim_start();
            let name_end = rest
                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            let (name, body) = rest.split_at(name_end);
            if !name.is_empty() && !body.starts_with('(') {
                // Object-like macro: lex the body now (it cannot itself
                // contain directives) and store the token sequence.
                let toks = lex(body.trim())?;
                let toks: Vec<Spanned> = toks
                    .into_iter()
                    .filter(|t| t.tok != Tok::Eof)
                    .collect();
                self.macros.insert(name.to_string(), toks);
            }
            // Function-like macros are not supported; tests do not use them.
        }
        // #include, #pragma, #if 0/#endif etc. are ignored (headers are
        // built in). Conditional compilation is not supported.
        Ok(())
    }

    fn lex_number(&mut self) -> Result<Tok, LexError> {
        let mut value: u128 = 0;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
            self.bump();
            self.bump();
            let mut any = false;
            while let Some(c) = self.peek() {
                let d = match c {
                    b'0'..=b'9' => c - b'0',
                    b'a'..=b'f' => c - b'a' + 10,
                    b'A'..=b'F' => c - b'A' + 10,
                    _ => break,
                };
                value = value
                    .checked_mul(16)
                    .and_then(|v| v.checked_add(u128::from(d)))
                    .ok_or_else(|| LexError {
                        msg: "integer literal overflow".into(),
                        pos: self.pos(),
                    })?;
                any = true;
                self.bump();
            }
            if !any {
                return self.err("empty hex literal");
            }
        } else {
            let octal = self.peek() == Some(b'0');
            let radix: u128 = if octal { 8 } else { 10 };
            while let Some(c) = self.peek() {
                if !c.is_ascii_digit() {
                    break;
                }
                let d = c - b'0';
                if octal && d > 7 {
                    return self.err("invalid octal digit");
                }
                value = value
                    .checked_mul(radix)
                    .and_then(|v| v.checked_add(u128::from(d)))
                    .ok_or_else(|| LexError {
                        msg: "integer literal overflow".into(),
                        pos: self.pos(),
                    })?;
                self.bump();
            }
        }
        // Floating-point continuation: a '.' or exponent makes this a
        // float literal (only for decimal literals).
        if self.peek() == Some(b'.') || matches!(self.peek(), Some(b'e' | b'E')) {
            let mut text = value.to_string();
            if self.peek() == Some(b'.') {
                self.bump();
                text.push('.');
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.bump();
                text.push('e');
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    text.push(self.bump().expect("sign") as char);
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            let mut single = false;
            if matches!(self.peek(), Some(b'f' | b'F')) {
                single = true;
                self.bump();
            } else if matches!(self.peek(), Some(b'l' | b'L')) {
                self.bump(); // long double: treated as double
            }
            let value: f64 = text.parse().map_err(|_| LexError {
                msg: format!("bad float literal {text}"),
                pos: self.pos(),
            })?;
            return Ok(Tok::FloatLit { value, single });
        }
        let mut unsigned = false;
        let mut long = false;
        while let Some(c) = self.peek() {
            match c {
                b'u' | b'U' => {
                    unsigned = true;
                    self.bump();
                }
                b'l' | b'L' => {
                    long = true;
                    self.bump();
                }
                _ => break,
            }
        }
        Ok(Tok::IntLit {
            value,
            unsigned,
            long,
        })
    }

    fn lex_escape(&mut self) -> Result<u8, LexError> {
        match self.bump() {
            Some(b'n') => Ok(b'\n'),
            Some(b't') => Ok(b'\t'),
            Some(b'r') => Ok(b'\r'),
            Some(b'0') => Ok(0),
            Some(b'\\') => Ok(b'\\'),
            Some(b'\'') => Ok(b'\''),
            Some(b'"') => Ok(b'"'),
            Some(b'x') => {
                let mut v: u32 = 0;
                while let Some(c) = self.peek() {
                    let d = match c {
                        b'0'..=b'9' => c - b'0',
                        b'a'..=b'f' => c - b'a' + 10,
                        b'A'..=b'F' => c - b'A' + 10,
                        _ => break,
                    };
                    v = v * 16 + u32::from(d);
                    self.bump();
                }
                Ok(v as u8)
            }
            _ => self.err("unsupported escape"),
        }
    }

    fn next_token(&mut self) -> Result<Option<Spanned>, LexError> {
        loop {
            self.skip_ws_and_comments()?;
            match self.peek() {
                None => return Ok(None),
                Some(b'#') => self.lex_directive()?,
                _ => break,
            }
        }
        let pos = self.pos();
        let c = self.peek().expect("peeked above");
        let tok = if c.is_ascii_digit() {
            self.lex_number()?
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.i;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            Tok::Ident(String::from_utf8_lossy(&self.src[start..self.i]).into_owned())
        } else if c == b'\'' {
            self.bump();
            let v = match self.bump() {
                Some(b'\\') => i64::from(self.lex_escape()?),
                Some(c) => i64::from(c),
                None => return self.err("unterminated char literal"),
            };
            if self.bump() != Some(b'\'') {
                return self.err("unterminated char literal");
            }
            Tok::CharLit(v)
        } else if c == b'"' {
            self.bump();
            let mut s = Vec::new();
            loop {
                match self.bump() {
                    Some(b'"') => break,
                    Some(b'\\') => s.push(self.lex_escape()?),
                    Some(c) => s.push(c),
                    None => return self.err("unterminated string literal"),
                }
            }
            Tok::StrLit(String::from_utf8_lossy(&s).into_owned())
        } else {
            let rest = &self.src[self.i..];
            let p = PUNCTS
                .iter()
                .find(|p| rest.starts_with(p.as_bytes()))
                .copied();
            match p {
                Some(p) => {
                    for _ in 0..p.len() {
                        self.bump();
                    }
                    Tok::Punct(p)
                }
                None => return self.err(format!("unexpected character {:?}", c as char)),
            }
        };
        Ok(Some(Spanned { tok, pos }))
    }
}

/// Tokenise `src`, expanding object-like `#define` macros and ignoring other
/// preprocessor directives.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed input.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        macros: HashMap::new(),
    };
    let mut out = Vec::new();
    while let Some(t) = lx.next_token()? {
        if let Tok::Ident(name) = &t.tok {
            if let Some(expansion) = lx.macros.get(name) {
                out.extend(expansion.iter().cloned().map(|mut s| {
                    s.pos = t.pos;
                    s
                }));
                continue;
            }
        }
        out.push(t);
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: lx.pos(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::IntLit {
                    value: 42,
                    unsigned: false,
                    long: false
                },
                Tok::Punct(";"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn hex_and_suffixes() {
        assert_eq!(
            toks("0xFFul")[0],
            Tok::IntLit {
                value: 255,
                unsigned: true,
                long: true
            }
        );
        assert_eq!(
            toks("0777")[0],
            Tok::IntLit {
                value: 0o777,
                unsigned: false,
                long: false
            }
        );
    }

    #[test]
    fn comments_and_includes_ignored() {
        let t = toks("#include <stdint.h>\n// line\n/* block */ x");
        assert_eq!(t, vec![Tok::Ident("x".into()), Tok::Eof]);
    }

    #[test]
    fn object_macros_expand() {
        let t = toks("#define N 3\nint a[N];");
        assert!(t.contains(&Tok::IntLit {
            value: 3,
            unsigned: false,
            long: false
        }));
    }

    #[test]
    fn multi_char_punct_longest_match() {
        assert_eq!(toks("a->b")[1], Tok::Punct("->"));
        assert_eq!(toks("x <<= 2")[1], Tok::Punct("<<="));
        assert_eq!(toks("x <= 2")[1], Tok::Punct("<="));
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(toks(r"'\n'")[0], Tok::CharLit(10));
        assert_eq!(toks("'A'")[0], Tok::CharLit(65));
        assert_eq!(toks(r#""hi\n""#)[0], Tok::StrLit("hi\n".into()));
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("int\n  x;").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }
}
