//! Pretty-printer for the untyped AST.
//!
//! Emits compilable C from a parsed [`Program`]. Used for debugging,
//! for minimising fuzzer findings, and — in the test suite — to check
//! front-end self-consistency: `parse ∘ print ∘ parse ≡ parse` (printing a
//! parse and re-parsing it reaches a fixpoint).

use crate::ast::*;
use crate::types::{IntTy, StructId, Ty, TypeTable};

/// Render a full translation unit back to C.
#[must_use]
pub fn print_program(prog: &Program, types: &TypeTable) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
        types,
        printed_structs: Vec::new(),
    };
    // Struct/union definitions first, so member types resolve on re-parse.
    for (i, layout) in types.structs.iter().enumerate() {
        p.struct_def(StructId(i), layout.is_union);
    }
    for item in &prog.items {
        match item {
            Item::Global(d) => p.global(d),
            Item::Func(f) => p.func(f),
        }
    }
    p.out
}

struct Printer<'t> {
    out: String,
    indent: usize,
    types: &'t TypeTable,
    printed_structs: Vec<StructId>,
}

impl Printer<'_> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn struct_def(&mut self, id: StructId, is_union: bool) {
        if self.printed_structs.contains(&id) {
            return;
        }
        self.printed_structs.push(id);
        let layout = &self.types.structs[id.0];
        if layout.name == "<anon>" || layout.fields.is_empty() && layout.size <= 1 {
            return; // anonymous or reserved-only: printed inline or unused
        }
        let kw = if is_union { "union" } else { "struct" };
        self.line(&format!("{kw} {} {{", layout.name));
        self.indent += 1;
        for f in &layout.fields {
            let decl = declare(&f.ty, &f.name, self.types);
            self.line(&format!("{decl};"));
        }
        self.indent -= 1;
        self.line("};");
    }

    fn global(&mut self, d: &Decl) {
        let mut s = String::new();
        if d.is_const {
            s.push_str("const ");
        }
        s.push_str(&declare(&d.ty, &d.name, self.types));
        if let Some(init) = &d.init {
            s.push_str(" = ");
            s.push_str(&print_init(init, self.types));
        }
        s.push(';');
        self.line(&s);
    }

    fn func(&mut self, f: &FuncDef) {
        // Build the declarator `name(params)` first, then thread it through
        // `declare` so return types that need nesting (pointer-to-function)
        // come out as e.g. `int (*pick(int which))(int)`.
        let mut decl = format!("{}(", f.name);
        if f.params.is_empty() && !f.variadic {
            decl.push_str("void");
        }
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                decl.push_str(", ");
            }
            let name = if p.name.is_empty() {
                format!("arg{i}")
            } else {
                p.name.clone()
            };
            decl.push_str(&declare(&p.ty, &name, self.types));
        }
        if f.variadic {
            decl.push_str(", ...");
        }
        decl.push(')');
        let sig = declare(&f.ret, &decl, self.types);
        match &f.body {
            None => self.line(&format!("{sig};")),
            Some(body) => {
                self.line(&format!("{sig} {{"));
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("}");
            }
        }
    }

    /// Print a statement as a brace-wrapped body without double-wrapping
    /// bodies that are already blocks.
    fn body_stmts<'a>(&mut self, s: &'a Stmt) -> &'a [Stmt] {
        match &s.kind {
            StmtKind::Block(b) => b,
            _ => std::slice::from_ref(s),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                let mut line = String::new();
                if d.is_static {
                    line.push_str("static ");
                }
                if d.is_const {
                    line.push_str("const ");
                }
                line.push_str(&declare(&d.ty, &d.name, self.types));
                if let Some(init) = &d.init {
                    line.push_str(" = ");
                    line.push_str(&print_init(init, self.types));
                }
                line.push(';');
                self.line(&line);
            }
            StmtKind::Expr(e) => {
                let e = print_expr(e, self.types);
                self.line(&format!("{e};"));
            }
            StmtKind::Block(body) => {
                self.line("{");
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("}");
            }
            // Multi-declarator groups share the enclosing scope: print the
            // declarations bare, not as a block.
            StmtKind::DeclGroup(body) => {
                for s in body {
                    self.stmt(s);
                }
            }
            StmtKind::If(c, t, e) => {
                self.line(&format!("if ({}) {{", print_expr(c, self.types)));
                self.indent += 1;
                for st in self.body_stmts(t).to_vec() {
                    self.stmt(&st);
                }
                self.indent -= 1;
                match e {
                    Some(e) => {
                        self.line("} else {");
                        self.indent += 1;
                        for st in self.body_stmts(e).to_vec() {
                            self.stmt(&st);
                        }
                        self.indent -= 1;
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            StmtKind::While(c, b) => {
                self.line(&format!("while ({}) {{", print_expr(c, self.types)));
                self.indent += 1;
                for st in self.body_stmts(b).to_vec() {
                    self.stmt(&st);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::DoWhile(b, c) => {
                self.line("do {");
                self.indent += 1;
                for st in self.body_stmts(b).to_vec() {
                    self.stmt(&st);
                }
                self.indent -= 1;
                self.line(&format!("}} while ({});", print_expr(c, self.types)));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut head = String::from("for (");
                match init {
                    Some(s) => match &s.kind {
                        StmtKind::Decl(d) => {
                            head.push_str(&declare(&d.ty, &d.name, self.types));
                            if let Some(i) = &d.init {
                                head.push_str(" = ");
                                head.push_str(&print_init(i, self.types));
                            }
                            head.push(';');
                        }
                        StmtKind::Expr(e) => {
                            head.push_str(&print_expr(e, self.types));
                            head.push(';');
                        }
                        _ => head.push(';'),
                    },
                    None => head.push(';'),
                }
                head.push(' ');
                if let Some(c) = cond {
                    head.push_str(&print_expr(c, self.types));
                }
                head.push_str("; ");
                if let Some(s) = step {
                    head.push_str(&print_expr(s, self.types));
                }
                head.push_str(") {");
                self.line(&head);
                self.indent += 1;
                for st in self.body_stmts(body).to_vec() {
                    self.stmt(&st);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Switch(scrut, cases) => {
                self.line(&format!("switch ({}) {{", print_expr(scrut, self.types)));
                self.indent += 1;
                for c in cases {
                    match &c.value {
                        Some(v) => self.line(&format!("case {}:", print_expr(v, self.types))),
                        None => self.line("default:"),
                    }
                    self.indent += 1;
                    for s in &c.body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Return(Some(e)) => {
                let e = print_expr(e, self.types);
                self.line(&format!("return {e};"));
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Empty => self.line(";"),
        }
    }
}

fn print_init(init: &Init, types: &TypeTable) -> String {
    match init {
        Init::Expr(e) => print_expr(e, types),
        Init::List(items) => {
            let inner: Vec<String> = items.iter().map(|i| print_init(i, types)).collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

/// Render a declaration of `name` at type `ty` (inside-out declarator
/// construction, the reverse of parsing).
fn declare(ty: &Ty, name: &str, types: &TypeTable) -> String {
    fn go(ty: &Ty, inner: &str, types: &TypeTable) -> String {
        match ty {
            Ty::Void => format!("void {inner}").trim_end().to_string(),
            Ty::Int(i) => format!("{} {inner}", int_name(*i)).trim_end().to_string(),
            Ty::Float(t) => format!("{t} {inner}").trim_end().to_string(),
            Ty::Ptr {
                pointee,
                const_pointee,
            } => {
                let star = format!("*{inner}");
                let needs_parens = matches!(**pointee, Ty::Array(..) | Ty::Func { .. });
                let inner = if needs_parens {
                    format!("({star})")
                } else {
                    star
                };
                let base = go(pointee, &inner, types);
                if *const_pointee {
                    // const applies to the pointee: prefix the base type.
                    format!("const {base}")
                } else {
                    base
                }
            }
            Ty::Array(elem, len) => {
                let dim = match len {
                    Some(n) => format!("{inner}[{n}]"),
                    None => format!("{inner}[]"),
                };
                go(elem, &dim, types)
            }
            Ty::Struct(id) => format!("struct {} {inner}", types.structs[id.0].name)
                .trim_end()
                .to_string(),
            Ty::Union(id) => format!("union {} {inner}", types.structs[id.0].name)
                .trim_end()
                .to_string(),
            Ty::Func {
                ret,
                params,
                variadic,
            } => {
                let mut plist: Vec<String> =
                    params.iter().map(|p| declare(p, "", types)).collect();
                if *variadic {
                    plist.push("...".into());
                }
                let plist = if plist.is_empty() {
                    "void".to_string()
                } else {
                    plist.join(", ")
                };
                go(ret, &format!("{inner}({plist})"), types)
            }
        }
    }
    go(ty, name, types)
}

fn int_name(i: IntTy) -> &'static str {
    match i {
        IntTy::Bool => "_Bool",
        IntTy::Char => "char",
        IntTy::SChar => "signed char",
        IntTy::UChar => "unsigned char",
        IntTy::Short => "short",
        IntTy::UShort => "unsigned short",
        IntTy::Int => "int",
        IntTy::UInt => "unsigned int",
        IntTy::Long => "long",
        IntTy::ULong => "unsigned long",
        IntTy::LongLong => "long long",
        IntTy::ULongLong => "unsigned long long",
        IntTy::IntPtr => "intptr_t",
        IntTy::UIntPtr => "uintptr_t",
        IntTy::PtrAddr => "ptraddr_t",
    }
}

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}

/// Render an expression. Everything compound is parenthesised, which keeps
/// the printer simple and precedence-correct by construction.
#[must_use]
pub fn print_expr(e: &Expr, types: &TypeTable) -> String {
    match &e.kind {
        ExprKind::IntLit {
            value,
            unsigned,
            long,
        } => {
            let mut s = value.to_string();
            if *unsigned {
                s.push('u');
            }
            if *long {
                s.push('l');
            }
            s
        }
        ExprKind::FloatLit { value, single } => {
            let mut s = format!("{value:?}");
            if !s.contains('.') && !s.contains('e') {
                s.push_str(".0");
            }
            if *single {
                s.push('f');
            }
            s
        }
        ExprKind::CharLit(c) => format!("{c}"),
        ExprKind::StrLit(s) => format!("{s:?}").replace("\\u{0}", "\\0"),
        ExprKind::Ident(n) => n.clone(),
        ExprKind::Binary(op, a, b) => format!(
            "({} {} {})",
            print_expr(a, types),
            bin_op_str(*op),
            print_expr(b, types)
        ),
        ExprKind::Unary(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Plus => "+",
                UnOp::BitNot => "~",
                UnOp::LogNot => "!",
            };
            format!("({sym}{})", print_expr(a, types))
        }
        ExprKind::Assign { op, lhs, rhs } => {
            let sym = match op {
                None => "=".to_string(),
                Some(op) => format!("{}=", bin_op_str(*op)),
            };
            format!(
                "({} {sym} {})",
                print_expr(lhs, types),
                print_expr(rhs, types)
            )
        }
        ExprKind::IncDec { inc, prefix, arg } => {
            let sym = if *inc { "++" } else { "--" };
            if *prefix {
                format!("({sym}{})", print_expr(arg, types))
            } else {
                format!("({}{sym})", print_expr(arg, types))
            }
        }
        ExprKind::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(|a| print_expr(a, types)).collect();
            format!("{}({})", print_expr(callee, types), args.join(", "))
        }
        ExprKind::Index(a, i) => {
            format!("{}[{}]", print_expr(a, types), print_expr(i, types))
        }
        ExprKind::Member(a, f) => format!("{}.{f}", print_expr(a, types)),
        ExprKind::Arrow(a, f) => format!("{}->{f}", print_expr(a, types)),
        ExprKind::Deref(a) => format!("(*{})", print_expr(a, types)),
        ExprKind::AddrOf(a) => format!("(&{})", print_expr(a, types)),
        ExprKind::Cast(t, a) => format!("(({}){})", declare(t, "", types), print_expr(a, types)),
        ExprKind::SizeofTy(t) => format!("sizeof({})", declare(t, "", types)),
        ExprKind::SizeofExpr(a) => format!("sizeof({})", print_expr(a, types)),
        ExprKind::AlignofTy(t) => format!("_Alignof({})", declare(t, "", types)),
        ExprKind::Cond(c, t, f) => format!(
            "({} ? {} : {})",
            print_expr(c, types),
            print_expr(t, types),
            print_expr(f, types)
        ),
        ExprKind::Comma(a, b) => {
            format!("({}, {})", print_expr(a, types), print_expr(b, types))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::types::TargetLayout;

    fn roundtrip(src: &str) -> (String, String) {
        let p1 = parse(src, TargetLayout::default()).expect("parse 1");
        let printed1 = print_program(&p1.program, &p1.types);
        let p2 = parse(&printed1, TargetLayout::default())
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed1}"));
        let printed2 = print_program(&p2.program, &p2.types);
        (printed1, printed2)
    }

    #[test]
    fn print_reparse_reaches_fixpoint() {
        let (a, b) = roundtrip(
            "#include <stdint.h>\n\
             struct node { int value; struct node *next; };\n\
             int sum(struct node *head) {\n\
               int s = 0;\n\
               for (struct node *p = head; p != 0; p = p->next) s += p->value;\n\
               return s;\n\
             }\n\
             int main(void) {\n\
               struct node a, b;\n\
               a.value = 1; a.next = &b;\n\
               b.value = 2; b.next = 0;\n\
               uintptr_t u = (uintptr_t)&a;\n\
               return sum((struct node *)u);\n\
             }",
        );
        assert_eq!(a, b, "printer is not idempotent");
    }

    #[test]
    fn printed_programs_behave_identically() {
        use crate::{run, Profile};
        let sources = [
            "int main(void) { int a[3] = {1,2,3}; int s = 0; \
             for (int i = 0; i < 3; i++) s += a[i]; return s; }",
            "#include <stdint.h>\n\
             int main(void) { int x = 9; uintptr_t u = (uintptr_t)&x; \
             int *q = (int*)u; return *q; }",
            "int f(int n) { return n <= 1 ? 1 : n * f(n - 1); }\n\
             int main(void) { return f(5) % 97; }",
            "int main(void) { char *p = malloc(8); p[7] = 3; int r = p[7]; free(p); return r; }",
        ];
        for src in sources {
            let p = parse(src, TargetLayout::default()).expect("parse");
            let printed = print_program(&p.program, &p.types);
            let orig = run(src, &Profile::cerberus());
            let reprinted = run(&printed, &Profile::cerberus());
            assert_eq!(
                orig.outcome, reprinted.outcome,
                "behaviour changed by printing:\n{printed}"
            );
        }
    }

    #[test]
    fn suite_sources_print_and_reparse() {
        // Every test of the 94-suite must survive a print→reparse cycle.
        // (Behavioural equality is covered by the sample above; here we
        // check the front end never chokes on its own output.)
        for t in cheri_testsuite_sources() {
            let p = match parse(t, TargetLayout::default()) {
                Ok(p) => p,
                Err(e) => panic!("suite source failed to parse: {e}"),
            };
            let printed = print_program(&p.program, &p.types);
            parse(&printed, TargetLayout::default())
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        }
    }

    /// A few representative suite-like sources (the real suite lives in a
    /// downstream crate; depending on it here would be a cycle).
    fn cheri_testsuite_sources() -> Vec<&'static str> {
        vec![
            r#"
            #include <stdint.h>
            union ptr { int *ptr; uintptr_t iptr; };
            int main(void) {
              int arr[] = {42, 43};
              union ptr x;
              x.ptr = arr;
              x.iptr += sizeof(int);
              assert(*x.ptr == 43);
              return 0;
            }"#,
            r#"
            int zero(void) { return 0; }
            int one(void) { return 1; }
            int main(void) {
              int (*table[2])(void) = { zero, one };
              return table[0]() + table[1]();
            }"#,
            r#"
            int main(void) {
              char buf[16];
              char *p = cheri_bounds_set(buf, 8);
              p[7] = 1;
              return cheri_length_get(p) == 8;
            }"#,
        ]
    }
}
