//! Untyped abstract syntax for the CHERI C subset.
//!
//! The parser produces this; the type checker (`typeck`) lowers it to the
//! typed form the interpreter executes, inserting implicit conversions and
//! making capability derivation explicit (§4.4 of the paper).

use crate::lex::Pos;
use crate::types::Ty;

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinOp {
    /// Is this a comparison operator (result type `int`)?
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Is this a relational (ordering) comparison?
    #[must_use]
    pub fn is_relational(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `+`
    Plus,
    /// `~`
    BitNot,
    /// `!`
    LogNot,
}

/// An expression.
#[derive(Clone, Debug)]
pub struct Expr {
    /// Node kind.
    pub kind: ExprKind,
    /// Source position.
    pub pos: Pos,
}

/// Expression kinds.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer literal; `ty_hint` is the literal's C type per suffix rules.
    IntLit {
        /// The value.
        value: u128,
        /// `U` suffix.
        unsigned: bool,
        /// `L` suffix.
        long: bool,
    },
    /// Floating-point literal.
    FloatLit {
        /// The value.
        value: f64,
        /// `f` suffix (type `float`).
        single: bool,
    },
    /// Character literal (type `int`).
    CharLit(i64),
    /// String literal.
    StrLit(String),
    /// Identifier.
    Ident(String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Assignment, possibly compound (`op` is `None` for plain `=`).
    Assign {
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Target lvalue.
        lhs: Box<Expr>,
        /// Source value.
        rhs: Box<Expr>,
    },
    /// Pre/post increment/decrement.
    IncDec {
        /// `+1` or `-1`.
        inc: bool,
        /// Prefix (`++x`) vs postfix (`x++`).
        prefix: bool,
        /// The lvalue.
        arg: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee expression (identifier or function pointer).
        callee: Box<Expr>,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// Array subscript `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member access `s.f`.
    Member(Box<Expr>, String),
    /// Member access through pointer `p->f`.
    Arrow(Box<Expr>, String),
    /// Dereference `*p`.
    Deref(Box<Expr>),
    /// Address-of `&x`.
    AddrOf(Box<Expr>),
    /// Cast `(T)e`.
    Cast(Ty, Box<Expr>),
    /// `sizeof(type)`.
    SizeofTy(Ty),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
    /// `_Alignof(type)`.
    AlignofTy(Ty),
    /// Conditional `c ? a : b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Comma `a, b`.
    Comma(Box<Expr>, Box<Expr>),
}

/// An initialiser.
#[derive(Clone, Debug)]
pub enum Init {
    /// A scalar expression.
    Expr(Expr),
    /// A brace-enclosed list (arrays, structs).
    List(Vec<Init>),
}

/// A statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Node kind.
    pub kind: StmtKind,
    /// Source position.
    pub pos: Pos,
}

/// Statement kinds.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// Local declaration.
    Decl(Decl),
    /// Expression statement.
    Expr(Expr),
    /// Block `{ ... }`.
    Block(Vec<Stmt>),
    /// A multi-declarator declaration statement (`int a, b;`): the
    /// declarations share the enclosing scope, unlike a block.
    DeclGroup(Vec<Stmt>),
    /// `if` / `else`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while`.
    While(Expr, Box<Stmt>),
    /// `do ... while`.
    DoWhile(Box<Stmt>, Expr),
    /// `for`.
    For {
        /// Init clause (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `switch`.
    Switch(Expr, Vec<SwitchCase>),
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// Empty statement.
    Empty,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Clone, Debug)]
pub struct SwitchCase {
    /// `None` for `default`.
    pub value: Option<Expr>,
    /// Statements until the next label.
    pub body: Vec<Stmt>,
}

/// A variable declaration (local or global).
#[derive(Clone, Debug)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// `const`-qualified (the object is read-only, §3.9).
    pub is_const: bool,
    /// Declared `static` (static storage duration for locals).
    pub is_static: bool,
    /// Initialiser.
    pub init: Option<Init>,
    /// Position.
    pub pos: Pos,
}

/// A function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Name (empty for unnamed prototype parameters).
    pub name: String,
    /// Type (arrays already decayed to pointers).
    pub ty: Ty,
}

/// A function definition or declaration.
#[derive(Clone, Debug)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Parameters.
    pub params: Vec<Param>,
    /// Variadic (`...`).
    pub variadic: bool,
    /// Body; `None` for a prototype.
    pub body: Option<Vec<Stmt>>,
    /// Position.
    pub pos: Pos,
}

/// A top-level item.
#[derive(Clone, Debug)]
pub enum Item {
    /// Global variable.
    Global(Decl),
    /// Function definition or prototype.
    Func(FuncDef),
}

/// A translation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}
