//! The C type system fragment of CHERI C.
//!
//! Sizes and alignments follow the CHERI 64-bit data model: pointers and
//! `(u)intptr_t` occupy one capability (16 bytes on Morello), while their
//! *value range* is the 64-bit address space. §3.7 of the paper requires
//! that "no other standard integer type shall have a higher integer
//! conversion rank than `intptr_t` and `uintptr_t`" — the rank table below
//! implements exactly that rule.

use std::fmt;

/// Integer types of the model, including the CHERI C additions
/// (`(u)intptr_t` as capability-carrying types, `ptraddr_t` as the abstract
/// address type of §3.10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IntTy {
    /// `_Bool`.
    Bool,
    /// Plain `char` (signed in this implementation, like AArch64... actually
    /// Morello `char` is unsigned on Arm, but CheriBSD uses signed plain
    /// char on RISC-V; we pick signed and the test suite treats plain-char
    /// signedness as implementation-defined).
    Char,
    /// `signed char`.
    SChar,
    /// `unsigned char`.
    UChar,
    /// `short`.
    Short,
    /// `unsigned short`.
    UShort,
    /// `int`.
    Int,
    /// `unsigned int`.
    UInt,
    /// `long` (64-bit).
    Long,
    /// `unsigned long` (64-bit); also `size_t`.
    ULong,
    /// `long long` (64-bit).
    LongLong,
    /// `unsigned long long` (64-bit).
    ULongLong,
    /// `intptr_t`: capability-carrying (§3.3).
    IntPtr,
    /// `uintptr_t`: capability-carrying (§3.3).
    UIntPtr,
    /// `ptraddr_t`: the plain integer address type (§3.10); unsigned 64-bit.
    PtrAddr,
}

impl IntTy {
    /// Is the type signed?
    #[must_use]
    pub fn signed(self) -> bool {
        matches!(
            self,
            IntTy::Char
                | IntTy::SChar
                | IntTy::Short
                | IntTy::Int
                | IntTy::Long
                | IntTy::LongLong
                | IntTy::IntPtr
        )
    }

    /// Is this a capability-carrying type (`intptr_t`/`uintptr_t`)?
    #[must_use]
    pub fn is_capability(self) -> bool {
        matches!(self, IntTy::IntPtr | IntTy::UIntPtr)
    }

    /// Width in bits of the *value range* (for arithmetic). `(u)intptr_t`
    /// arithmetic operates on the 64-bit address despite the 16-byte
    /// representation.
    #[must_use]
    pub fn value_bits(self) -> u32 {
        match self {
            IntTy::Bool => 1,
            IntTy::Char | IntTy::SChar | IntTy::UChar => 8,
            IntTy::Short | IntTy::UShort => 16,
            IntTy::Int | IntTy::UInt => 32,
            _ => 64,
        }
    }

    /// Integer conversion rank. §3.7: `(u)intptr_t` outrank every standard
    /// integer type.
    #[must_use]
    pub fn rank(self) -> u32 {
        match self {
            IntTy::Bool => 0,
            IntTy::Char | IntTy::SChar | IntTy::UChar => 1,
            IntTy::Short | IntTy::UShort => 2,
            IntTy::Int | IntTy::UInt => 3,
            IntTy::Long | IntTy::ULong | IntTy::PtrAddr => 4,
            IntTy::LongLong | IntTy::ULongLong => 5,
            IntTy::IntPtr | IntTy::UIntPtr => 6,
        }
    }

    /// The unsigned counterpart of this type (self if already unsigned).
    #[must_use]
    pub fn to_unsigned(self) -> IntTy {
        match self {
            IntTy::Char | IntTy::SChar => IntTy::UChar,
            IntTy::Short => IntTy::UShort,
            IntTy::Int => IntTy::UInt,
            IntTy::Long => IntTy::ULong,
            IntTy::LongLong => IntTy::ULongLong,
            IntTy::IntPtr => IntTy::UIntPtr,
            other => other,
        }
    }

    /// Smallest representable value.
    #[must_use]
    pub fn min(self) -> i128 {
        if self.signed() {
            -(1i128 << (self.value_bits() - 1))
        } else {
            0
        }
    }

    /// Largest representable value.
    #[must_use]
    pub fn max(self) -> i128 {
        if self == IntTy::Bool {
            1
        } else if self.signed() {
            (1i128 << (self.value_bits() - 1)) - 1
        } else {
            (1i128 << self.value_bits()) - 1
        }
    }

    /// Wrap `v` into this type's range, modular for unsigned types and
    /// two's-complement for signed ones (used for casts; plain signed
    /// arithmetic overflow is UB, handled separately).
    #[must_use]
    pub fn wrap(self, v: i128) -> i128 {
        let bits = self.value_bits();
        if bits >= 128 {
            return v;
        }
        if self == IntTy::Bool {
            return i128::from(v != 0);
        }
        let m = v & ((1i128 << bits) - 1);
        if self.signed() && (m >> (bits - 1)) & 1 == 1 {
            m - (1i128 << bits)
        } else {
            m
        }
    }

    /// Does `v` fit this type without wrapping?
    #[must_use]
    pub fn fits(self, v: i128) -> bool {
        v >= self.min() && v <= self.max()
    }
}

impl fmt::Display for IntTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IntTy::Bool => "_Bool",
            IntTy::Char => "char",
            IntTy::SChar => "signed char",
            IntTy::UChar => "unsigned char",
            IntTy::Short => "short",
            IntTy::UShort => "unsigned short",
            IntTy::Int => "int",
            IntTy::UInt => "unsigned int",
            IntTy::Long => "long",
            IntTy::ULong => "unsigned long",
            IntTy::LongLong => "long long",
            IntTy::ULongLong => "unsigned long long",
            IntTy::IntPtr => "intptr_t",
            IntTy::UIntPtr => "uintptr_t",
            IntTy::PtrAddr => "ptraddr_t",
        };
        f.write_str(s)
    }
}

/// Floating-point types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FloatTy {
    /// `float` (IEEE binary32).
    F32,
    /// `double` (IEEE binary64).
    F64,
}

impl FloatTy {
    /// Size in bytes.
    #[must_use]
    pub fn size(self) -> u64 {
        match self {
            FloatTy::F32 => 4,
            FloatTy::F64 => 8,
        }
    }
}

impl fmt::Display for FloatTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FloatTy::F32 => "float",
            FloatTy::F64 => "double",
        })
    }
}

/// Identifier of a struct or union layout in the [`TypeTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StructId(pub usize);

/// A C type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// `void`.
    Void,
    /// An integer type.
    Int(IntTy),
    /// A floating-point type (the Cerberus memory interface covers
    /// "integer, floating point, and pointer memory values", §4.3).
    Float(FloatTy),
    /// A pointer; `const_pointee` records a `const`-qualified pointee
    /// (affects the write permission of derived capabilities, §3.9).
    Ptr {
        /// The pointed-to type.
        pointee: Box<Ty>,
        /// Pointee is `const`-qualified.
        const_pointee: bool,
    },
    /// An array with optionally-known length.
    Array(Box<Ty>, Option<u64>),
    /// A struct type (layout in the [`TypeTable`]).
    Struct(StructId),
    /// A union type (layout in the [`TypeTable`]).
    Union(StructId),
    /// A function type.
    Func {
        /// Return type.
        ret: Box<Ty>,
        /// Parameter types.
        params: Vec<Ty>,
        /// Accepts extra (variadic) arguments.
        variadic: bool,
    },
}

impl Ty {
    /// Shorthand for `int`.
    #[must_use]
    pub fn int() -> Ty {
        Ty::Int(IntTy::Int)
    }

    /// Shorthand for a non-const pointer to `t`.
    #[must_use]
    pub fn ptr(t: Ty) -> Ty {
        Ty::Ptr {
            pointee: Box::new(t),
            const_pointee: false,
        }
    }

    /// Is this an integer type?
    #[must_use]
    pub fn as_int(&self) -> Option<IntTy> {
        match self {
            Ty::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Is this a pointer type?
    #[must_use]
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr { .. })
    }

    /// Is this a scalar (integer, float or pointer) type?
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::Int(_) | Ty::Float(_) | Ty::Ptr { .. })
    }

    /// The floating-point type, if any.
    #[must_use]
    pub fn as_float(&self) -> Option<FloatTy> {
        match self {
            Ty::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Does a value of this type carry a capability (pointer or
    /// `(u)intptr_t`)?
    #[must_use]
    pub fn is_capability_carrying(&self) -> bool {
        match self {
            Ty::Ptr { .. } => true,
            Ty::Int(i) => i.is_capability(),
            _ => false,
        }
    }

    /// The pointee type, for pointers and arrays.
    #[must_use]
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr { pointee, .. } => Some(pointee),
            Ty::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::Int(i) => write!(f, "{i}"),
            Ty::Float(t) => write!(f, "{t}"),
            Ty::Ptr {
                pointee,
                const_pointee,
            } => {
                if *const_pointee {
                    write!(f, "const ")?;
                }
                write!(f, "{pointee}*")
            }
            Ty::Array(t, Some(n)) => write!(f, "{t}[{n}]"),
            Ty::Array(t, None) => write!(f, "{t}[]"),
            Ty::Struct(id) => write!(f, "struct#{}", id.0),
            Ty::Union(id) => write!(f, "union#{}", id.0),
            Ty::Func { ret, params, .. } => {
                write!(f, "{ret}(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A field of a struct or union layout.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// Byte offset within the aggregate (0 for union members).
    pub offset: u64,
}

/// Layout of a struct or union.
#[derive(Clone, Debug)]
pub struct StructLayout {
    /// Tag name (or a generated name for anonymous aggregates).
    pub name: String,
    /// Is this a union?
    pub is_union: bool,
    /// The fields, with offsets assigned.
    pub fields: Vec<Field>,
    /// Total size in bytes (with tail padding).
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
}

/// The target data layout: how big pointers are in memory. Capability mode
/// gives 16-byte pointers, the baseline gives 8.
#[derive(Clone, Copy, Debug)]
pub struct TargetLayout {
    /// Size and alignment of pointers and `(u)intptr_t` in bytes.
    pub ptr_size: u64,
}

impl Default for TargetLayout {
    fn default() -> Self {
        TargetLayout { ptr_size: 16 }
    }
}

/// Type table: struct/union layouts and size/alignment computation.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    /// All struct/union layouts, indexed by [`StructId`].
    pub structs: Vec<StructLayout>,
    /// The target data layout.
    pub layout: TargetLayout,
}

impl TypeTable {
    /// New table for a target layout.
    #[must_use]
    pub fn new(layout: TargetLayout) -> Self {
        TypeTable {
            structs: Vec::new(),
            layout,
        }
    }

    /// Size of a type in bytes.
    ///
    /// # Panics
    ///
    /// Panics on `void`, function types and unsized arrays (the type
    /// checker rejects `sizeof` on those first).
    #[must_use]
    pub fn size_of(&self, ty: &Ty) -> u64 {
        match ty {
            Ty::Void => panic!("sizeof(void)"),
            Ty::Int(i) => {
                if i.is_capability() {
                    self.layout.ptr_size
                } else {
                    u64::from(i.value_bits().max(8) / 8)
                }
            }
            Ty::Float(t) => t.size(),
            Ty::Ptr { .. } => self.layout.ptr_size,
            Ty::Array(t, Some(n)) => self.size_of(t) * n,
            Ty::Array(_, None) => panic!("sizeof(unsized array)"),
            Ty::Struct(id) | Ty::Union(id) => self.structs[id.0].size,
            Ty::Func { .. } => panic!("sizeof(function)"),
        }
    }

    /// Alignment of a type in bytes.
    #[must_use]
    pub fn align_of(&self, ty: &Ty) -> u64 {
        match ty {
            Ty::Void => 1,
            Ty::Int(i) => {
                if i.is_capability() {
                    self.layout.ptr_size
                } else {
                    u64::from(i.value_bits().max(8) / 8)
                }
            }
            Ty::Float(t) => t.size(),
            Ty::Ptr { .. } => self.layout.ptr_size,
            Ty::Array(t, _) => self.align_of(t),
            Ty::Struct(id) | Ty::Union(id) => self.structs[id.0].align,
            Ty::Func { .. } => 1,
        }
    }

    /// Reserve a struct id before its body is parsed, so self-referential
    /// types (`struct node { struct node *next; }`) can name themselves.
    pub fn reserve_struct(&mut self, name: &str, is_union: bool) -> StructId {
        let id = StructId(self.structs.len());
        self.structs.push(StructLayout {
            name: name.to_string(),
            is_union,
            fields: Vec::new(),
            size: 1,
            align: 1,
        });
        id
    }

    /// Complete a reserved struct with its members, computing offsets.
    pub fn complete_struct(
        &mut self,
        id: StructId,
        is_union: bool,
        members: Vec<(String, Ty)>,
    ) {
        let layout = self.layout_members(is_union, members);
        let name = self.structs[id.0].name.clone();
        self.structs[id.0] = StructLayout { name, ..layout };
    }

    fn layout_members(&self, is_union: bool, members: Vec<(String, Ty)>) -> StructLayout {
        let mut fields = Vec::new();
        let mut offset = 0u64;
        let mut align = 1u64;
        let mut size = 0u64;
        for (fname, fty) in members {
            let fa = self.align_of(&fty);
            let fs = self.size_of(&fty);
            align = align.max(fa);
            let foff = if is_union {
                0
            } else {
                offset = (offset + fa - 1) & !(fa - 1);
                let o = offset;
                offset += fs;
                o
            };
            if is_union {
                size = size.max(fs);
            }
            fields.push(Field {
                name: fname,
                ty: fty,
                offset: foff,
            });
        }
        if !is_union {
            size = offset;
        }
        size = (size + align - 1) & !(align - 1);
        StructLayout {
            name: String::new(),
            is_union,
            fields,
            size: size.max(1),
            align,
        }
    }

    /// Register a struct/union layout in one step, computing offsets.
    pub fn define_struct(
        &mut self,
        name: &str,
        is_union: bool,
        members: Vec<(String, Ty)>,
    ) -> StructId {
        let id = self.reserve_struct(name, is_union);
        self.complete_struct(id, is_union, members);
        id
    }

    /// Find a field by name.
    #[must_use]
    pub fn field(&self, id: StructId, name: &str) -> Option<&Field> {
        self.structs[id.0].fields.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intptr_has_highest_rank() {
        for t in [
            IntTy::Bool,
            IntTy::Char,
            IntTy::Short,
            IntTy::Int,
            IntTy::Long,
            IntTy::ULong,
            IntTy::LongLong,
            IntTy::PtrAddr,
        ] {
            assert!(t.rank() < IntTy::IntPtr.rank(), "{t} must rank below intptr_t");
            assert!(t.rank() < IntTy::UIntPtr.rank());
        }
    }

    #[test]
    fn wrap_signed_and_unsigned() {
        assert_eq!(IntTy::UChar.wrap(256), 0);
        assert_eq!(IntTy::SChar.wrap(128), -128);
        assert_eq!(IntTy::Int.wrap(i128::from(u32::MAX)), -1);
        assert_eq!(IntTy::Bool.wrap(42), 1);
        assert_eq!(IntTy::UIntPtr.wrap(-1), i128::from(u64::MAX));
    }

    #[test]
    fn capability_types_are_16_bytes_but_64_bit_valued() {
        let tt = TypeTable::new(TargetLayout { ptr_size: 16 });
        assert_eq!(tt.size_of(&Ty::Int(IntTy::IntPtr)), 16);
        assert_eq!(tt.size_of(&Ty::ptr(Ty::int())), 16);
        assert_eq!(IntTy::IntPtr.value_bits(), 64);
        // ... and in the baseline model they are 8 bytes.
        let tt8 = TypeTable::new(TargetLayout { ptr_size: 8 });
        assert_eq!(tt8.size_of(&Ty::Int(IntTy::UIntPtr)), 8);
    }

    #[test]
    fn struct_layout_with_capability_alignment() {
        let mut tt = TypeTable::new(TargetLayout { ptr_size: 16 });
        let id = tt.define_struct(
            "s",
            false,
            vec![
                ("c".into(), Ty::Int(IntTy::Char)),
                ("p".into(), Ty::ptr(Ty::int())),
                ("n".into(), Ty::int()),
            ],
        );
        let s = &tt.structs[id.0];
        assert_eq!(s.fields[0].offset, 0);
        assert_eq!(s.fields[1].offset, 16, "capability field 16-aligned");
        assert_eq!(s.fields[2].offset, 32);
        assert_eq!(s.size, 48, "tail padding to 16");
        assert_eq!(s.align, 16);
    }

    #[test]
    fn union_layout() {
        let mut tt = TypeTable::new(TargetLayout { ptr_size: 16 });
        let id = tt.define_struct(
            "ptr",
            true,
            vec![
                ("ptr".into(), Ty::ptr(Ty::int())),
                ("iptr".into(), Ty::Int(IntTy::UIntPtr)),
            ],
        );
        let s = &tt.structs[id.0];
        assert!(s.is_union);
        assert_eq!(s.fields[0].offset, 0);
        assert_eq!(s.fields[1].offset, 0);
        assert_eq!(s.size, 16);
    }

    #[test]
    fn array_size() {
        let tt = TypeTable::new(TargetLayout::default());
        assert_eq!(tt.size_of(&Ty::Array(Box::new(Ty::int()), Some(10))), 40);
    }

    #[test]
    fn min_max_values() {
        assert_eq!(IntTy::Int.max(), i128::from(i32::MAX));
        assert_eq!(IntTy::Int.min(), i128::from(i32::MIN));
        assert_eq!(IntTy::UInt.max(), i128::from(u32::MAX));
        assert_eq!(IntTy::UIntPtr.max(), i128::from(u64::MAX));
        assert!(IntTy::Int.fits(42));
        assert!(!IntTy::Int.fits(1i128 << 40));
    }
}
