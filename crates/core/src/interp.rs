//! The evaluator: executes the typed IR against the memory object model.
//!
//! This is the Rust counterpart of Cerberus' Core driver specialised to our
//! mini-Core (§4 of the paper). All memory behaviour — capability checks,
//! provenance, ghost state, undefined behaviours — lives in `cheri-mem`;
//! the evaluator contributes expression evaluation order, integer semantics
//! (overflow UB, conversions), capability derivation at arithmetic
//! (§3.3/§3.7), calls, and the builtins/intrinsics.

use std::collections::HashMap;

use cheri_cap::{Capability, GhostState, Perms};
use cheri_mem::{AllocKind, CheriMemory, IntVal, MemError, MemEvent, Provenance, PtrVal, Ub};

use crate::ast::{BinOp, UnOp};
use crate::profile::Profile;
use crate::report::{Outcome, RunResult};
use crate::tast::*;
use crate::types::{FloatTy, IntTy, Ty, TypeTable};

/// Runtime value.
#[derive(Clone, Debug)]
pub enum Value<C> {
    /// No value.
    Void,
    /// Integer (possibly capability-carrying).
    Int {
        /// Its C type.
        ity: IntTy,
        /// The value.
        v: IntVal<C>,
    },
    /// Floating-point value (kept at f64 precision; f32 results are
    /// rounded through f32 after every operation).
    Float {
        /// Its C type.
        fty: FloatTy,
        /// The value.
        v: f64,
    },
    /// Pointer.
    Ptr {
        /// The pointer's C type.
        ty: Ty,
        /// The value.
        v: PtrVal<C>,
    },
}

impl<C: Capability> Value<C> {
    pub(crate) fn truthy(&self) -> bool {
        match self {
            Value::Void => false,
            Value::Int { v, .. } => v.value() != 0,
            Value::Float { v, .. } => *v != 0.0,
            Value::Ptr { v, .. } => v.addr() != 0,
        }
    }

    pub(crate) fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float { v, .. } => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_int(&self) -> Option<&IntVal<C>> {
        match self {
            Value::Int { v, .. } => Some(v),
            _ => None,
        }
    }

    pub(crate) fn as_ptr(&self) -> Option<&PtrVal<C>> {
        match self {
            Value::Ptr { v, .. } => Some(v),
            _ => None,
        }
    }

    /// The capability carried by this value, if any.
    fn cap(&self) -> Option<&C> {
        match self {
            Value::Ptr { v, .. } => Some(&v.cap),
            Value::Int { v, .. } => v.as_cap(),
            Value::Float { .. } | Value::Void => None,
        }
    }
}

/// Control-flow signal from statement execution.
enum Flow<C> {
    Normal,
    Break,
    Continue,
    Return(Value<C>),
}

/// Internal error/exit channel.
pub(crate) enum Stop {
    Mem(MemError),
    Assert(String),
    Abort,
    Exit(i64),
    Limit(String),
    Unsupported(String),
}

impl From<MemError> for Stop {
    fn from(e: MemError) -> Self {
        Stop::Mem(e)
    }
}

pub(crate) type EResult<T> = Result<T, Stop>;

/// Exit-status conversion for the value `main` returns, shared by both
/// engines so they agree by construction (the engine-differential contract
/// compares outcome labels): integer returns are delivered as the value's
/// low 64 bits — an `unsigned long` above 2⁶³ wraps negative, exactly like
/// a process exit status through the C ABI — and non-integer returns
/// (void/fallthrough) exit 0.
pub(crate) fn exit_code<C: Capability>(v: &Value<C>) -> i64 {
    match v {
        Value::Int { v, .. } => v.value() as i64,
        _ => 0,
    }
}

/// Which execution engine drives a run. Both engines share the memory
/// model, value semantics and builtins; they differ only in how control
/// flow is dispatched (recursive tree walk vs flat bytecode loop), so
/// outcomes, statistics and event traces are identical (pinned by the
/// `engine_differential` property test).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The original recursive AST walker — kept as the differential
    /// oracle for the bytecode engine (see DESIGN.md §10).
    Tree,
    /// The flat bytecode VM over the lowered IR (default; ~an order of
    /// magnitude faster on dispatch-bound programs).
    #[default]
    Bytecode,
}

struct Frame<C: Capability> {
    vars: HashMap<String, (PtrVal<C>, Ty)>,
    to_kill: Vec<PtrVal<C>>,
}

/// The interpreter.
pub struct Interp<'p, C: Capability> {
    prog: &'p TProgram,
    pub(crate) profile: &'p Profile,
    /// The memory object model instance (exposed for statistics).
    pub mem: CheriMemory<C>,
    pub(crate) globals: HashMap<String, (PtrVal<C>, Ty)>,
    pub(crate) func_ptrs: HashMap<String, PtrVal<C>>,
    pub(crate) addr_to_func: HashMap<u64, String>,
    strings: HashMap<String, PtrVal<C>>,
    stdout: String,
    stderr: String,
    steps: u64,
    max_steps: u64,
    pub(crate) call_depth: u32,
    unspecified_reads: u32,
    engine: Engine,
    ir_cache: Option<std::sync::Arc<crate::ir::IrProgram>>,
}

fn types_size(tt: &TypeTable, ty: &Ty) -> u64 {
    tt.size_of(ty)
}

impl<'p, C: Capability> Interp<'p, C> {
    /// Create an interpreter for `prog` under `profile`.
    #[must_use]
    pub fn new(prog: &'p TProgram, profile: &'p Profile) -> Self {
        Interp {
            prog,
            profile,
            mem: CheriMemory::new(profile.mem),
            globals: HashMap::new(),
            func_ptrs: HashMap::new(),
            addr_to_func: HashMap::new(),
            strings: HashMap::new(),
            stdout: String::new(),
            stderr: String::new(),
            steps: 0,
            max_steps: 50_000_000,
            call_depth: 0,
            unspecified_reads: 0,
            engine: Engine::default(),
            ir_cache: None,
        }
    }

    /// Select the execution engine (defaults to [`Engine::Bytecode`]).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Supply a pre-lowered IR program (implies [`Engine::Bytecode`]),
    /// avoiding re-lowering when the same program is run repeatedly —
    /// e.g. across the 7 profiles of a `--all` comparison.
    #[must_use]
    pub fn with_ir(mut self, ir: std::sync::Arc<crate::ir::IrProgram>) -> Self {
        self.ir_cache = Some(ir);
        self.engine = Engine::Bytecode;
        self
    }

    /// Adopt `mem` as this interpreter's memory instance, arena-resetting
    /// it to this profile's configuration first
    /// ([`CheriMemory::reset`]). Paired with [`Interp::run_recycling`],
    /// this lets a long-lived caller (the `cheri-serve` batch workers)
    /// reuse one memory arena across jobs instead of reallocating; the
    /// reset guarantees the observable behaviour is identical to a fresh
    /// instance.
    #[must_use]
    pub fn with_recycled_memory(mut self, mut mem: CheriMemory<C>) -> Self {
        mem.reset(self.profile.mem);
        self.mem = mem;
        self
    }

    /// Run the program: initialise globals and functions, call `main`.
    #[must_use] 
    pub fn run(self) -> RunResult {
        self.run_with_trace().0
    }

    /// Like [`Interp::run`], returning the memory-event trace rendered in
    /// the legacy text format (empty unless [`CheriMemory::enable_trace`]
    /// was called on [`Interp::mem`] first). The trace is what makes the
    /// executable semantics usable as a test oracle (§7).
    #[must_use] 
    pub fn run_with_trace(mut self) -> (RunResult, Vec<String>) {
        let outcome = self.run_to_outcome();
        let trace = self.mem.take_trace();
        (self.into_result(outcome), trace)
    }

    /// Like [`Interp::run`], returning the typed memory-event stream.
    /// Installs a collecting sink if none is present; a terminal
    /// [`MemEvent::Exit`]/[`MemEvent::Ub`]/[`MemEvent::Trap`] event closes
    /// the stream, so two profiles' streams can be diffed end to end with
    /// `cheri_obs::diff`.
    #[must_use]
    pub fn run_with_events(mut self) -> (RunResult, Vec<MemEvent>) {
        if !self.mem.sink_active() {
            self.mem.enable_trace();
        }
        let outcome = self.run_to_outcome();
        let events = self.mem.take_events();
        (self.into_result(outcome), events)
    }

    /// Like [`Interp::run`], additionally returning the memory instance so
    /// the caller can recycle its arena into the next run (see
    /// [`Interp::with_recycled_memory`]).
    #[must_use]
    pub fn run_recycling(mut self) -> (RunResult, CheriMemory<C>) {
        let outcome = self.run_to_outcome();
        self.into_result_and_mem(outcome)
    }

    /// [`Interp::run_with_events`] + [`Interp::run_recycling`]: the typed
    /// event stream *and* the recyclable memory instance.
    #[must_use]
    pub fn run_with_events_recycling(mut self) -> (RunResult, Vec<MemEvent>, CheriMemory<C>) {
        if !self.mem.sink_active() {
            self.mem.enable_trace();
        }
        let outcome = self.run_to_outcome();
        let events = self.mem.take_events();
        let (result, mem) = self.into_result_and_mem(outcome);
        (result, events, mem)
    }

    /// Run to completion and emit the terminal event into the sink.
    fn run_to_outcome(&mut self) -> Outcome {
        let outcome = match self.run_inner() {
            Ok(code) => Outcome::Exit(code),
            Err(Stop::Mem(e)) => e.into(),
            Err(Stop::Assert(m)) => Outcome::AssertFailed(m),
            Err(Stop::Abort) => Outcome::Abort,
            Err(Stop::Exit(c)) => Outcome::Exit(c),
            Err(Stop::Limit(m) | Stop::Unsupported(m)) => Outcome::Error(m),
        };
        match &outcome {
            Outcome::Exit(c) => {
                let c = *c;
                self.mem.emit(|| MemEvent::Exit(c));
            }
            Outcome::Ub { ub, .. } => {
                let ub = *ub;
                self.mem.emit(|| MemEvent::Ub(ub));
            }
            Outcome::Trap { kind, .. } => {
                let kind = *kind;
                self.mem.emit(|| MemEvent::Trap(kind));
            }
            // Assertion failures, aborts and interpreter errors have no
            // memory-event counterpart; the stream just ends.
            Outcome::AssertFailed(_) | Outcome::Abort | Outcome::Error(_) => {}
        }
        outcome
    }

    fn into_result(self, outcome: Outcome) -> RunResult {
        RunResult {
            outcome,
            stdout: self.stdout,
            stderr: self.stderr,
            unspecified_reads: self.unspecified_reads,
            mem_stats: self.mem.stats,
        }
    }

    /// [`Interp::into_result`], extracting the memory instance for reuse.
    fn into_result_and_mem(mut self, outcome: Outcome) -> (RunResult, CheriMemory<C>) {
        let mem = std::mem::replace(&mut self.mem, CheriMemory::new(self.profile.mem));
        let result = RunResult {
            outcome,
            stdout: std::mem::take(&mut self.stdout),
            stderr: std::mem::take(&mut self.stderr),
            unspecified_reads: self.unspecified_reads,
            mem_stats: mem.stats,
        };
        (result, mem)
    }

    fn run_inner(&mut self) -> EResult<i64> {
        self.setup_world()?;
        match self.engine {
            Engine::Tree => {
                let main = &self.prog.funcs["main"];
                let v = self.call_function(main, Vec::new())?;
                Ok(exit_code(&v))
            }
            Engine::Bytecode => {
                let ir = match self.ir_cache.take() {
                    Some(ir) => ir,
                    None => {
                        std::sync::Arc::new(crate::ir::lower_for(self.prog, &self.profile.opt))
                    }
                };
                let code = crate::ir::vm::execute(self, ir.as_ref());
                self.ir_cache = Some(ir);
                code
            }
        }
    }

    /// Build the initial world: function sentries, globals (allocated,
    /// zeroed, initialised, frozen if const) and stream handles. Shared
    /// verbatim by both engines, so allocation order — and therefore
    /// every address and provenance identity — is engine-independent.
    fn setup_world(&mut self) -> EResult<()> {
        // Function allocations: every defined function gets a 1-byte
        // allocation so function pointers have provenance, bounds and an
        // EXECUTE-permission sentry capability.
        let mut names: Vec<&String> = self.prog.funcs.keys().collect();
        names.sort();
        for name in names {
            let p = self
                .mem
                .allocate_kind(name, 1, 16, AllocKind::Function, true, Some(&[0]))?;
            let sentry = PtrVal::new(p.prov, p.cap.seal_entry());
            self.addr_to_func.insert(p.addr(), name.clone());
            self.func_ptrs.insert(name.clone(), sentry);
        }
        // Globals, in declaration order.
        for g in &self.prog.globals {
            let size = types_size(&self.prog.types, &g.ty);
            let align = self.prog.types.align_of(&g.ty);
            let p = self
                .mem
                .allocate_kind(&g.name, size, align, AllocKind::Static, false, None)?;
            self.globals.insert(g.name.clone(), (p, g.ty.clone()));
        }
        // Predefined stream handles.
        for stream in ["stderr", "stdout"] {
            if !self.globals.contains_key(stream) {
                let p = self.mem.allocate_kind(
                    stream,
                    16,
                    16,
                    AllocKind::Static,
                    false,
                    Some(&[0; 16]),
                )?;
                self.globals
                    .insert(stream.to_string(), (p, Ty::ptr(Ty::Void)));
            }
        }
        // Run global initialisers (in a pseudo-frame).
        let mut frame = Frame {
            vars: HashMap::new(),
            to_kill: Vec::new(),
        };
        for g in &self.prog.globals {
            // Zero-initialise statics first (C semantics for objects with
            // static storage duration).
            let (p, ty) = self.globals[&g.name].clone();
            let size = types_size(&self.prog.types, &ty);
            self.mem.memset(&p, 0, size)?;
            if let Some(init) = &g.init {
                self.run_init(&mut frame, &p, &ty, init)?;
            }
            if g.is_const {
                let frozen = self.mem.freeze_readonly(&p)?;
                self.globals.insert(g.name.clone(), (frozen, ty));
            }
        }
        Ok(())
    }

    pub(crate) fn tick(&mut self) -> EResult<()> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(Stop::Limit("step limit exceeded".into()));
        }
        Ok(())
    }

    pub(crate) fn ub(&self, ub: Ub, detail: impl Into<String>) -> Stop {
        Stop::Mem(MemError::ub(ub, detail))
    }

    // ── Values and conversions ───────────────────────────────────────────

    /// Materialise an integer constant at a given type: capability-carrying
    /// types get a NULL-derived capability with the value as address.
    pub(crate) fn mk_int(&self, ity: IntTy, v: i128) -> IntVal<C> {
        if ity.is_capability() {
            IntVal::Cap {
                signed: ity.signed(),
                cap: C::null().with_address(v as u64),
                prov: Provenance::Empty,
            }
        } else {
            IntVal::Num(ity.wrap(v))
        }
    }

    /// Convert an integer value between integer types (the runtime half of
    /// `CastKind::IntToInt`).
    pub(crate) fn convert_int(&self, v: &IntVal<C>, _from: IntTy, to: IntTy) -> IntVal<C> {
        if to.is_capability() {
            match v {
                IntVal::Cap { cap, prov, .. } => IntVal::Cap {
                    signed: to.signed(),
                    cap: cap.clone(),
                    prov: *prov,
                },
                IntVal::Num(n) => self.mk_int(to, *n),
            }
        } else {
            IntVal::Num(to.wrap(v.value()))
        }
    }

    /// Derive a capability-carrying arithmetic result (§3.3 option (c)):
    /// the result address is set on the derivation-source capability; if
    /// that makes it non-representable, the tag is cleared and — in the
    /// abstract machine — the ghost state records the excursion.
    pub(crate) fn derive_cap_result(&self, src: &IntVal<C>, ity: IntTy, addr: i128) -> IntVal<C> {
        let addr = ity.wrap(addr) as u64;
        let ghosted = match src.as_cap() {
            Some(cap) => {
                cap.tag() && !cap.is_representable(addr) && self.profile.mem.abstract_ub
            }
            None => false,
        };
        let mut out = src.derive_with_address(ity.signed(), addr);
        if ghosted {
            if let IntVal::Cap { cap, .. } = &mut out {
                *cap = cap.with_ghost(cap.ghost().join(GhostState::UNSPECIFIED));
            }
        } else if let (IntVal::Cap { cap: out_cap, .. }, Some(src_cap)) =
            (&mut out, src.as_cap())
        {
            // Ghost state propagates through derivation.
            *out_cap = out_cap.with_ghost(src_cap.ghost());
        }
        out
    }

    // ── Memory access helpers ────────────────────────────────────────────

    pub(crate) fn load_value(&mut self, p: &PtrVal<C>, ty: &Ty) -> EResult<Value<C>> {
        match ty {
            Ty::Int(ity) => {
                let size = types_size(&self.prog.types, ty);
                let v = self
                    .mem
                    .load_int(p, size, ity.signed(), ity.is_capability())?;
                let v = match v {
                    IntVal::Num(n) => IntVal::Num(ity.wrap(n)),
                    cap @ IntVal::Cap { .. } => cap,
                };
                Ok(Value::Int { ity: *ity, v })
            }
            Ty::Float(fty) => {
                let size = fty.size();
                let bits = self.mem.load_int(p, size, false, false)?.value() as u64;
                let v = match fty {
                    FloatTy::F32 => f64::from(f32::from_bits(bits as u32)),
                    FloatTy::F64 => f64::from_bits(bits),
                };
                Ok(Value::Float { fty: *fty, v })
            }
            Ty::Ptr { .. } => {
                let v = self.mem.load_ptr(p)?;
                Ok(Value::Ptr {
                    ty: ty.clone(),
                    v,
                })
            }
            t => Err(Stop::Unsupported(format!("load of type {t}"))),
        }
    }

    pub(crate) fn store_value(&mut self, p: &PtrVal<C>, ty: &Ty, v: &Value<C>) -> EResult<()> {
        match (ty, v) {
            (Ty::Int(_), Value::Int { v, .. }) => {
                let size = types_size(&self.prog.types, ty);
                if self.profile.opt.elide_identity_writes && !v.is_cap() {
                    // Optimisation emulation (§3.5): skip stores that leave
                    // memory unchanged — so they do not invalidate stored
                    // capabilities.
                    if let Ok(old) = self.mem.load_int(p, size, false, false) {
                        if old.value() == IntVal::<C>::Num(v.value()).value() {
                            return Ok(());
                        }
                    }
                }
                self.mem.store_int(p, size, v)?;
                Ok(())
            }
            (Ty::Float(fty), Value::Float { v, .. }) => {
                let (size, bits) = match fty {
                    FloatTy::F32 => (4, u64::from((*v as f32).to_bits())),
                    FloatTy::F64 => (8, v.to_bits()),
                };
                self.mem.store_int(p, size, &IntVal::Num(i128::from(bits)))?;
                Ok(())
            }
            (Ty::Ptr { .. }, Value::Ptr { v, .. }) => {
                self.mem.store_ptr(p, v)?;
                Ok(())
            }
            (Ty::Ptr { .. }, Value::Int { v, .. }) => {
                // Storing a capability-carrying integer into a pointer slot
                // (via unions this cannot happen — union members are typed —
                // but conversions can produce it transiently).
                let ptr = self.mem.cast_int_to_ptr(v);
                self.mem.store_ptr(p, &ptr)?;
                Ok(())
            }
            (t, _) => Err(Stop::Unsupported(format!("store of type {t}"))),
        }
    }

    /// §3.8 strict sub-object bounds: when enabled, taking the address of
    /// (or decaying) a struct member or array element narrows the
    /// capability to that sub-object's footprint. The paper's default (and
    /// ours) leaves this off to keep the container-of idiom working.
    fn maybe_narrow_subobject(&self, p: PtrVal<C>, lv: &TExpr, _res_ty: &Ty) -> PtrVal<C> {
        if !self.profile.subobject_bounds || !self.profile.mem.capabilities {
            return p;
        }
        if !matches!(lv.kind, TExprKind::LvMember(..)) {
            return p;
        }
        let size = types_size(&self.prog.types, &lv.ty);
        PtrVal::new(p.prov, p.cap.with_bounds(p.addr(), size))
    }

    pub(crate) fn intern_string(&mut self, s: &str) -> EResult<PtrVal<C>> {
        if let Some(p) = self.strings.get(s) {
            return Ok(p.clone());
        }
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        let p = self.mem.allocate_kind(
            "string-literal",
            bytes.len() as u64,
            1,
            AllocKind::StringLiteral,
            true,
            Some(&bytes),
        )?;
        self.strings.insert(s.to_string(), p.clone());
        Ok(p)
    }

    // ── Initialisers ─────────────────────────────────────────────────────

    fn run_init(
        &mut self,
        frame: &mut Frame<C>,
        p: &PtrVal<C>,
        ty: &Ty,
        init: &TInit,
    ) -> EResult<()> {
        match (ty, init) {
            (_, TInit::Scalar(e)) => {
                let v = self.eval(frame, e)?;
                self.store_value(p, ty, &v)
            }
            (Ty::Array(elem, _), TInit::Str(s)) => {
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                for (i, b) in bytes.iter().enumerate() {
                    let ep = self.mem.member_shift(p, i as u64 * types_size(&self.prog.types, elem));
                    self.mem.store_int(&ep, 1, &IntVal::Num(i128::from(*b)))?;
                }
                Ok(())
            }
            (Ty::Array(elem, _), TInit::List(items)) => {
                let esz = types_size(&self.prog.types, elem);
                for (i, item) in items.iter().enumerate() {
                    let ep = self.mem.member_shift(p, i as u64 * esz);
                    self.run_init(frame, &ep, elem, item)?;
                }
                Ok(())
            }
            (Ty::Struct(id) | Ty::Union(id), TInit::List(items)) => {
                let fields: Vec<(u64, Ty)> = self.prog.types.structs[id.0]
                    .fields
                    .iter()
                    .map(|f| (f.offset, f.ty.clone()))
                    .collect();
                for (item, (off, fty)) in items.iter().zip(fields.iter()) {
                    let fp = self.mem.member_shift(p, *off);
                    self.run_init(frame, &fp, fty, item)?;
                }
                Ok(())
            }
            (t, _) => Err(Stop::Unsupported(format!("initialiser for type {t}"))),
        }
    }

    // ── Statements ───────────────────────────────────────────────────────

    fn exec_block(&mut self, frame: &mut Frame<C>, stmts: &[TStmt]) -> EResult<Flow<C>> {
        for s in stmts {
            match self.exec(frame, s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, frame: &mut Frame<C>, s: &TStmt) -> EResult<Flow<C>> {
        self.tick()?;
        match s {
            TStmt::Decl {
                name,
                ty,
                is_const,
                init,
                ..
            } => {
                let size = types_size(&self.prog.types, ty);
                let align = self.prog.types.align_of(ty);
                let pretty = name.split('#').next().unwrap_or(name);
                let p = self.mem.allocate_object(pretty, size, align, false, None)?;
                frame.to_kill.push(p.clone());
                if let Some(init) = init {
                    if matches!(init, TInit::List(_) | TInit::Str(_)) {
                        // Aggregates with initialisers: remaining members
                        // are zero-initialised.
                        self.mem.memset(&p, 0, size)?;
                    }
                    self.run_init(frame, &p, ty, init)?;
                }
                let p = if *is_const {
                    self.mem.freeze_readonly(&p)?
                } else {
                    p
                };
                frame.vars.insert(name.clone(), (p, ty.clone()));
                Ok(Flow::Normal)
            }
            TStmt::Expr(e) => {
                self.eval(frame, e)?;
                Ok(Flow::Normal)
            }
            TStmt::Block(body) => self.exec_block(frame, body),
            TStmt::If(c, t, e) => {
                let cv = self.eval(frame, c)?;
                if cv.truthy() {
                    self.exec(frame, t)
                } else if let Some(e) = e {
                    self.exec(frame, e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            TStmt::While(c, body) => loop {
                let cv = self.eval(frame, c)?;
                if !cv.truthy() {
                    return Ok(Flow::Normal);
                }
                match self.exec(frame, body)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                    Flow::Normal | Flow::Continue => {}
                }
            },
            TStmt::DoWhile(body, c) => loop {
                match self.exec(frame, body)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                    Flow::Normal | Flow::Continue => {}
                }
                let cv = self.eval(frame, c)?;
                if !cv.truthy() {
                    return Ok(Flow::Normal);
                }
            },
            TStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.exec(frame, init)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(frame, c)?.truthy() {
                            return Ok(Flow::Normal);
                        }
                    }
                    match self.exec(frame, body)? {
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(s) = step {
                        self.eval(frame, s)?;
                    }
                }
            }
            TStmt::Switch(scrut, cases) => {
                let v = self.eval(frame, scrut)?;
                let n = v.as_int().map(IntVal::value).unwrap_or(0);
                let mut start = cases.iter().position(|(val, _)| *val == Some(n));
                if start.is_none() {
                    start = cases.iter().position(|(val, _)| val.is_none());
                }
                if let Some(start) = start {
                    for (_, body) in &cases[start..] {
                        match self.exec_block(frame, body)? {
                            Flow::Break => return Ok(Flow::Normal),
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            Flow::Continue => return Ok(Flow::Continue),
                            Flow::Normal => {}
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            TStmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(frame, e)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            TStmt::Break => Ok(Flow::Break),
            TStmt::Continue => Ok(Flow::Continue),
            TStmt::OptMemcpy { dst, src, n } => {
                let d = self.eval(frame, dst)?;
                let s = self.eval(frame, src)?;
                let n = self.eval(frame, n)?;
                let (d, s) = match (d.as_ptr(), s.as_ptr()) {
                    (Some(d), Some(s)) => (d.clone(), s.clone()),
                    _ => return Err(Stop::Unsupported("OptMemcpy operands".into())),
                };
                // A non-integer length is malformed IR, not "copy nothing":
                // stay loud (and identical to the VM) rather than silently
                // diverging from what the optimiser intended.
                let n = n
                    .as_int()
                    .map(IntVal::value)
                    .ok_or_else(|| Stop::Unsupported("OptMemcpy length is not an integer".into()))?
                    as u64;
                self.mem.memcpy(&d, &s, n)?;
                Ok(Flow::Normal)
            }
            TStmt::Empty => Ok(Flow::Normal),
        }
    }

    // ── Expressions ──────────────────────────────────────────────────────

    fn eval_lvalue(&mut self, frame: &mut Frame<C>, e: &TExpr) -> EResult<(PtrVal<C>, Ty)> {
        match &e.kind {
            TExprKind::LvVar(name) => {
                if let Some((p, ty)) = frame.vars.get(name) {
                    return Ok((p.clone(), ty.clone()));
                }
                if let Some((p, ty)) = self.globals.get(name) {
                    return Ok((p.clone(), ty.clone()));
                }
                Err(Stop::Unsupported(format!("unbound variable `{name}`")))
            }
            TExprKind::LvDeref(p) => {
                let v = self.eval(frame, p)?;
                match v {
                    Value::Ptr { v, .. } => Ok((v, e.ty.clone())),
                    Value::Int { v, .. } => {
                        let p = self.mem.cast_int_to_ptr(&v);
                        Ok((p, e.ty.clone()))
                    }
                    Value::Float { .. } | Value::Void => {
                        Err(Stop::Unsupported("deref of non-pointer".into()))
                    }
                }
            }
            TExprKind::LvMember(base, off) => {
                let (p, _) = self.eval_lvalue(frame, base)?;
                Ok((self.mem.member_shift(&p, *off), e.ty.clone()))
            }
            _ => Err(Stop::Unsupported("expected lvalue".into())),
        }
    }

    fn eval(&mut self, frame: &mut Frame<C>, e: &TExpr) -> EResult<Value<C>> {
        self.tick()?;
        match &e.kind {
            TExprKind::ConstInt(v) => {
                let ity = e.ty.as_int().unwrap_or(IntTy::Int);
                Ok(Value::Int {
                    ity,
                    v: self.mk_int(ity, *v),
                })
            }
            TExprKind::ConstFloat(v) => Ok(Value::Float {
                fty: e.ty.as_float().unwrap_or(FloatTy::F64),
                v: *v,
            }),
            TExprKind::StrLit(s) => {
                let p = self.intern_string(s)?;
                Ok(Value::Ptr {
                    ty: e.ty.clone(),
                    v: p,
                })
            }
            TExprKind::LvVar(_) | TExprKind::LvDeref(_) | TExprKind::LvMember(..) => {
                // Bare lvalue in value position should not occur (typeck
                // inserts Load), but evaluate to its address for robustness.
                let (p, _) = self.eval_lvalue(frame, e)?;
                Ok(Value::Ptr {
                    ty: Ty::ptr(e.ty.clone()),
                    v: p,
                })
            }
            TExprKind::Load(lv) => {
                let (p, ty) = self.eval_lvalue(frame, lv)?;
                self.load_value(&p, &ty)
            }
            TExprKind::AddrOf(lv) => {
                let (p, _) = self.eval_lvalue(frame, lv)?;
                let p = self.maybe_narrow_subobject(p, lv, &e.ty);
                Ok(Value::Ptr {
                    ty: e.ty.clone(),
                    v: p,
                })
            }
            TExprKind::Decay(lv) => {
                let (p, _) = self.eval_lvalue(frame, lv)?;
                let p = self.maybe_narrow_subobject(p, lv, &e.ty);
                Ok(Value::Ptr {
                    ty: e.ty.clone(),
                    v: p,
                })
            }
            TExprKind::FuncAddr(name) => {
                let p = self
                    .func_ptrs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported(format!("unknown function `{name}`")))?;
                Ok(Value::Ptr {
                    ty: e.ty.clone(),
                    v: p,
                })
            }
            TExprKind::Binary {
                op,
                lhs,
                rhs,
                derive,
            } => {
                let lv = self.eval(frame, lhs)?;
                let rv = self.eval(frame, rhs)?;
                if lv.as_float().is_some() || rv.as_float().is_some() {
                    return self.binary_float(*op, &lv, &rv, &e.ty);
                }
                self.binary_int(*op, &lv, &rv, e.ty.as_int().unwrap_or(IntTy::Int), *derive)
            }
            TExprKind::Logical { and, lhs, rhs } => {
                let l = self.eval(frame, lhs)?.truthy();
                let v = if *and {
                    l && self.eval(frame, rhs)?.truthy()
                } else {
                    l || self.eval(frame, rhs)?.truthy()
                };
                Ok(Value::Int {
                    ity: IntTy::Int,
                    v: IntVal::Num(i128::from(v)),
                })
            }
            TExprKind::Unary(op, a) => {
                let av = self.eval(frame, a)?;
                self.unary_int(*op, &av, e.ty.as_int().unwrap_or(IntTy::Int))
            }
            TExprKind::PtrAdd {
                ptr,
                idx,
                elem,
                neg,
            } => {
                let pv = self.eval(frame, ptr)?;
                let iv = self.eval(frame, idx)?;
                let p = pv
                    .as_ptr()
                    .ok_or_else(|| Stop::Unsupported("pointer arithmetic on non-pointer".into()))?;
                let mut i = iv.as_int().map(IntVal::value).unwrap_or(0);
                if *neg {
                    i = -i;
                }
                let q = self.mem.array_shift(p, *elem, i as i64)?;
                Ok(Value::Ptr {
                    ty: e.ty.clone(),
                    v: q,
                })
            }
            TExprKind::PtrDiff { a, b, elem } => {
                let av = self.eval(frame, a)?;
                let bv = self.eval(frame, b)?;
                let (ap, bp) = match (av.as_ptr(), bv.as_ptr()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Err(Stop::Unsupported("pointer difference operands".into())),
                };
                let d = self.mem.ptr_diff(ap, bp, *elem)?;
                Ok(Value::Int {
                    ity: IntTy::Long,
                    v: IntVal::Num(i128::from(d)),
                })
            }
            TExprKind::PtrCmp { op, a, b } => {
                let av = self.eval(frame, a)?;
                let bv = self.eval(frame, b)?;
                let (ap, bp) = match (av.as_ptr(), bv.as_ptr()) {
                    (Some(a), Some(b)) => (a.clone(), b.clone()),
                    _ => return Err(Stop::Unsupported("pointer comparison operands".into())),
                };
                let r = match op {
                    BinOp::Eq => self.mem.ptr_eq(&ap, &bp),
                    BinOp::Ne => !self.mem.ptr_eq(&ap, &bp),
                    _ => {
                        let ord = self.mem.ptr_rel_cmp(&ap, &bp)?;
                        match op {
                            BinOp::Lt => ord == std::cmp::Ordering::Less,
                            BinOp::Le => ord != std::cmp::Ordering::Greater,
                            BinOp::Gt => ord == std::cmp::Ordering::Greater,
                            BinOp::Ge => ord != std::cmp::Ordering::Less,
                            _ => unreachable!("comparison op"),
                        }
                    }
                };
                Ok(Value::Int {
                    ity: IntTy::Int,
                    v: IntVal::Num(i128::from(r)),
                })
            }
            TExprKind::Cast { kind, arg } => self.eval_cast(frame, e, *kind, arg),
            TExprKind::Assign { lv, rhs } => {
                let (p, ty) = self.eval_lvalue(frame, lv)?;
                if matches!(ty, Ty::Struct(_) | Ty::Union(_) | Ty::Array(..)) {
                    // Aggregate assignment: bytewise copy (preserving
                    // capabilities like memcpy).
                    if let TExprKind::Load(src_lv) = &rhs.kind {
                        let (src, _) = self.eval_lvalue(frame, src_lv)?;
                        let n = types_size(&self.prog.types, &ty);
                        self.mem.memcpy(&p, &src, n)?;
                        return Ok(Value::Void);
                    }
                    return Err(Stop::Unsupported("aggregate assignment".into()));
                }
                let v = self.eval(frame, rhs)?;
                self.store_value(&p, &ty, &v)?;
                Ok(v)
            }
            TExprKind::AssignOp {
                lv,
                op,
                rhs,
                common,
                derive,
            } => {
                let (p, ty) = self.eval_lvalue(frame, lv)?;
                if let Some(common_f) = common.as_float() {
                    let cur = self.load_value(&p, &ty)?;
                    let cur_f = match &cur {
                        Value::Float { v, .. } => *v,
                        Value::Int { v, .. } => v.value() as f64,
                        _ => return Err(Stop::Unsupported("compound float target".into())),
                    };
                    let rv = self.eval(frame, rhs)?;
                    let res = self.binary_float(
                        *op,
                        &Value::Float { fty: common_f, v: cur_f },
                        &rv,
                        common,
                    )?;
                    let res_f = res.as_float().expect("float result");
                    let out = match &ty {
                        Ty::Float(fty) => Value::Float {
                            fty: *fty,
                            v: if *fty == FloatTy::F32 {
                                f64::from(res_f as f32)
                            } else {
                                res_f
                            },
                        },
                        Ty::Int(it) => {
                            let t = res_f.trunc();
                            if !t.is_finite() || t < it.min() as f64 || t > it.max() as f64 {
                                return Err(
                                    self.ub(Ub::SignedOverflow, "float-to-int out of range")
                                );
                            }
                            Value::Int { ity: *it, v: self.mk_int(*it, t as i128) }
                        }
                        t => return Err(Stop::Unsupported(format!("compound target {t}"))),
                    };
                    self.store_value(&p, &ty, &out)?;
                    return Ok(out);
                }
                let lt = ty.as_int().ok_or_else(|| {
                    Stop::Unsupported("compound assignment on non-integer".into())
                })?;
                let ct = common.as_int().expect("common type is integer");
                let cur = match self.load_value(&p, &ty)? {
                    Value::Int { v, .. } => v,
                    _ => return Err(Stop::Unsupported("compound assignment load".into())),
                };
                let cur_c = self.convert_int(&cur, lt, ct);
                let rv = self.eval(frame, rhs)?;
                let r = rv
                    .as_int()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("compound assignment rhs".into()))?;
                let res = self.binary_int(
                    *op,
                    &Value::Int { ity: ct, v: cur_c },
                    &Value::Int { ity: ct, v: r },
                    ct,
                    *derive,
                )?;
                let res_v = match &res {
                    Value::Int { v, .. } => self.convert_int(v, ct, lt),
                    _ => return Err(Stop::Unsupported("compound assignment result".into())),
                };
                let out = Value::Int { ity: lt, v: res_v };
                self.store_value(&p, &ty, &out)?;
                Ok(out)
            }
            TExprKind::PtrAssignAdd { lv, idx, elem, neg } => {
                let (p, ty) = self.eval_lvalue(frame, lv)?;
                let cur = match self.load_value(&p, &ty)? {
                    Value::Ptr { v, .. } => v,
                    _ => return Err(Stop::Unsupported("pointer compound assignment".into())),
                };
                let iv = self.eval(frame, idx)?;
                let mut i = iv.as_int().map(IntVal::value).unwrap_or(0);
                if *neg {
                    i = -i;
                }
                let q = self.mem.array_shift(&cur, *elem, i as i64)?;
                let out = Value::Ptr {
                    ty: ty.clone(),
                    v: q,
                };
                self.store_value(&p, &ty, &out)?;
                Ok(out)
            }
            TExprKind::IncDec {
                lv,
                inc,
                prefix,
                elem,
            } => {
                let (p, ty) = self.eval_lvalue(frame, lv)?;
                let old = self.load_value(&p, &ty)?;
                let new = match (&old, *elem) {
                    (Value::Ptr { ty: pty, v }, elem) if elem > 0 => {
                        let q = self.mem.array_shift(v, elem, if *inc { 1 } else { -1 })?;
                        Value::Ptr {
                            ty: pty.clone(),
                            v: q,
                        }
                    }
                    (Value::Int { ity, v }, _) => {
                        let delta = if *inc { 1 } else { -1 };
                        let raw = v.value() + delta;
                        if ity.signed() && !ity.is_capability() && !ity.fits(raw) {
                            return Err(self.ub(Ub::SignedOverflow, "increment overflow"));
                        }
                        let nv = if ity.is_capability() {
                            self.derive_cap_result(v, *ity, raw)
                        } else {
                            IntVal::Num(ity.wrap(raw))
                        };
                        Value::Int { ity: *ity, v: nv }
                    }
                    _ => return Err(Stop::Unsupported("increment target".into())),
                };
                self.store_value(&p, &ty, &new)?;
                Ok(if *prefix { new } else { old })
            }
            TExprKind::Call { callee, args } => self.eval_call(frame, callee, args),
            TExprKind::Cond { c, t, f } => {
                if self.eval(frame, c)?.truthy() {
                    self.eval(frame, t)
                } else {
                    self.eval(frame, f)
                }
            }
            TExprKind::Comma(a, b) => {
                self.eval(frame, a)?;
                self.eval(frame, b)
            }
        }
    }

    fn eval_cast(
        &mut self,
        frame: &mut Frame<C>,
        e: &TExpr,
        kind: CastKind,
        arg: &TExpr,
    ) -> EResult<Value<C>> {
        let av = self.eval(frame, arg)?;
        match kind {
            CastKind::ToVoid => Ok(Value::Void),
            CastKind::ToBool => Ok(Value::Int {
                ity: IntTy::Bool,
                v: IntVal::Num(i128::from(av.truthy())),
            }),
            CastKind::IntToInt => {
                let to = e.ty.as_int().expect("int target");
                let from = arg.ty.as_int().expect("int source");
                let v = av
                    .as_int()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("int cast operand".into()))?;
                Ok(Value::Int {
                    ity: to,
                    v: self.convert_int(&v, from, to),
                })
            }
            CastKind::PtrToInt => {
                let to = e.ty.as_int().expect("int target");
                let p = av
                    .as_ptr()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("pointer cast operand".into()))?;
                let size = types_size(&self.prog.types, &e.ty);
                let v = self
                    .mem
                    .cast_ptr_to_int(&p, to.is_capability(), to.signed(), size);
                Ok(Value::Int { ity: to, v })
            }
            CastKind::IntToPtr => {
                let v = av
                    .as_int()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("int-to-pointer operand".into()))?;
                let p = self.mem.cast_int_to_ptr(&v);
                Ok(Value::Ptr {
                    ty: e.ty.clone(),
                    v: p,
                })
            }
            CastKind::IntToFloat => {
                let fty = e.ty.as_float().expect("float target");
                let n = av
                    .as_int()
                    .map(IntVal::value)
                    .ok_or_else(|| Stop::Unsupported("int-to-float operand".into()))?;
                let v = n as f64;
                let v = if fty == FloatTy::F32 { f64::from(v as f32) } else { v };
                Ok(Value::Float { fty, v })
            }
            CastKind::FloatToInt => {
                let to = e.ty.as_int().expect("int target");
                let f = av
                    .as_float()
                    .ok_or_else(|| Stop::Unsupported("float-to-int operand".into()))?;
                let t = f.trunc();
                // ISO 6.3.1.4p1: UB if the truncated value cannot be
                // represented in the target type.
                if !t.is_finite() || t < to.min() as f64 || t > to.max() as f64 {
                    return Err(self.ub(Ub::SignedOverflow, "float-to-int out of range"));
                }
                Ok(Value::Int {
                    ity: to,
                    v: self.mk_int(to, t as i128),
                })
            }
            CastKind::FloatToFloat => {
                let fty = e.ty.as_float().expect("float target");
                let f = av
                    .as_float()
                    .ok_or_else(|| Stop::Unsupported("float cast operand".into()))?;
                let v = if fty == FloatTy::F32 { f64::from(f as f32) } else { f };
                Ok(Value::Float { fty, v })
            }
            CastKind::PtrToPtr => {
                let p = av
                    .as_ptr()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("pointer cast operand".into()))?;
                // §3.9: const-changing casts are no-ops on the capability.
                Ok(Value::Ptr {
                    ty: e.ty.clone(),
                    v: p,
                })
            }
        }
    }

    pub(crate) fn binary_int(
        &mut self,
        op: BinOp,
        l: &Value<C>,
        r: &Value<C>,
        ity: IntTy,
        derive: DeriveFrom,
    ) -> EResult<Value<C>> {
        let (lv, rv) = match (l.as_int(), r.as_int()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(Stop::Unsupported("integer operation on non-integers".into())),
        };
        let a = lv.value();
        let b = rv.value();
        if op.is_comparison() {
            // §3.6: address-only comparison for capability-carrying values.
            let res = match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!("comparison"),
            };
            return Ok(Value::Int {
                ity: IntTy::Int,
                v: IntVal::Num(i128::from(res)),
            });
        }
        let bits = ity.value_bits();
        let raw: i128 = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a
                .checked_mul(b)
                .ok_or_else(|| self.ub(Ub::SignedOverflow, "multiplication overflow"))?,
            BinOp::Div => {
                if b == 0 {
                    return Err(self.ub(Ub::DivisionByZero, "division by zero"));
                }
                if ity.signed() && a == ity.min() && b == -1 {
                    return Err(self.ub(Ub::SignedOverflow, "INT_MIN / -1"));
                }
                a / b
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(self.ub(Ub::DivisionByZero, "remainder by zero"));
                }
                if ity.signed() && a == ity.min() && b == -1 {
                    return Err(self.ub(Ub::SignedOverflow, "INT_MIN % -1"));
                }
                a % b
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl | BinOp::Shr => {
                if b < 0 || b >= i128::from(bits) {
                    return Err(self.ub(Ub::ShiftOutOfRange, format!("shift by {b}")));
                }
                if op == BinOp::Shl {
                    let v = a << b;
                    if ity.signed() && !ity.fits(v) {
                        return Err(self.ub(Ub::SignedOverflow, "left shift overflow"));
                    }
                    v
                } else if ity.signed() {
                    a >> b
                } else {
                    ((a as u128 & (u128::MAX >> (128 - bits))) >> b) as i128
                }
            }
            _ => unreachable!("handled above"),
        };
        // Signed overflow is UB for +,- too (checked post-hoc on the exact
        // value); unsigned arithmetic wraps.
        if ity.signed() && !ity.is_capability() && matches!(op, BinOp::Add | BinOp::Sub) && !ity.fits(raw)
        {
            return Err(self.ub(Ub::SignedOverflow, "arithmetic overflow"));
        }
        let v = if ity.is_capability() {
            let src = match derive {
                DeriveFrom::Left => lv,
                DeriveFrom::Right => rv,
            };
            self.derive_cap_result(src, ity, raw)
        } else {
            IntVal::Num(ity.wrap(raw))
        };
        Ok(Value::Int { ity, v })
    }

    pub(crate) fn binary_float(
        &mut self,
        op: BinOp,
        l: &Value<C>,
        r: &Value<C>,
        res_ty: &Ty,
    ) -> EResult<Value<C>> {
        let (a, b) = match (l.as_float(), r.as_float()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(Stop::Unsupported("mixed float operands".into())),
        };
        if op.is_comparison() {
            let res = match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!("comparison"),
            };
            return Ok(Value::Int {
                ity: IntTy::Int,
                v: IntVal::Num(i128::from(res)),
            });
        }
        let fty = res_ty.as_float().unwrap_or(FloatTy::F64);
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b, // IEEE: x/0 is ±inf/NaN, not UB
            _ => return Err(Stop::Unsupported("float operator".into())),
        };
        let v = if fty == FloatTy::F32 { f64::from(v as f32) } else { v };
        Ok(Value::Float { fty, v })
    }

    pub(crate) fn unary_int(&mut self, op: UnOp, a: &Value<C>, ity: IntTy) -> EResult<Value<C>> {
        match op {
            UnOp::LogNot => Ok(Value::Int {
                ity: IntTy::Int,
                v: IntVal::Num(i128::from(!a.truthy())),
            }),
            UnOp::Plus => Ok(a.clone()),
            UnOp::Neg if a.as_float().is_some() => {
                let v = a.as_float().expect("float");
                match a {
                    Value::Float { fty, .. } => Ok(Value::Float { fty: *fty, v: -v }),
                    _ => unreachable!("checked above"),
                }
            }
            UnOp::Neg | UnOp::BitNot => {
                let v = a
                    .as_int()
                    .ok_or_else(|| Stop::Unsupported("unary arithmetic operand".into()))?;
                let raw = if op == UnOp::Neg { -v.value() } else { !v.value() };
                if ity.signed() && !ity.is_capability() && op == UnOp::Neg && !ity.fits(raw) {
                    return Err(self.ub(Ub::SignedOverflow, "negation overflow"));
                }
                let out = if ity.is_capability() {
                    self.derive_cap_result(v, ity, raw)
                } else {
                    IntVal::Num(ity.wrap(raw))
                };
                Ok(Value::Int { ity, v: out })
            }
        }
    }

    // ── Calls ────────────────────────────────────────────────────────────

    fn eval_call(
        &mut self,
        frame: &mut Frame<C>,
        callee: &Callee,
        args: &[TExpr],
    ) -> EResult<Value<C>> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push((self.eval(frame, a)?, a.ty.clone()));
        }
        match callee {
            Callee::Direct(name) => {
                let f = self
                    .prog
                    .funcs
                    .get(name)
                    .ok_or_else(|| Stop::Unsupported(format!("call of undefined `{name}`")))?;
                self.call_function(f, argv)
            }
            Callee::Indirect(fe) => {
                let fv = self.eval(frame, fe)?;
                let p = fv
                    .as_ptr()
                    .ok_or_else(|| Stop::Unsupported("indirect call operand".into()))?;
                if self.profile.mem.capabilities {
                    if !p.cap.tag() {
                        return Err(Stop::Mem(MemError::ub(
                            Ub::CheriInvalidCap,
                            "call via untagged function pointer",
                        )));
                    }
                    if !p.cap.perms().contains(Perms::EXECUTE) {
                        return Err(Stop::Mem(MemError::ub(
                            Ub::CheriInsufficientPermissions,
                            "call via non-executable capability",
                        )));
                    }
                }
                let name = self
                    .addr_to_func
                    .get(&p.addr())
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("indirect call to non-function".into()))?;
                let f = self
                    .prog
                    .funcs
                    .get(&name)
                    .ok_or_else(|| Stop::Unsupported(format!("call of undefined `{name}`")))?;
                self.call_function(f, argv)
            }
            Callee::Builtin(b) => self.eval_builtin(*b, argv),
        }
    }

    fn call_function(
        &mut self,
        f: &TFunc,
        args: Vec<(Value<C>, Ty)>,
    ) -> EResult<Value<C>> {
        self.call_depth += 1;
        if self.call_depth > 256 {
            self.call_depth -= 1;
            return Err(Stop::Limit("call depth exceeded".into()));
        }
        let mut frame = Frame {
            vars: HashMap::new(),
            to_kill: Vec::new(),
        };
        for ((name, ty), (v, _)) in f.params.iter().zip(args) {
            let size = types_size(&self.prog.types, ty);
            let align = self.prog.types.align_of(ty);
            let pretty = name.split('#').next().unwrap_or(name);
            let p = self.mem.allocate_object(pretty, size, align, false, None)?;
            self.store_value(&p, ty, &v)?;
            frame.to_kill.push(p.clone());
            frame.vars.insert(name.clone(), (p, ty.clone()));
        }
        let flow = self.exec_block(&mut frame, &f.body);
        // End the lifetime of the locals regardless of how the body exited.
        for p in frame.to_kill.drain(..).rev() {
            self.mem.kill(&p, false)?;
        }
        self.call_depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            _ if f.name == "main" => Ok(Value::Int {
                ity: IntTy::Int,
                v: IntVal::Num(0),
            }),
            _ => Ok(Value::Void),
        }
    }

    // ── Builtins and intrinsics ──────────────────────────────────────────

    #[allow(clippy::too_many_lines)]
    pub(crate) fn eval_builtin(
        &mut self,
        b: Builtin,
        mut args: Vec<(Value<C>, Ty)>,
    ) -> EResult<Value<C>> {
        use Builtin::*;
        let int_result = |ity: IntTy, v: i128| -> EResult<Value<C>> {
            Ok(Value::Int {
                ity,
                v: IntVal::Num(ity.wrap(v)),
            })
        };
        // Capability argument accessor: pointer or (u)intptr_t.
        let cap_of = |v: &Value<C>| -> EResult<C> {
            v.cap()
                .cloned()
                .ok_or_else(|| Stop::Unsupported("capability argument expected".into()))
        };
        // Rewrap a derived capability at the argument's type (the
        // polymorphic return of §4.5).
        let rewrap = |this: &mut Self, orig: &Value<C>, cap: C| -> Value<C> {
            match orig {
                Value::Ptr { ty, v } => Value::Ptr {
                    ty: ty.clone(),
                    v: PtrVal::new(v.prov, cap),
                },
                Value::Int { ity, v } => Value::Int {
                    ity: *ity,
                    v: IntVal::Cap {
                        signed: ity.signed(),
                        cap,
                        prov: v.prov(),
                    },
                },
                Value::Float { .. } | Value::Void => {
                    let _ = this;
                    Value::Void
                }
            }
        };
        match b {
            Printf | Fprintf => {
                let skip = usize::from(b == Fprintf);
                let fmt_ptr = args
                    .get(skip)
                    .and_then(|(v, _)| v.as_ptr())
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("format string expected".into()))?;
                let fmt = self.read_c_string(&fmt_ptr)?;
                let rendered = self.format(&fmt, &args[skip + 1..])?;
                if b == Fprintf {
                    self.stderr.push_str(&rendered);
                } else {
                    self.stdout.push_str(&rendered);
                }
                int_result(IntTy::Int, rendered.len() as i128)
            }
            Assert => {
                let (v, _) = &args[0];
                if v.truthy() {
                    Ok(Value::Void)
                } else {
                    Err(Stop::Assert("assertion failed".into()))
                }
            }
            Abort => Err(Stop::Abort),
            Exit => {
                let code = args[0].0.as_int().map(IntVal::value).unwrap_or(0);
                Err(Stop::Exit(code as i64))
            }
            Malloc => {
                let n = args[0].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let p = self.mem.allocate_region(n, 16)?;
                Ok(Value::Ptr {
                    ty: Ty::ptr(Ty::Void),
                    v: p,
                })
            }
            Calloc => {
                let n = args[0].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let sz = args[1].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let total = n.checked_mul(sz).ok_or_else(|| {
                    Stop::Mem(MemError::Fail("calloc size overflow".into()))
                })?;
                let p = self.mem.allocate_region(total, 16)?;
                self.mem.memset(&p, 0, total)?;
                Ok(Value::Ptr {
                    ty: Ty::ptr(Ty::Void),
                    v: p,
                })
            }
            Free => {
                let p = args[0]
                    .0
                    .as_ptr()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("free of non-pointer".into()))?;
                self.mem.kill(&p, true)?;
                Ok(Value::Void)
            }
            Realloc => {
                let p = args[0]
                    .0
                    .as_ptr()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("realloc of non-pointer".into()))?;
                let n = args[1].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let q = self.mem.reallocate(&p, n)?;
                Ok(Value::Ptr {
                    ty: Ty::ptr(Ty::Void),
                    v: q,
                })
            }
            Memcpy | Memmove => {
                let d = args[0].0.as_ptr().cloned();
                let s = args[1].0.as_ptr().cloned();
                let n = args[2].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let (d, s) = match (d, s) {
                    (Some(d), Some(s)) => (d, s),
                    _ => return Err(Stop::Unsupported("memcpy operands".into())),
                };
                self.mem.memcpy(&d, &s, n)?;
                Ok(Value::Ptr {
                    ty: Ty::ptr(Ty::Void),
                    v: d,
                })
            }
            Memset => {
                let d = args[0]
                    .0
                    .as_ptr()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("memset operand".into()))?;
                let c = args[1].0.as_int().map(IntVal::value).unwrap_or(0) as u8;
                let n = args[2].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                self.mem.memset(&d, c, n)?;
                Ok(Value::Ptr {
                    ty: Ty::ptr(Ty::Void),
                    v: d,
                })
            }
            Memcmp => {
                let a = args[0].0.as_ptr().cloned();
                let bptr = args[1].0.as_ptr().cloned();
                let n = args[2].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let (a, bp) = match (a, bptr) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Err(Stop::Unsupported("memcmp operands".into())),
                };
                let r = self.mem.memcmp(&a, &bp, n)?;
                int_result(IntTy::Int, i128::from(r))
            }
            Strlen => {
                let p = args[0]
                    .0
                    .as_ptr()
                    .cloned()
                    .ok_or_else(|| Stop::Unsupported("strlen operand".into()))?;
                let s = self.read_c_string(&p)?;
                int_result(IntTy::ULong, s.len() as i128)
            }
            Strcmp => {
                let a = args[0].0.as_ptr().cloned();
                let bptr = args[1].0.as_ptr().cloned();
                let (a, bp) = match (a, bptr) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Err(Stop::Unsupported("strcmp operands".into())),
                };
                let sa = self.read_c_string(&a)?;
                let sb = self.read_c_string(&bp)?;
                int_result(IntTy::Int, i128::from(match sa.cmp(&sb) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            Strcpy => {
                let d = args[0].0.as_ptr().cloned();
                let s = args[1].0.as_ptr().cloned();
                let (d, s) = match (d, s) {
                    (Some(d), Some(s)) => (d, s),
                    _ => return Err(Stop::Unsupported("strcpy operands".into())),
                };
                let text = self.read_c_string(&s)?;
                self.mem.memcpy(&d, &s, text.len() as u64 + 1)?;
                Ok(Value::Ptr {
                    ty: Ty::ptr(Ty::Int(IntTy::Char)),
                    v: d,
                })
            }
            PrintCap => {
                let line = self.render_cap_value(&args[0].0);
                self.stdout.push_str(&line);
                self.stdout.push('\n');
                Ok(Value::Void)
            }
            Fabs | Sqrt => {
                let x = args[0].0.as_float().unwrap_or(0.0);
                let v = if b == Fabs { x.abs() } else { x.sqrt() };
                Ok(Value::Float {
                    fty: FloatTy::F64,
                    v,
                })
            }
            CheriTagGet | CheriIsValid => {
                let c = cap_of(&args[0].0)?;
                // §3.5: the tag of a ghost-unspecified capability reads as
                // an *unspecified* boolean; we concretise to false and count.
                let v = if c.ghost().tag_unspecified {
                    self.unspecified_reads += 1;
                    false
                } else {
                    c.tag()
                };
                int_result(IntTy::Bool, i128::from(v))
            }
            CheriTagClear => {
                let c = cap_of(&args[0].0)?;
                let orig = args.remove(0).0;
                Ok(rewrap(self, &orig, c.clear_tag()))
            }
            CheriSentryCreate => {
                let c = cap_of(&args[0].0)?;
                let orig = args.remove(0).0;
                Ok(rewrap(self, &orig, c.seal_entry()))
            }
            CheriAddressGet => {
                let c = cap_of(&args[0].0)?;
                int_result(IntTy::PtrAddr, i128::from(c.address()))
            }
            CheriBaseGet => {
                let c = cap_of(&args[0].0)?;
                let v = if c.ghost().bounds_unspecified {
                    self.unspecified_reads += 1;
                    0
                } else {
                    c.bounds().base
                };
                int_result(IntTy::PtrAddr, i128::from(v))
            }
            CheriLengthGet => {
                let c = cap_of(&args[0].0)?;
                let v = if c.ghost().bounds_unspecified {
                    self.unspecified_reads += 1;
                    0
                } else {
                    c.bounds().length()
                };
                int_result(IntTy::ULong, i128::from(v))
            }
            CheriOffsetGet => {
                let c = cap_of(&args[0].0)?;
                int_result(
                    IntTy::ULong,
                    i128::from(c.address().wrapping_sub(c.bounds().base)),
                )
            }
            CheriOffsetSet => {
                let c = cap_of(&args[0].0)?;
                let off = args[1].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let orig = args.remove(0).0;
                let new = c.with_address(c.bounds().base.wrapping_add(off));
                Ok(rewrap(self, &orig, new))
            }
            CheriAddressSet => {
                let c = cap_of(&args[0].0)?;
                let a = args[1].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let orig = args.remove(0).0;
                Ok(rewrap(self, &orig, c.with_address(a)))
            }
            CheriPermsGet => {
                let c = cap_of(&args[0].0)?;
                int_result(IntTy::ULong, i128::from(c.perms().bits()))
            }
            CheriPermsAnd => {
                let c = cap_of(&args[0].0)?;
                let mask = args[1].0.as_int().map(IntVal::value).unwrap_or(0) as u32;
                let orig = args.remove(0).0;
                Ok(rewrap(
                    self,
                    &orig,
                    c.with_perms_and(Perms::from_bits_truncate(mask)),
                ))
            }
            CheriBoundsSet | CheriBoundsSetExact => {
                let c = cap_of(&args[0].0)?;
                let len = args[1].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                let orig = args.remove(0).0;
                let new = if b == CheriBoundsSetExact {
                    c.with_bounds_exact(c.address(), len)
                } else {
                    c.with_bounds(c.address(), len)
                };
                Ok(rewrap(self, &orig, new))
            }
            CheriIsEqualExact => {
                let a = cap_of(&args[0].0)?;
                let c = cap_of(&args[1].0)?;
                // §3.6: unspecified if either side has ghost state set.
                let v = if !a.ghost().is_clean() || !c.ghost().is_clean() {
                    self.unspecified_reads += 1;
                    false
                } else {
                    a.exact_eq(&c)
                };
                int_result(IntTy::Bool, i128::from(v))
            }
            CheriIsSubset => {
                let a = cap_of(&args[0].0)?;
                let c = cap_of(&args[1].0)?;
                let v = a.bounds().base >= c.bounds().base
                    && a.bounds().top <= c.bounds().top
                    && a.perms().is_subset_of(c.perms());
                int_result(IntTy::Bool, i128::from(v))
            }
            CheriReprLength => {
                let n = args[0].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                int_result(IntTy::ULong, i128::from(C::representable_length(n)))
            }
            CheriReprAlignMask => {
                let n = args[0].0.as_int().map(IntVal::value).unwrap_or(0) as u64;
                int_result(
                    IntTy::ULong,
                    i128::from(C::representable_alignment_mask(n)),
                )
            }
            CheriSeal => {
                let c = cap_of(&args[0].0)?;
                let auth = cap_of(&args[1].0)?;
                let orig = args.remove(0).0;
                let new = c.seal(&auth).unwrap_or_else(|_| c.clear_tag());
                Ok(rewrap(self, &orig, new))
            }
            CheriUnseal => {
                let c = cap_of(&args[0].0)?;
                let auth = cap_of(&args[1].0)?;
                let orig = args.remove(0).0;
                let new = c.unseal(&auth).unwrap_or_else(|_| c.clear_tag());
                Ok(rewrap(self, &orig, new))
            }
            CheriIsSealed => {
                let c = cap_of(&args[0].0)?;
                int_result(IntTy::Bool, i128::from(c.is_sealed()))
            }
            CheriTypeGet => {
                let c = cap_of(&args[0].0)?;
                int_result(IntTy::Long, i128::from(c.otype().value()))
            }
            CheriFlagsGet => {
                let c = cap_of(&args[0].0)?;
                int_result(IntTy::ULong, i128::from(c.flags()))
            }
            CheriFlagsSet => {
                let c = cap_of(&args[0].0)?;
                let f = args[1].0.as_int().map(IntVal::value).unwrap_or(0) as u8;
                let orig = args.remove(0).0;
                Ok(rewrap(self, &orig, c.with_flags(f)))
            }
            CheriDdcGet | CheriPccGet => {
                // DDC: every data authority including seal/unseal, but not
                // execute; PCC: the code authority.
                let cap = if b == CheriDdcGet {
                    C::root().with_perms_and(!Perms::EXECUTE)
                } else {
                    C::root().with_perms_and(Perms::code() | Perms::LOAD)
                };
                Ok(Value::Ptr {
                    ty: Ty::ptr(Ty::Void),
                    v: PtrVal::new(Provenance::Empty, cap),
                })
            }
        }
    }

    fn read_c_string(&mut self, p: &PtrVal<C>) -> EResult<String> {
        let mut out = Vec::new();
        for i in 0..65536i64 {
            let q = self.mem.array_shift(p, 1, i)?;
            let b = self.mem.load_int(&q, 1, false, false)?;
            let b = b.value() as u8;
            if b == 0 {
                return Ok(String::from_utf8_lossy(&out).into_owned());
            }
            out.push(b);
        }
        Err(Stop::Limit("unterminated string".into()))
    }

    /// Render a capability-carrying value in the Appendix A format. The
    /// reference semantics prints the provenance (`(@86, 0x… […])`), the
    /// hardware profiles print the bare capability (`0x… […]`), matching
    /// the respective rows of the paper's sample output.
    fn render_cap_value(&self, v: &Value<C>) -> String {
        let with_prov = self.profile.mem.abstract_ub;
        let (cap, prov) = match v {
            Value::Ptr { v, .. } => (Some(&v.cap), v.prov),
            Value::Int { v, .. } => match v {
                IntVal::Cap { cap, prov, .. } => (Some(cap), *prov),
                IntVal::Num(n) => return format!("{n}"),
            },
            Value::Float { v, .. } => return format!("{v}"),
            Value::Void => return "<void>".into(),
        };
        let cap = cap.expect("capability value");
        if with_prov {
            format!("({prov}, {})", cheri_cap::CapDisplay(cap))
        } else {
            format!("{}", cheri_cap::CapDisplay(cap))
        }
    }

    /// Minimal printf-style formatting.
    fn format(&mut self, fmt: &str, args: &[(Value<C>, Ty)]) -> EResult<String> {
        let mut out = String::new();
        let mut it = fmt.chars();
        let mut arg_i = 0;
        let next = |i: &mut usize| -> Option<&(Value<C>, Ty)> {
            let v = args.get(*i);
            *i += 1;
            v
        };
        while let Some(c) = it.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            // Skip flags/width and length modifiers.
            let mut conv = None;
            for c in it.by_ref() {
                match c {
                    'd' | 'i' | 'u' | 'x' | 'X' | 'p' | 's' | 'c' | '%' | 'f' | 'g' | 'e' => {
                        conv = Some(c);
                        break;
                    }
                    '0'..='9' | '-' | '+' | ' ' | '#' | '.' | 'l' | 'z' | 'h' | 'j' | 't' => {}
                    other => {
                        conv = Some(other);
                        break;
                    }
                }
            }
            match conv {
                Some('%') => out.push('%'),
                Some('d' | 'i') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        out.push_str(&v.as_int().map(IntVal::value).unwrap_or(0).to_string());
                    }
                }
                Some('u') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        let n = v.as_int().map(IntVal::value).unwrap_or(0);
                        out.push_str(&(n as u64).to_string());
                    }
                }
                Some('x') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        let n = v.as_int().map(IntVal::value).unwrap_or(0);
                        out.push_str(&format!("{:x}", n as u64));
                    }
                }
                Some('X') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        let n = v.as_int().map(IntVal::value).unwrap_or(0);
                        out.push_str(&format!("{:X}", n as u64));
                    }
                }
                Some('p') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        match v {
                            Value::Ptr { v, .. } => out.push_str(&format!("{:#x}", v.addr())),
                            Value::Int { v, .. } => {
                                out.push_str(&format!("{:#x}", v.value() as u64));
                            }
                            Value::Float { .. } | Value::Void => out.push_str("0x0"),
                        }
                    }
                }
                Some('f') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        let f = v.as_float().unwrap_or(0.0);
                        out.push_str(&format!("{f:.6}"));
                    }
                }
                Some('g' | 'e') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        let f = v.as_float().unwrap_or(0.0);
                        out.push_str(&format!("{f}"));
                    }
                }
                Some('c') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        let n = v.as_int().map(IntVal::value).unwrap_or(0) as u8;
                        out.push(n as char);
                    }
                }
                Some('s') => {
                    if let Some((v, _)) = next(&mut arg_i) {
                        if let Some(p) = v.as_ptr() {
                            let p = p.clone();
                            out.push_str(&self.read_c_string(&p)?);
                        }
                    }
                }
                _ => out.push('%'),
            }
        }
        Ok(out)
    }
}
