//! Execution outcomes and reporting.

use std::fmt;

use cheri_mem::{MemError, MemStats, TrapKind, Ub};

/// How a program run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Normal termination with an exit code.
    Exit(i64),
    /// The abstract machine detected undefined behaviour.
    Ub {
        /// Which UB.
        ub: Ub,
        /// Human-readable context.
        detail: String,
    },
    /// The (emulated) hardware raised a capability exception; on a real
    /// system the process dies with SIGPROT/SIGSEGV.
    Trap {
        /// Which architectural check failed.
        kind: TrapKind,
        /// Human-readable context.
        detail: String,
    },
    /// An `assert` failed.
    AssertFailed(String),
    /// `abort()` was called.
    Abort,
    /// The interpreter could not run the program (unsupported feature,
    /// step limit, internal failure). Not a program behaviour.
    Error(String),
}

impl Outcome {
    /// Did the program terminate normally with code 0?
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Exit(0))
    }

    /// Is this a memory-safety stop (UB detection or hardware trap)?
    #[must_use]
    pub fn is_safety_stop(&self) -> bool {
        matches!(self, Outcome::Ub { .. } | Outcome::Trap { .. })
    }

    /// Short classification label for comparison tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Outcome::Exit(c) => format!("exit({c})"),
            Outcome::Ub { ub, .. } => format!("UB:{ub}"),
            Outcome::Trap { kind, .. } => format!("trap:{kind}"),
            Outcome::AssertFailed(_) => "assert-fail".into(),
            Outcome::Abort => "abort".into(),
            Outcome::Error(_) => "error".into(),
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Exit(c) => write!(f, "exited with code {c}"),
            Outcome::Ub { ub, detail } => write!(f, "undefined behaviour: {ub} ({detail})"),
            Outcome::Trap { kind, detail } => write!(f, "hardware trap: {kind} ({detail})"),
            Outcome::AssertFailed(m) => write!(f, "assertion failed: {m}"),
            Outcome::Abort => write!(f, "aborted"),
            Outcome::Error(m) => write!(f, "interpreter error: {m}"),
        }
    }
}

impl From<MemError> for Outcome {
    fn from(e: MemError) -> Self {
        match e {
            MemError::Ub(ub, detail) => Outcome::Ub { ub, detail },
            MemError::Trap(kind, detail) => Outcome::Trap { kind, detail },
            MemError::Fail(m) => Outcome::Error(m),
        }
    }
}

/// The full result of running a program.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Captured standard output.
    pub stdout: String,
    /// Captured standard error.
    pub stderr: String,
    /// Number of reads of unspecified values that were concretised (each is
    /// a place where the semantics allows any value).
    pub unspecified_reads: u32,
    /// Memory-model operation counters for the run (loads, stores,
    /// allocations, padding, revoked capabilities) — the benchmark and
    /// experiment harnesses read these instead of re-instrumenting.
    pub mem_stats: MemStats,
}

impl RunResult {
    /// Shorthand used by tests: outcome label plus combined output.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.stdout.is_empty() && self.stderr.is_empty() {
            self.outcome.label()
        } else {
            format!("{}\n{}{}", self.outcome.label(), self.stdout, self.stderr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Outcome::Exit(0).label(), "exit(0)");
        assert!(Outcome::Exit(0).is_success());
        let ub = Outcome::Ub {
            ub: Ub::CheriBoundsViolation,
            detail: String::new(),
        };
        assert_eq!(ub.label(), "UB:UB_CHERI_BoundsViolation");
        assert!(ub.is_safety_stop());
        let trap = Outcome::Trap {
            kind: TrapKind::BoundsViolation,
            detail: String::new(),
        };
        assert!(trap.is_safety_stop());
        assert!(!trap.is_success());
    }

    #[test]
    fn mem_error_conversion() {
        let o: Outcome = MemError::ub(Ub::DoubleFree, "x").into();
        assert_eq!(
            o,
            Outcome::Ub {
                ub: Ub::DoubleFree,
                detail: "x".into()
            }
        );
    }
}
