//! Recursive-descent parser for the CHERI C subset.
//!
//! Supports the C fragment the paper's design questions and test suite
//! exercise: declarations (including full declarator syntax, so function
//! pointers like `int (*f)(int)` parse), structs/unions/enums/typedefs,
//! the full expression grammar with C precedence, and the usual statements.
//!
//! Built-in typedefs (`stdint.h`/`stddef.h`/`cheriintrin.h` material) and
//! limit macros (`INT_MAX` etc.) are predefined, since `#include`s are
//! ignored by the lexer.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;
use crate::lex::{lex, LexError, Pos, Spanned, Tok};
use crate::types::{IntTy, StructId, TargetLayout, Ty, TypeTable};

/// Parse error.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            pos: e.pos,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Result of parsing: the AST plus the type environment it was parsed
/// against (struct layouts, typedefs).
#[derive(Debug)]
pub struct Parsed {
    /// The translation unit.
    pub program: Program,
    /// Struct/union layouts and target sizes.
    pub types: TypeTable,
}

/// Parse a translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or on uses of C features
/// outside the supported fragment.
pub fn parse(src: &str, layout: TargetLayout) -> PResult<Parsed> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks, layout);
    let program = p.translation_unit()?;
    Ok(Parsed {
        program,
        types: p.types,
    })
}

const TYPE_KEYWORDS: &[&str] = &[
    "void", "char", "short", "int", "long", "signed", "unsigned", "_Bool", "bool", "struct",
    "union", "enum", "const", "volatile", "static", "typedef", "extern", "register", "float",
    "double",
];

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    types: TypeTable,
    typedefs: HashMap<String, Ty>,
    struct_tags: HashMap<String, StructId>,
    enum_consts: HashMap<String, i64>,
}

/// A parsed declarator: the name (empty for abstract declarators) and a
/// transformation applied to the base type.
struct Declarator {
    name: String,
    /// Applies pointer/array/function derivations, innermost-first.
    wrap: Box<dyn FnOnce(Ty) -> Ty>,
    /// Parameter names of the parameter list applied directly to the named
    /// identifier (i.e. *this* function's own parameters, not those of a
    /// returned function pointer).
    own_param_names: Option<Vec<String>>,
}

impl Parser {
    fn new(toks: Vec<Spanned>, layout: TargetLayout) -> Self {
        let mut typedefs = HashMap::new();
        for (name, ty) in [
            ("intptr_t", Ty::Int(IntTy::IntPtr)),
            ("uintptr_t", Ty::Int(IntTy::UIntPtr)),
            ("ptraddr_t", Ty::Int(IntTy::PtrAddr)),
            ("vaddr_t", Ty::Int(IntTy::PtrAddr)),
            ("size_t", Ty::Int(IntTy::ULong)),
            ("ptrdiff_t", Ty::Int(IntTy::Long)),
            ("intmax_t", Ty::Int(IntTy::LongLong)),
            ("uintmax_t", Ty::Int(IntTy::ULongLong)),
            ("int8_t", Ty::Int(IntTy::SChar)),
            ("uint8_t", Ty::Int(IntTy::UChar)),
            ("int16_t", Ty::Int(IntTy::Short)),
            ("uint16_t", Ty::Int(IntTy::UShort)),
            ("int32_t", Ty::Int(IntTy::Int)),
            ("uint32_t", Ty::Int(IntTy::UInt)),
            ("int64_t", Ty::Int(IntTy::Long)),
            ("uint64_t", Ty::Int(IntTy::ULong)),
        ] {
            typedefs.insert(name.to_string(), ty);
        }
        Parser {
            toks,
            i: 0,
            types: TypeTable::new(layout),
            typedefs,
            struct_tags: HashMap::new(),
            enum_consts: HashMap::new(),
        }
    }

    // ── Token plumbing ───────────────────────────────────────────────────

    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i < self.toks.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            msg: msg.into(),
            pos: self.pos(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found `{}`", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => self.err(format!("expected identifier, found `{t}`")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // ── Types ────────────────────────────────────────────────────────────

    /// Does the current token start a type (for cast/sizeof/decl detection)?
    fn at_type_start(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => {
                TYPE_KEYWORDS.contains(&s.as_str()) || self.typedefs.contains_key(s)
            }
            _ => false,
        }
    }

    /// Parse declaration specifiers: type keywords, struct/union/enum,
    /// typedef names, `const`, `static`. Returns
    /// `(type, is_const, is_typedef, is_static)`.
    fn decl_specifiers(&mut self) -> PResult<(Ty, bool, bool, bool)> {
        let mut is_const = false;
        let mut is_typedef = false;
        let mut is_static = false;
        let mut signedness: Option<bool> = None; // Some(true) = signed
        let mut base: Option<&'static str> = None;
        let mut longs = 0u32;
        let mut ty: Option<Ty> = None;
        while let Tok::Ident(s) = self.peek().clone() {
            {
                match s.as_str() {
                    "typedef" => {
                        is_typedef = true;
                        self.bump();
                    }
                    "const" => {
                        is_const = true;
                        self.bump();
                    }
                    "static" => {
                        is_static = true;
                        self.bump();
                    }
                    "volatile" | "extern" | "register" | "inline" | "_Atomic"
                    | "restrict" => {
                        self.bump();
                    }
                    "signed" => {
                        signedness = Some(true);
                        self.bump();
                    }
                    "unsigned" => {
                        signedness = Some(false);
                        self.bump();
                    }
                    "long" => {
                        longs += 1;
                        self.bump();
                    }
                    "void" | "char" | "short" | "int" | "_Bool" | "bool" | "float"
                    | "double" => {
                        if base.is_some() && !(base == Some("short") && s == "int") {
                            break;
                        }
                        base = Some(match s.as_str() {
                            "void" => "void",
                            "char" => "char",
                            "short" => "short",
                            "_Bool" | "bool" => "bool",
                            "float" => "float",
                            "double" => "double",
                            _ => "int",
                        });
                        self.bump();
                    }
                    "struct" | "union" => {
                        let is_union = s == "union";
                        self.bump();
                        ty = Some(self.struct_or_union(is_union)?);
                    }
                    "enum" => {
                        self.bump();
                        ty = Some(self.enum_def()?);
                    }
                    _ => {
                        if ty.is_none()
                            && base.is_none()
                            && signedness.is_none()
                            && longs == 0
                        {
                            if let Some(t) = self.typedefs.get(&s) {
                                ty = Some(t.clone());
                                self.bump();
                                continue;
                            }
                        }
                        break;
                    }
                }
            }
        }
        let ty = if let Some(t) = ty {
            t
        } else {
            let signed = signedness.unwrap_or(true);
            match (base, longs) {
                (Some("void"), _) => Ty::Void,
                (Some("bool"), _) => Ty::Int(IntTy::Bool),
                (Some("float"), _) => Ty::Float(crate::types::FloatTy::F32),
                // `long double` is treated as double.
                (Some("double"), _) => Ty::Float(crate::types::FloatTy::F64),
                (Some("char"), _) => Ty::Int(match signedness {
                    None => IntTy::Char,
                    Some(true) => IntTy::SChar,
                    Some(false) => IntTy::UChar,
                }),
                (Some("short"), _) => {
                    Ty::Int(if signed { IntTy::Short } else { IntTy::UShort })
                }
                (_, 1) => Ty::Int(if signed { IntTy::Long } else { IntTy::ULong }),
                (_, n) if n >= 2 => {
                    Ty::Int(if signed { IntTy::LongLong } else { IntTy::ULongLong })
                }
                (Some("int") | None, 0) if base.is_some() || signedness.is_some() => {
                    Ty::Int(if signed { IntTy::Int } else { IntTy::UInt })
                }
                _ => return self.err("expected type specifier"),
            }
        };
        Ok((ty, is_const, is_typedef, is_static))
    }

    fn struct_or_union(&mut self, is_union: bool) -> PResult<Ty> {
        let tag = if let Tok::Ident(s) = self.peek() {
            let s = s.clone();
            self.bump();
            Some(s)
        } else {
            None
        };
        if self.eat_punct("{") {
            // Reserve the tag first so members may refer to the type itself
            // through pointers (`struct node *next`).
            let name = tag.clone().unwrap_or_else(|| "<anon>".to_string());
            let id = self.types.reserve_struct(&name, is_union);
            if let Some(tag) = &tag {
                self.struct_tags.insert(tag.clone(), id);
            }
            let mut members = Vec::new();
            while !self.eat_punct("}") {
                let (base, _c, _, _) = self.decl_specifiers()?;
                loop {
                    let d = self.declarator()?;
                    let ty = (d.wrap)(base.clone());
                    members.push((d.name, ty));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(";")?;
            }
            self.types.complete_struct(id, is_union, members);
            Ok(if is_union { Ty::Union(id) } else { Ty::Struct(id) })
        } else if let Some(tag) = tag {
            match self.struct_tags.get(&tag) {
                Some(id) => Ok(if is_union { Ty::Union(*id) } else { Ty::Struct(*id) }),
                None => self.err(format!("unknown struct/union tag `{tag}`")),
            }
        } else {
            self.err("expected struct body or tag")
        }
    }

    fn enum_def(&mut self) -> PResult<Ty> {
        if let Tok::Ident(_) = self.peek() {
            self.bump(); // tag, unused beyond scoping
        }
        if self.eat_punct("{") {
            let mut next = 0i64;
            while !self.eat_punct("}") {
                let name = self.expect_ident()?;
                if self.eat_punct("=") {
                    let e = self.conditional_expr()?;
                    next = self.const_eval(&e)? as i64;
                }
                self.enum_consts.insert(name, next);
                next += 1;
                if !self.eat_punct(",") {
                    self.expect_punct("}")?;
                    break;
                }
            }
        }
        Ok(Ty::int())
    }

    /// Parse a (possibly abstract) declarator against a to-be-supplied base
    /// type.
    fn declarator(&mut self) -> PResult<Declarator> {
        // Pointer prefix.
        let mut ptr_consts = Vec::new();
        while self.eat_punct("*") {
            let mut c = false;
            while self.is_kw("const") || self.is_kw("volatile") || self.is_kw("restrict") {
                if self.eat_kw("const") {
                    c = true;
                } else {
                    self.bump();
                }
            }
            ptr_consts.push(c);
        }
        // Direct declarator.
        let mut direct_is_ident = false;
        let inner: Declarator = if self.eat_punct("(") {
            // Parenthesised declarator (e.g. `(*f)` in a function pointer) —
            // but `()` or `(type...` means an abstract function suffix on an
            // omitted name instead.
            if matches!(self.peek(), Tok::Punct(")")) || self.at_type_start() {
                // Treat as suffix of an anonymous declarator: rewind by
                // handling it below; push back the `(`.
                self.i -= 1;
                Declarator {
                    name: String::new(),
                    wrap: Box::new(|t| t),
                    own_param_names: None,
                }
            } else {
                let d = self.declarator()?;
                self.expect_punct(")")?;
                d
            }
        } else if let Tok::Ident(s) = self.peek() {
            if TYPE_KEYWORDS.contains(&s.as_str()) {
                return self.err(format!("unexpected keyword `{s}` in declarator"));
            }
            let name = s.clone();
            self.bump();
            direct_is_ident = true;
            Declarator {
                name,
                wrap: Box::new(|t| t),
                own_param_names: None,
            }
        } else {
            Declarator {
                name: String::new(),
                wrap: Box::new(|t| t),
                own_param_names: None,
            }
        };
        // Suffixes: arrays and function parameter lists. These bind tighter
        // than the pointer prefix and apply outermost-last.
        let mut suffixes: Vec<Box<dyn FnOnce(Ty) -> Ty>> = Vec::new();
        let mut own_param_names = inner.own_param_names;
        let mut first_suffix = true;
        loop {
            if self.eat_punct("[") {
                let len = if matches!(self.peek(), Tok::Punct("]")) {
                    None
                } else {
                    let e = self.conditional_expr()?;
                    Some(self.const_eval(&e)?)
                };
                self.expect_punct("]")?;
                suffixes.push(Box::new(move |t| Ty::Array(Box::new(t), len)));
                first_suffix = false;
            } else if self.eat_punct("(") {
                let (params, variadic, names) = self.param_list()?;
                // The parameter list applied directly to the identifier is
                // this function's own — record its names.
                if direct_is_ident && first_suffix {
                    own_param_names = Some(names);
                }
                suffixes.push(Box::new(move |t| Ty::Func {
                    ret: Box::new(t),
                    params,
                    variadic,
                }));
                first_suffix = false;
            } else {
                break;
            }
        }
        let name = inner.name;
        let inner_wrap = inner.wrap;
        Ok(Declarator {
            name,
            own_param_names,
            wrap: Box::new(move |mut t| {
                for (i, c) in ptr_consts.iter().enumerate() {
                    // The first `*` may carry a const pointee from the
                    // specifier level; that is handled by the caller. Here
                    // each further `*const` marks a const *pointer*, which we
                    // do not model — only const pointees matter for §3.9.
                    let _ = (i, c);
                    t = Ty::ptr(t);
                }
                // Suffixes apply to the *declared* entity: innermost
                // suffix first, then the inner declarator wraps the result.
                for s in suffixes.into_iter().rev() {
                    t = s(t);
                }
                inner_wrap(t)
            }),
        })
    }

    fn param_list(&mut self) -> PResult<(Vec<Ty>, bool, Vec<String>)> {
        let mut params = Vec::new();
        let mut names = Vec::new();
        let mut variadic = false;
        if self.eat_punct(")") {
            return Ok((params, variadic, names));
        }
        loop {
            if self.eat_punct("...") {
                variadic = true;
                break;
            }
            let (base, is_const, _, _) = self.decl_specifiers()?;
            if base == Ty::Void && matches!(self.peek(), Tok::Punct(")")) {
                break; // (void)
            }
            let d = self.declarator()?;
            names.push(d.name.clone());
            let mut ty = (d.wrap)(base);
            if is_const {
                // const on a parameter's pointee is folded by named_param in
                // the caller; for the type-only list record const pointees.
                if let Ty::Ptr { pointee, .. } = ty {
                    ty = Ty::Ptr {
                        pointee,
                        const_pointee: true,
                    };
                }
            }
            // Array parameters decay to pointers.
            if let Ty::Array(elem, _) = ty {
                ty = Ty::ptr(*elem);
            }
            params.push(ty);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok((params, variadic, names))
    }

    /// Parse a type-name (for casts and sizeof).
    fn type_name(&mut self) -> PResult<Ty> {
        let (base, is_const, _, _) = self.decl_specifiers()?;
        let d = self.declarator()?;
        if !d.name.is_empty() {
            return self.err("unexpected name in type-name");
        }
        let ty = (d.wrap)(base);
        // `const T *` : the const qualifies the pointee.
        if is_const {
            if let Ty::Ptr { pointee, .. } = ty {
                return Ok(Ty::Ptr {
                    pointee,
                    const_pointee: true,
                });
            }
        }
        Ok(ty)
    }

    // ── Constant evaluation (array sizes, enum values) ───────────────────

    fn const_eval(&mut self, e: &Expr) -> PResult<u64> {
        let v = self.const_eval_i128(e)?;
        u64::try_from(v).map_err(|_| ParseError {
            msg: "negative constant where size expected".into(),
            pos: e.pos,
        })
    }

    fn const_eval_i128(&mut self, e: &Expr) -> PResult<i128> {
        let v = match &e.kind {
            ExprKind::IntLit { value, .. } => *value as i128,
            ExprKind::CharLit(c) => i128::from(*c),
            ExprKind::Ident(name) => match self.enum_consts.get(name) {
                Some(v) => i128::from(*v),
                None => {
                    return Err(ParseError {
                        msg: format!("`{name}` is not a constant"),
                        pos: e.pos,
                    })
                }
            },
            ExprKind::SizeofTy(t) => self.types.size_of(t) as i128,
            ExprKind::AlignofTy(t) => self.types.align_of(t) as i128,
            ExprKind::Unary(UnOp::Neg, a) => -self.const_eval_i128(a)?,
            ExprKind::Unary(UnOp::BitNot, a) => !self.const_eval_i128(a)?,
            ExprKind::Binary(op, a, b) => {
                let a = self.const_eval_i128(a)?;
                let b = self.const_eval_i128(b)?;
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    BinOp::Shl => a << b,
                    BinOp::Shr => a >> b,
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    _ => {
                        return Err(ParseError {
                            msg: "unsupported constant operator".into(),
                            pos: e.pos,
                        })
                    }
                }
            }
            _ => {
                return Err(ParseError {
                    msg: "not a constant expression".into(),
                    pos: e.pos,
                })
            }
        };
        Ok(v)
    }

    // ── Expressions (precedence climbing) ────────────────────────────────

    fn expr(&mut self) -> PResult<Expr> {
        let mut e = self.assignment_expr()?;
        while self.eat_punct(",") {
            let rhs = self.assignment_expr()?;
            let pos = e.pos;
            e = Expr {
                kind: ExprKind::Comma(Box::new(e), Box::new(rhs)),
                pos,
            };
        }
        Ok(e)
    }

    fn assignment_expr(&mut self) -> PResult<Expr> {
        let lhs = self.conditional_expr()?;
        let op = match self.peek() {
            Tok::Punct("=") => Some(None),
            Tok::Punct("+=") => Some(Some(BinOp::Add)),
            Tok::Punct("-=") => Some(Some(BinOp::Sub)),
            Tok::Punct("*=") => Some(Some(BinOp::Mul)),
            Tok::Punct("/=") => Some(Some(BinOp::Div)),
            Tok::Punct("%=") => Some(Some(BinOp::Rem)),
            Tok::Punct("&=") => Some(Some(BinOp::And)),
            Tok::Punct("|=") => Some(Some(BinOp::Or)),
            Tok::Punct("^=") => Some(Some(BinOp::Xor)),
            Tok::Punct("<<=") => Some(Some(BinOp::Shl)),
            Tok::Punct(">>=") => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment_expr()?;
            let pos = lhs.pos;
            Ok(Expr {
                kind: ExprKind::Assign {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                pos,
            })
        } else {
            Ok(lhs)
        }
    }

    fn conditional_expr(&mut self) -> PResult<Expr> {
        let c = self.binary_expr(0)?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let f = self.conditional_expr()?;
            let pos = c.pos;
            Ok(Expr {
                kind: ExprKind::Cond(Box::new(c), Box::new(t), Box::new(f)),
                pos,
            })
        } else {
            Ok(c)
        }
    }

    fn bin_op_prec(&self) -> Option<(BinOp, u8)> {
        let op = match self.peek() {
            Tok::Punct("||") => (BinOp::LogOr, 1),
            Tok::Punct("&&") => (BinOp::LogAnd, 2),
            Tok::Punct("|") => (BinOp::Or, 3),
            Tok::Punct("^") => (BinOp::Xor, 4),
            Tok::Punct("&") => (BinOp::And, 5),
            Tok::Punct("==") => (BinOp::Eq, 6),
            Tok::Punct("!=") => (BinOp::Ne, 6),
            Tok::Punct("<") => (BinOp::Lt, 7),
            Tok::Punct(">") => (BinOp::Gt, 7),
            Tok::Punct("<=") => (BinOp::Le, 7),
            Tok::Punct(">=") => (BinOp::Ge, 7),
            Tok::Punct("<<") => (BinOp::Shl, 8),
            Tok::Punct(">>") => (BinOp::Shr, 8),
            Tok::Punct("+") => (BinOp::Add, 9),
            Tok::Punct("-") => (BinOp::Sub, 9),
            Tok::Punct("*") => (BinOp::Mul, 10),
            Tok::Punct("/") => (BinOp::Div, 10),
            Tok::Punct("%") => (BinOp::Rem, 10),
            _ => return None,
        };
        Some(op)
    }

    fn binary_expr(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.bin_op_prec() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let pos = lhs.pos;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        let kind = match self.peek().clone() {
            Tok::Punct("-") => {
                self.bump();
                ExprKind::Unary(UnOp::Neg, Box::new(self.unary_expr()?))
            }
            Tok::Punct("+") => {
                self.bump();
                ExprKind::Unary(UnOp::Plus, Box::new(self.unary_expr()?))
            }
            Tok::Punct("~") => {
                self.bump();
                ExprKind::Unary(UnOp::BitNot, Box::new(self.unary_expr()?))
            }
            Tok::Punct("!") => {
                self.bump();
                ExprKind::Unary(UnOp::LogNot, Box::new(self.unary_expr()?))
            }
            Tok::Punct("*") => {
                self.bump();
                ExprKind::Deref(Box::new(self.unary_expr()?))
            }
            Tok::Punct("&") => {
                self.bump();
                ExprKind::AddrOf(Box::new(self.unary_expr()?))
            }
            Tok::Punct("++") => {
                self.bump();
                ExprKind::IncDec {
                    inc: true,
                    prefix: true,
                    arg: Box::new(self.unary_expr()?),
                }
            }
            Tok::Punct("--") => {
                self.bump();
                ExprKind::IncDec {
                    inc: false,
                    prefix: true,
                    arg: Box::new(self.unary_expr()?),
                }
            }
            Tok::Ident(s) if s == "sizeof" => {
                self.bump();
                if matches!(self.peek(), Tok::Punct("(")) && {
                    // lookahead: `sizeof (type)` vs `sizeof (expr)`
                    let save = self.i;
                    self.bump();
                    let is_ty = self.at_type_start();
                    self.i = save;
                    is_ty
                } {
                    self.bump();
                    let t = self.type_name()?;
                    self.expect_punct(")")?;
                    ExprKind::SizeofTy(t)
                } else {
                    ExprKind::SizeofExpr(Box::new(self.unary_expr()?))
                }
            }
            Tok::Ident(s) if s == "_Alignof" || s == "alignof" => {
                self.bump();
                self.expect_punct("(")?;
                let t = self.type_name()?;
                self.expect_punct(")")?;
                ExprKind::AlignofTy(t)
            }
            Tok::Punct("(") if {
                let save = self.i;
                let is_cast = {
                    let mut p2 = self.i + 1;
                    match &self.toks[p2.min(self.toks.len() - 1)].tok {
                        Tok::Ident(s) => {
                            let is_ty = TYPE_KEYWORDS.contains(&s.as_str())
                                || self.typedefs.contains_key(s);
                            let _ = &mut p2;
                            is_ty
                        }
                        _ => false,
                    }
                };
                self.i = save;
                is_cast
            } =>
            {
                self.bump();
                let t = self.type_name()?;
                self.expect_punct(")")?;
                let e = self.unary_expr()?;
                ExprKind::Cast(t, Box::new(e))
            }
            _ => return self.postfix_expr(),
        };
        Ok(Expr { kind, pos })
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            let pos = self.pos();
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr {
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    pos,
                };
            } else if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.assignment_expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                e = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                    pos,
                };
            } else if self.eat_punct(".") {
                let f = self.expect_ident()?;
                e = Expr {
                    kind: ExprKind::Member(Box::new(e), f),
                    pos,
                };
            } else if self.eat_punct("->") {
                let f = self.expect_ident()?;
                e = Expr {
                    kind: ExprKind::Arrow(Box::new(e), f),
                    pos,
                };
            } else if self.eat_punct("++") {
                e = Expr {
                    kind: ExprKind::IncDec {
                        inc: true,
                        prefix: false,
                        arg: Box::new(e),
                    },
                    pos,
                };
            } else if self.eat_punct("--") {
                e = Expr {
                    kind: ExprKind::IncDec {
                        inc: false,
                        prefix: false,
                        arg: Box::new(e),
                    },
                    pos,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        let kind = match self.bump() {
            Tok::IntLit {
                value,
                unsigned,
                long,
            } => ExprKind::IntLit {
                value: u128::from(value as u64).min(value),
                unsigned,
                long,
            },
            Tok::FloatLit { value, single } => ExprKind::FloatLit { value, single },
            Tok::CharLit(c) => ExprKind::CharLit(c),
            Tok::StrLit(s) => {
                // Adjacent string literals concatenate.
                let mut s = s;
                while let Tok::StrLit(next) = self.peek() {
                    s.push_str(next);
                    self.bump();
                }
                ExprKind::StrLit(s)
            }
            Tok::Ident(name) => match name.as_str() {
                "NULL" => ExprKind::Cast(
                    Ty::ptr(Ty::Void),
                    Box::new(Expr {
                        kind: ExprKind::IntLit {
                            value: 0,
                            unsigned: false,
                            long: false,
                        },
                        pos,
                    }),
                ),
                "true" => ExprKind::IntLit {
                    value: 1,
                    unsigned: false,
                    long: false,
                },
                "false" => ExprKind::IntLit {
                    value: 0,
                    unsigned: false,
                    long: false,
                },
                "INT_MAX" => lit(i64::from(i32::MAX) as u128, false, false),
                "INT_MIN" => {
                    return Ok(Expr {
                        kind: ExprKind::Unary(
                            UnOp::Neg,
                            Box::new(Expr {
                                kind: lit(1u128 << 31, false, true),
                                pos,
                            }),
                        ),
                        pos,
                    })
                }
                "UINT_MAX" => lit(u128::from(u32::MAX), true, false),
                "LONG_MAX" => lit(i64::MAX as u128, false, true),
                "ULONG_MAX" | "SIZE_MAX" | "UINT64_MAX" => lit(u128::from(u64::MAX), true, true),
                "CHAR_BIT" => lit(8, false, false),
                "SCHAR_MAX" => lit(127, false, false),
                "UCHAR_MAX" => lit(255, false, false),
                "SHRT_MAX" => lit(32767, false, false),
                "USHRT_MAX" => lit(65535, false, false),
                "INTPTR_MAX" => lit(i64::MAX as u128, false, true),
                _ => {
                    if let Some(v) = self.enum_consts.get(&name) {
                        lit(*v as u128, false, false)
                    } else {
                        ExprKind::Ident(name)
                    }
                }
            },
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                return Ok(e);
            }
            t => return self.err(format!("unexpected token `{t}` in expression")),
        };
        Ok(Expr { kind, pos })
    }

    // ── Statements ───────────────────────────────────────────────────────

    fn stmt(&mut self) -> PResult<Stmt> {
        let pos = self.pos();
        if self.eat_punct("{") {
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                body.push(self.stmt()?);
            }
            return Ok(Stmt {
                kind: StmtKind::Block(body),
                pos,
            });
        }
        if self.eat_punct(";") {
            return Ok(Stmt {
                kind: StmtKind::Empty,
                pos,
            });
        }
        if self.is_kw("if") {
            self.bump();
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt {
                kind: StmtKind::If(c, then, els),
                pos,
            });
        }
        if self.is_kw("while") {
            self.bump();
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt {
                kind: StmtKind::While(c, body),
                pos,
            });
        }
        if self.is_kw("do") {
            self.bump();
            let body = Box::new(self.stmt()?);
            if !self.eat_kw("while") {
                return self.err("expected `while` after do-body");
            }
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::DoWhile(body, c),
                pos,
            });
        }
        if self.is_kw("for") {
            self.bump();
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.at_type_start() {
                let d = self.local_decl()?;
                Some(Box::new(d))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt {
                    kind: StmtKind::Expr(e),
                    pos,
                }))
            };
            let cond = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), Tok::Punct(")")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt {
                kind: StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                },
                pos,
            });
        }
        if self.is_kw("switch") {
            self.bump();
            self.expect_punct("(")?;
            let scrut = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let mut cases: Vec<SwitchCase> = Vec::new();
            while !self.eat_punct("}") {
                if self.eat_kw("case") {
                    let v = self.conditional_expr()?;
                    self.expect_punct(":")?;
                    cases.push(SwitchCase {
                        value: Some(v),
                        body: Vec::new(),
                    });
                } else if self.eat_kw("default") {
                    self.expect_punct(":")?;
                    cases.push(SwitchCase {
                        value: None,
                        body: Vec::new(),
                    });
                } else {
                    let s = self.stmt()?;
                    match cases.last_mut() {
                        Some(c) => c.body.push(s),
                        None => return self.err("statement before first case label"),
                    }
                }
            }
            return Ok(Stmt {
                kind: StmtKind::Switch(scrut, cases),
                pos,
            });
        }
        if self.is_kw("return") {
            self.bump();
            let e = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            return Ok(Stmt {
                kind: StmtKind::Return(e),
                pos,
            });
        }
        if self.is_kw("break") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Break,
                pos,
            });
        }
        if self.is_kw("continue") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Continue,
                pos,
            });
        }
        if self.at_type_start() && !self.is_kw("const") || self.is_decl_start() {
            return self.local_decl();
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt {
            kind: StmtKind::Expr(e),
            pos,
        })
    }

    fn is_decl_start(&self) -> bool {
        self.at_type_start()
    }

    /// A local declaration statement: `T d1 = i1, d2 = i2, ...;`
    /// Multiple declarators become a block of single declarations.
    fn local_decl(&mut self) -> PResult<Stmt> {
        let pos = self.pos();
        let (base, is_const, is_typedef, is_static) = self.decl_specifiers()?;
        if is_typedef {
            let d = self.declarator()?;
            let ty = (d.wrap)(base);
            self.typedefs.insert(d.name, ty);
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Empty,
                pos,
            });
        }
        // Bare struct/union/enum definition.
        if matches!(self.peek(), Tok::Punct(";")) {
            self.bump();
            return Ok(Stmt {
                kind: StmtKind::Empty,
                pos,
            });
        }
        let mut decls = Vec::new();
        loop {
            let d = self.declarator()?;
            let mut ty = (d.wrap)(base.clone());
            let mut obj_const = is_const;
            // `const T *p`: const qualifies the pointee, not the object.
            if is_const {
                if let Ty::Ptr { pointee, .. } = ty {
                    ty = Ty::Ptr {
                        pointee,
                        const_pointee: true,
                    };
                    obj_const = false;
                }
            }
            let init = if self.eat_punct("=") {
                Some(self.initialiser()?)
            } else {
                None
            };
            decls.push(Stmt {
                kind: StmtKind::Decl(Decl {
                    name: d.name,
                    ty,
                    is_const: obj_const,
                    is_static,
                    init,
                    pos,
                }),
                pos,
            });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        if decls.len() == 1 {
            Ok(decls.pop().expect("one decl"))
        } else {
            Ok(Stmt {
                kind: StmtKind::DeclGroup(decls),
                pos,
            })
        }
    }

    fn initialiser(&mut self) -> PResult<Init> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            if !self.eat_punct("}") {
                loop {
                    items.push(self.initialiser()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    if matches!(self.peek(), Tok::Punct("}")) {
                        break; // trailing comma
                    }
                }
                self.expect_punct("}")?;
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.assignment_expr()?))
        }
    }

    // ── Top level ────────────────────────────────────────────────────────

    fn translation_unit(&mut self) -> PResult<Program> {
        let mut items = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            if self.eat_punct(";") {
                continue;
            }
            let pos = self.pos();
            let (base, is_const, is_typedef, _is_static) = self.decl_specifiers()?;
            if is_typedef {
                let d = self.declarator()?;
                let ty = (d.wrap)(base);
                self.typedefs.insert(d.name, ty);
                self.expect_punct(";")?;
                continue;
            }
            if matches!(self.peek(), Tok::Punct(";")) {
                self.bump(); // bare struct/union/enum definition
                continue;
            }
            let d = self.declarator()?;
            let own_names = d.own_param_names.clone();
            let mut ty = (d.wrap)(base.clone());
            let mut obj_const = is_const;
            if is_const {
                if let Ty::Ptr { pointee, .. } = ty.clone() {
                    ty = Ty::Ptr {
                        pointee,
                        const_pointee: true,
                    };
                    obj_const = false;
                }
            }
            if let Ty::Func {
                ret,
                params: param_tys,
                variadic,
            } = ty.clone()
            {
                // Function definition or prototype. The declarator reduced
                // the parameter list to types; recover the declarator's own
                // parameter names for definitions.
                let names = own_names.unwrap_or_default();
                let body = if self.eat_punct("{") {
                    let mut stmts = Vec::new();
                    while !self.eat_punct("}") {
                        stmts.push(self.stmt()?);
                    }
                    Some(stmts)
                } else {
                    self.expect_punct(";")?;
                    None
                };
                let params = param_tys
                    .into_iter()
                    .zip(names.into_iter().chain(std::iter::repeat(String::new())))
                    .map(|(ty, name)| Param { name, ty })
                    .collect();
                items.push(Item::Func(FuncDef {
                    name: d.name,
                    ret: *ret,
                    params,
                    variadic,
                    body,
                    pos,
                }));
                continue;
            }
            // Global variable(s).
            let mut name = d.name;
            let mut gty = ty;
            loop {
                let init = if self.eat_punct("=") {
                    Some(self.initialiser()?)
                } else {
                    None
                };
                items.push(Item::Global(Decl {
                    name: std::mem::take(&mut name),
                    ty: gty.clone(),
                    is_const: obj_const,
                    is_static: false,
                    init,
                    pos,
                }));
                if !self.eat_punct(",") {
                    break;
                }
                let d2 = self.declarator()?;
                name = d2.name;
                gty = (d2.wrap)(base.clone());
            }
            self.expect_punct(";")?;
        }
        Ok(Program { items })
    }
}

fn lit(value: u128, unsigned: bool, long: bool) -> ExprKind {
    ExprKind::IntLit {
        value,
        unsigned,
        long,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Parsed {
        parse(src, TargetLayout::default()).expect("parse")
    }

    #[test]
    fn simple_function() {
        let p = parse_ok("int main(void) { return 0; }");
        assert_eq!(p.program.items.len(), 1);
        match &p.program.items[0] {
            Item::Func(f) => {
                assert_eq!(f.name, "main");
                assert_eq!(f.ret, Ty::int());
                assert!(f.params.is_empty());
                assert!(f.body.is_some());
            }
            other @ Item::Global(_) => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parameter_names_survive() {
        let p = parse_ok("void f(int *p, int i) { *p = i; }");
        match &p.program.items[0] {
            Item::Func(f) => {
                assert_eq!(f.params[0].name, "p");
                assert_eq!(f.params[0].ty, Ty::ptr(Ty::int()));
                assert_eq!(f.params[1].name, "i");
            }
            other @ Item::Global(_) => panic!("{other:?}"),
        }
    }

    #[test]
    fn declarators_and_arrays() {
        let p = parse_ok("int main(void) { int x[2]; int *p = &x[0]; return *p; }");
        assert_eq!(p.program.items.len(), 1);
    }

    #[test]
    fn function_pointer_declarator() {
        let p = parse_ok("int g(int x) { return x; } int main(void) { int (*f)(int) = g; return f(3); }");
        match &p.program.items[1] {
            Item::Func(f) => {
                let body = f.body.as_ref().unwrap();
                match &body[0].kind {
                    StmtKind::Decl(d) => match &d.ty {
                        Ty::Ptr { pointee, .. } => {
                            assert!(matches!(**pointee, Ty::Func { .. }));
                        }
                        t => panic!("expected function pointer, got {t:?}"),
                    },
                    s => panic!("{s:?}"),
                }
            }
            other @ Item::Global(_) => panic!("{other:?}"),
        }
    }

    #[test]
    fn struct_union_typedef_enum() {
        let p = parse_ok(
            "typedef struct point { int x; int y; } point_t;\n\
             union u { int *p; uintptr_t ip; };\n\
             enum e { A, B = 5, C };\n\
             int main(void) { point_t q; q.x = B; return q.x + C; }",
        );
        assert_eq!(p.types.structs.len(), 2);
        assert!(!p.types.structs[0].is_union);
        assert!(p.types.structs[1].is_union);
    }

    #[test]
    fn casts_and_sizeof() {
        parse_ok(
            "int main(void) { int x; uintptr_t i = (uintptr_t)&x; \
             int *q = (int*)i; return (int)sizeof(int*) + (int)sizeof x; }",
        );
    }

    #[test]
    fn null_expands_to_void_ptr_cast() {
        let p = parse_ok("int main(void) { int *q = NULL; return q == NULL; }");
        assert_eq!(p.program.items.len(), 1);
    }

    #[test]
    fn const_pointee() {
        let p = parse_ok("int main(void) { const int *p; const int c = 3; return c; }");
        match &p.program.items[0] {
            Item::Func(f) => {
                let body = f.body.as_ref().unwrap();
                match &body[0].kind {
                    StmtKind::Decl(d) => {
                        assert!(matches!(
                            d.ty,
                            Ty::Ptr {
                                const_pointee: true,
                                ..
                            }
                        ));
                        assert!(!d.is_const);
                    }
                    s => panic!("{s:?}"),
                }
                match &body[1].kind {
                    StmtKind::Decl(d) => assert!(d.is_const),
                    s => panic!("{s:?}"),
                }
            }
            other @ Item::Global(_) => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_flow_statements() {
        parse_ok(
            "int main(void) { int s = 0; for (int i = 0; i < 10; i++) { \
             if (i % 2) continue; s += i; } \
             while (s > 100) { s--; break; } \
             do { s++; } while (0); \
             switch (s) { case 1: s = 2; break; default: s = 3; } \
             return s; }",
        );
    }

    #[test]
    fn string_literals_concatenate() {
        let p = parse_ok(r#"int main(void) { const char *s = "a" "b"; return s[0]; }"#);
        assert_eq!(p.program.items.len(), 1);
    }

    #[test]
    fn error_reports_position() {
        let e = parse("int main(void) { return 0 }", TargetLayout::default()).unwrap_err();
        assert!(e.pos.line >= 1);
        assert!(e.to_string().contains("expected"));
    }
}
