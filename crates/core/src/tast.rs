//! Typed intermediate representation ("mini-Core").
//!
//! The type checker lowers the untyped AST into this form, making explicit
//! everything the CHERI C semantics cares about: every implicit conversion
//! is a [`TExprKind::Cast`] node, array decay and lvalue-to-rvalue
//! conversion are explicit, pointer arithmetic is distinguished from integer
//! arithmetic, and every binary operation on capability-carrying types is
//! annotated with which operand the result capability derives from —
//! the elaboration step of §4.4 of the paper.

use crate::ast::{BinOp, UnOp};
use crate::lex::Pos;
use crate::types::{IntTy, Ty};

/// Which operand a binary operation's result capability derives from
/// (§3.7/§4.4: "the capability derivation picks as a source for the
/// resulting capability the argument which was not a result of implicit or
/// explicit conversion from a non-capability type"; ties go left).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeriveFrom {
    /// Derive from the left operand.
    Left,
    /// Derive from the right operand.
    Right,
}

/// How a cast converts its operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CastKind {
    /// Integer to integer (possibly capability-carrying on either side;
    /// int→intptr derives from NULL, intptr→int takes the address value).
    IntToInt,
    /// Pointer to integer: exposes the allocation (PNVI-ae); to
    /// `(u)intptr_t` it preserves the capability (§3.3).
    PtrToInt,
    /// Integer to pointer: PNVI-ae-udi provenance lookup; from
    /// `(u)intptr_t` it preserves the capability.
    IntToPtr,
    /// Pointer to pointer (including const-adding/removing casts, which are
    /// no-ops on the capability, §3.9).
    PtrToPtr,
    /// Scalar to `_Bool` (zero test).
    ToBool,
    /// Discard the value (`(void)e`).
    ToVoid,
    /// Integer to floating point.
    IntToFloat,
    /// Floating point to integer (UB when the truncated value does not
    /// fit the target type, ISO 6.3.1.4).
    FloatToInt,
    /// Between floating-point types (precision change).
    FloatToFloat,
}

/// Identified builtin functions and CHERI intrinsics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Builtin {
    /// `printf(fmt, ...)`.
    Printf,
    /// `fprintf(stream, fmt, ...)` — the stream argument is evaluated and
    /// ignored; output goes to the captured stderr stream.
    Fprintf,
    /// `assert(e)`.
    Assert,
    /// `abort()`.
    Abort,
    /// `exit(code)`.
    Exit,
    /// `malloc(n)`.
    Malloc,
    /// `calloc(n, sz)`.
    Calloc,
    /// `free(p)`.
    Free,
    /// `realloc(p, n)`.
    Realloc,
    /// `memcpy(dst, src, n)`.
    Memcpy,
    /// `memmove(dst, src, n)`.
    Memmove,
    /// `memset(p, c, n)`.
    Memset,
    /// `memcmp(a, b, n)`.
    Memcmp,
    /// `strlen(s)`.
    Strlen,
    /// `strcmp(a, b)`.
    Strcmp,
    /// `strcpy(dst, src)`.
    Strcpy,
    /// Test helper: print a capability-carrying value in Appendix A format.
    PrintCap,
    /// `fabs(x)`.
    Fabs,
    /// `sqrt(x)`.
    Sqrt,
    // ── CHERI intrinsics (§4.5) ─────────────────────────────────────────
    /// `cheri_tag_get(c)` — unspecified result if ghost-tag-unspecified.
    CheriTagGet,
    /// `cheri_tag_clear(c)`.
    CheriTagClear,
    /// `cheri_is_valid(c)` (alias of tag get).
    CheriIsValid,
    /// `cheri_address_get(c)`.
    CheriAddressGet,
    /// `cheri_address_set(c, a)`.
    CheriAddressSet,
    /// `cheri_base_get(c)`.
    CheriBaseGet,
    /// `cheri_length_get(c)`.
    CheriLengthGet,
    /// `cheri_offset_get(c)`.
    CheriOffsetGet,
    /// `cheri_offset_set(c, o)`.
    CheriOffsetSet,
    /// `cheri_perms_get(c)`.
    CheriPermsGet,
    /// `cheri_perms_and(c, mask)`.
    CheriPermsAnd,
    /// `cheri_bounds_set(c, len)`.
    CheriBoundsSet,
    /// `cheri_bounds_set_exact(c, len)`.
    CheriBoundsSetExact,
    /// `cheri_is_equal_exact(a, b)` — unspecified if ghost state set (§3.6).
    CheriIsEqualExact,
    /// `cheri_is_subset(a, b)`.
    CheriIsSubset,
    /// `cheri_representable_length(n)`.
    CheriReprLength,
    /// `cheri_representable_alignment_mask(n)`.
    CheriReprAlignMask,
    /// `cheri_sentry_create(c)`.
    CheriSentryCreate,
    /// `cheri_seal(c, auth)`.
    CheriSeal,
    /// `cheri_unseal(c, auth)`.
    CheriUnseal,
    /// `cheri_is_sealed(c)`.
    CheriIsSealed,
    /// `cheri_type_get(c)`.
    CheriTypeGet,
    /// `cheri_flags_get(c)`.
    CheriFlagsGet,
    /// `cheri_flags_set(c, f)`.
    CheriFlagsSet,
    /// `cheri_ddc_get()` — the default data capability.
    CheriDdcGet,
    /// `cheri_pcc_get()` — the program counter capability.
    CheriPccGet,
}

/// A typed expression.
#[derive(Clone, Debug)]
pub struct TExpr {
    /// The C type of the expression's value.
    pub ty: Ty,
    /// Node kind.
    pub kind: TExprKind,
    /// Source position.
    pub pos: Pos,
    /// Was this value produced by (implicit or explicit) conversion from a
    /// non-capability-carrying type? Drives capability derivation (§3.7).
    pub from_noncap: bool,
}

/// What a call dispatches to.
#[derive(Clone, Debug)]
pub enum Callee {
    /// Direct call to a named, defined function.
    Direct(String),
    /// Call through a function-pointer expression.
    Indirect(Box<TExpr>),
    /// A builtin or CHERI intrinsic.
    Builtin(Builtin),
}

/// Typed expression kinds. Nodes whose name starts with `Lv` are *lvalues*:
/// they evaluate to a location (a pointer value), not a value.
#[derive(Clone, Debug)]
pub enum TExprKind {
    /// Integer constant.
    ConstInt(i128),
    /// Floating-point constant.
    ConstFloat(f64),
    /// String literal (materialised as a read-only allocation, decayed).
    StrLit(String),
    /// Variable reference (lvalue). The name is unique after resolution.
    LvVar(String),
    /// Dereference of a pointer rvalue (lvalue).
    LvDeref(Box<TExpr>),
    /// Field of an lvalue: base lvalue plus constant offset (lvalue).
    LvMember(Box<TExpr>, u64),
    /// Lvalue-to-rvalue conversion: load from the location.
    Load(Box<TExpr>),
    /// Address-of: the location as a pointer value.
    AddrOf(Box<TExpr>),
    /// Array-to-pointer decay of an lvalue.
    Decay(Box<TExpr>),
    /// Function designator, as a (sentry-sealed) function pointer.
    FuncAddr(String),
    /// Integer binary operation (operands pre-converted to `ty`).
    Binary {
        /// The operator (arithmetic, bitwise, or comparison on integers).
        op: BinOp,
        /// Left operand.
        lhs: Box<TExpr>,
        /// Right operand.
        rhs: Box<TExpr>,
        /// Capability derivation choice (§4.4); meaningful only when the
        /// result type is capability-carrying.
        derive: DeriveFrom,
    },
    /// Short-circuit `&&` / `||`.
    Logical {
        /// `true` for `&&`.
        and: bool,
        /// Left operand.
        lhs: Box<TExpr>,
        /// Right operand.
        rhs: Box<TExpr>,
    },
    /// Unary integer operation.
    Unary(UnOp, Box<TExpr>),
    /// Pointer ± integer (ISO 6.5.6; the §3.2 rules).
    PtrAdd {
        /// The pointer operand.
        ptr: Box<TExpr>,
        /// The (signed) index operand.
        idx: Box<TExpr>,
        /// Element size in bytes.
        elem: u64,
        /// Negate the index (`p - i`).
        neg: bool,
    },
    /// Pointer difference in elements.
    PtrDiff {
        /// Left pointer.
        a: Box<TExpr>,
        /// Right pointer.
        b: Box<TExpr>,
        /// Element size in bytes.
        elem: u64,
    },
    /// Pointer comparison.
    PtrCmp {
        /// Comparison operator.
        op: BinOp,
        /// Left pointer.
        a: Box<TExpr>,
        /// Right pointer.
        b: Box<TExpr>,
    },
    /// Conversion.
    Cast {
        /// How to convert.
        kind: CastKind,
        /// Operand.
        arg: Box<TExpr>,
    },
    /// Simple assignment; `rhs` already converted to the target type.
    Assign {
        /// Target location.
        lv: Box<TExpr>,
        /// Value.
        rhs: Box<TExpr>,
    },
    /// Compound assignment `lv op= rhs`: load, operate in `common` type,
    /// convert back, store; yields the stored value.
    AssignOp {
        /// Target location (evaluated once).
        lv: Box<TExpr>,
        /// Operator.
        op: BinOp,
        /// Right operand, already converted to `common`.
        rhs: Box<TExpr>,
        /// The type the operation is performed at.
        common: Ty,
        /// Capability derivation for the operation.
        derive: DeriveFrom,
    },
    /// Pointer compound assignment `p += i` / `p -= i`.
    PtrAssignAdd {
        /// Target pointer location.
        lv: Box<TExpr>,
        /// Index operand.
        idx: Box<TExpr>,
        /// Element size.
        elem: u64,
        /// Negate (`-=`).
        neg: bool,
    },
    /// `++`/`--` on an integer or pointer lvalue.
    IncDec {
        /// Target location.
        lv: Box<TExpr>,
        /// Increment (vs decrement).
        inc: bool,
        /// Prefix (yield new value) vs postfix (yield old value).
        prefix: bool,
        /// Element size for pointer targets; 1 for integers.
        elem: u64,
    },
    /// Function call.
    Call {
        /// What to call.
        callee: Callee,
        /// Arguments, converted to parameter types (or default-promoted for
        /// variadic positions).
        args: Vec<TExpr>,
    },
    /// Conditional expression.
    Cond {
        /// Condition.
        c: Box<TExpr>,
        /// Then value.
        t: Box<TExpr>,
        /// Else value.
        f: Box<TExpr>,
    },
    /// Comma operator.
    Comma(Box<TExpr>, Box<TExpr>),
}

/// A typed initialiser.
#[derive(Clone, Debug)]
pub enum TInit {
    /// Scalar initialiser, converted to the object type.
    Scalar(TExpr),
    /// Aggregate initialiser; unmentioned elements are zero-initialised.
    List(Vec<TInit>),
    /// String literal initialising a char array.
    Str(String),
}

/// A typed statement.
#[derive(Clone, Debug)]
pub enum TStmt {
    /// Local variable declaration.
    Decl {
        /// Unique name.
        name: String,
        /// Object type.
        ty: Ty,
        /// The object is `const`-qualified (read-only capability, §3.9).
        is_const: bool,
        /// Initialiser.
        init: Option<TInit>,
        /// Position.
        pos: Pos,
    },
    /// Expression statement.
    Expr(TExpr),
    /// Block.
    Block(Vec<TStmt>),
    /// `if`.
    If(TExpr, Box<TStmt>, Option<Box<TStmt>>),
    /// `while`.
    While(TExpr, Box<TStmt>),
    /// `do while`.
    DoWhile(Box<TStmt>, TExpr),
    /// `for`.
    For {
        /// Init statement.
        init: Option<Box<TStmt>>,
        /// Condition.
        cond: Option<TExpr>,
        /// Step.
        step: Option<TExpr>,
        /// Body.
        body: Box<TStmt>,
    },
    /// `switch` (cases with constant values; `None` = `default`).
    Switch(TExpr, Vec<(Option<i128>, Vec<TStmt>)>),
    /// `return`.
    Return(Option<TExpr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// Emulated `memcpy` from a recognised byte-copy loop (the
    /// tree-loop-distribute-patterns optimisation of §3.5). Operands are
    /// pointer rvalues and a byte count.
    OptMemcpy {
        /// Destination pointer.
        dst: TExpr,
        /// Source pointer.
        src: TExpr,
        /// Number of bytes.
        n: TExpr,
    },
    /// Empty.
    Empty,
}

/// A typed function.
#[derive(Clone, Debug)]
pub struct TFunc {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Parameters (unique names).
    pub params: Vec<(String, Ty)>,
    /// Variadic.
    pub variadic: bool,
    /// Body.
    pub body: Vec<TStmt>,
    /// Position.
    pub pos: Pos,
}

/// A typed global.
#[derive(Clone, Debug)]
pub struct TGlobal {
    /// Global name.
    pub name: String,
    /// Object type.
    pub ty: Ty,
    /// `const`-qualified.
    pub is_const: bool,
    /// Initialiser.
    pub init: Option<TInit>,
    /// Position.
    pub pos: Pos,
}

/// A fully type-checked program.
#[derive(Clone, Debug)]
pub struct TProgram {
    /// Struct layouts and target sizes.
    pub types: crate::types::TypeTable,
    /// Globals in declaration order.
    pub globals: Vec<TGlobal>,
    /// Functions by name.
    pub funcs: std::collections::HashMap<String, TFunc>,
}

impl TExpr {
    /// Is this node an lvalue (a location)?
    #[must_use]
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self.kind,
            TExprKind::LvVar(_) | TExprKind::LvDeref(_) | TExprKind::LvMember(..)
        )
    }

    /// The integer type, if the expression has one.
    #[must_use]
    pub fn int_ty(&self) -> Option<IntTy> {
        self.ty.as_int()
    }
}
