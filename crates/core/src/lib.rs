//! Executable CHERI C semantics.
//!
//! This crate is the Rust reconstruction of the paper's executable
//! semantics (§4): a C front end (lexer, parser, type checker with explicit
//! capability derivation), an interpreter over the CHERI memory object model
//! of `cheri-mem`, the CHERI intrinsics with their polymorphic typing
//! (§4.5), and *implementation profiles* that emulate the observable
//! behaviour of the Clang and GCC CHERI C implementations the paper
//! compares against (§5, Appendix A).
//!
//! # Quickstart
//!
//! ```
//! use cheri_core::{run, Profile};
//!
//! // The §3.1 example: a one-past write. Under the reference semantics it
//! // is UB; on emulated hardware it traps.
//! let src = r#"
//!     void f(int *p, int i) { int *q = p + i; *q = 42; }
//!     int main(void) { int x=0, y=0; f(&x, 1); return y; }
//! "#;
//! let r = run(src, &Profile::cerberus());
//! assert_eq!(r.outcome.label(), "UB:UB_CHERI_BoundsViolation");
//! let r = run(src, &Profile::clang_morello(false));
//! assert_eq!(r.outcome.label(), "trap:capability bounds fault");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod interp;
pub mod ir;
pub mod lex;
pub mod opt;
pub mod parse;
pub mod pretty;
pub mod profile;
pub mod report;
pub mod tast;
pub mod typeck;
pub mod types;

use cheri_cap::Capability;
pub use cheri_cap::{CheriotCap, MorelloCap};
pub use interp::{Engine, Interp};
pub use profile::{OptFlags, Profile};
pub use report::{Outcome, RunResult};

use types::TargetLayout;

/// Parse, type-check and optimise a program for a given profile.
///
/// # Errors
///
/// Returns a human-readable message on parse or type errors.
pub fn compile(src: &str, profile: &Profile) -> Result<tast::TProgram, String> {
    compile_for::<MorelloCap>(src, profile)
}

/// [`compile`] for an explicit capability model (the pointer size differs).
///
/// # Errors
///
/// Returns a human-readable message on parse or type errors.
pub fn compile_for<C: Capability>(src: &str, profile: &Profile) -> Result<tast::TProgram, String> {
    let layout = TargetLayout {
        ptr_size: if profile.mem.capabilities {
            C::CAP_BYTES as u64
        } else {
            u64::from(C::ADDR_BITS / 8)
        },
    };
    let parsed = parse::parse(src, layout).map_err(|e| e.to_string())?;
    let prog = typeck::check(parsed).map_err(|e| e.to_string())?;
    Ok(opt::optimize(prog, &profile.opt))
}

/// Run a CHERI C program under a profile with the Morello capability model.
/// Front-end errors are reported as [`Outcome::Error`].
#[must_use]
pub fn run(src: &str, profile: &Profile) -> RunResult {
    run_with::<MorelloCap>(src, profile)
}

/// [`run`] generalised over the capability model — e.g. pass
/// [`CheriotCap`] to execute against the 64-bit CHERIoT-style format
/// (portability across architectures, §3.10).
#[must_use]
pub fn run_with<C: Capability>(src: &str, profile: &Profile) -> RunResult {
    match compile_for::<C>(src, profile) {
        Ok(prog) => Interp::<C>::new(&prog, profile).run(),
        Err(msg) => RunResult {
            outcome: Outcome::Error(msg),
            stdout: String::new(),
            stderr: String::new(),
            unspecified_reads: 0,
            mem_stats: cheri_mem::MemStats::default(),
        },
    }
}

/// [`run_with`] with an explicit [`Engine`] selection (`run`/`run_with`
/// use the default, [`Engine::Bytecode`]; pass [`Engine::Tree`] for the
/// legacy recursive walker, e.g. via the CLI's `--engine tree`).
#[must_use]
pub fn run_with_engine<C: Capability>(src: &str, profile: &Profile, engine: Engine) -> RunResult {
    match compile_for::<C>(src, profile) {
        Ok(prog) => Interp::<C>::new(&prog, profile).with_engine(engine).run(),
        Err(msg) => RunResult {
            outcome: Outcome::Error(msg),
            stdout: String::new(),
            stderr: String::new(),
            unspecified_reads: 0,
            mem_stats: cheri_mem::MemStats::default(),
        },
    }
}

/// [`run`] returning the typed memory-event stream as well (with a
/// terminal exit/UB/trap event), for trace diffing and analysis. Front-end
/// errors are reported as [`Outcome::Error`] with an empty stream.
#[must_use]
pub fn run_traced(src: &str, profile: &Profile) -> (RunResult, Vec<cheri_mem::MemEvent>) {
    run_traced_with_engine(src, profile, Engine::default())
}

/// [`run_traced`] with an explicit [`Engine`] selection.
#[must_use]
pub fn run_traced_with_engine(
    src: &str,
    profile: &Profile,
    engine: Engine,
) -> (RunResult, Vec<cheri_mem::MemEvent>) {
    match compile_for::<MorelloCap>(src, profile) {
        Ok(prog) => Interp::<MorelloCap>::new(&prog, profile)
            .with_engine(engine)
            .run_with_events(),
        Err(msg) => (
            RunResult {
                outcome: Outcome::Error(msg),
                stdout: String::new(),
                stderr: String::new(),
                unspecified_reads: 0,
                mem_stats: cheri_mem::MemStats::default(),
            },
            Vec::new(),
        ),
    }
}

#[cfg(test)]
mod tests;
