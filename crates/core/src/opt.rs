//! Optimisation-effect emulation passes.
//!
//! The paper's §3 repeatedly observes that what a CHERI C program does at
//! `-O3` differs observably from `-O0` because specific transformations
//! remove or introduce capability-relevant operations. This module
//! implements the two transformations that act at the IR level:
//!
//! * **Constant folding / reassociation** (§3.2, §3.3): `(p + 100001) -
//!   100000` becomes `p + 1`, eliminating a transient excursion into
//!   non-representability — which is why the paper's semantics must allow
//!   optimisations to *eliminate* (but never *introduce*)
//!   non-representability.
//! * **Byte-copy-loop to `memcpy`** (§3.5): GCC's
//!   `tree-loop-distribute-patterns` turns a manual byte-copy loop into a
//!   `memcpy` call, which in CHERI C preserves capability tags the manual
//!   loop would have lost.
//!
//! (The third emulated effect, identity-write elision, acts at runtime in
//! the interpreter because it needs the current memory contents.)

use crate::ast::BinOp;
use crate::profile::OptFlags;
use crate::tast::*;
use crate::typeck::fold_const;

/// Apply the optimisation-effect passes enabled in `opt` to the program.
#[must_use]
pub fn optimize(mut prog: TProgram, opt: &OptFlags) -> TProgram {
    if !opt.fold_transient_arith && !opt.loops_to_memcpy {
        return prog;
    }
    let funcs = std::mem::take(&mut prog.funcs);
    prog.funcs = funcs
        .into_iter()
        .map(|(name, mut f)| {
            f.body = opt_stmts(f.body, opt);
            (name, f)
        })
        .collect();
    prog
}

fn opt_stmts(stmts: Vec<TStmt>, opt: &OptFlags) -> Vec<TStmt> {
    let mut out: Vec<TStmt> = stmts.into_iter().map(|s| opt_stmt(s, opt)).collect();
    if opt.fold_transient_arith {
        peephole_copy_prop(&mut out);
    }
    out
}

/// Statement-level emulation of copy propagation + dead-store elimination
/// for the §3.2 pattern:
///
/// ```c
/// int *q = p + 100001;
/// q = q - 100000;
/// ```
///
/// becomes `int *q = p + 1;` — the transient non-representable value never
/// exists in the optimised program.
fn peephole_copy_prop(stmts: &mut [TStmt]) {
    for i in 0..stmts.len().saturating_sub(1) {
        let (a, b) = stmts.split_at_mut(i + 1);
        let decl = a.last_mut().expect("split point");
        let next = &mut b[0];
        let TStmt::Decl {
            name,
            init: Some(TInit::Scalar(init)),
            ..
        } = decl
        else {
            continue;
        };
        let TExprKind::PtrAdd {
            ptr: p0,
            idx: idx1,
            elem: e1,
            neg: n1,
        } = &init.kind
        else {
            continue;
        };
        let Some(c1) = fold_const(idx1) else { continue };
        // Next statement: `name = PtrAdd(Load(name), c2)`.
        let TStmt::Expr(TExpr {
            kind: TExprKind::Assign { lv, rhs },
            ..
        }) = next
        else {
            continue;
        };
        if !matches!(&lv.kind, TExprKind::LvVar(n) if n == name) {
            continue;
        }
        let TExprKind::PtrAdd {
            ptr: inner,
            idx: idx2,
            elem: e2,
            neg: n2,
        } = &rhs.kind
        else {
            continue;
        };
        if e1 != e2 || !loads_var(inner, name) {
            continue;
        }
        let Some(c2) = fold_const(idx2) else { continue };
        let total = (if *n1 { -c1 } else { c1 }) + (if *n2 { -c2 } else { c2 });
        let (neg, c) = if total >= 0 { (false, total) } else { (true, -total) };
        let combined = TExpr {
            ty: init.ty.clone(),
            kind: TExprKind::PtrAdd {
                ptr: p0.clone(),
                idx: Box::new(TExpr {
                    ty: idx1.ty.clone(),
                    kind: TExprKind::ConstInt(c),
                    pos: idx1.pos,
                    from_noncap: true,
                }),
                elem: *e1,
                neg,
            },
            pos: init.pos,
            from_noncap: init.from_noncap,
        };
        *init = combined;
        *next = TStmt::Empty;
    }
}

fn opt_stmt(s: TStmt, opt: &OptFlags) -> TStmt {
    match s {
        TStmt::Decl {
            name,
            ty,
            is_const,
            init,
            pos,
        } => TStmt::Decl {
            name,
            ty,
            is_const,
            init: init.map(|i| opt_init(i, opt)),
            pos,
        },
        TStmt::Expr(e) => TStmt::Expr(opt_expr(e, opt)),
        TStmt::Block(b) => TStmt::Block(opt_stmts(b, opt)),
        TStmt::If(c, t, e) => TStmt::If(
            opt_expr(c, opt),
            Box::new(opt_stmt(*t, opt)),
            e.map(|e| Box::new(opt_stmt(*e, opt))),
        ),
        TStmt::While(c, b) => TStmt::While(opt_expr(c, opt), Box::new(opt_stmt(*b, opt))),
        TStmt::DoWhile(b, c) => TStmt::DoWhile(Box::new(opt_stmt(*b, opt)), opt_expr(c, opt)),
        TStmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let folded = TStmt::For {
                init: init.map(|s| Box::new(opt_stmt(*s, opt))),
                cond: cond.map(|e| opt_expr(e, opt)),
                step: step.map(|e| opt_expr(e, opt)),
                body: Box::new(opt_stmt(*body, opt)),
            };
            if opt.loops_to_memcpy {
                if let Some(m) = match_copy_loop(&folded) {
                    return m;
                }
            }
            folded
        }
        TStmt::Switch(e, cases) => TStmt::Switch(
            opt_expr(e, opt),
            cases
                .into_iter()
                .map(|(v, b)| (v, opt_stmts(b, opt)))
                .collect(),
        ),
        TStmt::Return(e) => TStmt::Return(e.map(|e| opt_expr(e, opt))),
        other => other,
    }
}

fn opt_init(i: TInit, opt: &OptFlags) -> TInit {
    match i {
        TInit::Scalar(e) => TInit::Scalar(opt_expr(e, opt)),
        TInit::List(items) => TInit::List(items.into_iter().map(|i| opt_init(i, opt)).collect()),
        s @ TInit::Str(_) => s,
    }
}

fn opt_expr(e: TExpr, opt: &OptFlags) -> TExpr {
    let e = map_children(e, opt);
    if opt.fold_transient_arith {
        fold_arith(e)
    } else {
        e
    }
}

fn map_children(mut e: TExpr, opt: &OptFlags) -> TExpr {
    let kind = std::mem::replace(&mut e.kind, TExprKind::ConstInt(0));
    e.kind = match kind {
        TExprKind::Binary {
            op,
            lhs,
            rhs,
            derive,
        } => TExprKind::Binary {
            op,
            lhs: Box::new(opt_expr(*lhs, opt)),
            rhs: Box::new(opt_expr(*rhs, opt)),
            derive,
        },
        TExprKind::Logical { and, lhs, rhs } => TExprKind::Logical {
            and,
            lhs: Box::new(opt_expr(*lhs, opt)),
            rhs: Box::new(opt_expr(*rhs, opt)),
        },
        TExprKind::Unary(op, a) => TExprKind::Unary(op, Box::new(opt_expr(*a, opt))),
        TExprKind::PtrAdd {
            ptr,
            idx,
            elem,
            neg,
        } => TExprKind::PtrAdd {
            ptr: Box::new(opt_expr(*ptr, opt)),
            idx: Box::new(opt_expr(*idx, opt)),
            elem,
            neg,
        },
        TExprKind::PtrDiff { a, b, elem } => TExprKind::PtrDiff {
            a: Box::new(opt_expr(*a, opt)),
            b: Box::new(opt_expr(*b, opt)),
            elem,
        },
        TExprKind::PtrCmp { op, a, b } => TExprKind::PtrCmp {
            op,
            a: Box::new(opt_expr(*a, opt)),
            b: Box::new(opt_expr(*b, opt)),
        },
        TExprKind::Cast { kind, arg } => TExprKind::Cast {
            kind,
            arg: Box::new(opt_expr(*arg, opt)),
        },
        TExprKind::Assign { lv, rhs } => TExprKind::Assign {
            lv: Box::new(opt_expr(*lv, opt)),
            rhs: Box::new(opt_expr(*rhs, opt)),
        },
        TExprKind::AssignOp {
            lv,
            op,
            rhs,
            common,
            derive,
        } => TExprKind::AssignOp {
            lv: Box::new(opt_expr(*lv, opt)),
            op,
            rhs: Box::new(opt_expr(*rhs, opt)),
            common,
            derive,
        },
        TExprKind::PtrAssignAdd { lv, idx, elem, neg } => TExprKind::PtrAssignAdd {
            lv: Box::new(opt_expr(*lv, opt)),
            idx: Box::new(opt_expr(*idx, opt)),
            elem,
            neg,
        },
        TExprKind::Call { callee, args } => TExprKind::Call {
            callee,
            args: args.into_iter().map(|a| opt_expr(a, opt)).collect(),
        },
        TExprKind::Cond { c, t, f } => TExprKind::Cond {
            c: Box::new(opt_expr(*c, opt)),
            t: Box::new(opt_expr(*t, opt)),
            f: Box::new(opt_expr(*f, opt)),
        },
        TExprKind::Comma(a, b) => {
            TExprKind::Comma(Box::new(opt_expr(*a, opt)), Box::new(opt_expr(*b, opt)))
        }
        TExprKind::LvDeref(p) => TExprKind::LvDeref(Box::new(opt_expr(*p, opt))),
        TExprKind::LvMember(b, off) => TExprKind::LvMember(Box::new(opt_expr(*b, opt)), off),
        TExprKind::Load(lv) => TExprKind::Load(Box::new(opt_expr(*lv, opt))),
        TExprKind::AddrOf(lv) => TExprKind::AddrOf(Box::new(opt_expr(*lv, opt))),
        TExprKind::Decay(lv) => TExprKind::Decay(Box::new(opt_expr(*lv, opt))),
        TExprKind::IncDec {
            lv,
            inc,
            prefix,
            elem,
        } => TExprKind::IncDec {
            lv: Box::new(opt_expr(*lv, opt)),
            inc,
            prefix,
            elem,
        },
        other => other,
    };
    e
}

/// Constant folding and ± reassociation: collapse `(x ± c1) ± c2` into
/// `x ± (c1 ± c2)` and fully-constant subtrees into constants, on both
/// integer arithmetic and pointer arithmetic nodes.
fn fold_arith(e: TExpr) -> TExpr {
    // Whole subtree constant?
    if !matches!(e.kind, TExprKind::ConstInt(_)) {
        if let Some(v) = fold_const(&e) {
            return TExpr {
                ty: e.ty,
                kind: TExprKind::ConstInt(v),
                pos: e.pos,
                from_noncap: e.from_noncap,
            };
        }
    }
    match e.kind {
        // (x op1 c1) op2 c2 → x op (c1 ∘ c2) for op ∈ {+,-}
        TExprKind::Binary {
            op: op2 @ (BinOp::Add | BinOp::Sub),
            lhs,
            rhs: rhs2,
            derive,
        } => {
            if let (Some(c2), TExprKind::Binary {
                op: op1 @ (BinOp::Add | BinOp::Sub),
                lhs: x,
                rhs: rhs1,
                derive: d1,
            }) = (fold_const(&rhs2), lhs.kind.clone())
            {
                if let Some(c1) = fold_const(&rhs1) {
                    let total = (if op1 == BinOp::Add { c1 } else { -c1 })
                        + (if op2 == BinOp::Add { c2 } else { -c2 });
                    let (op, c) = if total >= 0 {
                        (BinOp::Add, total)
                    } else {
                        (BinOp::Sub, -total)
                    };
                    let cnode = TExpr {
                        ty: rhs1.ty.clone(),
                        kind: TExprKind::ConstInt(c),
                        pos: rhs1.pos,
                        from_noncap: true,
                    };
                    return TExpr {
                        ty: e.ty,
                        kind: TExprKind::Binary {
                            op,
                            lhs: x,
                            rhs: Box::new(cnode),
                            derive: d1,
                        },
                        pos: e.pos,
                        from_noncap: e.from_noncap,
                    };
                }
            }
            TExpr {
                ty: e.ty,
                kind: TExprKind::Binary {
                    op: op2,
                    lhs,
                    rhs: rhs2,
                    derive,
                },
                pos: e.pos,
                from_noncap: e.from_noncap,
            }
        }
        // (PtrAdd (PtrAdd p c1) c2) → PtrAdd p (c1 ∘ c2)
        TExprKind::PtrAdd {
            ptr,
            idx,
            elem,
            neg,
        } => {
            if let (Some(c2), TExprKind::PtrAdd {
                ptr: p0,
                idx: idx1,
                elem: elem1,
                neg: neg1,
            }) = (fold_const(&idx), ptr.kind.clone())
            {
                if elem1 == elem {
                    if let Some(c1) = fold_const(&idx1) {
                        let total = (if neg1 { -c1 } else { c1 }) + (if neg { -c2 } else { c2 });
                        let (nneg, c) = if total >= 0 { (false, total) } else { (true, -total) };
                        let cnode = TExpr {
                            ty: idx1.ty.clone(),
                            kind: TExprKind::ConstInt(c),
                            pos: idx1.pos,
                            from_noncap: true,
                        };
                        return TExpr {
                            ty: e.ty,
                            kind: TExprKind::PtrAdd {
                                ptr: p0,
                                idx: Box::new(cnode),
                                elem,
                                neg: nneg,
                            },
                            pos: e.pos,
                            from_noncap: e.from_noncap,
                        };
                    }
                }
            }
            TExpr {
                ty: e.ty,
                kind: TExprKind::PtrAdd {
                    ptr,
                    idx,
                    elem,
                    neg,
                },
                pos: e.pos,
                from_noncap: e.from_noncap,
            }
        }
        kind => TExpr {
            ty: e.ty,
            kind,
            pos: e.pos,
            from_noncap: e.from_noncap,
        },
    }
}

/// Recognise the §3.5 byte-copy loop
/// `for (i = 0; i < N; i++) d[i] = s[i];` (element size 1) and replace it
/// with an `OptMemcpy` — emulating GCC's tree-loop-distribute-patterns.
fn match_copy_loop(s: &TStmt) -> Option<TStmt> {
    let TStmt::For {
        init: Some(init),
        cond: Some(cond),
        step: Some(step),
        body,
    } = s
    else {
        return None;
    };
    // init: declaration of `i` with scalar 0, or assignment i = 0.
    let ivar = match &**init {
        TStmt::Decl {
            name,
            init: Some(TInit::Scalar(z)),
            ..
        } if matches!(z.kind, TExprKind::ConstInt(0)) => name.clone(),
        _ => return None,
    };
    // cond: Load(i) < N (possibly through casts).
    let (cmp_lhs, n_expr) = match &cond.kind {
        TExprKind::Binary {
            op: BinOp::Lt,
            lhs,
            rhs,
            ..
        } => (lhs, rhs),
        _ => return None,
    };
    if !loads_var(cmp_lhs, &ivar) {
        return None;
    }
    // step: i++ (IncDec on i).
    match &step.kind {
        TExprKind::IncDec { lv, inc: true, .. } if is_var(lv, &ivar) => {}
        _ => return None,
    }
    // body: single statement `d[i] = s[i]` at element size 1.
    let assign = match &**body {
        TStmt::Expr(e) => e,
        TStmt::Block(b) if b.len() == 1 => match &b[0] {
            TStmt::Expr(e) => e,
            _ => return None,
        },
        _ => return None,
    };
    let TExprKind::Assign { lv, rhs } = &assign.kind else {
        return None;
    };
    let dst = indexed_base(lv, &ivar)?;
    let TExprKind::Load(src_lv) = &rhs.kind else {
        return None;
    };
    let src = indexed_base(src_lv, &ivar)?;
    Some(TStmt::OptMemcpy {
        dst,
        src,
        n: strip_casts(n_expr).clone(),
    })
}

fn strip_casts(e: &TExpr) -> &TExpr {
    match &e.kind {
        TExprKind::Cast { arg, .. } => strip_casts(arg),
        _ => e,
    }
}

fn is_var(e: &TExpr, name: &str) -> bool {
    matches!(&e.kind, TExprKind::LvVar(n) if n == name)
}

fn loads_var(e: &TExpr, name: &str) -> bool {
    match &e.kind {
        TExprKind::Load(lv) => is_var(lv, name),
        TExprKind::Cast { arg, .. } => loads_var(arg, name),
        _ => false,
    }
}

/// If `e` is the lvalue `base[i]` with element size 1 and index variable
/// `ivar`, return the base pointer expression.
fn indexed_base(e: &TExpr, ivar: &str) -> Option<TExpr> {
    let TExprKind::LvDeref(p) = &e.kind else {
        return None;
    };
    let TExprKind::PtrAdd {
        ptr,
        idx,
        elem: 1,
        neg: false,
    } = &p.kind
    else {
        return None;
    };
    if !loads_var(idx, ivar) {
        return None;
    }
    Some((**ptr).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::typeck::check;
    use crate::types::TargetLayout;

    fn compile_opt(src: &str, opt: &OptFlags) -> TProgram {
        let p = parse(src, TargetLayout::default()).expect("parse");
        optimize(check(p).expect("typecheck"), opt)
    }

    fn main_body(p: &TProgram) -> &[TStmt] {
        &p.funcs["main"].body
    }

    #[test]
    fn constant_chains_fold_in_expressions() {
        let src = "#include <stdint.h>\n\
                   int main(void) { int a[2]; uintptr_t u = (uintptr_t)a;\n\
                   uintptr_t v = (u + 100) - 99; return (int)(v - u); }";
        let prog = compile_opt(src, &OptFlags::o3());
        // Find v's initialiser: the (+100)-99 chain must have collapsed to
        // a single +1.
        let mut found = false;
        for s in main_body(&prog) {
            if let TStmt::Decl {
                name,
                init: Some(TInit::Scalar(e)),
                ..
            } = s
            {
                if name.starts_with("v#") {
                    if let TExprKind::Binary { op, rhs, .. } = &e.kind {
                        assert_eq!(*op, crate::ast::BinOp::Add);
                        assert!(matches!(rhs.kind, TExprKind::ConstInt(1)));
                        found = true;
                    }
                }
            }
        }
        assert!(found, "folded addition not found");
    }

    #[test]
    fn peephole_merges_decl_then_reassign() {
        let src = "int main(void) { int a[2]; int *q = a + 100001;\n\
                   q = q - 100000; return *q == a[1]; }";
        let prog = compile_opt(src, &OptFlags::o3());
        // The reassignment statement must have become Empty and the decl's
        // index must be the combined +1.
        let body = main_body(&prog);
        let mut combined = false;
        let mut erased = false;
        for s in body {
            match s {
                TStmt::Decl {
                    init: Some(TInit::Scalar(e)),
                    ..
                } => {
                    if let TExprKind::PtrAdd { idx, neg: false, .. } = &e.kind {
                        if matches!(idx.kind, TExprKind::ConstInt(1)) {
                            combined = true;
                        }
                    }
                }
                TStmt::Empty => erased = true,
                _ => {}
            }
        }
        assert!(combined, "combined pointer add not found");
        assert!(erased, "dead store not erased");
    }

    #[test]
    fn copy_loop_becomes_memcpy() {
        let src = "int main(void) {\n\
                   char s[8]; char d[8];\n\
                   for (int i = 0; i < 8; i++) s[i] = (char)i;\n\
                   for (int i = 0; i < 8; i++) d[i] = s[i];\n\
                   return d[7]; }";
        let prog = compile_opt(src, &OptFlags::o3());
        let n = main_body(&prog)
            .iter()
            .filter(|s| matches!(s, TStmt::OptMemcpy { .. }))
            .count();
        assert_eq!(n, 1, "exactly the copy loop becomes memcpy");
    }

    #[test]
    fn o0_performs_no_transformations() {
        let src = "int main(void) { int a[2]; int *q = a + 100001;\n\
                   q = q - 100000; return 0; }";
        let prog = compile_opt(src, &OptFlags::o0());
        assert!(
            !main_body(&prog).iter().any(|s| matches!(s, TStmt::Empty)),
            "O0 must not rewrite statements"
        );
    }
}
