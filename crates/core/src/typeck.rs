//! Type checking and elaboration.
//!
//! Lowers the untyped AST to the typed IR, implementing:
//!
//! * integer promotions and the usual arithmetic conversions with the CHERI
//!   C rank rule (§3.7: `(u)intptr_t` outrank all standard integer types, so
//!   mixed arithmetic lands at the capability-carrying type);
//! * explicit capability derivation annotation on binary operations (§4.4):
//!   the result derives from the operand that was *not* converted from a
//!   non-capability type, ties to the left;
//! * explicit casts for every implicit conversion, array decay, and
//!   lvalue-to-rvalue conversion;
//! * the intrinsics' polymorphic type derivation (§4.5): `cheri_*`
//!   intrinsics accept any capability-carrying type and may return "the same
//!   type as argument 0".

use std::collections::HashMap;
use std::fmt;

use crate::ast::{self, BinOp, Expr, ExprKind, Init, Item, Stmt, StmtKind, UnOp};
use crate::lex::Pos;
use crate::parse::Parsed;
use crate::tast::*;
use crate::types::{FloatTy, IntTy, Ty, TypeTable};

/// Type error.
#[derive(Clone, Debug)]
pub struct TypeError {
    /// What went wrong.
    pub msg: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for TypeError {}

type TResult<T> = Result<T, TypeError>;

/// Signature of a declared function.
#[derive(Clone, Debug)]
struct FuncSig {
    ret: Ty,
    params: Vec<Ty>,
    variadic: bool,
    defined: bool,
}

#[derive(Clone, Debug)]
struct Local {
    unique: String,
    ty: Ty,
}

/// Type-check a parsed translation unit.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn check(parsed: Parsed) -> TResult<TProgram> {
    let mut ck = Checker {
        types: parsed.types,
        globals: HashMap::new(),
        funcs: HashMap::new(),
        scopes: Vec::new(),
        counter: 0,
        ret_ty: Ty::Void,
        static_locals: Vec::new(),
    };
    ck.program(parsed.program)
}

struct Checker {
    types: TypeTable,
    globals: HashMap<String, (Ty, bool)>,
    funcs: HashMap<String, FuncSig>,
    scopes: Vec<HashMap<String, Local>>,
    counter: u64,
    ret_ty: Ty,
    /// `static` locals hoisted to static storage (unique names).
    static_locals: Vec<TGlobal>,
}

fn err<T>(pos: Pos, msg: impl Into<String>) -> TResult<T> {
    Err(TypeError {
        msg: msg.into(),
        pos,
    })
}

/// Look up the builtin for a name, honouring common aliases.
fn builtin_by_name(name: &str) -> Option<Builtin> {
    use Builtin::*;
    Some(match name {
        "printf" => Printf,
        "fprintf" => Fprintf,
        "assert" => Assert,
        "abort" => Abort,
        "exit" => Exit,
        "malloc" => Malloc,
        "calloc" => Calloc,
        "free" => Free,
        "realloc" => Realloc,
        "memcpy" => Memcpy,
        "memmove" => Memmove,
        "memset" => Memset,
        "memcmp" => Memcmp,
        "strlen" => Strlen,
        "strcmp" => Strcmp,
        "strcpy" => Strcpy,
        "print_cap" | "__print_cap" => PrintCap,
        "fabs" | "fabsf" => Fabs,
        "sqrt" | "sqrtf" => Sqrt,
        "cheri_tag_get" | "__builtin_cheri_tag_get" => CheriTagGet,
        "cheri_tag_clear" | "__builtin_cheri_tag_clear" => CheriTagClear,
        "cheri_is_valid" => CheriIsValid,
        "cheri_address_get" | "__builtin_cheri_address_get" => CheriAddressGet,
        "cheri_address_set" | "__builtin_cheri_address_set" => CheriAddressSet,
        "cheri_base_get" | "__builtin_cheri_base_get" => CheriBaseGet,
        "cheri_length_get" | "__builtin_cheri_length_get" => CheriLengthGet,
        "cheri_offset_get" | "__builtin_cheri_offset_get" => CheriOffsetGet,
        "cheri_offset_set" | "__builtin_cheri_offset_set" => CheriOffsetSet,
        "cheri_perms_get" | "__builtin_cheri_perms_get" => CheriPermsGet,
        "cheri_perms_and" | "__builtin_cheri_perms_and" => CheriPermsAnd,
        "cheri_bounds_set" | "__builtin_cheri_bounds_set" => CheriBoundsSet,
        "cheri_bounds_set_exact" => CheriBoundsSetExact,
        "cheri_is_equal_exact" => CheriIsEqualExact,
        "cheri_is_subset" => CheriIsSubset,
        "cheri_representable_length" => CheriReprLength,
        "cheri_representable_alignment_mask" => CheriReprAlignMask,
        "cheri_sentry_create" => CheriSentryCreate,
        "cheri_seal" => CheriSeal,
        "cheri_unseal" => CheriUnseal,
        "cheri_is_sealed" => CheriIsSealed,
        "cheri_type_get" => CheriTypeGet,
        "cheri_flags_get" => CheriFlagsGet,
        "cheri_flags_set" => CheriFlagsSet,
        "cheri_ddc_get" => CheriDdcGet,
        "cheri_pcc_get" => CheriPccGet,
        _ => return None,
    })
}

impl Checker {
    fn unique(&mut self, name: &str) -> String {
        self.counter += 1;
        format!("{name}#{}", self.counter)
    }

    // ── Program structure ────────────────────────────────────────────────

    fn program(&mut self, prog: ast::Program) -> TResult<TProgram> {
        // First pass: record signatures and global types so forward
        // references work.
        for item in &prog.items {
            match item {
                Item::Func(f) => {
                    let sig = FuncSig {
                        ret: f.ret.clone(),
                        params: f.params.iter().map(|p| p.ty.clone()).collect(),
                        variadic: f.variadic,
                        defined: f.body.is_some(),
                    };
                    match self.funcs.get(&f.name) {
                        Some(old) if old.defined && f.body.is_some() => {
                            return err(f.pos, format!("redefinition of `{}`", f.name))
                        }
                        Some(old) if old.defined => {}
                        _ => {
                            self.funcs.insert(f.name.clone(), sig);
                        }
                    }
                }
                Item::Global(g) => {
                    let ty = self.complete_decl_ty(&g.ty, g.init.as_ref(), g.pos)?;
                    self.globals.insert(g.name.clone(), (ty, g.is_const));
                }
            }
        }
        // Predefined stream globals so `fprintf(stderr, ...)` type-checks.
        for stream in ["stderr", "stdout"] {
            self.globals
                .entry(stream.to_string())
                .or_insert_with(|| (Ty::ptr(Ty::Void), true));
        }
        let mut globals = Vec::new();
        let mut funcs = HashMap::new();
        for item in prog.items {
            match item {
                Item::Global(g) => {
                    let ty = self.globals[&g.name].0.clone();
                    let init = match g.init {
                        Some(init) => Some(self.init(&ty, init, g.pos)?),
                        None => None,
                    };
                    globals.push(TGlobal {
                        name: g.name,
                        ty,
                        is_const: g.is_const,
                        init,
                        pos: g.pos,
                    });
                }
                Item::Func(f) => {
                    if let Some(body) = f.body {
                        let tf = self.function(&f.name, f.ret, f.params, f.variadic, body, f.pos)?;
                        funcs.insert(f.name.clone(), tf);
                    }
                }
            }
        }
        if !funcs.contains_key("main") {
            return err(Pos::default(), "no `main` function defined");
        }
        // Hoisted `static` locals get static storage, initialised at
        // start-up like any other global.
        globals.append(&mut self.static_locals);
        Ok(TProgram {
            types: std::mem::take(&mut self.types),
            globals,
            funcs,
        })
    }

    /// Complete an object type from its initialiser (unsized arrays).
    fn complete_decl_ty(&self, ty: &Ty, init: Option<&Init>, pos: Pos) -> TResult<Ty> {
        if let Ty::Array(elem, None) = ty {
            let n = match init {
                Some(Init::List(items)) => items.len() as u64,
                Some(Init::Expr(Expr {
                    kind: ExprKind::StrLit(s),
                    ..
                })) => s.len() as u64 + 1,
                _ => return err(pos, "unsized array needs an initialiser"),
            };
            return Ok(Ty::Array(elem.clone(), Some(n)));
        }
        Ok(ty.clone())
    }

    fn function(
        &mut self,
        name: &str,
        ret: Ty,
        params: Vec<ast::Param>,
        variadic: bool,
        body: Vec<Stmt>,
        pos: Pos,
    ) -> TResult<TFunc> {
        self.scopes.push(HashMap::new());
        let mut tparams = Vec::new();
        for p in params {
            let mut ty = p.ty;
            if let Ty::Array(elem, _) = ty {
                ty = Ty::ptr(*elem);
            }
            let unique = self.unique(&p.name);
            self.scopes.last_mut().expect("scope").insert(
                p.name.clone(),
                Local {
                    unique: unique.clone(),
                    ty: ty.clone(),
                },
            );
            tparams.push((unique, ty));
        }
        self.ret_ty = ret.clone();
        let body = self.block(body)?;
        self.scopes.pop();
        Ok(TFunc {
            name: name.to_string(),
            ret,
            params: tparams,
            variadic,
            body,
            pos,
        })
    }

    // ── Statements ───────────────────────────────────────────────────────

    fn block(&mut self, stmts: Vec<Stmt>) -> TResult<Vec<TStmt>> {
        stmts.into_iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: Stmt) -> TResult<TStmt> {
        let pos = s.pos;
        Ok(match s.kind {
            StmtKind::Decl(d) => {
                let ty = self.complete_decl_ty(&d.ty, d.init.as_ref(), d.pos)?;
                let init = match d.init {
                    Some(i) => Some(self.init(&ty, i, d.pos)?),
                    None => None,
                };
                let unique = self.unique(&d.name);
                if d.is_static {
                    // Static local: static storage duration; the scope maps
                    // the name to the hoisted global.
                    self.scopes.last_mut().expect("scope").insert(
                        d.name,
                        Local {
                            unique: unique.clone(),
                            ty: ty.clone(),
                        },
                    );
                    self.globals
                        .insert(unique.clone(), (ty.clone(), d.is_const));
                    self.static_locals.push(TGlobal {
                        name: unique,
                        ty,
                        is_const: d.is_const,
                        init,
                        pos,
                    });
                    return Ok(TStmt::Empty);
                }
                self.scopes.last_mut().expect("scope").insert(
                    d.name,
                    Local {
                        unique: unique.clone(),
                        ty: ty.clone(),
                    },
                );
                TStmt::Decl {
                    name: unique,
                    ty,
                    is_const: d.is_const,
                    init,
                    pos,
                }
            }
            StmtKind::Expr(e) => {
                let te = self.expr_any(e)?;
                TStmt::Expr(te)
            }
            StmtKind::Block(body) => {
                self.scopes.push(HashMap::new());
                let b = self.block(body)?;
                self.scopes.pop();
                TStmt::Block(b)
            }
            StmtKind::DeclGroup(decls) => TStmt::Block(self.block(decls)?),
            StmtKind::If(c, t, e) => {
                let c = self.scalar_test(c)?;
                let t = Box::new(self.stmt(*t)?);
                let e = match e {
                    Some(e) => Some(Box::new(self.stmt(*e)?)),
                    None => None,
                };
                TStmt::If(c, t, e)
            }
            StmtKind::While(c, b) => {
                let c = self.scalar_test(c)?;
                TStmt::While(c, Box::new(self.stmt(*b)?))
            }
            StmtKind::DoWhile(b, c) => {
                let b = Box::new(self.stmt(*b)?);
                let c = self.scalar_test(c)?;
                TStmt::DoWhile(b, c)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let init = match init {
                    Some(s) => Some(Box::new(self.stmt(*s)?)),
                    None => None,
                };
                let cond = match cond {
                    Some(c) => Some(self.scalar_test(c)?),
                    None => None,
                };
                let step = match step {
                    Some(e) => Some(self.expr_any(e)?),
                    None => None,
                };
                let body = Box::new(self.stmt(*body)?);
                self.scopes.pop();
                TStmt::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            StmtKind::Switch(scrut, cases) => {
                let scrut = self.rvalue(scrut)?;
                let scrut = self.promote(scrut);
                let mut tcases = Vec::new();
                for c in cases {
                    let v = match c.value {
                        Some(e) => {
                            let te = self.rvalue(e)?;
                            match fold_const(&te) {
                                Some(v) => Some(v),
                                None => return err(pos, "case label is not constant"),
                            }
                        }
                        None => None,
                    };
                    self.scopes.push(HashMap::new());
                    let body = self.block(c.body)?;
                    self.scopes.pop();
                    tcases.push((v, body));
                }
                TStmt::Switch(scrut, tcases)
            }
            StmtKind::Return(e) => {
                let e = match e {
                    Some(e) => {
                        let te = self.rvalue(e)?;
                        let ret = self.ret_ty.clone();
                        Some(self.convert(te, &ret, false)?)
                    }
                    None => None,
                };
                TStmt::Return(e)
            }
            StmtKind::Break => TStmt::Break,
            StmtKind::Continue => TStmt::Continue,
            StmtKind::Empty => TStmt::Empty,
        })
    }

    fn init(&mut self, ty: &Ty, init: Init, pos: Pos) -> TResult<TInit> {
        match (ty, init) {
            (Ty::Array(elem, _), Init::Expr(e)) if is_char(elem) => match e.kind {
                ExprKind::StrLit(s) => Ok(TInit::Str(s)),
                _ => err(pos, "char array initialiser must be a string literal"),
            },
            (_, Init::Expr(e)) => {
                let te = self.rvalue(e)?;
                Ok(TInit::Scalar(self.convert(te, ty, false)?))
            }
            (Ty::Array(elem, len), Init::List(items)) => {
                if let Some(len) = len {
                    if items.len() as u64 > *len {
                        return err(pos, "too many array initialisers");
                    }
                }
                let items = items
                    .into_iter()
                    .map(|i| self.init(elem, i, pos))
                    .collect::<TResult<Vec<_>>>()?;
                Ok(TInit::List(items))
            }
            (Ty::Struct(id), Init::List(items)) => {
                let fields: Vec<Ty> = self.types.structs[id.0]
                    .fields
                    .iter()
                    .map(|f| f.ty.clone())
                    .collect();
                if items.len() > fields.len() {
                    return err(pos, "too many struct initialisers");
                }
                let items = items
                    .into_iter()
                    .zip(fields.iter())
                    .map(|(i, fty)| self.init(fty, i, pos))
                    .collect::<TResult<Vec<_>>>()?;
                Ok(TInit::List(items))
            }
            (Ty::Union(id), Init::List(mut items)) => {
                if items.len() != 1 {
                    return err(pos, "union initialiser must have exactly one element");
                }
                let fty = self.types.structs[id.0].fields[0].ty.clone();
                let i = self.init(&fty, items.remove(0), pos)?;
                Ok(TInit::List(vec![i]))
            }
            _ => err(pos, format!("invalid initialiser for type {ty}")),
        }
    }

    // ── Expressions ──────────────────────────────────────────────────────

    /// Typecheck in any-value position (result may be discarded).
    fn expr_any(&mut self, e: Expr) -> TResult<TExpr> {
        self.rvalue(e)
    }

    /// Typecheck to a condition (scalar, used for truth tests).
    fn scalar_test(&mut self, e: Expr) -> TResult<TExpr> {
        let pos = e.pos;
        let te = self.rvalue(e)?;
        if !te.ty.is_scalar() {
            return err(pos, format!("expected scalar condition, got {}", te.ty));
        }
        Ok(te)
    }

    /// Typecheck and apply lvalue-to-rvalue / decay conversions.
    fn rvalue(&mut self, e: Expr) -> TResult<TExpr> {
        let te = self.expr(e)?;
        Ok(self.coerce_rvalue(te))
    }

    fn coerce_rvalue(&mut self, te: TExpr) -> TExpr {
        let pos = te.pos;
        match (&te.ty, te.is_lvalue()) {
            (Ty::Array(elem, _), true) => {
                let ty = Ty::ptr((**elem).clone());
                TExpr {
                    ty,
                    pos,
                    from_noncap: false,
                    kind: TExprKind::Decay(Box::new(te)),
                }
            }
            (Ty::Func { .. }, _) => te, // function designators stay; calls/decay handle them
            (_, true) => TExpr {
                ty: te.ty.clone(),
                pos,
                from_noncap: false,
                kind: TExprKind::Load(Box::new(te)),
            },
            _ => te,
        }
    }

    fn lvalue(&mut self, e: Expr) -> TResult<TExpr> {
        let pos = e.pos;
        let te = self.expr(e)?;
        if !te.is_lvalue() {
            return err(pos, "expected an lvalue");
        }
        Ok(te)
    }

    fn lookup_var(&self, name: &str) -> Option<(String, Ty)> {
        for scope in self.scopes.iter().rev() {
            if let Some(l) = scope.get(name) {
                return Some((l.unique.clone(), l.ty.clone()));
            }
        }
        self.globals
            .get(name)
            .map(|(ty, _)| (name.to_string(), ty.clone()))
    }

    fn expr(&mut self, e: Expr) -> TResult<TExpr> {
        let pos = e.pos;
        match e.kind {
            ExprKind::IntLit {
                value,
                unsigned,
                long,
            } => {
                // Literal typing: first of int/long/long long that fits,
                // with unsignedness from the suffix (or forced for large
                // hex literals).
                let v = value as i128;
                let ity = match (unsigned, long) {
                    (false, false) => {
                        if IntTy::Int.fits(v) {
                            IntTy::Int
                        } else if IntTy::Long.fits(v) {
                            IntTy::Long
                        } else {
                            IntTy::ULong
                        }
                    }
                    (true, false) => {
                        if IntTy::UInt.fits(v) {
                            IntTy::UInt
                        } else {
                            IntTy::ULong
                        }
                    }
                    (false, true) => {
                        if IntTy::Long.fits(v) {
                            IntTy::Long
                        } else {
                            IntTy::ULong
                        }
                    }
                    (true, true) => IntTy::ULong,
                };
                Ok(const_int(ity, ity.wrap(v), pos))
            }
            ExprKind::FloatLit { value, single } => Ok(TExpr {
                ty: Ty::Float(if single { FloatTy::F32 } else { FloatTy::F64 }),
                kind: TExprKind::ConstFloat(value),
                pos,
                from_noncap: true,
            }),
            ExprKind::CharLit(c) => Ok(const_int(IntTy::Int, i128::from(c), pos)),
            ExprKind::StrLit(s) => Ok(TExpr {
                ty: Ty::Ptr {
                    pointee: Box::new(Ty::Int(IntTy::Char)),
                    const_pointee: true,
                },
                kind: TExprKind::StrLit(s),
                pos,
                from_noncap: false,
            }),
            ExprKind::Ident(name) => {
                if let Some((unique, ty)) = self.lookup_var(&name) {
                    return Ok(TExpr {
                        ty,
                        kind: TExprKind::LvVar(unique),
                        pos,
                        from_noncap: false,
                    });
                }
                if let Some(sig) = self.funcs.get(&name) {
                    let ty = Ty::Func {
                        ret: Box::new(sig.ret.clone()),
                        params: sig.params.clone(),
                        variadic: sig.variadic,
                    };
                    return Ok(TExpr {
                        ty,
                        kind: TExprKind::FuncAddr(name),
                        pos,
                        from_noncap: false,
                    });
                }
                err(pos, format!("unknown identifier `{name}`"))
            }
            ExprKind::Binary(op, l, r) => self.binary(op, *l, *r, pos),
            ExprKind::Unary(op, a) => self.unary(op, *a, pos),
            ExprKind::Assign { op, lhs, rhs } => self.assign(op, *lhs, *rhs, pos),
            ExprKind::IncDec { inc, prefix, arg } => {
                let lv = self.lvalue(*arg)?;
                let (ty, elem) = match &lv.ty {
                    Ty::Int(_) => (lv.ty.clone(), 0),
                    Ty::Ptr { pointee, .. } => {
                        let sz = self.types.size_of(pointee);
                        (lv.ty.clone(), sz)
                    }
                    t => return err(pos, format!("cannot increment value of type {t}")),
                };
                Ok(TExpr {
                    ty,
                    kind: TExprKind::IncDec {
                        lv: Box::new(lv),
                        inc,
                        prefix,
                        elem,
                    },
                    pos,
                    from_noncap: false,
                })
            }
            ExprKind::Call { callee, args } => self.call(*callee, args, pos),
            ExprKind::Index(base, idx) => {
                let base = self.rvalue(*base)?;
                let idx = self.rvalue(*idx)?;
                let (pointee, elem) = match &base.ty {
                    Ty::Ptr { pointee, .. } => {
                        ((**pointee).clone(), self.types.size_of(pointee))
                    }
                    t => return err(pos, format!("cannot index value of type {t}")),
                };
                let idx = self.promote(idx);
                if idx.int_ty().is_none() {
                    return err(pos, "array index must be an integer");
                }
                let ptr = TExpr {
                    ty: base.ty.clone(),
                    kind: TExprKind::PtrAdd {
                        ptr: Box::new(base),
                        idx: Box::new(idx),
                        elem,
                        neg: false,
                    },
                    pos,
                    from_noncap: false,
                };
                Ok(TExpr {
                    ty: pointee,
                    kind: TExprKind::LvDeref(Box::new(ptr)),
                    pos,
                    from_noncap: false,
                })
            }
            ExprKind::Member(base, field) => {
                let base = self.lvalue(*base)?;
                let id = match &base.ty {
                    Ty::Struct(id) | Ty::Union(id) => *id,
                    t => return err(pos, format!("member access on non-aggregate type {t}")),
                };
                let f = self
                    .types
                    .field(id, &field)
                    .cloned()
                    .ok_or_else(|| TypeError {
                        msg: format!("no field `{field}`"),
                        pos,
                    })?;
                Ok(TExpr {
                    ty: f.ty,
                    kind: TExprKind::LvMember(Box::new(base), f.offset),
                    pos,
                    from_noncap: false,
                })
            }
            ExprKind::Arrow(base, field) => {
                let base = self.rvalue(*base)?;
                let id = match &base.ty {
                    Ty::Ptr { pointee, .. } => match &**pointee {
                        Ty::Struct(id) | Ty::Union(id) => *id,
                        t => return err(pos, format!("`->` on pointer to {t}")),
                    },
                    t => return err(pos, format!("`->` on non-pointer type {t}")),
                };
                let f = self
                    .types
                    .field(id, &field)
                    .cloned()
                    .ok_or_else(|| TypeError {
                        msg: format!("no field `{field}`"),
                        pos,
                    })?;
                let deref = TExpr {
                    ty: match &base.ty {
                        Ty::Ptr { pointee, .. } => (**pointee).clone(),
                        _ => unreachable!("checked above"),
                    },
                    kind: TExprKind::LvDeref(Box::new(base)),
                    pos,
                    from_noncap: false,
                };
                Ok(TExpr {
                    ty: f.ty,
                    kind: TExprKind::LvMember(Box::new(deref), f.offset),
                    pos,
                    from_noncap: false,
                })
            }
            ExprKind::Deref(p) => {
                let p = self.rvalue(*p)?;
                match p.ty.clone() {
                    Ty::Ptr { pointee, .. } => match *pointee {
                        Ty::Func { .. } => Ok(p), // (*f) on function pointers
                        t => Ok(TExpr {
                            ty: t,
                            kind: TExprKind::LvDeref(Box::new(p)),
                            pos,
                            from_noncap: false,
                        }),
                    },
                    Ty::Func { .. } => Ok(p),
                    t => err(pos, format!("cannot dereference value of type {t}")),
                }
            }
            ExprKind::AddrOf(a) => {
                let a = self.expr(*a)?;
                match (&a.ty, &a.kind) {
                    (Ty::Func { .. }, _) => Ok(self.decay_func(a)),
                    (
                        _,
                        TExprKind::LvVar(_) | TExprKind::LvDeref(_) | TExprKind::LvMember(..),
                    ) => {
                        let ty = Ty::ptr(a.ty.clone());
                        Ok(TExpr {
                            ty,
                            kind: TExprKind::AddrOf(Box::new(a)),
                            pos,
                            from_noncap: false,
                        })
                    }
                    _ => err(pos, "cannot take the address of this expression"),
                }
            }
            ExprKind::Cast(to, arg) => {
                let arg = self.rvalue(*arg)?;
                self.convert(arg, &to, true)
            }
            ExprKind::SizeofTy(t) => {
                Ok(const_int(IntTy::ULong, self.types.size_of(&t) as i128, pos))
            }
            ExprKind::SizeofExpr(arg) => {
                let a = self.expr(*arg)?;
                if matches!(a.ty, Ty::Func { .. } | Ty::Void) {
                    return err(pos, "sizeof of function or void");
                }
                Ok(const_int(IntTy::ULong, self.types.size_of(&a.ty) as i128, pos))
            }
            ExprKind::AlignofTy(t) => {
                Ok(const_int(IntTy::ULong, self.types.align_of(&t) as i128, pos))
            }
            ExprKind::Cond(c, t, f) => {
                let c = self.scalar_test(*c)?;
                let t = self.rvalue(*t)?;
                let f = self.rvalue(*f)?;
                // Result type: usual conversions for ints; common pointer
                // type for pointers (left biased).
                let (t, f, ty) = if let (Some(lt), Some(rt)) = (t.int_ty(), f.int_ty()) {
                    let common = usual_arith_ty(lt, rt);
                    let t = self.convert(t, &Ty::Int(common), false)?;
                    let f = self.convert(f, &Ty::Int(common), false)?;
                    let ty = Ty::Int(common);
                    (t, f, ty)
                } else {
                    let ty = t.ty.clone();
                    let f = self.convert(f, &ty, false)?;
                    (t, f, ty)
                };
                Ok(TExpr {
                    ty,
                    kind: TExprKind::Cond {
                        c: Box::new(c),
                        t: Box::new(t),
                        f: Box::new(f),
                    },
                    pos,
                    from_noncap: false,
                })
            }
            ExprKind::Comma(a, b) => {
                let a = self.expr_any(*a)?;
                let b = self.rvalue(*b)?;
                let ty = b.ty.clone();
                Ok(TExpr {
                    ty,
                    kind: TExprKind::Comma(Box::new(a), Box::new(b)),
                    pos,
                    from_noncap: false,
                })
            }
        }
    }

    fn decay_func(&mut self, f: TExpr) -> TExpr {
        let pos = f.pos;
        let ty = Ty::ptr(f.ty.clone());
        TExpr {
            ty,
            kind: f.kind,
            pos,
            from_noncap: false,
        }
    }

    /// Integer promotion: types ranking below `int` promote to `int`.
    fn promote(&mut self, e: TExpr) -> TExpr {
        if let Some(it) = e.int_ty() {
            if it.rank() < IntTy::Int.rank() {
                return self
                    .convert(e, &Ty::int(), false)
                    .expect("int promotion cannot fail");
            }
        }
        e
    }

    fn binary(&mut self, op: BinOp, l: Expr, r: Expr, pos: Pos) -> TResult<TExpr> {
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let l = self.scalar_test(l)?;
            let r = self.scalar_test(r)?;
            return Ok(TExpr {
                ty: Ty::int(),
                kind: TExprKind::Logical {
                    and: op == BinOp::LogAnd,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                },
                pos,
                from_noncap: false,
            });
        }
        let l = self.rvalue(l)?;
        let r = self.rvalue(r)?;
        let l = if matches!(l.ty, Ty::Func { .. }) { self.decay_func(l) } else { l };
        let r = if matches!(r.ty, Ty::Func { .. }) { self.decay_func(r) } else { r };

        if op.is_comparison() {
            return self.comparison(op, l, r, pos);
        }
        match (op, l.ty.is_ptr(), r.ty.is_ptr()) {
            (BinOp::Add | BinOp::Sub, true, false) => {
                let elem = self.types.size_of(l.ty.pointee().expect("pointer"));
                let idx = self.promote(r);
                if idx.int_ty().is_none() {
                    return err(pos, "pointer arithmetic needs an integer operand");
                }
                let ty = l.ty.clone();
                Ok(TExpr {
                    ty,
                    kind: TExprKind::PtrAdd {
                        ptr: Box::new(l),
                        idx: Box::new(idx),
                        elem,
                        neg: op == BinOp::Sub,
                    },
                    pos,
                    from_noncap: false,
                })
            }
            (BinOp::Add, false, true) => {
                let elem = self.types.size_of(r.ty.pointee().expect("pointer"));
                let idx = self.promote(l);
                let ty = r.ty.clone();
                Ok(TExpr {
                    ty,
                    kind: TExprKind::PtrAdd {
                        ptr: Box::new(r),
                        idx: Box::new(idx),
                        elem,
                        neg: false,
                    },
                    pos,
                    from_noncap: false,
                })
            }
            (BinOp::Sub, true, true) => {
                let elem = self.types.size_of(l.ty.pointee().expect("pointer"));
                Ok(TExpr {
                    ty: Ty::Int(IntTy::Long),
                    kind: TExprKind::PtrDiff {
                        a: Box::new(l),
                        b: Box::new(r),
                        elem,
                    },
                    pos,
                    from_noncap: false,
                })
            }
            _ if l.ty.as_float().is_some() || r.ty.as_float().is_some() => {
                if !matches!(
                    op,
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div
                ) {
                    return err(pos, format!("invalid floating-point operator {op:?}"));
                }
                let common = float_common(&l.ty, &r.ty)
                    .ok_or_else(|| TypeError {
                        msg: format!("invalid operands: {} and {}", l.ty, r.ty),
                        pos,
                    })?;
                let l = self.convert(l, &Ty::Float(common), false)?;
                let r = self.convert(r, &Ty::Float(common), false)?;
                Ok(TExpr {
                    ty: Ty::Float(common),
                    kind: TExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                        derive: DeriveFrom::Left,
                    },
                    pos,
                    from_noncap: true,
                })
            }
            _ => {
                let (lt, rt) = match (l.int_ty(), r.int_ty()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return err(
                            pos,
                            format!("invalid operands to binary op: {} and {}", l.ty, r.ty),
                        )
                    }
                };
                // Shifts take the promoted left type; everything else uses
                // the usual arithmetic conversions.
                if matches!(op, BinOp::Shl | BinOp::Shr) {
                    let l = self.promote(l);
                    let r = self.promote(r);
                    let ty = l.ty.clone();
                    return Ok(TExpr {
                        ty,
                        kind: TExprKind::Binary {
                            op,
                            lhs: Box::new(l),
                            rhs: Box::new(r),
                            derive: DeriveFrom::Left,
                        },
                        pos,
                        from_noncap: false,
                    });
                }
                let common = usual_arith_ty(lt, rt);
                let l = self.convert(l, &Ty::Int(common), false)?;
                let r = self.convert(r, &Ty::Int(common), false)?;
                let derive = derive_from(&l, &r);
                Ok(TExpr {
                    ty: Ty::Int(common),
                    kind: TExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                        derive,
                    },
                    pos,
                    from_noncap: false,
                })
            }
        }
    }

    fn comparison(&mut self, op: BinOp, l: TExpr, r: TExpr, pos: Pos) -> TResult<TExpr> {
        match (l.ty.is_ptr(), r.ty.is_ptr()) {
            (true, true) => Ok(TExpr {
                ty: Ty::int(),
                kind: TExprKind::PtrCmp {
                    op,
                    a: Box::new(l),
                    b: Box::new(r),
                },
                pos,
                from_noncap: false,
            }),
            (true, false) => {
                let ty = l.ty.clone();
                let r = self.convert(r, &ty, false)?;
                Ok(TExpr {
                    ty: Ty::int(),
                    kind: TExprKind::PtrCmp {
                        op,
                        a: Box::new(l),
                        b: Box::new(r),
                    },
                    pos,
                    from_noncap: false,
                })
            }
            (false, true) => {
                let ty = r.ty.clone();
                let l = self.convert(l, &ty, false)?;
                Ok(TExpr {
                    ty: Ty::int(),
                    kind: TExprKind::PtrCmp {
                        op,
                        a: Box::new(l),
                        b: Box::new(r),
                    },
                    pos,
                    from_noncap: false,
                })
            }
            (false, false) if l.ty.as_float().is_some() || r.ty.as_float().is_some() => {
                let common = float_common(&l.ty, &r.ty)
                    .ok_or_else(|| TypeError {
                        msg: "invalid comparison operands".into(),
                        pos,
                    })?;
                let l = self.convert(l, &Ty::Float(common), false)?;
                let r = self.convert(r, &Ty::Float(common), false)?;
                Ok(TExpr {
                    ty: Ty::int(),
                    kind: TExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                        derive: DeriveFrom::Left,
                    },
                    pos,
                    from_noncap: false,
                })
            }
            (false, false) => {
                let (lt, rt) = match (l.int_ty(), r.int_ty()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return err(pos, "invalid comparison operands"),
                };
                let common = usual_arith_ty(lt, rt);
                let l = self.convert(l, &Ty::Int(common), false)?;
                let r = self.convert(r, &Ty::Int(common), false)?;
                Ok(TExpr {
                    ty: Ty::int(),
                    kind: TExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                        derive: DeriveFrom::Left,
                    },
                    pos,
                    from_noncap: false,
                })
            }
        }
    }

    fn unary(&mut self, op: UnOp, a: Expr, pos: Pos) -> TResult<TExpr> {
        let a = self.rvalue(a)?;
        match op {
            UnOp::LogNot => {
                if !a.ty.is_scalar() {
                    return err(pos, "`!` needs a scalar operand");
                }
                Ok(TExpr {
                    ty: Ty::int(),
                    kind: TExprKind::Unary(op, Box::new(a)),
                    pos,
                    from_noncap: false,
                })
            }
            UnOp::Neg | UnOp::Plus if a.ty.as_float().is_some() => {
                let ty = a.ty.clone();
                Ok(TExpr {
                    ty,
                    kind: TExprKind::Unary(op, Box::new(a)),
                    pos,
                    from_noncap: true,
                })
            }
            _ => {
                let a = self.promote(a);
                if a.int_ty().is_none() {
                    return err(pos, "unary arithmetic needs an integer operand");
                }
                let ty = a.ty.clone();
                Ok(TExpr {
                    ty,
                    kind: TExprKind::Unary(op, Box::new(a)),
                    pos,
                    from_noncap: false,
                })
            }
        }
    }

    fn assign(&mut self, op: Option<BinOp>, lhs: Expr, rhs: Expr, pos: Pos) -> TResult<TExpr> {
        let lv = self.lvalue(lhs)?;
        let rhs = self.rvalue(rhs)?;
        match op {
            None => {
                let rhs = self.convert(rhs, &lv.ty, false)?;
                Ok(TExpr {
                    ty: lv.ty.clone(),
                    kind: TExprKind::Assign {
                        lv: Box::new(lv),
                        rhs: Box::new(rhs),
                    },
                    pos,
                    from_noncap: false,
                })
            }
            Some(op) => {
                if let Ty::Ptr { pointee, .. } = &lv.ty {
                    if !matches!(op, BinOp::Add | BinOp::Sub) {
                        return err(pos, "invalid compound assignment on pointer");
                    }
                    let elem = self.types.size_of(pointee);
                    let idx = self.promote(rhs);
                    return Ok(TExpr {
                        ty: lv.ty.clone(),
                        kind: TExprKind::PtrAssignAdd {
                            lv: Box::new(lv),
                            idx: Box::new(idx),
                            elem,
                            neg: op == BinOp::Sub,
                        },
                        pos,
                        from_noncap: false,
                    });
                }
                if lv.ty.as_float().is_some() || rhs.ty.as_float().is_some() {
                    if !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div) {
                        return err(pos, "invalid floating-point compound assignment");
                    }
                    let common = float_common(&lv.ty, &rhs.ty)
                        .ok_or_else(|| TypeError {
                            msg: "invalid compound assignment operands".into(),
                            pos,
                        })?;
                    let rhs = self.convert(rhs, &Ty::Float(common), false)?;
                    return Ok(TExpr {
                        ty: lv.ty.clone(),
                        kind: TExprKind::AssignOp {
                            lv: Box::new(lv),
                            op,
                            rhs: Box::new(rhs),
                            common: Ty::Float(common),
                            derive: DeriveFrom::Left,
                        },
                        pos,
                        from_noncap: true,
                    });
                }
                let lt = match lv.int_ty() {
                    Some(t) => t,
                    None => return err(pos, "invalid compound assignment target"),
                };
                let rt = match rhs.int_ty() {
                    Some(t) => t,
                    None => return err(pos, "invalid compound assignment operand"),
                };
                let common = if matches!(op, BinOp::Shl | BinOp::Shr) {
                    // Shift: performed at the (promoted) left type.
                    if lt.rank() < IntTy::Int.rank() {
                        IntTy::Int
                    } else {
                        lt
                    }
                } else {
                    usual_arith_ty(lt, rt)
                };
                let rhs = self.convert(rhs, &Ty::Int(common), false)?;
                // Derivation: the loaded left value is genuine iff the
                // target type carries a capability.
                let derive = if lt.is_capability() || !common.is_capability() {
                    DeriveFrom::Left
                } else if !rhs.from_noncap {
                    DeriveFrom::Right
                } else {
                    DeriveFrom::Left
                };
                Ok(TExpr {
                    ty: lv.ty.clone(),
                    kind: TExprKind::AssignOp {
                        lv: Box::new(lv),
                        op,
                        rhs: Box::new(rhs),
                        common: Ty::Int(common),
                        derive,
                    },
                    pos,
                    from_noncap: false,
                })
            }
        }
    }

    fn call(&mut self, callee: Expr, args: Vec<Expr>, pos: Pos) -> TResult<TExpr> {
        // Builtins and intrinsics are matched by name first, unless shadowed
        // by a user-defined function.
        if let ExprKind::Ident(name) = &callee.kind {
            if !self.funcs.contains_key(name) && self.lookup_var(name).is_none() {
                if let Some(b) = builtin_by_name(name) {
                    return self.builtin_call(b, args, pos);
                }
                return err(pos, format!("unknown function `{name}`"));
            }
            if let Some(sig) = self.funcs.get(name).cloned() {
                let targs = self.convert_args(&sig.params, sig.variadic, args, pos)?;
                return Ok(TExpr {
                    ty: sig.ret,
                    kind: TExprKind::Call {
                        callee: Callee::Direct(name.clone()),
                        args: targs,
                    },
                    pos,
                    from_noncap: false,
                });
            }
        }
        // Indirect call through a function pointer.
        let f = self.rvalue(callee)?;
        let fty = match &f.ty {
            Ty::Ptr { pointee, .. } => (**pointee).clone(),
            t @ Ty::Func { .. } => t.clone(),
            t => return err(pos, format!("called object has type {t}")),
        };
        let (ret, params, variadic) = match fty {
            Ty::Func {
                ret,
                params,
                variadic,
            } => (*ret, params, variadic),
            t => return err(pos, format!("called object has non-function type {t}")),
        };
        let targs = self.convert_args(&params, variadic, args, pos)?;
        Ok(TExpr {
            ty: ret,
            kind: TExprKind::Call {
                callee: Callee::Indirect(Box::new(f)),
                args: targs,
            },
            pos,
            from_noncap: false,
        })
    }

    fn convert_args(
        &mut self,
        params: &[Ty],
        variadic: bool,
        args: Vec<Expr>,
        pos: Pos,
    ) -> TResult<Vec<TExpr>> {
        if args.len() < params.len() || (args.len() > params.len() && !variadic) {
            return err(
                pos,
                format!("expected {} argument(s), got {}", params.len(), args.len()),
            );
        }
        let mut out = Vec::new();
        for (i, a) in args.into_iter().enumerate() {
            let ta = self.rvalue(a)?;
            let ta = if let Some(p) = params.get(i) {
                self.convert(ta, &p.clone(), false)?
            } else {
                // Default argument promotions for variadic positions
                // (float promotes to double).
                let ta = if matches!(ta.ty, Ty::Func { .. }) { self.decay_func(ta) } else { ta };
                let ta = if ta.ty == Ty::Float(FloatTy::F32) {
                    self.convert(ta, &Ty::Float(FloatTy::F64), false)?
                } else {
                    ta
                };
                self.promote(ta)
            };
            out.push(ta);
        }
        Ok(out)
    }

    fn builtin_call(&mut self, b: Builtin, args: Vec<Expr>, pos: Pos) -> TResult<TExpr> {
        use Builtin::*;
        let mut targs = Vec::new();
        for a in args {
            let ta = self.rvalue(a)?;
            let ta = if matches!(ta.ty, Ty::Func { .. }) { self.decay_func(ta) } else { ta };
            targs.push(ta);
        }
        let need = |n: usize| -> TResult<()> {
            if targs.len() == n {
                Ok(())
            } else {
                err(pos, format!("builtin expects {n} argument(s), got {}", targs.len()))
            }
        };
        let is_capty = |e: &TExpr| e.ty.is_capability_carrying();
        // §4.5: intrinsics are polymorphic in the capability type they
        // accept; the return type may depend on the argument type.
        let ret: Ty = match b {
            Printf => {
                if targs.is_empty() {
                    return err(pos, "printf needs a format string");
                }
                Ty::int()
            }
            Fprintf => {
                if targs.len() < 2 {
                    return err(pos, "fprintf needs a stream and a format string");
                }
                Ty::int()
            }
            Assert => {
                need(1)?;
                Ty::Void
            }
            Abort => {
                need(0)?;
                Ty::Void
            }
            Exit => {
                need(1)?;
                let a = targs.remove(0);
                targs.push(self.convert(a, &Ty::int(), false)?);
                Ty::Void
            }
            Malloc => {
                need(1)?;
                let a = targs.remove(0);
                targs.push(self.convert(a, &Ty::Int(IntTy::ULong), false)?);
                Ty::ptr(Ty::Void)
            }
            Calloc => {
                need(2)?;
                let args2: Vec<TExpr> = std::mem::take(&mut targs);
                for a in args2 {
                    targs.push(self.convert(a, &Ty::Int(IntTy::ULong), false)?);
                }
                Ty::ptr(Ty::Void)
            }
            Free => {
                need(1)?;
                if !targs[0].ty.is_ptr() {
                    return err(pos, "free expects a pointer");
                }
                Ty::Void
            }
            Realloc => {
                need(2)?;
                let n = targs.pop().expect("two args");
                targs.push(self.convert(n, &Ty::Int(IntTy::ULong), false)?);
                Ty::ptr(Ty::Void)
            }
            Memcpy | Memmove => {
                need(3)?;
                let n = targs.pop().expect("three args");
                targs.push(self.convert(n, &Ty::Int(IntTy::ULong), false)?);
                Ty::ptr(Ty::Void)
            }
            Memset => {
                need(3)?;
                let n = targs.pop().expect("three args");
                targs.push(self.convert(n, &Ty::Int(IntTy::ULong), false)?);
                Ty::ptr(Ty::Void)
            }
            Memcmp => {
                need(3)?;
                let n = targs.pop().expect("three args");
                targs.push(self.convert(n, &Ty::Int(IntTy::ULong), false)?);
                Ty::int()
            }
            Strlen => {
                need(1)?;
                Ty::Int(IntTy::ULong)
            }
            Strcmp => {
                need(2)?;
                Ty::int()
            }
            Strcpy => {
                need(2)?;
                Ty::ptr(Ty::Int(IntTy::Char))
            }
            PrintCap => {
                need(1)?;
                if !is_capty(&targs[0]) {
                    return err(pos, "print_cap expects a capability-carrying value");
                }
                Ty::Void
            }
            Fabs | Sqrt => {
                need(1)?;
                let a = targs.remove(0);
                targs.push(self.convert(a, &Ty::Float(FloatTy::F64), false)?);
                Ty::Float(FloatTy::F64)
            }
            CheriTagGet | CheriIsValid | CheriIsSealed => {
                need(1)?;
                if !is_capty(&targs[0]) {
                    return err(pos, "intrinsic expects a capability-carrying value");
                }
                Ty::Int(IntTy::Bool)
            }
            CheriTagClear | CheriSentryCreate => {
                need(1)?;
                if !is_capty(&targs[0]) {
                    return err(pos, "intrinsic expects a capability-carrying value");
                }
                targs[0].ty.clone()
            }
            CheriAddressGet | CheriBaseGet => {
                need(1)?;
                if !is_capty(&targs[0]) {
                    return err(pos, "intrinsic expects a capability-carrying value");
                }
                Ty::Int(IntTy::PtrAddr)
            }
            CheriLengthGet | CheriOffsetGet | CheriPermsGet => {
                need(1)?;
                if !is_capty(&targs[0]) {
                    return err(pos, "intrinsic expects a capability-carrying value");
                }
                Ty::Int(IntTy::ULong)
            }
            CheriTypeGet => {
                need(1)?;
                if !is_capty(&targs[0]) {
                    return err(pos, "intrinsic expects a capability-carrying value");
                }
                Ty::Int(IntTy::Long)
            }
            CheriFlagsGet => {
                need(1)?;
                if !is_capty(&targs[0]) {
                    return err(pos, "intrinsic expects a capability-carrying value");
                }
                Ty::Int(IntTy::ULong)
            }
            CheriAddressSet | CheriOffsetSet | CheriPermsAnd | CheriBoundsSet
            | CheriBoundsSetExact | CheriFlagsSet => {
                need(2)?;
                if !is_capty(&targs[0]) {
                    return err(pos, "intrinsic expects a capability-carrying value");
                }
                let n = targs.pop().expect("two args");
                targs.push(self.convert(n, &Ty::Int(IntTy::ULong), false)?);
                targs[0].ty.clone()
            }
            CheriIsEqualExact | CheriIsSubset => {
                need(2)?;
                if !is_capty(&targs[0]) || !is_capty(&targs[1]) {
                    return err(pos, "intrinsic expects capability-carrying values");
                }
                Ty::Int(IntTy::Bool)
            }
            CheriReprLength | CheriReprAlignMask => {
                need(1)?;
                let n = targs.pop().expect("one arg");
                targs.push(self.convert(n, &Ty::Int(IntTy::ULong), false)?);
                Ty::Int(IntTy::ULong)
            }
            CheriSeal | CheriUnseal => {
                need(2)?;
                if !is_capty(&targs[0]) || !is_capty(&targs[1]) {
                    return err(pos, "intrinsic expects capability-carrying values");
                }
                targs[0].ty.clone()
            }
            CheriDdcGet | CheriPccGet => {
                need(0)?;
                Ty::ptr(Ty::Void)
            }
        };
        Ok(TExpr {
            ty: ret,
            kind: TExprKind::Call {
                callee: Callee::Builtin(b),
                args: targs,
            },
            pos,
            from_noncap: false,
        })
    }

    /// Insert a conversion from `e` to `to`. `explicit` marks source-level
    /// casts (slightly laxer checking).
    fn convert(&mut self, e: TExpr, to: &Ty, explicit: bool) -> TResult<TExpr> {
        let pos = e.pos;
        if e.ty == *to {
            return Ok(e);
        }
        let e = if matches!(e.ty, Ty::Func { .. }) { self.decay_func(e) } else { e };
        if e.ty == *to {
            return Ok(e);
        }
        let kind = match (&e.ty, to) {
            (_, Ty::Void) => CastKind::ToVoid,
            (Ty::Int(_) | Ty::Ptr { .. } | Ty::Float(_), Ty::Int(IntTy::Bool)) => CastKind::ToBool,
            (Ty::Int(_), Ty::Float(_)) => CastKind::IntToFloat,
            (Ty::Float(_), Ty::Int(_)) => CastKind::FloatToInt,
            (Ty::Float(_), Ty::Float(_)) => CastKind::FloatToFloat,
            (Ty::Int(_), Ty::Int(_)) => CastKind::IntToInt,
            (Ty::Ptr { .. }, Ty::Int(_)) => {
                if !explicit {
                    return err(pos, format!("implicit conversion from {} to {to}", e.ty));
                }
                CastKind::PtrToInt
            }
            (Ty::Int(_), Ty::Ptr { .. }) => {
                // Implicitly, only for null pointer constants and
                // capability-carrying integers.
                let is_null_const = matches!(e.kind, TExprKind::ConstInt(0));
                let from_cap = e.ty.is_capability_carrying();
                if !explicit && !is_null_const && !from_cap {
                    return err(pos, format!("implicit conversion from {} to {to}", e.ty));
                }
                CastKind::IntToPtr
            }
            (Ty::Ptr { .. }, Ty::Ptr { .. }) => CastKind::PtrToPtr,
            (f, t) => return err(pos, format!("cannot convert {f} to {t}")),
        };
        // §3.7: mark values produced by conversion from a non-capability
        // type; they lose the capability-derivation tie-break.
        let from_noncap = match kind {
            CastKind::IntToInt | CastKind::IntToPtr => {
                if e.ty.is_capability_carrying() {
                    e.from_noncap
                } else {
                    true
                }
            }
            CastKind::PtrToInt | CastKind::PtrToPtr => e.from_noncap,
            CastKind::ToBool
            | CastKind::ToVoid
            | CastKind::IntToFloat
            | CastKind::FloatToInt
            | CastKind::FloatToFloat => true,
        };
        Ok(TExpr {
            ty: to.clone(),
            kind: TExprKind::Cast {
                kind,
                arg: Box::new(e),
            },
            pos,
            from_noncap,
        })
    }
}

/// The common floating-point type of two operands (either of which may be
/// an integer): `double` wins over `float`.
fn float_common(a: &Ty, b: &Ty) -> Option<FloatTy> {
    match (a, b) {
        (Ty::Float(FloatTy::F64), Ty::Float(_) | Ty::Int(_))
        | (Ty::Float(_) | Ty::Int(_), Ty::Float(FloatTy::F64)) => Some(FloatTy::F64),
        (Ty::Float(FloatTy::F32), Ty::Float(_) | Ty::Int(_))
        | (Ty::Int(_), Ty::Float(FloatTy::F32)) => Some(FloatTy::F32),
        _ => None,
    }
}

/// The usual arithmetic conversions on integer types, with the CHERI C rank
/// rule (§3.7).
#[must_use]
pub fn usual_arith_ty(l: IntTy, r: IntTy) -> IntTy {
    // Integer promotion first.
    let p = |t: IntTy| if t.rank() < IntTy::Int.rank() { IntTy::Int } else { t };
    let (l, r) = (p(l), p(r));
    if l == r {
        return l;
    }
    if l.signed() == r.signed() {
        return if l.rank() >= r.rank() { l } else { r };
    }
    let (s, u) = if l.signed() { (l, r) } else { (r, l) };
    if u.rank() >= s.rank() {
        u
    } else if s.value_bits() > u.value_bits() {
        s
    } else {
        s.to_unsigned()
    }
}

/// §4.4 derivation choice on two already-converted operands.
fn derive_from(l: &TExpr, r: &TExpr) -> DeriveFrom {
    if !l.from_noncap {
        DeriveFrom::Left
    } else if !r.from_noncap {
        DeriveFrom::Right
    } else {
        DeriveFrom::Left
    }
}

fn const_int(ity: IntTy, v: i128, pos: Pos) -> TExpr {
    TExpr {
        ty: Ty::Int(ity),
        kind: TExprKind::ConstInt(v),
        pos,
        from_noncap: false,
    }
}

fn is_char(t: &Ty) -> bool {
    matches!(
        t,
        Ty::Int(IntTy::Char | IntTy::SChar | IntTy::UChar)
    )
}

/// Fold a typed expression to a constant, when possible (case labels).
#[must_use]
pub fn fold_const(e: &TExpr) -> Option<i128> {
    match &e.kind {
        TExprKind::ConstInt(v) => Some(*v),
        TExprKind::Unary(UnOp::Neg, a) => Some(-fold_const(a)?),
        TExprKind::Unary(UnOp::BitNot, a) => Some(!fold_const(a)?),
        TExprKind::Cast {
            kind: CastKind::IntToInt,
            arg,
        } => {
            let v = fold_const(arg)?;
            e.ty.as_int().map(|it| it.wrap(v))
        }
        TExprKind::Binary { op, lhs, rhs, .. } => {
            let a = fold_const(lhs)?;
            let b = fold_const(rhs)?;
            let v = match op {
                BinOp::Add => a.checked_add(b)?,
                BinOp::Sub => a.checked_sub(b)?,
                BinOp::Mul => a.checked_mul(b)?,
                BinOp::Div => a.checked_div(b)?,
                BinOp::Rem => a.checked_rem(b)?,
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.checked_shl(u32::try_from(b).ok()?)?,
                BinOp::Shr => a.checked_shr(u32::try_from(b).ok()?)?,
                _ => return None,
            };
            e.ty.as_int().map(|it| it.wrap(v))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::types::TargetLayout;

    fn check_src(src: &str) -> TProgram {
        let p = parse(src, TargetLayout::default()).expect("parse");
        check(p).expect("typecheck")
    }

    fn check_err(src: &str) -> TypeError {
        let p = parse(src, TargetLayout::default()).expect("parse");
        check(p).expect_err("expected type error")
    }

    #[test]
    fn usual_arith_follows_cheri_ranks() {
        assert_eq!(usual_arith_ty(IntTy::Int, IntTy::IntPtr), IntTy::IntPtr);
        assert_eq!(usual_arith_ty(IntTy::ULong, IntTy::IntPtr), IntTy::UIntPtr);
        assert_eq!(usual_arith_ty(IntTy::IntPtr, IntTy::UIntPtr), IntTy::UIntPtr);
        assert_eq!(usual_arith_ty(IntTy::Char, IntTy::Short), IntTy::Int);
        assert_eq!(usual_arith_ty(IntTy::UInt, IntTy::Long), IntTy::Long);
        assert_eq!(usual_arith_ty(IntTy::ULong, IntTy::Long), IntTy::ULong);
    }

    #[test]
    fn simple_program_checks() {
        let p = check_src("int main(void) { int x = 1; return x + 1; }");
        assert!(p.funcs.contains_key("main"));
    }

    #[test]
    fn derivation_picks_the_capability_side() {
        // Find the Binary node for the addition.
        fn find_binary(s: &[TStmt]) -> Option<DeriveFrom> {
            for st in s {
                if let TStmt::Decl {
                    init: Some(TInit::Scalar(e)),
                    ..
                } = st
                {
                    if let TExprKind::Binary { derive, .. } = &e.kind {
                        return Some(*derive);
                    }
                    if let TExprKind::Cast { arg, .. } = &e.kind {
                        if let TExprKind::Binary { derive, .. } = &arg.kind {
                            return Some(*derive);
                        }
                    }
                }
            }
            None
        }
        // §3.7 array_shift: size_t * n + intptr → result derives from the
        // intptr operand (Right), not the converted size_t product.
        let p = check_src(
            "int* array_shift(int *x, int n) {\n\
               intptr_t ip = (intptr_t)x;\n\
               intptr_t ip1 = sizeof(int)*n + ip;\n\
               return (int*)ip1;\n\
             }\n\
             int main(void) { int a[2]; return *array_shift(a, 1) == a[1]; }",
        );
        let f = &p.funcs["array_shift"];
        assert_eq!(find_binary(&f.body), Some(DeriveFrom::Right));
    }

    #[test]
    fn intptr_plus_intptr_derives_left() {
        let p = check_src(
            "int main(void) { int x=0, y=0;\n\
             intptr_t a=(intptr_t)&x; intptr_t b=(intptr_t)&y;\n\
             intptr_t c0 = a + b; return (int)(c0-a-b); }",
        );
        let f = &p.funcs["main"];
        let mut found = None;
        for st in &f.body {
            if let TStmt::Decl {
                name,
                init: Some(TInit::Scalar(e)),
                ..
            } = st
            {
                if name.starts_with("c0") {
                    if let TExprKind::Binary { derive, .. } = &e.kind {
                        found = Some(*derive);
                    }
                }
            }
        }
        assert_eq!(found, Some(DeriveFrom::Left));
    }

    #[test]
    fn implicit_ptr_int_conversion_rejected() {
        let e = check_err("int main(void) { int *p; long x = p; return 0; }");
        assert!(e.msg.contains("implicit conversion"));
    }

    #[test]
    fn null_constant_converts_implicitly() {
        check_src("int main(void) { int *p = 0; return p == NULL; }");
    }

    #[test]
    fn intrinsic_polymorphic_return_type() {
        let p = check_src(
            "int main(void) { int x; int *p = &x;\n\
             int *q = cheri_tag_clear(p);\n\
             uintptr_t i = (uintptr_t)p;\n\
             uintptr_t j = cheri_address_set(i, 42);\n\
             return cheri_tag_get(q) + (int)j; }",
        );
        let _ = &p.funcs["main"];
    }

    #[test]
    fn intrinsic_rejects_non_capability() {
        let e = check_err("int main(void) { return cheri_tag_get(3); }");
        assert!(e.msg.contains("capability"));
    }

    #[test]
    fn unknown_identifier_reported() {
        let e = check_err("int main(void) { return nope; }");
        assert!(e.msg.contains("nope"));
    }

    #[test]
    fn switch_case_labels_fold() {
        check_src(
            "int main(void) { int x = 2; switch (x) { case 1 + 1: return 0; default: return 1; } }",
        );
    }

    #[test]
    fn variadic_user_functions_unsupported_but_builtins_work() {
        check_src(r#"int main(void) { printf("%d\n", 42); return 0; }"#);
    }

    #[test]
    fn sizeof_types() {
        let p = check_src(
            "int main(void) { return (int)(sizeof(int*) + sizeof(uintptr_t) + sizeof(int)); }",
        );
        let f = &p.funcs["main"];
        // 16 + 16 + 4 folded at runtime; just ensure it type-checked.
        assert_eq!(f.ret, Ty::int());
    }
}
