//! Implementation profiles.
//!
//! §5 and Appendix A of the paper compare the Cerberus reference semantics
//! against Clang (Morello and CHERI-RISC-V backends) and GCC (Morello
//! bare-metal), each at several optimisation levels. A [`Profile`] captures
//! the axes along which those implementations observably differ when running
//! the test suite:
//!
//! * the *semantics mode* of the memory model — abstract machine with UB
//!   detection (Cerberus) vs. hardware trap-only checking (real
//!   implementations), see [`cheri_mem::MemConfig`];
//! * the *allocator address layout* — which determines, e.g., whether
//!   `cap & INT_MAX` moves the address out of the representable range
//!   (Appendix A);
//! * *optimisation effects* — the specific transformations §3 discusses:
//!   identity-write elision (§3.5), transient out-of-bounds folding
//!   (§3.2/§3.3), and byte-copy-loop-to-`memcpy` conversion (§3.5).

use cheri_mem::{AddressLayout, MemConfig};

/// Emulated compiler-optimisation effects (only those the paper's semantics
/// discussion identifies as observable).
#[derive(Clone, Copy, Debug, Default)]
pub struct OptFlags {
    /// Reported optimisation level (cosmetic, for profile names).
    pub level: u8,
    /// §3.5: an identity byte write (`p[0] = p[0]`) is removed by the
    /// optimiser, so it does not invalidate a stored capability. Emulated
    /// by skipping data stores that do not change memory contents.
    pub elide_identity_writes: bool,
    /// §3.2/§3.3: constant folding collapses `(p + a) - b` into `p + (a-b)`,
    /// removing transient non-representability. Emulated by an IR
    /// constant-folding pass.
    pub fold_transient_arith: bool,
    /// §3.5: byte-copy loops are recognised and turned into `memcpy`, which
    /// preserves capability tags. Emulated by an IR pattern-match pass.
    pub loops_to_memcpy: bool,
    /// The *non-oracle* fast mode (ROADMAP item 1 track (b)): escape-analyse
    /// the lowered IR and register-promote provably never-addressed scalar
    /// locals, eliding their allocations entirely (DESIGN.md §12). Off by
    /// default and deliberately **not** part of [`OptFlags::o3`]: `o3` models
    /// *observable* compiler effects the paper discusses, while promotion is
    /// validated to be outcome/stdout-invariant (the event trace is out of
    /// contract). Enabled by the CLI `--fast` flag or a `@fast` profile
    /// suffix in batch manifests.
    pub register_promote: bool,
}

impl OptFlags {
    /// No optimisations (`-O0`).
    #[must_use]
    pub fn o0() -> Self {
        OptFlags::default()
    }

    /// The observable `-O3`-style effects.
    #[must_use]
    pub fn o3() -> Self {
        OptFlags {
            level: 3,
            elide_identity_writes: true,
            fold_transient_arith: true,
            loops_to_memcpy: true,
            register_promote: false,
        }
    }

    /// This flag set with the fast-mode register-promotion bit set.
    #[must_use]
    pub fn fast(mut self) -> Self {
        self.register_promote = true;
        self
    }
}

/// A complete implementation profile: how to run a CHERI C program.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Display name, e.g. `"clang-morello-O3"`.
    pub name: String,
    /// Memory-model configuration.
    pub mem: MemConfig,
    /// Optimisation effects.
    pub opt: OptFlags,
    /// Strict sub-object bounds (§3.8): narrow capabilities to the member
    /// or array element when taking its address. Off by default ("the
    /// current default behaviour of CHERI C is to not enforce subobject
    /// bounds"); Clang's `-cheri-bounds=subobject-safe` turns it on.
    pub subobject_bounds: bool,
}

impl Profile {
    /// The Cerberus-CHERI reference semantics (abstract machine, ghost
    /// state, UB detection, no optimisation).
    #[must_use]
    pub fn cerberus() -> Self {
        Profile {
            name: "cerberus".into(),
            mem: MemConfig::cheri_reference(),
            opt: OptFlags::o0(),
            subobject_bounds: false,
        }
    }

    /// The ISO C baseline (PNVI-ae-udi concrete model, no capabilities).
    #[must_use]
    pub fn iso_baseline() -> Self {
        Profile {
            name: "iso-baseline".into(),
            mem: MemConfig::iso_baseline(),
            opt: OptFlags::o0(),
            subobject_bounds: false,
        }
    }

    /// A CHERIoT-style embedded profile: 32-bit layout, hardware checking
    /// *plus* heap revocation — the "additional temporal guarantees" of
    /// §5.4. Pair it with [`cheri_cap::CheriotCap`] via
    /// [`crate::run_with`].
    #[must_use]
    pub fn cheriot() -> Self {
        Profile {
            name: "cheriot".into(),
            mem: MemConfig::cheriot(),
            opt: OptFlags::o0(),
            subobject_bounds: false,
        }
    }

    /// Clang's `-cheri-bounds=subobject-safe` mode (§3.8): like
    /// [`Profile::clang_morello`] but with sub-object bounds narrowing.
    #[must_use]
    pub fn clang_morello_subobject_safe() -> Self {
        let mut p = Self::clang_morello(false);
        p.name = "clang-morello-O0-subobject-safe".into();
        p.subobject_bounds = true;
        p
    }

    fn hardware(name: &str, layout: AddressLayout, opt: OptFlags) -> Self {
        Profile {
            name: format!("{name}-O{}", opt.level),
            mem: MemConfig::cheri_hardware(layout),
            opt,
            subobject_bounds: false,
        }
    }

    /// Clang targeting Morello under CheriBSD.
    #[must_use]
    pub fn clang_morello(o3: bool) -> Self {
        Self::hardware(
            "clang-morello",
            AddressLayout::clang_morello(),
            if o3 { OptFlags::o3() } else { OptFlags::o0() },
        )
    }

    /// Clang targeting CHERI-RISC-V under CheriBSD.
    #[must_use]
    pub fn clang_riscv(o3: bool) -> Self {
        Self::hardware(
            "clang-riscv",
            AddressLayout::clang_riscv(),
            if o3 { OptFlags::o3() } else { OptFlags::o0() },
        )
    }

    /// GCC targeting Morello bare-metal (newlib).
    #[must_use]
    pub fn gcc_morello(o3: bool) -> Self {
        Self::hardware(
            "gcc-morello",
            AddressLayout::gcc_morello(),
            if o3 { OptFlags::o3() } else { OptFlags::o0() },
        )
    }

    /// All the profiles the evaluation harness compares (the reference plus
    /// the six implementation configurations of §5 / Appendix A).
    #[must_use]
    pub fn all_compared() -> Vec<Profile> {
        vec![
            Profile::cerberus(),
            Profile::clang_morello(false),
            Profile::clang_morello(true),
            Profile::clang_riscv(false),
            Profile::clang_riscv(true),
            Profile::gcc_morello(false),
            Profile::gcc_morello(true),
        ]
    }

    /// Is this the abstract-machine reference semantics?
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.mem.abstract_ub && self.mem.capabilities
    }
}

impl Default for Profile {
    fn default() -> Self {
        Profile::cerberus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_names() {
        assert_eq!(Profile::clang_morello(true).name, "clang-morello-O3");
        assert_eq!(Profile::gcc_morello(false).name, "gcc-morello-O0");
        assert_eq!(Profile::cerberus().name, "cerberus");
    }

    #[test]
    fn reference_is_abstract() {
        assert!(Profile::cerberus().is_reference());
        assert!(!Profile::clang_morello(false).is_reference());
        assert!(!Profile::iso_baseline().is_reference());
    }

    #[test]
    fn all_compared_has_seven_configs() {
        assert_eq!(Profile::all_compared().len(), 7);
    }

    #[test]
    fn fast_mode_is_off_by_default() {
        assert!(!OptFlags::o0().register_promote);
        assert!(!OptFlags::o3().register_promote);
        assert!(OptFlags::o0().fast().register_promote);
        for p in Profile::all_compared() {
            assert!(!p.opt.register_promote, "{} must default to the full model", p.name);
        }
    }
}
