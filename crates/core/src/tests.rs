//! End-to-end tests: whole C programs through the full pipeline, checking
//! the outcomes the paper's semantics prescribes.

use crate::report::Outcome;
use crate::{run, run_with, CheriotCap, Profile};
use cheri_mem::{TrapKind, Ub};

fn run_ref(src: &str) -> crate::RunResult {
    run(src, &Profile::cerberus())
}

fn expect_exit(src: &str, code: i64) {
    let r = run_ref(src);
    assert_eq!(r.outcome, Outcome::Exit(code), "stdout: {}", r.stdout);
}

fn expect_ub(src: &str, ub: Ub) {
    let r = run_ref(src);
    match r.outcome {
        Outcome::Ub { ub: got, .. } => assert_eq!(got, ub),
        other => panic!("expected UB {ub}, got {other}"),
    }
}

// ── Plumbing ──────────────────────────────────────────────────────────────

#[test]
fn return_arithmetic() {
    expect_exit("int main(void) { return 2 + 3 * 4; }", 14);
}

#[test]
fn locals_and_assignment() {
    expect_exit("int main(void) { int x = 5; x += 2; x *= 3; return x; }", 21);
}

#[test]
fn loops_and_conditionals() {
    expect_exit(
        "int main(void) { int s = 0; for (int i = 1; i <= 10; i++) s += i; \
         if (s == 55) return 1; else return 2; }",
        1,
    );
}

#[test]
fn while_do_break_continue() {
    expect_exit(
        "int main(void) { int i = 0, n = 0; while (1) { i++; if (i > 10) break; \
         if (i % 2) continue; n += i; } do { n++; } while (0); return n; }",
        31,
    );
}

#[test]
fn functions_and_recursion() {
    expect_exit(
        "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
         int main(void) { return fib(10); }",
        55,
    );
}

#[test]
fn arrays_and_pointers() {
    expect_exit(
        "int main(void) { int a[5] = {1,2,3,4,5}; int *p = a; int s = 0;\n\
         for (int i = 0; i < 5; i++) s += p[i]; return s; }",
        15,
    );
}

#[test]
fn structs_and_unions() {
    expect_exit(
        "struct point { int x; int y; };\n\
         int main(void) { struct point p; p.x = 3; p.y = 4;\n\
         struct point *q = &p; return q->x * q->y; }",
        12,
    );
}

#[test]
fn globals_initialised() {
    expect_exit(
        "int g = 40; int h[2] = {1, 2};\n\
         int main(void) { return g + h[0] + h[1]; }",
        43,
    );
}

#[test]
fn switch_fallthrough() {
    expect_exit(
        "int main(void) { int r = 0; switch (2) { case 1: r += 1; case 2: r += 2; \
         case 3: r += 3; break; default: r = 100; } return r; }",
        5,
    );
}

#[test]
fn function_pointers() {
    expect_exit(
        "int add(int a, int b) { return a + b; }\n\
         int mul(int a, int b) { return a * b; }\n\
         int apply(int (*f)(int, int), int a, int b) { return f(a, b); }\n\
         int main(void) { int (*g)(int, int) = add; return apply(g, 2, 3) + apply(mul, 2, 3); }",
        11,
    );
}

#[test]
fn string_literals_and_strlen() {
    expect_exit(r#"int main(void) { return (int)strlen("hello"); }"#, 5);
}

#[test]
fn printf_output() {
    let r = run_ref(r#"int main(void) { printf("x=%d y=%s\n", 42, "hi"); return 0; }"#);
    assert_eq!(r.outcome, Outcome::Exit(0));
    assert_eq!(r.stdout, "x=42 y=hi\n");
}

#[test]
fn malloc_free_roundtrip() {
    expect_exit(
        "int main(void) { int *p = malloc(4 * sizeof(int));\n\
         for (int i = 0; i < 4; i++) p[i] = i + 1;\n\
         int s = 0; for (int i = 0; i < 4; i++) s += p[i];\n\
         free(p); return s; }",
        10,
    );
}

// ── §3.1: out-of-bounds access ───────────────────────────────────────────

const S31: &str = r#"
void f(int *p, int i) { int *q = p + i; *q = 42; }
int main(void) { int x=0, y=0; f(&x, 1); return y; }
"#;

#[test]
fn s31_reference_flags_bounds_ub() {
    expect_ub(S31, Ub::CheriBoundsViolation);
}

#[test]
fn s31_hardware_traps() {
    let r = run(S31, &Profile::clang_morello(false));
    match r.outcome {
        Outcome::Trap { kind, .. } => assert_eq!(kind, TrapKind::BoundsViolation),
        other => panic!("expected trap, got {other}"),
    }
}

#[test]
fn s31_baseline_flags_provenance_ub() {
    let r = run(S31, &Profile::iso_baseline());
    match r.outcome {
        Outcome::Ub { ub, .. } => assert_eq!(ub, Ub::AccessOutOfBounds),
        other => panic!("expected ISO UB, got {other}"),
    }
}

// ── §3.2: out-of-bounds construction and representability ───────────────

const S32: &str = r#"
int main(void) {
  int x[2];
  int *p = &x[0];
  int *q = p + 100001;
  q = q - 100000;
  *q = 1;
}
"#;

#[test]
fn s32_reference_flags_construction_ub() {
    expect_ub(S32, Ub::OutOfBoundPtrArithmetic);
}

#[test]
fn s32_hardware_o0_tag_cleared_then_traps() {
    let r = run(S32, &Profile::clang_morello(false));
    match r.outcome {
        Outcome::Trap { kind, .. } => assert_eq!(kind, TrapKind::TagViolation),
        other => panic!("expected tag trap, got {other}"),
    }
}

#[test]
fn s32_hardware_o3_folds_and_succeeds() {
    // Constant folding collapses the transient excursion (§3.2: compilers
    // "can optimise away, but not introduce, non-representability").
    let r = run(S32, &Profile::clang_morello(true));
    assert_eq!(r.outcome, Outcome::Exit(0), "{}", r.outcome);
}

// ── §3.3: (u)intptr_t round trips and ghost state ────────────────────────

const S33: &str = r#"
#include <stdint.h>
void f(int a, int b) {
  int x[2];
  int *p = &x[0];
  uintptr_t i = (uintptr_t)p;
  uintptr_t j = i + a;
  uintptr_t k = j - b;
  int *q = (int*)k;
  *q = 1;
}
int main(void) {
  f(100001*sizeof(int), 100000*sizeof(int));
}
"#;

#[test]
fn s33_reference_ghost_state_makes_access_ub() {
    expect_ub(S33, Ub::CheriUndefinedTag);
}

#[test]
fn s33_hardware_o0_traps_on_cleared_tag() {
    let r = run(S33, &Profile::clang_riscv(false));
    match r.outcome {
        Outcome::Trap { kind, .. } => assert_eq!(kind, TrapKind::TagViolation),
        other => panic!("expected tag trap, got {other}"),
    }
}

#[test]
fn intptr_roundtrip_within_bounds_works_everywhere() {
    let src = r#"
    #include <stdint.h>
    int main(void) {
      int x = 7;
      uintptr_t i = (uintptr_t)&x;
      int *q = (int*)i;
      return *q;
    }"#;
    for p in Profile::all_compared() {
        let r = run(src, &p);
        assert_eq!(r.outcome, Outcome::Exit(7), "profile {}", p.name);
    }
}

// ── §3.4: type punning through a union ───────────────────────────────────

#[test]
fn s34_union_punning() {
    let src = r#"
    #include <stdint.h>
    union ptr { int *ptr; uintptr_t iptr; };
    int main(void) {
      int arr[] = {42, 43};
      union ptr x;
      x.ptr = arr;
      x.iptr += sizeof(int);
      assert(*x.ptr == 43);
      return 0;
    }"#;
    expect_exit(src, 0);
}

// ── §3.5: representation accesses ────────────────────────────────────────

const S35_IDENTITY: &str = r#"
int main(void) {
  int x = 0;
  int *px = &x;
  unsigned char *p = (unsigned char *)&px;
  p[0] = p[0];
  *px = 1;
  return x;
}
"#;

#[test]
fn s35_identity_write_is_undefined_tag_at_o0() {
    expect_ub(S35_IDENTITY, Ub::CheriUndefinedTag);
    let r = run(S35_IDENTITY, &Profile::clang_morello(false));
    assert!(matches!(r.outcome, Outcome::Trap { .. }), "{}", r.outcome);
}

#[test]
fn s35_identity_write_elided_at_o3_succeeds() {
    let r = run(S35_IDENTITY, &Profile::clang_morello(true));
    assert_eq!(r.outcome, Outcome::Exit(1), "{}", r.outcome);
}

const S35_LOOP: &str = r#"
int main(void) {
  int x = 0;
  int *px0 = &x;
  int *px1;
  unsigned char *p0 = (unsigned char *)&px0;
  unsigned char *p1 = (unsigned char *)&px1;
  for (int i = 0; i < sizeof(int*); i++)
    p1[i] = p0[i];
  *px1 = 1;
  return x;
}
"#;

#[test]
fn s35_byte_copy_loop_loses_tag_at_o0() {
    let r = run_ref(S35_LOOP);
    assert!(
        matches!(r.outcome, Outcome::Ub { .. }),
        "expected UB, got {}",
        r.outcome
    );
    let r = run(S35_LOOP, &Profile::gcc_morello(false));
    assert!(matches!(r.outcome, Outcome::Trap { .. }), "{}", r.outcome);
}

#[test]
fn s35_loop_becomes_memcpy_at_o3_and_succeeds() {
    let r = run(S35_LOOP, &Profile::gcc_morello(true));
    assert_eq!(r.outcome, Outcome::Exit(1), "{}", r.outcome);
}

#[test]
fn s35_memcpy_explicitly_preserves_tag() {
    expect_exit(
        "int main(void) {\n\
           int x = 0;\n\
           int *px0 = &x; int *px1;\n\
           memcpy(&px1, &px0, sizeof(int*));\n\
           *px1 = 1;\n\
           return x; }",
        1,
    );
}

// ── §3.6: pointer equality ───────────────────────────────────────────────

#[test]
fn equality_is_address_only_exact_eq_is_not() {
    expect_exit(
        "int main(void) {\n\
           int a[2] = {0, 0};\n\
           int *p = &a[0];\n\
           int *q = cheri_tag_clear(p);\n\
           assert(p == q);                 /* address equality */\n\
           assert(!cheri_is_equal_exact(p, q));\n\
           return 0; }",
        0,
    );
}

// ── §3.7: capability derivation ──────────────────────────────────────────

#[test]
fn s37_array_shift_via_intptr() {
    expect_exit(
        "#include <stdint.h>\n\
         int* array_shift(int *x, int n) {\n\
           intptr_t ip = (intptr_t)x;\n\
           intptr_t ip1 = sizeof(int)*n + ip;\n\
           int *p = (int*)ip1;\n\
           return p;\n\
         }\n\
         int main(void) { int a[2]; a[1] = 9; return *array_shift(a, 1); }",
        9,
    );
}

#[test]
fn s37_derivation_left_for_two_caps() {
    // c0 = a + b derives from a: the result keeps a's bounds and is
    // (non-representably far) untagged, but its address is a+b.
    let src = r#"
    #include <stdint.h>
    int main(void) {
      int x=0, y=0;
      intptr_t a=(intptr_t)&x;
      intptr_t b=(intptr_t)&y;
      intptr_t c0 = a + b;
      assert(!cheri_tag_get(c0) || cheri_base_get(c0) == cheri_base_get(a));
      return 0;
    }"#;
    expect_exit(src, 0);
}

// ── §3.9: const and permissions ──────────────────────────────────────────

#[test]
fn const_object_write_is_rejected() {
    let r = run_ref("int main(void) { const int c = 1; int *p = (int*)&c; *p = 2; return c; }");
    assert!(
        matches!(
            r.outcome,
            Outcome::Ub {
                ub: Ub::CheriInsufficientPermissions | Ub::WriteToReadOnly,
                ..
            }
        ),
        "{}",
        r.outcome
    );
}

#[test]
fn const_cast_roundtrip_keeps_write_permission() {
    // ISO allows casting non-const → const → non-const and writing; the
    // capability is unchanged by the casts (§3.9).
    expect_exit(
        "int main(void) { int x = 1; const int *c = &x; int *p = (int*)c; *p = 5; return x; }",
        5,
    );
}

// ── Temporal safety ──────────────────────────────────────────────────────

#[test]
fn use_after_free_is_ub_in_reference() {
    expect_ub(
        "int main(void) { int *p = malloc(4); *p = 1; free(p); return *p; }",
        Ub::AccessDeadAllocation,
    );
}

#[test]
fn use_after_scope_exit_is_ub() {
    expect_ub(
        "int *f(void) { int x = 3; return &x; }\n\
         int main(void) { int *p = f(); return *p; }",
        Ub::AccessDeadAllocation,
    );
}

// ── Intrinsics ───────────────────────────────────────────────────────────

#[test]
fn intrinsics_basic_fields() {
    expect_exit(
        "int main(void) {\n\
           int a[4] = {0,0,0,0};\n\
           int *p = &a[0];\n\
           assert(cheri_tag_get(p));\n\
           assert(cheri_length_get(p) == 4 * sizeof(int));\n\
           assert(cheri_address_get(p) == cheri_base_get(p));\n\
           int *q = p + 2;\n\
           assert(cheri_offset_get(q) == 2 * sizeof(int));\n\
           return 0; }",
        0,
    );
}

#[test]
fn intrinsics_bounds_narrowing() {
    expect_exit(
        "int main(void) {\n\
           char buf[16];\n\
           char *p = cheri_bounds_set(buf, 8);\n\
           assert(cheri_length_get(p) == 8);\n\
           p[7] = 1;  /* in narrowed bounds */\n\
           return 0; }",
        0,
    );
}

#[test]
fn intrinsics_narrowed_bounds_trap_beyond() {
    let r = run_ref(
        "int main(void) { char buf[16]; char *p = cheri_bounds_set(buf, 8); p[8] = 1; return 0; }",
    );
    match r.outcome {
        Outcome::Ub { ub, .. } => assert_eq!(ub, Ub::CheriBoundsViolation),
        other => panic!("expected bounds UB, got {other}"),
    }
}

#[test]
fn perms_clearing_is_monotone() {
    expect_exit(
        "int main(void) {\n\
           int x = 0; int *p = &x;\n\
           size_t perms = cheri_perms_get(p);\n\
           int *q = cheri_perms_and(p, 0);\n\
           assert(cheri_perms_get(q) == 0);\n\
           assert(perms != 0);\n\
           return 0; }",
        0,
    );
}

#[test]
fn unforgeability_null_derived_has_no_rights() {
    expect_ub(
        "#include <stdint.h>\n\
         int main(void) { int x = 5; uintptr_t a = (uintptr_t)&x;\n\
         long n = (long)a;              /* plain integer */\n\
         int *p = (int*)(uintptr_t)n;   /* rebuilt from integer: untagged */\n\
         return *p; }",
        Ub::CheriInvalidCap,
    );
}

// ── Portability: same program under the CHERIoT-style model ─────────────

#[test]
fn cheriot_model_runs_programs() {
    let src = "int main(void) { int a[3] = {1,2,3}; int *p = a; return p[0] + p[1] + p[2]; }";
    let r = run_with::<CheriotCap>(src, &Profile::cerberus());
    assert_eq!(r.outcome, Outcome::Exit(6), "{}", r.outcome);
    // And bounds violations still stop the program at 32 bits.
    let r = run_with::<CheriotCap>(S31, &Profile::cerberus());
    assert!(matches!(r.outcome, Outcome::Ub { .. }));
}

// ── Output of the print_cap test helper ──────────────────────────────────

#[test]
fn print_cap_appendix_a_format() {
    let r = run_ref(
        "#include <stdint.h>\n\
         int main(void) { int x[2]; intptr_t ip = (intptr_t)&x; print_cap(ip); return 0; }",
    );
    assert_eq!(r.outcome, Outcome::Exit(0));
    assert!(r.stdout.starts_with("(@"), "stdout: {}", r.stdout);
    assert!(r.stdout.contains("[rwRW,0x"), "stdout: {}", r.stdout);
}

// ── §3.8 extension: strict sub-object bounds mode ────────────────────────

#[test]
fn subobject_bounds_narrow_member_pointers() {
    let src = r#"
        struct s { int a; int b; };
        int main(void) {
          struct s v;
          v.a = 1; v.b = 2;
          int *p = &v.a;
          assert(cheri_length_get(p) == sizeof(int));  /* narrowed */
          return *(p + 1);   /* reaching the sibling member faults */
        }
    "#;
    let strict = Profile::clang_morello_subobject_safe();
    let r = run(src, &strict);
    assert!(
        matches!(r.outcome, Outcome::Trap { .. } | Outcome::Ub { .. }),
        "{}",
        r.outcome
    );
    // Default (conservative) mode: the capability spans the allocation and
    // the container-of idiom works — but cheri_length_get differs, so run a
    // version without the narrowed-length assertion.
    let src_default = r#"
        struct s { int a; int b; };
        int main(void) {
          struct s v;
          v.a = 1; v.b = 2;
          int *p = &v.a;
          return *(p + 1);
        }
    "#;
    let r = run(src_default, &Profile::clang_morello(false));
    assert_eq!(r.outcome, Outcome::Exit(2), "{}", r.outcome);
}

#[test]
fn subobject_bounds_narrow_array_members() {
    let src = r#"
        struct msg { char tag[4]; int payload; };
        int main(void) {
          struct msg m;
          m.payload = 99;
          char *p = m.tag;       /* decay of a member array */
          p[3] = 0;              /* in bounds */
          p[4] = 0;              /* beyond the member */
          return 0;
        }
    "#;
    let r = run(src, &Profile::clang_morello_subobject_safe());
    assert!(r.outcome.is_safety_stop(), "{}", r.outcome);
    let r = run(src, &Profile::clang_morello(false));
    assert_eq!(r.outcome, Outcome::Exit(0), "default mode: {}", r.outcome);
}

// ── §5.4/§7 extension: CHERIoT-style revocation ──────────────────────────

#[test]
fn revocation_catches_use_after_free_on_hardware() {
    // Without revocation, hardware misses UAF through a reloaded pointer
    // (§3.11). With the CHERIoT profile, the sweep clears the stored
    // capability's tag at free time and the reload traps.
    let src = r#"
        int main(void) {
          int *p = malloc(sizeof(int));
          *p = 1;
          free(p);
          *p = 2;         /* p reloaded from its stack slot */
          return 0;
        }
    "#;
    let plain_hw = run_with::<CheriotCap>(src, &{
        let mut p = Profile::clang_morello(false);
        p.mem.layout = cheri_c_mem_embedded();
        p
    });
    assert_eq!(plain_hw.outcome, Outcome::Exit(0), "{}", plain_hw.outcome);
    let cheriot = run_with::<CheriotCap>(src, &Profile::cheriot());
    assert!(
        matches!(cheriot.outcome, Outcome::Trap { kind: TrapKind::TagViolation, .. }),
        "{}",
        cheriot.outcome
    );
}

fn cheri_c_mem_embedded() -> cheri_mem::AddressLayout {
    cheri_mem::AddressLayout::embedded32()
}

#[test]
fn revocation_spares_unrelated_capabilities() {
    let src = r#"
        int main(void) {
          int *keep = malloc(sizeof(int));
          int *dead = malloc(sizeof(int));
          *keep = 5;
          free(dead);
          return *keep;    /* untouched by the sweep */
        }
    "#;
    let r = run_with::<CheriotCap>(src, &Profile::cheriot());
    assert_eq!(r.outcome, Outcome::Exit(5), "{}", r.outcome);
}

// ── static locals ────────────────────────────────────────────────────────

#[test]
fn static_locals_persist_across_calls() {
    expect_exit(
        "int counter(void) { static int n = 0; n++; return n; }\n\
         int main(void) { counter(); counter(); return counter(); }",
        3,
    );
}

#[test]
fn static_local_capability_lives_past_the_frame() {
    // A static local has static storage duration: pointers to it stay valid
    // after the function returns (unlike uaf/escaped-stack-pointer).
    expect_exit(
        "int *get(void) { static int cell = 41; return &cell; }\n\
         int main(void) { int *p = get(); *p += 1; return *get(); }",
        42,
    );
}

#[test]
fn static_locals_are_zero_initialised() {
    expect_exit(
        "int f(void) { static int z; static int *zp; return z == 0 && zp == 0; }\n\
         int main(void) { return f(); }",
        1,
    );
}

// ── Floating point (the §4.3 memory interface covers float values) ──────

#[test]
fn float_arithmetic_and_comparison() {
    expect_exit(
        "int main(void) {\n\
           double d = 1.5;\n\
           float f = 2.5f;\n\
           double s = d + f;        /* usual conversions: f widens */\n\
           assert(s == 4.0);\n\
           assert(s > d && d < f);\n\
           assert(-d == -1.5);\n\
           return (int)(s * 2.0);\n\
         }",
        8,
    );
}

#[test]
fn float_int_conversions() {
    expect_exit(
        "int main(void) {\n\
           int n = 7;\n\
           double d = n / 2.0;\n\
           assert(d == 3.5);\n\
           int t = (int)d;          /* truncates toward zero */\n\
           assert(t == 3);\n\
           assert((int)-2.9 == -2);\n\
           return t;\n\
         }",
        3,
    );
}

#[test]
fn float_to_int_overflow_is_ub() {
    expect_ub(
        "int main(void) { double d = 1e20; return (int)d; }",
        Ub::SignedOverflow,
    );
}

#[test]
fn floats_roundtrip_through_memory() {
    expect_exit(
        "struct point { float x; float y; double norm2; };\n\
         int main(void) {\n\
           struct point p;\n\
           p.x = 3.0f; p.y = 4.0f;\n\
           p.norm2 = p.x * p.x + p.y * p.y;\n\
           double a[2] = { p.norm2, 0.5 };\n\
           a[1] += a[0];\n\
           assert(a[1] == 25.5);\n\
           return (int)a[0];\n\
         }",
        25,
    );
}

#[test]
fn float_division_by_zero_is_ieee_not_ub() {
    expect_exit(
        "int main(void) {\n\
           double inf = 1.0 / 0.0;\n\
           double nan = 0.0 / 0.0;\n\
           assert(inf > 1e308);\n\
           assert(!(nan == nan));    /* NaN is not equal to itself */\n\
           return 0;\n\
         }",
        0,
    );
}

#[test]
fn printf_float_formats() {
    let r = run_ref(r#"int main(void) { printf("%f %g\n", 2.5, 0.25f); return 0; }"#);
    assert_eq!(r.outcome, Outcome::Exit(0));
    assert_eq!(r.stdout, "2.500000 0.25\n");
}

#[test]
fn float_compound_assignment() {
    expect_exit(
        "int main(void) {\n\
           double acc = 1.0;\n\
           for (int i = 0; i < 3; i++) acc *= 2.0;\n\
           acc += 0.5; acc -= 0.25; acc /= 0.25;\n\
           assert(acc == 33.0);\n\
           int n = 10;\n\
           n += 2.6;                 /* converts back to int: 12 */\n\
           return n + (int)acc / 11;\n\
         }",
        15,
    );
}

#[test]
fn memcpy_of_float_arrays() {
    expect_exit(
        "int main(void) {\n\
           double src[3] = {1.5, 2.5, 3.5};\n\
           double dst[3];\n\
           memcpy(dst, src, sizeof(src));\n\
           double s = dst[0] + dst[1] + dst[2];\n\
           return (int)s;\n\
         }",
        7,
    );
}

#[test]
fn math_builtins() {
    expect_exit(
        "int main(void) {\n\
           assert(fabs(-2.5) == 2.5);\n\
           assert(sqrt(16.0) == 4.0);\n\
           double h = sqrt(3.0*3.0 + 4.0*4.0);\n\
           return (int)h;\n\
         }",
        5,
    );
}

// ── Additional C semantic corners ────────────────────────────────────────

#[test]
fn multidimensional_arrays() {
    expect_exit(
        "int main(void) {\n\
           int m[3][4];\n\
           for (int i = 0; i < 3; i++)\n\
             for (int j = 0; j < 4; j++)\n\
               m[i][j] = i * 4 + j;\n\
           assert(sizeof(m) == 48);\n\
           assert(m[2][3] == 11);\n\
           int *flat = &m[0][0];\n\
           return flat[7];   /* row-major: m[1][3] */\n\
         }",
        7,
    );
}

#[test]
fn nested_structs_and_copy_assignment() {
    expect_exit(
        "struct inner { int a; int b; };\n\
         struct outer { struct inner i; int *p; };\n\
         int main(void) {\n\
           int x = 5;\n\
           struct outer o1;\n\
           o1.i.a = 1; o1.i.b = 2; o1.p = &x;\n\
           struct outer o2;\n\
           o2 = o1;                /* aggregate copy preserves the capability */\n\
           assert(o2.i.a + o2.i.b == 3);\n\
           *o2.p = 9;              /* copied pointer still tagged */\n\
           return x;\n\
         }",
        9,
    );
}

#[test]
fn array_of_structs() {
    expect_exit(
        "struct kv { int k; int v; };\n\
         int main(void) {\n\
           struct kv table[3] = { {1, 10}, {2, 20}, {3, 30} };\n\
           int s = 0;\n\
           for (int i = 0; i < 3; i++) s += table[i].v;\n\
           struct kv *p = &table[1];\n\
           p++;\n\
           return s + p->k;   /* 60 + 3 */\n\
         }",
        63,
    );
}

#[test]
fn short_circuit_side_effects() {
    expect_exit(
        "int calls = 0;\n\
         int bump(void) { calls++; return 1; }\n\
         int main(void) {\n\
           int a = 0 && bump();\n\
           int b = 1 || bump();\n\
           assert(calls == 0);   /* neither rhs evaluated */\n\
           int c = 1 && bump();\n\
           int d = 0 || bump();\n\
           assert(calls == 2);\n\
           return a + b + c + d;\n\
         }",
        3,
    );
}

#[test]
fn ternary_and_comma() {
    expect_exit(
        "int main(void) {\n\
           int x = 3;\n\
           int *p = x > 2 ? &x : 0;\n\
           int y = (x++, x * 2);\n\
           assert(y == 8);\n\
           return p ? *p : -1;\n\
         }",
        4,
    );
}

#[test]
fn scoping_and_shadowing() {
    expect_exit(
        "int x = 1;\n\
         int main(void) {\n\
           int x = 2;\n\
           {\n\
             int x = 3;\n\
             assert(x == 3);\n\
           }\n\
           assert(x == 2);\n\
           for (int x = 10; x < 11; x++) assert(x == 10);\n\
           return x;\n\
         }",
        2,
    );
}

#[test]
fn switch_inside_loop_with_continue() {
    expect_exit(
        "int main(void) {\n\
           int s = 0;\n\
           for (int i = 0; i < 6; i++) {\n\
             switch (i % 3) {\n\
               case 0: continue;\n\
               case 1: s += 10; break;\n\
               default: s += 1;\n\
             }\n\
           }\n\
           return s;   /* i=1,4 add 10; i=2,5 add 1 */\n\
         }",
        22,
    );
}

#[test]
fn negative_division_and_modulo() {
    expect_exit(
        "int main(void) {\n\
           assert(-7 / 2 == -3);     /* truncation toward zero */\n\
           assert(-7 % 2 == -1);\n\
           assert(7 / -2 == -3);\n\
           assert(7 % -2 == 1);\n\
           return 0;\n\
         }",
        0,
    );
}

#[test]
fn hex_literals_and_long_long() {
    expect_exit(
        "int main(void) {\n\
           unsigned long long big = 0xFFFFFFFFFFFFFFFFull;\n\
           assert(big + 1 == 0);     /* unsigned wraps */\n\
           long long sh = 1ll << 40;\n\
           assert(sh > 0x8000000000);\n\
           return (int)(big & 0x2A);\n\
         }",
        42,
    );
}

#[test]
fn enum_values_in_expressions() {
    expect_exit(
        "enum color { RED, GREEN = 5, BLUE };\n\
         int main(void) {\n\
           enum color c = BLUE;\n\
           assert(RED == 0 && GREEN == 5 && BLUE == 6);\n\
           switch (c) { case BLUE: return GREEN + 1; default: return 0; }\n\
         }",
        6,
    );
}

#[test]
fn typedef_chains() {
    expect_exit(
        "typedef int myint;\n\
         typedef myint *intp;\n\
         typedef struct pair { myint a; myint b; } pair_t;\n\
         int main(void) {\n\
           pair_t p = {20, 22};\n\
           intp pa = &p.a;\n\
           return *pa + p.b;\n\
         }",
        42,
    );
}

#[test]
fn char_arithmetic_and_strings() {
    expect_exit(
        r#"int main(void) {
           char s[6] = "hello";
           int caps = 0;
           for (int i = 0; s[i]; i++) {
             if (s[i] >= 'a' && s[i] <= 'z') caps++;
             s[i] = s[i] - 'a' + 'A';
           }
           assert(strcmp(s, "HELLO") == 0);
           return caps;
         }"#,
        5,
    );
}

#[test]
fn pointer_to_pointer() {
    expect_exit(
        "int main(void) {\n\
           int x = 7;\n\
           int *p = &x;\n\
           int **pp = &p;\n\
           **pp = 9;\n\
           assert(cheri_tag_get(*pp));\n\
           return x;\n\
         }",
        9,
    );
}

#[test]
fn recursion_passing_capabilities() {
    expect_exit(
        "void fill(int *a, int n) {\n\
           if (n == 0) return;\n\
           a[n-1] = n;\n\
           fill(a, n - 1);\n\
         }\n\
         int main(void) {\n\
           int a[10];\n\
           fill(a, 10);\n\
           int s = 0;\n\
           for (int i = 0; i < 10; i++) s += a[i];\n\
           return s;\n\
         }",
        55,
    );
}

#[test]
fn do_while_and_unary_ops() {
    expect_exit(
        "int main(void) {\n\
           int n = 0, i = 5;\n\
           do { n += i--; } while (i > 0);\n\
           assert(n == 15);\n\
           assert(~0 == -1);\n\
           assert(!0 == 1 && !7 == 0);\n\
           return +n - 10;\n\
         }",
        5,
    );
}

// ── Engine-parity regression tests (PR 8 bugfixes) ────────────────────────
//
// Each of these pins a path where the bytecode VM used to diverge from (or
// crash instead of matching) the reference tree engine. They run both
// engines explicitly rather than relying on the generative differential
// test to eventually draw the construct.

/// `main` returning an `unsigned long` above `2^63`: both engines must
/// produce the *same* wrapped process exit value. They used to agree only
/// by coincidence (duplicated `as i64` casts); they now share
/// `interp::exit_code`, so this pins the conversion itself.
#[test]
fn exit_code_conversion_matches_across_engines() {
    use crate::{run_with_engine, Engine, MorelloCap};
    // x = 2^63 (unsigned shift, well-defined), return x + 5 = 2^63 + 5.
    let src = "unsigned long main(void) {\n\
                 unsigned long x = 1;\n\
                 x = x << 63;\n\
                 return x + 5;\n\
               }";
    let profile = Profile::cerberus();
    let tree = run_with_engine::<MorelloCap>(src, &profile, Engine::Tree);
    let vm = run_with_engine::<MorelloCap>(src, &profile, Engine::Bytecode);
    // 2^63 + 5 wraps to i64::MIN + 5 when narrowed to the exit i64.
    assert_eq!(tree.outcome, Outcome::Exit(i64::MIN + 5), "tree engine");
    assert_eq!(vm.outcome, Outcome::Exit(i64::MIN + 5), "bytecode engine");
}

/// A recognised-memcpy loop whose byte count is not an integer value must
/// be a loud `Unsupported` error in *both* engines. The VM used to treat
/// the length as 0 (`unwrap_or(0)`), silently skipping the copy.
#[test]
fn opt_memcpy_non_integer_length_is_loud_in_both_engines() {
    use crate::lex::Pos;
    use crate::tast::{TExpr, TExprKind, TStmt};
    use crate::types::{FloatTy, IntTy, Ty};
    use crate::{Engine, Interp, MorelloCap};

    let profile = Profile::cerberus();
    let mut prog = crate::compile("int main(void) { return 0; }", &profile).unwrap();
    // The source recogniser can only build integer-typed counts, so forge
    // the malformed statement directly: a float-typed byte count.
    let str_ptr = |s: &str| TExpr {
        ty: Ty::ptr(Ty::Int(IntTy::Char)),
        kind: TExprKind::StrLit(s.into()),
        pos: Pos::default(),
        from_noncap: false,
    };
    let bad = TStmt::OptMemcpy {
        dst: str_ptr("dst"),
        src: str_ptr("src"),
        n: TExpr {
            ty: Ty::Float(FloatTy::F64),
            kind: TExprKind::ConstFloat(1.0),
            pos: Pos::default(),
            from_noncap: false,
        },
    };
    prog.funcs.get_mut("main").unwrap().body.insert(0, bad);

    for engine in [Engine::Tree, Engine::Bytecode] {
        let r = Interp::<MorelloCap>::new(&prog, &profile).with_engine(engine).run();
        match &r.outcome {
            Outcome::Error(m) => assert!(
                m.contains("OptMemcpy length is not an integer"),
                "{engine:?}: unexpected message {m:?}"
            ),
            other => panic!("{engine:?}: expected loud error, got {other}"),
        }
    }
}

/// Malformed IR — a `PtrCmp` whose operator is not a comparison — must
/// fail the run with a `Stop` error, not `unreachable!`: the VM is headed
/// for a long-lived service where one bad program must not take down the
/// process.
#[test]
fn malformed_ptr_cmp_op_errors_instead_of_panicking() {
    use crate::ast::BinOp;
    use crate::ir::{self, Inst};
    use crate::types::{IntTy, Ty};
    use crate::{Interp, MorelloCap};

    let profile = Profile::cerberus();
    let prog = crate::compile("int main(void) { return 0; }", &profile).unwrap();
    let mut irp = ir::lower(&prog);
    let sid = ir::StrId(irp.strs.len() as u32);
    irp.strs.push("x".into());
    let tid = ir::TyId(irp.types.len() as u32);
    irp.types.push(Ty::ptr(Ty::Int(IntTy::Char)));
    let mi = irp.main.unwrap() as usize;
    let f = &mut irp.funcs[mi];
    f.code = vec![
        Inst::StrLit { dst: 0, s: sid, ty: tid },
        Inst::StrLit { dst: 1, s: sid, ty: tid },
        // `Add` is not a comparison: no lowering emits this.
        Inst::PtrCmp { dst: 2, op: BinOp::Add, a: 0, b: 1 },
        Inst::RetFall,
    ];
    f.n_regs = 3;
    f.block_pc = vec![0];

    let r = Interp::<MorelloCap>::new(&prog, &profile)
        .with_ir(std::sync::Arc::new(irp))
        .run();
    match &r.outcome {
        Outcome::Error(m) => assert!(
            m.contains("not a pointer comparison"),
            "unexpected message {m:?}"
        ),
        other => panic!("expected loud error, got {other}"),
    }
}
