//! Register promotion: the rewrite half of the fast mode (DESIGN.md §12).
//!
//! For every local [`super::escape`] proved never-addressed, this pass
//! elides the local's entire memory life cycle — `AllocLocal`, the
//! initialising `Store`, `BindSlot`, every `SlotLoc`, and the frame
//! kill-list entry — and keeps the value in a fresh virtual register
//! instead:
//!
//! | memory form                  | register form                    |
//! |------------------------------|----------------------------------|
//! | `AllocLocal` / `BindSlot` / `SlotLoc` | *(deleted)*             |
//! | `Load {dst, loc}`            | `Move {dst, src: R}`             |
//! | `Store {loc, src}`           | `Move {dst: R, src}`             |
//! | `IncDec {loc, …}`            | `RegIncDec {reg: R, …}`          |
//! | `AssignOpInt {loc, …}`       | `RegAssignOpInt {reg: R, …}`     |
//! | `AssignOpFloat {loc, …}`     | `RegAssignOpFloat {reg: R, …}`   |
//! | `PtrAssignAdd {loc, …}`      | `RegPtrAssignAdd {reg: R, …}`    |
//!
//! Promoted *parameters* keep their [`super::IrParam`] entry but are
//! recorded in [`super::IrFunc::promoted`]; the VM passes their argument
//! value straight into the register instead of allocating a parameter
//! object.
//!
//! The register forms run the identical `Interp` helpers (conversions,
//! UB checks, capability derivation) as the memory forms — only the
//! `load_value`/`store_value` round-trip through `CheriMemory` is gone.
//! What this pass may change, by design, is the *event trace* and memory
//! statistics (allocations, loads, stores, kills for promoted locals
//! disappear) and — like any real register allocator — the addresses the
//! bump allocator hands to the remaining objects. What it must never
//! change is the outcome, stdout and exit code; `tests/
//! fast_mode_differential.rs` pins that over the oracle corpus, and the
//! analysis marking a local as escaping guarantees it is never elided
//! (a QC property in the same test).
//!
//! The pass is idempotent: a promoted local has no remaining
//! `AllocLocal`/`BindSlot`/`SlotLoc`, so a second run finds nothing to
//! promote (the slot is then simply unused).

use super::escape::{analyze_func, FuncAnalysis};
use super::peephole::compact;
use super::{Inst, IrFunc, IrProgram, Reg};

/// Promote every provably never-addressed scalar local of every function,
/// in place. Runs on the raw lowering, before the peephole passes.
pub fn promote(ir: &mut IrProgram) {
    let analyses: Vec<FuncAnalysis> = ir.funcs.iter().map(|f| analyze_func(ir, f)).collect();
    for (func, analysis) in ir.funcs.iter_mut().zip(analyses) {
        promote_func(func, &analysis);
    }
}

fn promote_func(func: &mut IrFunc, a: &FuncAnalysis) {
    // Fresh registers, one per promoted slot, in slot order. Slots already
    // promoted by an earlier run keep their register: a promoted parameter
    // still looks promotable on re-analysis (its `IrParam` survives with no
    // remaining accesses), and re-promoting it would not be idempotent.
    let mut next = func.n_regs;
    let promo: Vec<(u32, Reg)> = a
        .decisions
        .iter()
        .filter(|d| d.promoted && !func.promoted.iter().any(|&(s, _)| s == d.slot))
        .map(|d| {
            let r = next;
            next += 1;
            (d.slot, r)
        })
        .collect();
    if promo.is_empty() {
        return;
    }
    let reg_of = |slot: u32| promo.iter().find(|&&(s, _)| s == slot).map(|&(_, r)| r);
    // The promoted register for the loc operand `r` at `pc`, if `r`
    // locates a promoted slot there.
    let promoted_loc = |pc: usize, r: Reg| a.slot_at(pc, r).and_then(reg_of);

    let mut keep = vec![true; func.code.len()];
    for (pc, (kept, inst)) in keep.iter_mut().zip(func.code.iter_mut()).enumerate() {
        let new = match &*inst {
            Inst::AllocLocal { .. } => {
                match a.site_slot.get(&(pc as u32)).copied().and_then(reg_of) {
                    Some(_) => {
                        *kept = false;
                        continue;
                    }
                    None => continue,
                }
            }
            Inst::BindSlot { slot, .. } | Inst::SlotLoc { slot, .. } => {
                match reg_of(*slot) {
                    Some(_) => {
                        *kept = false;
                        continue;
                    }
                    None => continue,
                }
            }
            Inst::Load { dst, loc, .. } => match promoted_loc(pc, *loc) {
                Some(r) => Inst::Move { dst: *dst, src: r },
                None => continue,
            },
            Inst::Store { loc, src, .. } => match promoted_loc(pc, *loc) {
                Some(r) => Inst::Move { dst: r, src: *src },
                None => continue,
            },
            Inst::IncDec { dst, loc, inc, prefix, elem, .. } => match promoted_loc(pc, *loc) {
                Some(r) => Inst::RegIncDec {
                    dst: *dst,
                    reg: r,
                    inc: *inc,
                    prefix: *prefix,
                    elem: *elem,
                },
                None => continue,
            },
            Inst::AssignOpInt { dst, loc, lt, ct, op, derive, cur, rhs, .. } => {
                match promoted_loc(pc, *loc) {
                    Some(r) => Inst::RegAssignOpInt {
                        dst: *dst,
                        reg: r,
                        lt: *lt,
                        ct: *ct,
                        op: *op,
                        derive: *derive,
                        cur: *cur,
                        rhs: *rhs,
                    },
                    None => continue,
                }
            }
            Inst::AssignOpFloat { dst, loc, ty, common, op, cur, rhs } => {
                match promoted_loc(pc, *loc) {
                    Some(r) => Inst::RegAssignOpFloat {
                        dst: *dst,
                        reg: r,
                        ty: *ty,
                        common: *common,
                        op: *op,
                        cur: *cur,
                        rhs: *rhs,
                    },
                    None => continue,
                }
            }
            Inst::PtrAssignAdd { dst, loc, ty, cur, idx, elem, neg } => {
                match promoted_loc(pc, *loc) {
                    Some(r) => Inst::RegPtrAssignAdd {
                        dst: *dst,
                        reg: r,
                        ty: *ty,
                        cur: *cur,
                        idx: *idx,
                        elem: *elem,
                        neg: *neg,
                    },
                    None => continue,
                }
            }
            _ => continue,
        };
        *inst = new;
    }

    // No surviving instruction may still consume a promoted location: the
    // escape analysis only promotes locals whose every use is one of the
    // rewritten shapes above.
    #[cfg(debug_assertions)]
    for (pc, (kept, inst)) in keep.iter().zip(&func.code).enumerate() {
        if !kept {
            continue;
        }
        super::peephole::for_each_use(inst, |r| {
            if (r as usize) < func.n_regs as usize {
                debug_assert!(
                    promoted_loc(pc, r).is_none(),
                    "unrewritten use of promoted slot at pc {pc}: {inst:?}",
                );
            }
        });
    }

    compact(func, &keep);
    func.n_regs = next;
    func.promoted.extend(promo);
    func.promoted.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::super::{lower, lower_fast, Inst};

    fn fast_ir(src: &str) -> super::IrProgram {
        let prog = crate::compile(src, &crate::Profile::cerberus()).expect("compiles");
        lower_fast(&prog)
    }

    #[test]
    fn promoted_locals_leave_no_memory_traffic() {
        let ir = fast_ir(
            "int main(void) { long s = 0; for (int i = 0; i < 9; i++) s += i; return (int)s; }",
        );
        let main = &ir.funcs[ir.main.expect("main") as usize];
        assert_eq!(main.promoted.len(), 2, "{:?}", main.promoted);
        for inst in &main.code {
            assert!(
                !matches!(
                    inst,
                    Inst::AllocLocal { .. }
                        | Inst::SlotLoc { .. }
                        | Inst::BindSlot { .. }
                        | Inst::Load { .. }
                        | Inst::Store { .. }
                        | Inst::IncDec { .. }
                        | Inst::AssignOpInt { .. }
                ),
                "memory traffic survived promotion: {inst:?}"
            );
        }
    }

    #[test]
    fn escaping_locals_keep_their_allocation() {
        let ir = fast_ir("int main(void) { int x = 1; int *p = &x; return *p; }");
        let main = &ir.funcs[ir.main.expect("main") as usize];
        // `x` stays in memory (`p` is promoted).
        assert!(
            main.code.iter().any(|i| matches!(i, Inst::AllocLocal { .. })),
            "escaping local lost its allocation",
        );
        assert_eq!(main.promoted.len(), 1, "{:?}", main.promoted);
    }

    #[test]
    fn promoted_parameters_are_recorded() {
        let ir = fast_ir(
            "int add(int a, int b) { return a + b; } int main(void) { return add(2, 3) - 5; }",
        );
        let add = &ir.funcs[*ir.func_index.get("add").expect("add") as usize];
        assert_eq!(add.promoted.len(), 2, "{:?}", add.promoted);
        assert_eq!(add.params.len(), 2);
    }

    /// Promotion is idempotent: running it a second time (plus the
    /// peephole fixpoint) changes nothing.
    #[test]
    fn promotion_is_idempotent() {
        let src = "
            int scale(int f, int x) { int acc = 0; while (x-- > 0) acc += f; return acc; }
            int main(void) {
              int t = 0;
              for (int k = 0; k < 5; k++) t += scale(k, 3);
              int *p = &t;
              return *p;
            }";
        let prog = crate::compile(src, &crate::Profile::cerberus()).expect("compiles");
        let mut once = lower(&prog);
        super::promote(&mut once);
        let mut twice = once.clone();
        super::promote(&mut twice);
        assert_eq!(once.render(), twice.render());
        let promoted_once: Vec<_> = once.funcs.iter().map(|f| f.promoted.clone()).collect();
        let promoted_twice: Vec<_> = twice.funcs.iter().map(|f| f.promoted.clone()).collect();
        assert_eq!(promoted_once, promoted_twice);
    }
}
