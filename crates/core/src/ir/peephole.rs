//! Trace-preserving peephole optimisation over linked bytecode.
//!
//! The engine-differential contract (ROADMAP item 1) pins the *event
//! trace*, not the instruction count: the VM may execute fewer
//! instructions than the tree engine walks AST nodes, but every memory
//! effect — alloc, load, store, kill, intern — and every error must
//! happen identically. The passes here therefore only touch instructions
//! that are pure (no memory events, no statistics), infallible *or*
//! error-equivalent after the rewrite, and whose results are provably
//! unobservable afterwards:
//!
//! * **jump threading / jump-to-next elimination** — control-flow only;
//! * **pair fusion** — `BoolOf`/`ToBool` feeding a conditional jump reads
//!   the untested value directly (`truthy` is idempotent across both);
//!   adjacent `MemberShift`s over a dead intermediate combine their
//!   offsets (a pure address add; see the fusion site for why the
//!   intermediate representability check is preserved);
//! * **constant folding** — `ConstInt`/`ConstInt`/`Binary` triples (and
//!   `IntToInt`/`Unary` pairs) replicate `Interp::binary_int` exactly and
//!   fold **only** when the runtime path provably cannot raise UB — any
//!   possible `SignedOverflow`/`DivisionByZero`/`ShiftOutOfRange` leaves
//!   the instruction in place so the error (and its event position) is
//!   unchanged;
//! * **dead-register elimination** — deletes pure, infallible defs
//!   (`ConstInt`, `ConstFloat`, `Move`, `SetVoid`, `GlobalLoc`) whose
//!   destination is dead, established by a backward liveness fixpoint
//!   over the instruction-level CFG.
//!
//! The only observable the passes change is the VM step counter, which is
//! not part of the differential contract (the engines already tick at
//! different granularities); a program can in principle move from "step
//! limit exceeded" to terminating, exactly as any VM speedup would.

use crate::ast::{BinOp, UnOp};
use crate::types::IntTy;

use super::{Inst, IrFunc, IrProgram, Reg};

/// Upper bound on optimisation rounds per function. Each round runs every
/// pass once and rebuilds the code; a round that changes nothing ends the
/// loop early. Two or three rounds reach the fixpoint in practice (a
/// fusion exposes a dead def, the next round deletes it).
const MAX_ROUNDS: usize = 4;

/// Optimise every function of a lowered program in place.
pub fn optimize(ir: &mut IrProgram) {
    for f in &mut ir.funcs {
        for _ in 0..MAX_ROUNDS {
            let mut changed = thread_jumps(f);
            changed |= fuse_pairs(f);
            changed |= delete_dead(f);
            if !changed {
                break;
            }
        }
    }
}

// ── Register use/def and the instruction-level CFG ──────────────────────

/// Visit every register an instruction *reads*. For the register-promoted
/// finishers the promoted register itself is visited as a use even where
/// the finisher only writes it: the register is the local's storage, and
/// keeping it live is the conservative (sound) direction for every
/// consumer of this function.
pub(crate) fn for_each_use(inst: &Inst, mut f: impl FnMut(Reg)) {
    match inst {
        Inst::ConstInt { .. }
        | Inst::ConstFloat { .. }
        | Inst::StrLit { .. }
        | Inst::FuncAddr { .. }
        | Inst::SetVoid { .. }
        | Inst::SlotLoc { .. }
        | Inst::GlobalLoc { .. }
        | Inst::Jump { .. }
        | Inst::RetVoid
        | Inst::RetFall
        | Inst::AllocLocal { .. }
        | Inst::Unsupported { .. } => {}
        Inst::Move { src, .. }
        | Inst::BoolOf { src, .. }
        | Inst::DerefLoc { src, .. }
        | Inst::MemberShift { src, .. }
        | Inst::Unary { src, .. }
        | Inst::IntToInt { src, .. }
        | Inst::PtrToInt { src, .. }
        | Inst::IntToPtr { src, .. }
        | Inst::PtrToPtr { src, .. }
        | Inst::IntToFloat { src, .. }
        | Inst::FloatToInt { src, .. }
        | Inst::FloatToFloat { src, .. }
        | Inst::ToBool { src, .. }
        | Inst::JumpIfFalse { src, .. }
        | Inst::JumpIfTrue { src, .. }
        | Inst::SwitchInt { src, .. }
        | Inst::Ret { src }
        | Inst::FreezeLoc { src, .. }
        | Inst::BindSlot { src, .. } => f(*src),
        Inst::Load { loc, .. } | Inst::IncDec { loc, .. } | Inst::InitStr { loc, .. } => f(*loc),
        Inst::Store { loc, src, .. } => {
            f(*loc);
            f(*src);
        }
        Inst::AddrOf { loc, .. } => f(*loc),
        Inst::MemcpyAgg { dst, src, .. } => {
            // Both operands are *reads*: the registers hold the two
            // locations of the copy.
            f(*dst);
            f(*src);
        }
        Inst::OptMemcpy { dst, src, n } => {
            f(*dst);
            f(*src);
            f(*n);
        }
        Inst::Binary { lhs, rhs, .. } => {
            f(*lhs);
            f(*rhs);
        }
        Inst::PtrAdd { ptr, idx, .. } => {
            f(*ptr);
            f(*idx);
        }
        Inst::PtrDiff { a, b, .. } | Inst::PtrCmp { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Inst::AssignOpInt { loc, cur, rhs, .. } | Inst::AssignOpFloat { loc, cur, rhs, .. } => {
            f(*loc);
            f(*cur);
            f(*rhs);
        }
        Inst::PtrAssignAdd { loc, cur, idx, .. } => {
            f(*loc);
            f(*cur);
            f(*idx);
        }
        Inst::RegIncDec { reg, .. } => f(*reg),
        Inst::RegAssignOpInt { reg, cur, rhs, .. }
        | Inst::RegAssignOpFloat { reg, cur, rhs, .. } => {
            f(*reg);
            f(*cur);
            f(*rhs);
        }
        Inst::RegPtrAssignAdd { reg, cur, idx, .. } => {
            f(*reg);
            f(*cur);
            f(*idx);
        }
        Inst::CallDirect { args, .. } => {
            for &r in args {
                f(r);
            }
        }
        Inst::CallIndirect { callee, args, .. } => {
            f(*callee);
            for &r in args {
                f(r);
            }
        }
        Inst::CallBuiltin { args, .. } => {
            for &(r, _) in args {
                f(r);
            }
        }
    }
}

/// The register an instruction *writes*, if any. The register-promoted
/// finishers write two registers (`dst` and the promoted `reg`); only
/// `dst` is reported — a missing kill merely over-approximates liveness,
/// which is sound for fusion and dead-code decisions.
pub(crate) fn def_of(inst: &Inst) -> Option<Reg> {
    match inst {
        Inst::ConstInt { dst, .. }
        | Inst::ConstFloat { dst, .. }
        | Inst::StrLit { dst, .. }
        | Inst::FuncAddr { dst, .. }
        | Inst::Move { dst, .. }
        | Inst::BoolOf { dst, .. }
        | Inst::SetVoid { dst }
        | Inst::SlotLoc { dst, .. }
        | Inst::GlobalLoc { dst, .. }
        | Inst::DerefLoc { dst, .. }
        | Inst::MemberShift { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::AddrOf { dst, .. }
        | Inst::Binary { dst, .. }
        | Inst::Unary { dst, .. }
        | Inst::PtrAdd { dst, .. }
        | Inst::PtrDiff { dst, .. }
        | Inst::PtrCmp { dst, .. }
        | Inst::IncDec { dst, .. }
        | Inst::AssignOpInt { dst, .. }
        | Inst::AssignOpFloat { dst, .. }
        | Inst::PtrAssignAdd { dst, .. }
        | Inst::IntToInt { dst, .. }
        | Inst::PtrToInt { dst, .. }
        | Inst::IntToPtr { dst, .. }
        | Inst::PtrToPtr { dst, .. }
        | Inst::IntToFloat { dst, .. }
        | Inst::FloatToInt { dst, .. }
        | Inst::FloatToFloat { dst, .. }
        | Inst::ToBool { dst, .. }
        | Inst::CallDirect { dst, .. }
        | Inst::CallIndirect { dst, .. }
        | Inst::CallBuiltin { dst, .. }
        | Inst::AllocLocal { dst, .. }
        | Inst::FreezeLoc { dst, .. }
        | Inst::RegIncDec { dst, .. }
        | Inst::RegAssignOpInt { dst, .. }
        | Inst::RegAssignOpFloat { dst, .. }
        | Inst::RegPtrAssignAdd { dst, .. } => Some(*dst),
        Inst::Store { .. }
        | Inst::MemcpyAgg { .. }
        | Inst::OptMemcpy { .. }
        | Inst::Jump { .. }
        | Inst::JumpIfFalse { .. }
        | Inst::JumpIfTrue { .. }
        | Inst::SwitchInt { .. }
        | Inst::Ret { .. }
        | Inst::RetVoid
        | Inst::RetFall
        | Inst::BindSlot { .. }
        | Inst::InitStr { .. }
        | Inst::Unsupported { .. } => None,
    }
}

/// Successor pcs of the instruction at `pc`. Error exits are not edges:
/// no register value is observable past an error (the unwinder only runs
/// kills), so liveness may ignore them.
pub(crate) fn successors(code: &[Inst], pc: usize, mut f: impl FnMut(usize)) {
    match &code[pc] {
        Inst::Jump { target } => f(*target as usize),
        Inst::JumpIfFalse { target, .. } | Inst::JumpIfTrue { target, .. } => {
            f(pc + 1);
            f(*target as usize);
        }
        Inst::SwitchInt { cases, end, .. } => {
            for (_, t) in &**cases {
                f(*t as usize);
            }
            f(*end as usize);
        }
        Inst::Ret { .. } | Inst::RetVoid | Inst::RetFall | Inst::Unsupported { .. } => {}
        _ => {
            if pc + 1 < code.len() {
                f(pc + 1);
            }
        }
    }
}

/// Per-pc register liveness, as a dense bitset matrix. `live_after(pc)`
/// is the set of registers whose current value may still be read on some
/// path out of `pc` — the condition under which a def at `pc` (or an
/// intermediate of a fused pair ending at `pc`) is unobservable.
pub(crate) struct Liveness {
    words: usize,
    /// `live_in` per pc, backward-fixpoint result.
    live_in: Vec<u64>,
    n: usize,
}

impl Liveness {
    pub(crate) fn compute(func: &IrFunc) -> Liveness {
        let n = func.code.len();
        let words = (func.n_regs as usize).div_ceil(64).max(1);
        let mut lv = Liveness { words, live_in: vec![0u64; n * words], n };
        // Iterate backward to a fixpoint. Code is mostly forward-branching,
        // so sweeping high→low pcs converges in one pass per loop nest.
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (0..n).rev() {
                let mut out = vec![0u64; words];
                successors(&func.code, pc, |s| {
                    if s < lv.n {
                        for (w, o) in out.iter_mut().enumerate() {
                            *o |= lv.live_in[s * words + w];
                        }
                    }
                });
                if let Some(d) = def_of(&func.code[pc]) {
                    out[d as usize / 64] &= !(1u64 << (d % 64));
                }
                for_each_use(&func.code[pc], |r| {
                    out[r as usize / 64] |= 1u64 << (r % 64);
                });
                let row = &mut lv.live_in[pc * words..(pc + 1) * words];
                if row != &out[..] {
                    row.copy_from_slice(&out);
                    changed = true;
                }
            }
        }
        lv
    }

    /// Is `r`'s value possibly read on some path *from* `pc` (inclusive)?
    pub(crate) fn is_live_in(&self, pc: usize, r: Reg) -> bool {
        self.live_in[pc * self.words + r as usize / 64] >> (r % 64) & 1 != 0
    }

    /// Is `r`'s value possibly read on some path *out of* `pc`?
    pub(crate) fn live_after(&self, func: &IrFunc, pc: usize, r: Reg) -> bool {
        let mut live = false;
        successors(&func.code, pc, |s| {
            if s < self.n {
                live |= self.live_in[s * self.words + r as usize / 64] >> (r % 64) & 1 != 0;
            }
        });
        live
    }
}

// ── Pass 1: jump threading ──────────────────────────────────────────────

/// Retarget jumps whose destination is an unconditional `Jump` (chains
/// followed with a hop bound as the cycle guard) and delete jumps to the
/// next instruction. Skipping a `Jump` skips only a `tick()`.
fn thread_jumps(func: &mut IrFunc) -> bool {
    let code_ref = func.code.clone();
    let thread = |mut t: u32| -> u32 {
        for _ in 0..8 {
            match code_ref.get(t as usize) {
                Some(Inst::Jump { target }) if *target != t => t = *target,
                _ => break,
            }
        }
        t
    };
    let mut changed = false;
    for inst in &mut func.code {
        match inst {
            Inst::Jump { target }
            | Inst::JumpIfFalse { target, .. }
            | Inst::JumpIfTrue { target, .. } => {
                let t = thread(*target);
                if t != *target {
                    *target = t;
                    changed = true;
                }
            }
            Inst::SwitchInt { cases, end, .. } => {
                for (_, t) in cases.iter_mut() {
                    let tt = thread(*t);
                    if tt != *t {
                        *t = tt;
                        changed = true;
                    }
                }
                let tt = thread(*end);
                if tt != *end {
                    *end = tt;
                    changed = true;
                }
            }
            _ => {}
        }
    }
    // Delete `jump pc+1` (every lowered `if`/loop join emits one).
    let keep: Vec<bool> = func
        .code
        .iter()
        .enumerate()
        .map(|(pc, inst)| !matches!(inst, Inst::Jump { target } if *target as usize == pc + 1))
        .collect();
    changed | compact(func, &keep)
}

// ── Pass 2: adjacent-pair fusion and constant folding ───────────────────

/// Fuse producer/consumer pairs at adjacent pcs. Every rewrite requires
/// the consumer's pc not to be a jump target (so all paths through the
/// consumer run the producer first) and the producer's result to be dead
/// after the consumer (liveness), making the intermediate unobservable.
#[allow(clippy::too_many_lines)]
fn fuse_pairs(func: &mut IrFunc) -> bool {
    if func.code.is_empty() {
        return false;
    }
    let lv = Liveness::compute(func);
    // Jump targets are always block starts (a lowering invariant `link`
    // preserves), so the block table is the complete set of join points.
    let is_join = |pc: usize| func.block_pc.binary_search(&(pc as u32)).is_ok();
    let mut keep = vec![true; func.code.len()];
    let mut changed = false;
    for pc in 0..func.code.len() - 1 {
        if !keep[pc] || is_join(pc + 1) {
            continue;
        }
        match (&func.code[pc], &func.code[pc + 1]) {
            // `bool r; jump_if r` → `jump_if src`: the conditional jump
            // applies the same `truthy` the bool normalisation did, and
            // both read the operand through the same register access, so
            // values, errors and events are identical.
            (
                Inst::BoolOf { dst: d, src: s } | Inst::ToBool { dst: d, src: s },
                Inst::JumpIfFalse { src: js, target } | Inst::JumpIfTrue { src: js, target },
            ) if *js == *d && !lv.live_after(func, pc + 1, *d) => {
                let (s, target) = (*s, *target);
                let neg = matches!(func.code[pc + 1], Inst::JumpIfFalse { .. });
                func.code[pc + 1] = if neg {
                    Inst::JumpIfFalse { src: s, target }
                } else {
                    Inst::JumpIfTrue { src: s, target }
                };
                keep[pc] = false;
                changed = true;
            }
            // `d1 = s .+ a; d2 = d1 .+ b` → `d2 = s .+ (a+b)`: the shift
            // is a pure address add (`member_shift` emits no events). The
            // intermediate `with_address` representability check is
            // subsumed: member offsets are non-negative and `a + b` is
            // required not to wrap, so the intermediate address lies
            // between the base and final addresses, inside the same
            // contiguous representable window whenever both endpoints are.
            (
                Inst::MemberShift { dst: d1, src: s, off: a },
                Inst::MemberShift { dst: d2, src: s2, off: b },
            ) if *s2 == *d1 && *s != *d1 && !lv.live_after(func, pc + 1, *d1) => {
                if let Some(off) = a.checked_add(*b) {
                    func.code[pc + 1] = Inst::MemberShift { dst: *d2, src: *s, off };
                    keep[pc] = false;
                    changed = true;
                }
            }
            // `c1 = const; c2 = int.to c1` → `c2 = const.to wrapped`:
            // replicates `convert_int` (which for non-capability targets
            // is a plain wrap of the logical value).
            (
                Inst::ConstInt { dst: d1, ity, v },
                Inst::IntToInt { dst: d2, src, to },
            ) if *src == *d1
                && !ity.is_capability()
                && !to.is_capability()
                && !lv.live_after(func, pc + 1, *d1) =>
            {
                let folded = to.wrap(ity.wrap(*v));
                func.code[pc + 1] = Inst::ConstInt { dst: *d2, ity: *to, v: folded };
                keep[pc] = false;
                changed = true;
            }
            // `c1 = const; r = op c1` → `r = const`: replicates
            // `unary_int`, skipping any operand that could raise UB.
            (
                Inst::ConstInt { dst: d1, ity: sity, v },
                Inst::Unary { dst: d2, op, ity, src },
            ) if *src == *d1
                && !sity.is_capability()
                && !ity.is_capability()
                && !lv.live_after(func, pc + 1, *d1) =>
            {
                let a = sity.wrap(*v);
                let folded = match op {
                    UnOp::LogNot => Some((IntTy::Int, i128::from(a == 0))),
                    UnOp::Plus => Some((*sity, a)),
                    UnOp::Neg if ity.signed() && !ity.fits(-a) => None, // runtime UB
                    UnOp::Neg => Some((*ity, ity.wrap(-a))),
                    UnOp::BitNot => Some((*ity, ity.wrap(!a))),
                };
                if let Some((rty, rv)) = folded {
                    func.code[pc + 1] = Inst::ConstInt { dst: *d2, ity: rty, v: rv };
                    keep[pc] = false;
                    changed = true;
                }
            }
            _ => {}
        }
        // `c1; c2; r = c1 op c2` triples (needs a window of three).
        if pc + 2 < func.code.len() && keep[pc] && !is_join(pc + 1) && !is_join(pc + 2) {
            if let (
                Inst::ConstInt { dst: r1, ity: i1, v: v1 },
                Inst::ConstInt { dst: r2, ity: i2, v: v2 },
                Inst::Binary { dst, op, ity, lhs, rhs, .. },
            ) = (&func.code[pc], &func.code[pc + 1], &func.code[pc + 2])
            {
                if *lhs == *r1
                    && *rhs == *r2
                    && *r1 != *r2
                    && !i1.is_capability()
                    && !i2.is_capability()
                    && !ity.is_capability()
                {
                    let (a, b) = (i1.wrap(*v1), i2.wrap(*v2));
                    if let Some((rty, rv)) = fold_binary_int(*op, *ity, a, b) {
                        let (dst, r1, r2) = (*dst, *r1, *r2);
                        func.code[pc + 2] = Inst::ConstInt { dst, ity: rty, v: rv };
                        // The operand defs go too, if now unobservable.
                        if !lv.live_after(func, pc + 2, r1) {
                            keep[pc] = false;
                        }
                        if !lv.live_after(func, pc + 2, r2) {
                            keep[pc + 1] = false;
                        }
                        changed = true;
                    }
                }
            }
        }
    }
    compact(func, &keep) || changed
}

/// Fold a non-capability integer binary operation, replicating
/// `Interp::binary_int` bit for bit. Returns `None` whenever the runtime
/// path raises UB (the instruction then stays, so the UB fires at the
/// same program point with the same message).
fn fold_binary_int(op: BinOp, ity: IntTy, a: i128, b: i128) -> Option<(IntTy, i128)> {
    if op.is_comparison() {
        let res = match op {
            BinOp::Eq => a == b,
            BinOp::Ne => a != b,
            BinOp::Lt => a < b,
            BinOp::Le => a <= b,
            BinOp::Gt => a > b,
            _ => a >= b,
        };
        return Some((IntTy::Int, i128::from(res)));
    }
    let bits = ity.value_bits();
    let raw: i128 = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a.checked_mul(b)?, // i128 overflow is runtime UB
        BinOp::Div | BinOp::Rem => {
            if b == 0 || (ity.signed() && a == ity.min() && b == -1) {
                return None; // DivisionByZero / SignedOverflow
            }
            if op == BinOp::Div { a / b } else { a % b }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl | BinOp::Shr => {
            if b < 0 || b >= i128::from(bits) {
                return None; // ShiftOutOfRange
            }
            if op == BinOp::Shl {
                let v = a << b;
                if ity.signed() && !ity.fits(v) {
                    return None; // SignedOverflow
                }
                v
            } else if ity.signed() {
                a >> b
            } else {
                ((a as u128 & (u128::MAX >> (128 - bits))) >> b) as i128
            }
        }
        _ => return None,
    };
    if ity.signed() && matches!(op, BinOp::Add | BinOp::Sub) && !ity.fits(raw) {
        return None; // SignedOverflow
    }
    Some((ity, ity.wrap(raw)))
}

// ── Pass 3: dead-register elimination ───────────────────────────────────

/// Delete pure, infallible, event-free defs whose destination is dead.
/// Fallible producers (`SlotLoc`, `Load`, `BoolOf`, …) and event sources
/// (`StrLit` interns) must stay even when dead: their error or event is
/// the observable.
fn delete_dead(func: &mut IrFunc) -> bool {
    if func.code.is_empty() {
        return false;
    }
    let lv = Liveness::compute(func);
    let keep: Vec<bool> = func
        .code
        .iter()
        .enumerate()
        .map(|(pc, inst)| {
            let deletable = matches!(
                inst,
                Inst::ConstInt { .. }
                    | Inst::ConstFloat { .. }
                    | Inst::Move { .. }
                    | Inst::SetVoid { .. }
                    | Inst::GlobalLoc { .. }
            );
            if !deletable {
                return true;
            }
            let dst = def_of(inst).expect("deletable insts all define");
            lv.live_after(func, pc, dst)
        })
        .collect();
    compact(func, &keep)
}

// ── Code compaction ─────────────────────────────────────────────────────

/// Drop the instructions marked `false` in `keep`, remapping jump targets
/// and the block table. A deleted instruction always behaves as a
/// fall-through (that is what made it deletable), so a target pointing at
/// one maps to the next surviving pc.
pub(crate) fn compact(func: &mut IrFunc, keep: &[bool]) -> bool {
    if keep.iter().all(|&k| k) {
        return false;
    }
    // new_pc[i] = how many kept instructions precede i; doubles as the
    // "next survivor" map for deleted targets. One extra slot so targets
    // one past the end (empty trailing blocks) remap too.
    let mut new_pc = Vec::with_capacity(keep.len() + 1);
    let mut n = 0u32;
    for &k in keep {
        new_pc.push(n);
        n += u32::from(k);
    }
    new_pc.push(n);
    let old = std::mem::take(&mut func.code);
    for (inst, &k) in old.into_iter().zip(keep) {
        if !k {
            continue;
        }
        let mut inst = inst;
        match &mut inst {
            Inst::Jump { target }
            | Inst::JumpIfFalse { target, .. }
            | Inst::JumpIfTrue { target, .. } => *target = new_pc[*target as usize],
            Inst::SwitchInt { cases, end, .. } => {
                for (_, t) in cases.iter_mut() {
                    *t = new_pc[*t as usize];
                }
                *end = new_pc[*end as usize];
            }
            _ => {}
        }
        func.code.push(inst);
    }
    for pc in &mut func.block_pc {
        *pc = new_pc[*pc as usize];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tast::DeriveFrom;
    use crate::types::Ty;
    use crate::ir::TyId;

    /// A one-function program around hand-written code, so each pattern
    /// can be tested in isolation from the lowering.
    fn func(code: Vec<Inst>, n_regs: u32, block_pc: Vec<u32>) -> IrProgram {
        IrProgram {
            funcs: vec![IrFunc {
                name: "main".into(),
                is_main: true,
                params: Vec::new(),
                n_slots: 0,
                n_regs,
                code,
                block_pc,
                promoted: Vec::new(),
            }],
            func_index: std::iter::once(("main".to_string(), 0)).collect(),
            types: vec![Ty::Int(IntTy::Int)],
            strs: Vec::new(),
            globals: Vec::new(),
            main: Some(0),
        }
    }

    fn binary(dst: Reg, op: BinOp, lhs: Reg, rhs: Reg) -> Inst {
        Inst::Binary {
            dst,
            op,
            ity: IntTy::Int,
            ty: TyId(0),
            derive: DeriveFrom::Left,
            lhs,
            rhs,
        }
    }

    #[test]
    fn const_triple_folds_and_operands_die() {
        let mut ir = func(
            vec![
                Inst::ConstInt { dst: 0, ity: IntTy::Int, v: 7 },
                Inst::ConstInt { dst: 1, ity: IntTy::Int, v: 5 },
                binary(2, BinOp::Add, 0, 1),
                Inst::Ret { src: 2 },
            ],
            3,
            vec![0],
        );
        optimize(&mut ir);
        let code = &ir.funcs[0].code;
        assert_eq!(code.len(), 2, "{code:?}");
        assert!(
            matches!(code[0], Inst::ConstInt { dst: 2, ity: IntTy::Int, v: 12 }),
            "{code:?}"
        );
    }

    #[test]
    fn possible_signed_overflow_is_never_folded() {
        // i32::MAX + 1 raises SignedOverflow at runtime: the Binary (and
        // both operands it reads) must survive untouched.
        let code = vec![
            Inst::ConstInt { dst: 0, ity: IntTy::Int, v: i128::from(i32::MAX) },
            Inst::ConstInt { dst: 1, ity: IntTy::Int, v: 1 },
            binary(2, BinOp::Add, 0, 1),
            Inst::Ret { src: 2 },
        ];
        let mut ir = func(code.clone(), 3, vec![0]);
        optimize(&mut ir);
        assert_eq!(ir.funcs[0].code.len(), code.len());
        // Same for division by zero and out-of-range shifts.
        for op in [BinOp::Div, BinOp::Rem] {
            assert_eq!(fold_binary_int(op, IntTy::Int, 1, 0), None);
        }
        assert_eq!(fold_binary_int(BinOp::Shl, IntTy::Int, 1, 32), None);
        assert_eq!(fold_binary_int(BinOp::Shr, IntTy::Int, 1, -1), None);
        // ... while the in-range forms fold to the wrapped result.
        assert_eq!(
            fold_binary_int(BinOp::Add, IntTy::UInt, (1 << 32) - 1, 1),
            Some((IntTy::UInt, 0))
        );
        assert_eq!(
            fold_binary_int(BinOp::Lt, IntTy::Int, -1, 0),
            Some((IntTy::Int, 1))
        );
    }

    #[test]
    fn member_shift_chains_fuse_over_dead_intermediate() {
        let mut ir = func(
            vec![
                Inst::GlobalLoc { dst: 0, g: super::super::GlobalId(0) },
                Inst::MemberShift { dst: 1, src: 0, off: 8 },
                Inst::MemberShift { dst: 2, src: 1, off: 4 },
                Inst::Load { dst: 3, loc: 2, ty: TyId(0) },
                Inst::Ret { src: 3 },
            ],
            4,
            vec![0],
        );
        ir.globals.push("g".into());
        optimize(&mut ir);
        let code = &ir.funcs[0].code;
        assert!(
            code.iter()
                .any(|i| matches!(i, Inst::MemberShift { src: 0, off: 12, .. })),
            "{code:?}"
        );
        assert_eq!(
            code.iter()
                .filter(|i| matches!(i, Inst::MemberShift { .. }))
                .count(),
            1,
            "{code:?}"
        );
    }

    #[test]
    fn bool_feeding_branch_fuses() {
        let mut ir = func(
            vec![
                Inst::ConstInt { dst: 0, ity: IntTy::Int, v: 3 },
                Inst::BoolOf { dst: 1, src: 0 },
                Inst::JumpIfFalse { src: 1, target: 4 },
                Inst::Ret { src: 0 },
                Inst::RetFall,
            ],
            2,
            vec![0, 4],
        );
        optimize(&mut ir);
        let code = &ir.funcs[0].code;
        assert!(!code.iter().any(|i| matches!(i, Inst::BoolOf { .. })), "{code:?}");
        assert!(
            code.iter()
                .any(|i| matches!(i, Inst::JumpIfFalse { src: 0, .. })),
            "{code:?}"
        );
    }

    #[test]
    fn dead_defs_die_live_and_fallible_ones_stay() {
        let mut ir = func(
            vec![
                Inst::ConstInt { dst: 0, ity: IntTy::Int, v: 1 },  // dead
                Inst::ConstFloat { dst: 1, fty: crate::types::FloatTy::F64, v: 0.5 }, // dead
                Inst::SlotLoc { dst: 2, slot: 0, name: super::super::StrId(0) }, // fallible: stays
                Inst::ConstInt { dst: 3, ity: IntTy::Int, v: 9 },  // live via Ret
                Inst::Ret { src: 3 },
            ],
            4,
            vec![0],
        );
        ir.strs.push("x".into());
        ir.funcs[0].n_slots = 1;
        optimize(&mut ir);
        let code = &ir.funcs[0].code;
        assert_eq!(code.len(), 3, "{code:?}");
        assert!(matches!(code[0], Inst::SlotLoc { .. }), "{code:?}");
    }

    #[test]
    fn jumps_thread_through_trampolines_and_to_next_die() {
        let mut ir = func(
            vec![
                Inst::JumpIfTrue { src: 0, target: 3 }, // → threads to 4
                Inst::Jump { target: 2 },               // jump-to-next: dies
                Inst::RetFall,
                Inst::Jump { target: 4 },               // trampoline
                Inst::RetVoid,
            ],
            1,
            vec![0, 1, 2, 3, 4],
        );
        optimize(&mut ir);
        let code = &ir.funcs[0].code;
        // The jump-to-next is gone; the conditional jump lands on RetVoid.
        assert!(matches!(code[0], Inst::JumpIfTrue { target, .. }
            if matches!(code[target as usize], Inst::RetVoid)), "{code:?}");
    }

    /// Optimising twice changes nothing: the rounds loop reached a real
    /// fixpoint, not an oscillation.
    #[test]
    fn optimization_is_idempotent_on_lowered_programs() {
        let src = "
            struct in { int x; int y; };
            struct out { int pad; struct in i; };
            int pick(int c) { if (c > 0) return c; else return -c; }
            int main(void) {
              struct out s;
              s.i.y = 6;
              int t = 0;
              for (int k = 0; k < 4; k++) t += pick(k - 2);
              return t + s.i.y;
            }";
        let prog = crate::compile(src, &crate::Profile::cerberus()).expect("compiles");
        let mut once = super::super::lower(&prog);
        optimize(&mut once);
        let mut twice = once.clone();
        optimize(&mut twice);
        assert_eq!(once.render(), twice.render());
    }
}
